//! Wide-record coverage on the real-disk paths: the storage layer is
//! WIDTH-driven, never hardwired to 8-byte keys.
//!
//! `Tagged` (16-byte key–payload records) and `StrN<24>` (fixed-width
//! string keys in memcmp order) run through `FileStorage` and
//! `AsyncFileStorage` — including block sizes whose byte width defeats
//! O_DIRECT alignment, forcing the buffered fallback — and must agree
//! bit-for-bit and step-for-step with the in-memory reference. A
//! checkpointed `Tagged` run killed mid-pass must resume to output
//! byte-identical to an uninterrupted run.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn tagged_workload(n: usize, seed: u64) -> Vec<Tagged> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..n as u64).collect();
    keys.shuffle(&mut rng);
    // Payload = original position: after sorting, payloads must be a
    // permutation proving every record survived intact.
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| Tagged::new(k, i as u64))
        .collect()
}

fn str24_workload(n: usize, seed: u64) -> Vec<StrN<24>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..n as u64).collect();
    keys.shuffle(&mut rng);
    // Zero-padded fixed-width decimal: string order == numeric order.
    keys.iter()
        .map(|k| StrN::from_str_padded(&format!("{k:020}")))
        .collect()
}

/// Sort `data` with `three_pass2` on `storage`, returning output bytes,
/// deterministic counters, and the peak of the memory accountant.
fn run_on<K: PdmKey, S: Storage<K>>(storage: S, data: &[K], b: usize) -> (Vec<K>, IoStats, usize) {
    let n = data.len();
    let mut pdm = Pdm::with_storage(PdmConfig::square(4, b), storage).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, data).unwrap();
    pdm.reset_stats();
    let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    let out = pdm.inspect_prefix(&rep.output, n).unwrap();
    let peak = pdm.mem().peak();
    let (_, stats) = pdm.into_parts();
    (out, stats, peak)
}

/// The backend-equivalence contract for one record type: mem, file and
/// async-file (both overlap legs) agree on bytes, counters and memory.
fn assert_backends_agree<K: PdmKey>(data: &[K], b: usize) {
    let n = data.len();
    let mut want = data.to_vec();
    want.sort_unstable();

    let (out_mem, stats_mem, peak_mem) = run_on(MemStorage::<K>::new(4, b), data, b);
    assert_eq!(out_mem, want, "mem reference is not sorted");

    let (out_file, stats_file, peak_file) =
        run_on(FileStorage::<K>::create_temp(4, b).unwrap(), data, b);
    assert_eq!(out_mem, out_file, "file backend output differs");
    assert_eq!(stats_mem.blocks_read, stats_file.blocks_read);
    assert_eq!(stats_mem.read_steps, stats_file.read_steps);
    assert_eq!(stats_mem.write_steps, stats_file.write_steps);
    assert_eq!(stats_mem.per_disk_reads, stats_file.per_disk_reads);
    assert_eq!(peak_mem, peak_file);

    for overlap in [false, true] {
        let storage = AsyncFileStorage::<K>::create_temp(4, b).unwrap();
        let mut pdm = Pdm::with_storage(PdmConfig::square(4, b), storage).unwrap();
        pdm.set_overlap(overlap);
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, data).unwrap();
        pdm.reset_stats();
        let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
        let out = pdm.inspect_prefix(&rep.output, n).unwrap();
        let peak = pdm.mem().peak();
        let (_, stats) = pdm.into_parts();
        assert_eq!(out, out_mem, "async-file output differs (overlap={overlap})");
        assert_eq!(stats.blocks_read, stats_mem.blocks_read, "overlap={overlap}");
        assert_eq!(stats.read_steps, stats_mem.read_steps, "overlap={overlap}");
        assert_eq!(stats.write_steps, stats_mem.write_steps, "overlap={overlap}");
        assert_eq!(stats.per_disk_reads, stats_mem.per_disk_reads, "overlap={overlap}");
        assert_eq!(stats.per_disk_writes, stats_mem.per_disk_writes, "overlap={overlap}");
        assert_eq!(peak, peak_mem, "overlap={overlap}");
    }
}

#[test]
fn tagged_records_agree_across_file_and_async_file_backends() {
    // B = 16 ⇒ 256-byte blocks for 16-byte records: not a multiple of the
    // 4096-byte O_DIRECT alignment, so the async backend must take its
    // buffered fallback — and still match the cost model exactly.
    let b = 16usize;
    assert_backends_agree(&tagged_workload(b * b * b, 0xA11CE), b);
}

#[test]
fn str24_records_agree_across_file_and_async_file_backends() {
    // 24-byte records at B = 16 ⇒ 384-byte blocks, again misaligned.
    let b = 16usize;
    assert_backends_agree(&str24_workload(b * b * b, 0xB0B), b);
}

#[test]
fn misaligned_wide_blocks_fall_back_from_direct_io() {
    // 16-byte records at B = 16 can never satisfy O_DIRECT's alignment,
    // so the capability must report the buffered fallback...
    let s = AsyncFileStorage::<Tagged>::create_temp(2, 16).unwrap();
    assert!(!s.caps().direct_io, "256-byte blocks cannot be O_DIRECT");
    drop(s);
    // ...while B = 256 (4096-byte blocks) is alignment-eligible; whether
    // O_DIRECT actually opens depends on the filesystem, so only the
    // sort result is asserted.
    let b = 256usize;
    let n = 4 * b * 2;
    let data = tagged_workload(n, 0xD1CE);
    let mut want = data.clone();
    want.sort_unstable();
    let storage = AsyncFileStorage::<Tagged>::create_temp(4, b).unwrap();
    let mut pdm = Pdm::with_storage(PdmConfig::square(4, b), storage).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    assert_eq!(pdm.inspect_prefix(&rep.output, n).unwrap(), want);
}

#[test]
fn tagged_sentinel_values_survive_the_async_backend() {
    // Records equal to the padding sentinels (MIN, MAX) are legitimate
    // data; block padding must never swallow or duplicate them.
    let b = 16usize;
    let n = b * b * b;
    let mut data = tagged_workload(n, 0x5E17);
    for i in 0..8 {
        data[i] = Tagged::MAX;
        data[n - 1 - i] = Tagged::MIN;
        data[64 + i] = Tagged::new(u64::MAX, i as u64);
        data[128 + i] = Tagged::new(0, i as u64 + 1);
    }
    let mut want = data.clone();
    want.sort_unstable();
    let (out, _, _) = run_on(AsyncFileStorage::<Tagged>::create_temp(4, b).unwrap(), &data, b);
    assert_eq!(out, want, "sentinel-laden input came back altered");
    assert_eq!(
        out.iter().filter(|&&t| t == Tagged::MAX).count(),
        8,
        "MAX sentinels were swallowed or duplicated by padding"
    );
    assert_eq!(out.iter().filter(|&&t| t == Tagged::MIN).count(), 8);
}

fn digest_of(data: &[Tagged]) -> u64 {
    let mut buf = [0u8; 16];
    data.iter().fold(FNV_OFFSET, |st, k| {
        k.write_bytes(&mut buf);
        fnv1a(st, &buf)
    })
}

#[test]
fn tagged_checkpoint_resume_is_byte_identical() {
    // Kill a checkpointed Tagged sort mid-run via an injected disk death,
    // then resume from the surviving 16-byte-record files + manifest.
    const D: usize = 2;
    const B: usize = 8;
    const N: usize = 512;
    let data = tagged_workload(N, 0xC0FFEE);
    let digest = digest_of(&data);
    let cfg = PdmConfig::square(D, B);

    let mut reference = data.clone();
    reference.sort_unstable();

    let manifest = || Manifest {
        algo: "three-pass1".into(),
        num_disks: cfg.num_disks,
        block_size: cfg.block_size,
        mem_capacity: cfg.mem_capacity,
        num_keys: N,
        digest,
        completed: 0,
        frontier: 0,
        phases: Vec::new(),
    };
    let unique = |tag: &str| {
        std::env::temp_dir().join(format!("pdm-rec-{tag}-{}", std::process::id()))
    };

    let mut resumed_with_progress = 0usize;
    for kill_after in [96u64, 128, 160, 192, 224, 256] {
        let scratch = unique(&format!("scratch-{kill_after}"));
        let ckdir = unique(&format!("ck-{kill_after}"));
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::remove_dir_all(&ckdir).ok();

        // None: the fault fired during ingest, before any checkpoint —
        // nothing to resume. Some(false): the run survived outright.
        let interrupted = {
            let file = FileStorage::<Tagged>::create(&scratch, D, B).unwrap();
            let flaky = FlakyStorage::new(file, FailMode::DiskAfter(1, kill_after));
            let mut pdm = Pdm::with_storage(cfg, flaky).unwrap();
            let input = pdm.alloc_region_for_keys(N).unwrap();
            if pdm.ingest(&input, &data).is_err() {
                None
            } else {
                let store = CheckpointStore::create(&ckdir).unwrap();
                pdm.attach_checkpoint(store, manifest());
                Some(pdm_sort::three_pass1(&mut pdm, &input, N).is_err())
            }
        };
        if interrupted != Some(true) {
            std::fs::remove_dir_all(&scratch).ok();
            std::fs::remove_dir_all(&ckdir).ok();
            continue;
        }

        let store = CheckpointStore::create(&ckdir).unwrap();
        let m = match store.load_latest().unwrap() {
            Some(m) => m,
            // Killed before the first pass's checkpoint became durable:
            // a restart-from-scratch scenario, not a resume.
            None => {
                std::fs::remove_dir_all(&scratch).ok();
                std::fs::remove_dir_all(&ckdir).ok();
                continue;
            }
        };
        m.check_compatible("three-pass1", &cfg, N, digest).unwrap();
        if m.completed > 0 {
            resumed_with_progress += 1;
        }
        let file = FileStorage::<Tagged>::create_readback(&scratch, D, B).unwrap();
        let mut pdm = Pdm::with_storage(cfg, file).unwrap();
        let input = pdm.alloc_region_for_keys(N).unwrap();
        pdm.attach_checkpoint(store, m);
        let rep = pdm_sort::three_pass1(&mut pdm, &input, N).unwrap();
        if let Some(e) = pdm.take_checkpoint_error() {
            panic!("resume left a deferred checkpoint error: {e}");
        }
        assert_eq!(
            pdm.inspect_prefix(&rep.output, N).unwrap(),
            reference,
            "kill@{kill_after}: resumed Tagged output differs from uninterrupted run"
        );
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::remove_dir_all(&ckdir).ok();
    }
    assert!(
        resumed_with_progress >= 1,
        "sweep never exercised a resume with completed passes to replay"
    );
}

/// With the `block-checksums` feature, every block read back on the
/// checksumming backends verifies a sidecar FNV over the record's full
/// WIDTH bytes — wide records included.
#[cfg(feature = "block-checksums")]
#[test]
fn wide_records_verify_checksums_on_readback() {
    let b = 16usize;
    let n = b * b * b;
    let data = tagged_workload(n, 0xC4EC);
    let storage = AsyncFileStorage::<Tagged>::create_temp(4, b).unwrap();
    assert!(storage.caps().checksums);
    let (out, stats, _) = run_on(storage, &data, b);
    let mut want = data.clone();
    want.sort_unstable();
    assert_eq!(out, want);
    let verified: u64 = stats.wall.disks.iter().map(|dw| dw.checksums_verified).sum();
    assert!(
        verified > 0,
        "no block read was checksum-verified on the async backend"
    );
}
