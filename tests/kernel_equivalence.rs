//! Cross-kernel equivalence: the hot-path kernels are drop-in replacements.
//!
//! The loser-tree k-way merge, the (optionally parallel) run-formation
//! sort, and the parallel bucket classifier all replaced slower reference
//! implementations on the hot path. Nothing about the PDM cost model may
//! notice: outputs must be byte-identical and pass counts unchanged, on
//! friendly and adversarial inputs alike. The whole file runs in both
//! feature legs — `cargo test --test kernel_equivalence` and the same with
//! `--features parallel` — and the parallel toggles are no-ops in the
//! sequential build, so every assertion is exercised either way.

use pdm_model::prelude::*;
use pdm_sort::kernels;
use pdm_sort::merge;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// `kernels::set_parallel` flips a process-wide switch; tests that toggle
/// it serialize here so the test harness's thread pool can't interleave a
/// sequential-mode assertion with another test's parallel window.
static PARALLEL_TOGGLE: Mutex<()> = Mutex::new(());

/// The adversarial input families the kernels must agree on.
fn input_families(n: usize, seed: u64) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut permutation: Vec<u64> = (0..n as u64).collect();
    permutation.shuffle(&mut rng);
    let duplicates: Vec<u64> = (0..n).map(|_| rng.gen_range(0..7u64)).collect();
    let mut nearly_sorted: Vec<u64> = (0..n as u64).collect();
    for _ in 0..n / 16 {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        nearly_sorted.swap(i, j);
    }
    // The 0-1 principle says oblivious sorters live or die on these.
    let zero_one: Vec<u64> = (0..n).map(|_| u64::from(rng.gen_bool(0.5))).collect();
    let mut front_loaded = vec![1u64; n];
    front_loaded[n / 2..].fill(0);
    vec![
        ("permutation", permutation),
        ("duplicates", duplicates),
        ("nearly_sorted", nearly_sorted),
        ("zero_one", zero_one),
        ("adversarial_0_1", front_loaded),
    ]
}

#[test]
fn loser_tree_merge_matches_heap_merge() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..40 {
        let k = rng.gen_range(1..18usize);
        let segs: Vec<Vec<u64>> = (0..k)
            .map(|_| {
                let len = rng.gen_range(0..65usize);
                let mut s: Vec<u64> = (0..len).map(|_| rng.gen_range(0..100)).collect();
                s.sort_unstable();
                s
            })
            .collect();
        let refs: Vec<&[u64]> = segs.iter().map(Vec::as_slice).collect();
        let (mut tree_out, mut heap_out) = (Vec::new(), Vec::new());
        merge::kway_merge(&refs, &mut tree_out);
        merge::kway_merge_heap(&refs, &mut heap_out);
        assert_eq!(tree_out, heap_out, "trial {trial}: k = {k}");
        assert!(tree_out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(tree_out.len(), segs.iter().map(Vec::len).sum::<usize>());
    }
}

#[test]
fn equal_segment_merge_agrees_between_tree_and_heap() {
    let mut rng = StdRng::seed_from_u64(8);
    for &(k, part) in &[(1usize, 16usize), (4, 1), (7, 33), (16, 64), (33, 8)] {
        let mut buf: Vec<u64> = (0..k * part).map(|_| rng.gen_range(0..50)).collect();
        for seg in buf.chunks_mut(part) {
            seg.sort_unstable();
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        pdm_sort::common::merge_equal_segments(&buf, part, &mut a);
        merge::merge_equal_segments_heap(&buf, part, &mut b);
        assert_eq!(a, b, "k = {k}, part = {part}");
    }
}

#[test]
fn streaming_merge_chunks_reassemble_the_full_merge() {
    let mut rng = StdRng::seed_from_u64(9);
    let segs: Vec<Vec<u64>> = (0..9)
        .map(|_| {
            let mut s: Vec<u64> = (0..rng.gen_range(1..80usize))
                .map(|_| rng.gen_range(0..1000))
                .collect();
            s.sort_unstable();
            s
        })
        .collect();
    let refs: Vec<&[u64]> = segs.iter().map(Vec::as_slice).collect();
    let mut whole = Vec::new();
    merge::kway_merge(&refs, &mut whole);

    let mut tree = merge::LoserTree::new(refs);
    let mut streamed = Vec::new();
    let mut chunk = Vec::new();
    loop {
        chunk.clear();
        if tree.next_chunk(&mut chunk, 13) == 0 {
            break;
        }
        streamed.extend_from_slice(&chunk);
    }
    assert_eq!(streamed, whole);
    assert!(tree.is_empty());
}

#[test]
fn in_place_merge_matches_sorting_the_concatenation() {
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..30 {
        let la = rng.gen_range(0..120usize);
        let lb = rng.gen_range(0..120usize);
        let mut a: Vec<u64> = (0..la).map(|_| rng.gen_range(0..40)).collect();
        let mut b: Vec<u64> = (0..lb).map(|_| rng.gen_range(0..40)).collect();
        a.sort_unstable();
        b.sort_unstable();
        let mut v = a.clone();
        v.extend_from_slice(&b);
        let mut expect = v.clone();
        expect.sort_unstable();
        merge::merge_in_place(&mut v, la);
        assert_eq!(v, expect, "la = {la}, lb = {lb}");
    }
}

#[test]
fn sort_kernel_matches_reference_in_both_modes() {
    let _guard = PARALLEL_TOGGLE.lock().unwrap();
    // Past the parallel threshold so the rayon path actually runs when the
    // feature is on.
    for (name, data) in input_families(1 << 16, 21) {
        let mut expect = data.clone();
        expect.sort_unstable();
        for par in [false, true] {
            kernels::set_parallel(par);
            let mut got = data.clone();
            kernels::sort_keys(&mut got);
            assert_eq!(got, expect, "{name}, parallel = {par}");
        }
    }
    kernels::set_parallel(false);
}

#[test]
fn classify_kernel_matches_scalar_map_in_both_modes() {
    let _guard = PARALLEL_TOGGLE.lock().unwrap();
    let (_, keys) = &input_families(1 << 16, 22)[0];
    let bucket_of = |k: &u64| (k % 11) as usize;
    let expect: Vec<usize> = keys.iter().map(bucket_of).collect();
    for par in [false, true] {
        kernels::set_parallel(par);
        assert_eq!(kernels::classify(keys, bucket_of), expect, "parallel = {par}");
    }
    kernels::set_parallel(false);
}

/// Run one algorithm on one input, returning output keys and pass counts.
fn run_algo(
    name: &str,
    data: &[u64],
    b: usize,
) -> (Vec<u64>, f64, f64) {
    let n = data.len();
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
    let region = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&region, data).unwrap();
    pdm.reset_stats();
    let rep = match name {
        "three_pass1" => pdm_sort::three_pass1(&mut pdm, &region, n).unwrap(),
        "three_pass2" => pdm_sort::three_pass2(&mut pdm, &region, n).unwrap(),
        "expected_two_pass" => pdm_sort::expected_two_pass(&mut pdm, &region, n).unwrap(),
        "seven_pass" => pdm_sort::seven_pass(&mut pdm, &region, n).unwrap(),
        other => panic!("unknown algorithm {other}"),
    };
    let out = pdm.inspect_prefix(&rep.output, n).unwrap();
    (out, rep.read_passes, rep.write_passes)
}

/// The tentpole invariant: switching the kernels to parallel mode changes
/// neither a single output byte nor a single pass count, for every
/// algorithm on every input family. In the sequential build the second leg
/// re-runs sequentially, which also pins determinism across repeat runs.
#[test]
fn algorithms_are_bit_identical_with_parallel_kernels() {
    let _guard = PARALLEL_TOGGLE.lock().unwrap();
    let b = 16usize;
    let n = b * b * b; // N = M√M, in range for every three-pass sorter
    for (family, data) in input_families(n, 23) {
        for algo in ["three_pass1", "three_pass2", "expected_two_pass", "seven_pass"] {
            kernels::set_parallel(false);
            let (seq_out, seq_rp, seq_wp) = run_algo(algo, &data, b);
            kernels::set_parallel(true);
            let (par_out, par_rp, par_wp) = run_algo(algo, &data, b);
            kernels::set_parallel(false);
            assert_eq!(seq_out, par_out, "{algo} on {family}: output changed");
            assert_eq!(
                (seq_rp, seq_wp),
                (par_rp, par_wp),
                "{algo} on {family}: pass counts changed"
            );
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(seq_out, expect, "{algo} on {family}: not sorted");
        }
    }
}

#[test]
fn configure_threads_one_is_always_accepted() {
    let _guard = PARALLEL_TOGGLE.lock().unwrap();
    // --threads 1 must work in every build; it means "sequential".
    kernels::configure_threads(1).unwrap();
    assert!(!kernels::parallel_enabled());
}
