//! Property-based tests (proptest): sortedness + multiset preservation for
//! every algorithm under arbitrary inputs, plus the analysis lemmas'
//! invariants.

use pdm_model::prelude::*;
use proptest::prelude::*;

fn check_sorts(
    data: &[u64],
    f: impl FnOnce(&mut Pdm<u64>, &Region, usize) -> Region,
    d: usize,
    b: usize,
) {
    let n = data.len();
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(d, b)).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, data).unwrap();
    let out = f(&mut pdm, &input, n);
    let got = pdm.inspect_prefix(&out, n).unwrap();
    let mut want = data.to_vec();
    want.sort_unstable();
    assert_eq!(got, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn three_pass1_sorts_anything(data in prop::collection::vec(any::<u64>(), 1..512)) {
        check_sorts(&data, |p, r, n| pdm_sort::three_pass1(p, r, n).unwrap().output, 2, 8);
    }

    #[test]
    fn three_pass2_sorts_anything(data in prop::collection::vec(any::<u64>(), 1..512)) {
        check_sorts(&data, |p, r, n| pdm_sort::three_pass2(p, r, n).unwrap().output, 2, 8);
    }

    #[test]
    fn expected_two_pass_sorts_anything(data in prop::collection::vec(any::<u64>(), 1..512)) {
        check_sorts(&data, |p, r, n| pdm_sort::expected_two_pass(p, r, n).unwrap().output, 2, 8);
    }

    #[test]
    fn exp_two_pass_mesh_sorts_anything(data in prop::collection::vec(any::<u64>(), 1..512)) {
        check_sorts(&data, |p, r, n| pdm_sort::exp_two_pass_mesh(p, r, n).unwrap().output, 2, 8);
    }

    #[test]
    fn seven_pass_sorts_anything(data in prop::collection::vec(any::<u64>(), 1..2048)) {
        check_sorts(&data, |p, r, n| pdm_sort::seven_pass(p, r, n).unwrap().output, 2, 8);
    }

    #[test]
    fn dispatcher_sorts_anything(data in prop::collection::vec(any::<u64>(), 1..3000)) {
        check_sorts(&data, |p, r, n| pdm_sort::pdm_sort(p, r, n).unwrap().output, 2, 8);
    }

    #[test]
    fn radix_sort_sorts_any_integers(data in prop::collection::vec(any::<u64>(), 1..1500)) {
        check_sorts(&data, |p, r, n| pdm_sort::radix_sort(p, r, n, 64).unwrap().report.output, 2, 8);
    }

    #[test]
    fn integer_sort_sorts_bounded(data in prop::collection::vec(0u64..8, 1..1500)) {
        check_sorts(&data, |p, r, n| pdm_sort::integer_sort(p, r, n, 8).unwrap().output, 2, 8);
    }

    #[test]
    fn mergesort_baseline_sorts_anything(data in prop::collection::vec(any::<u64>(), 1..2000)) {
        check_sorts(&data, |p, r, n| pdm_baseline::merge_sort(p, r, n).unwrap().0, 2, 8);
    }

    #[test]
    fn cc_columnsort_sorts_anything(data in prop::collection::vec(any::<u64>(), 1..2000)) {
        // B = 8 = M^{1/3}, M = 512; capacity = 2048
        let n = data.len();
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(2, 8, 512)).unwrap();
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        let rep = pdm_baseline::cc_columnsort(&mut pdm, &input, n).unwrap();
        let got = pdm.inspect_prefix(&rep.output, n).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    // ---- analysis invariants ----

    #[test]
    fn lmm_sort_equals_std_sort(data in prop::collection::vec(any::<u32>(), 0..2000),
                                l in 2usize..6, m in 2usize..6) {
        let got = pdm_lmm::lmm_sort(&data, l, m, 32);
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn cleanup_fixes_any_window_shuffle(perm_seed in 0u64..1000, d_exp in 2u32..6) {
        use rand::SeedableRng;
        use rand::seq::SliceRandom;
        let d = 1usize << d_exp;
        let n = d * 16;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let mut xs: Vec<u32> = (0..n as u32).collect();
        for w in xs.chunks_mut(d) {
            w.shuffle(&mut rng);
        }
        pdm_lmm::cleanup_displaced(&mut xs, d);
        prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn shuffle_unshuffle_roundtrip(data in prop::collection::vec(any::<u32>(), 1..512),
                                   m in 1usize..8) {
        let n = data.len() - data.len() % m;
        if n == 0 { return Ok(()); }
        let parts = pdm_theory::unshuffle(&data[..n], m);
        let z = pdm_theory::shuffle_parts(&parts);
        prop_assert_eq!(&z[..], &data[..n]);
    }

    #[test]
    fn batcher_network_sorts_random(data in prop::collection::vec(any::<u16>(), 1..64)) {
        let net = pdm_theory::odd_even_merge_sort(data.len());
        let mut v = data.clone();
        net.apply(&mut v);
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn displacement_bound_after_shuffle(seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (n, q) = (1usize << 12, 1usize << 6);
        let d = pdm_theory::shuffling::trial_max_displacement(n, q, &mut rng);
        let bound = pdm_theory::displacement_bound(n, q, 2.0);
        // probability of violation ≤ n^-2 per trial — treat as never
        prop_assert!((d as f64) <= bound, "displacement {} > bound {}", d, bound);
    }

    #[test]
    fn mem_tracker_never_exceeds_limit(ops in prop::collection::vec((1usize..64, any::<bool>()), 0..64)) {
        let t = pdm_model::mem::MemTracker::new(256);
        let mut guards = Vec::new();
        for (sz, release) in ops {
            if release && !guards.is_empty() {
                guards.pop();
            } else if let Ok(g) = t.acquire(sz) {
                guards.push(g);
            }
            prop_assert!(t.current() <= 256);
            prop_assert!(t.peak() <= 256);
        }
    }

    #[test]
    fn region_addressing_is_a_bijection(nb in 1usize..64, d in 1usize..8, start in 0usize..8) {
        let start = start % d;
        let r = pdm_model::Region::new(0, start, nb, d, 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..nb {
            let a = r.addr(i).unwrap();
            prop_assert!(a.disk < d);
            prop_assert!(seen.insert((a.disk, a.slot)), "duplicate physical address");
        }
    }

    #[test]
    fn distribute_preserves_multiset_and_occupancy(data in prop::collection::vec(0u64..8, 1..2000),
                                                   packed in any::<bool>()) {
        use pdm_sort::integer_sort::{distribute, FlushMode, Source};
        let mode = if packed { FlushMode::Packed } else { FlushMode::PerPhase };
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, 8)).unwrap();
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, &data).unwrap();
        let src = Source::Region(&input, data.len());
        let buckets = distribute(&mut pdm, &src, 8, mode, |k| *k as usize).unwrap();
        // per-bucket totals match the histogram
        let mut hist = [0usize; 8];
        for &k in &data { hist[k as usize] += 1; }
        prop_assert_eq!(buckets.total, data.len());
        for (v, run) in buckets.runs.iter().enumerate() {
            prop_assert_eq!(run.total, hist[v], "bucket {}", v);
            // block occupancy sums to the run total, each ≤ B
            let occ: usize = run.block_keys.iter().sum();
            prop_assert_eq!(occ, run.total);
            prop_assert!(run.block_keys.iter().all(|&c| c <= 8 && c > 0));
        }
        // reading the runs back yields exactly the keys of each bucket
        for (v, run) in buckets.runs.iter().enumerate() {
            let mut got = Vec::new();
            let rsrc = Source::Run(run);
            rsrc.for_each_chunk(&mut pdm, 64, |_p, ks| { got.extend_from_slice(ks); Ok(()) }).unwrap();
            prop_assert_eq!(got.len(), hist[v]);
            prop_assert!(got.iter().all(|&k| k == v as u64));
        }
    }

    #[test]
    fn cleaner_is_exactly_a_sorter_for_small_displacement(
        windows in prop::collection::vec(prop::collection::vec(any::<u16>(), 8..9), 1..12)
    ) {
        // Feed w-key windows of a sequence where every key is within w of
        // its sorted position (constructed by sorting then window-local
        // shuffles): the cleaner must emit the global sort.
        use pdm_sort::common::{Cleaner, RegionEmitter};
        let w = 8usize;
        let mut all: Vec<u64> = windows.iter().flatten().map(|&x| x as u64).collect();
        all.sort_unstable();
        // local shuffle within windows (displacement < w)
        let mut local = all.clone();
        for chunk in local.chunks_mut(w) { chunk.reverse(); }
        let n = local.len();

        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, 8)).unwrap();
        let out = pdm.alloc_region_for_keys(n.next_multiple_of(w)).unwrap();
        let mut em = RegionEmitter::new(out);
        let mut cleaner = Cleaner::new(&pdm, w).unwrap();
        for chunk in local.chunks(w) {
            let mut padded = chunk.to_vec();
            padded.resize(w, u64::MAX);
            cleaner.feed_keys(&padded);
            cleaner.process(&mut pdm, &mut |p, ks| em.emit(p, ks)).unwrap();
        }
        let (emitted, clean) = cleaner.finish(&mut pdm, &mut |p, ks| em.emit(p, ks)).unwrap();
        prop_assert!(clean);
        let got = pdm.inspect_prefix(&out, n).unwrap();
        prop_assert_eq!(&got[..], &all[..]);
        prop_assert!(emitted >= n);
    }

    #[test]
    fn region_split_partitions_physical_blocks(nb in 1usize..96, parts in 1usize..8) {
        prop_assume!(nb % parts == 0);
        let r = pdm_model::Region::new(0, 0, nb, 4, 8);
        let subs = r.split(parts).unwrap();
        let mut all: Vec<_> = Vec::new();
        for s in &subs {
            for i in 0..s.len_blocks() {
                all.push(s.addr(i).unwrap());
            }
        }
        let direct: Vec<_> = (0..nb).map(|i| r.addr(i).unwrap()).collect();
        prop_assert_eq!(all, direct);
    }

    #[test]
    fn stream_roundtrip_any_data(data in prop::collection::vec(any::<u64>(), 0..600)) {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(2, 8, 128)).unwrap();
        let r = pdm.alloc_region_for_keys(data.len().max(1)).unwrap();
        let mut w = RunWriter::striped(&pdm, r).unwrap();
        w.push_slice(&mut pdm, &data).unwrap();
        w.finish(&mut pdm).unwrap();
        let mut rd = RunReader::new(&pdm, r, data.len(), 2).unwrap();
        let mut got = Vec::new();
        rd.take_into(&mut pdm, data.len(), &mut got).unwrap();
        prop_assert_eq!(got, data);
    }
}
