//! Fault matrix: every algorithm in the workspace × every injected fault
//! mode. Each cell must resolve to a clean outcome — either `Ok` with a
//! correctly sorted output (the fault landed outside the run's I/O
//! schedule) or a clean `Err` — and in both cases the memory tracker must
//! drain back to zero. A panic anywhere fails the whole matrix.
//!
//! A second sweep wraps the same flaky backends in `RetryingStorage` with
//! a seeded transient-fault rate and demands that every algorithm then
//! completes *correctly*, proving the retry layer heals what the fault
//! layer injects.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// All matrix cells run over a boxed storage stack so one runner type
/// covers MemStorage, MemStorage+Flaky, and MemStorage+Flaky+Retry.
type DynPdm = Pdm<u64, Box<dyn Storage<u64>>>;
type Runner = fn(&mut DynPdm, &Region, usize) -> Result<Region>;

struct Case {
    name: &'static str,
    cfg: PdmConfig,
    n: usize,
    /// Bounded key range for rank-based sorts; `None` = full-width keys.
    key_range: Option<u64>,
    run: Runner,
}

fn cases() -> Vec<Case> {
    let square = PdmConfig::square(2, 8);
    let cube = PdmConfig::new(2, 8, 512); // B = 8 = M^{1/3}, columnsort territory
    let cc_n = pdm_baseline::cc_columnsort::capacity(&cube);
    vec![
        Case {
            name: "three_pass1",
            cfg: square,
            n: 512,
            key_range: None,
            run: |p, r, n| pdm_sort::three_pass1(p, r, n).map(|rep| rep.output),
        },
        Case {
            name: "three_pass2",
            cfg: square,
            n: 512,
            key_range: None,
            run: |p, r, n| pdm_sort::three_pass2(p, r, n).map(|rep| rep.output),
        },
        Case {
            name: "expected_two_pass",
            cfg: square,
            n: 512,
            key_range: None,
            run: |p, r, n| pdm_sort::expected_two_pass(p, r, n).map(|rep| rep.output),
        },
        Case {
            name: "expected_three_pass",
            cfg: square,
            n: 512,
            key_range: None,
            run: |p, r, n| pdm_sort::expected_three_pass(p, r, n, 2.0).map(|rep| rep.output),
        },
        Case {
            name: "seven_pass",
            cfg: square,
            n: 512,
            key_range: None,
            run: |p, r, n| pdm_sort::seven_pass(p, r, n).map(|rep| rep.output),
        },
        Case {
            name: "expected_six_pass",
            cfg: square,
            n: 512,
            key_range: None,
            run: |p, r, n| pdm_sort::expected_six_pass(p, r, n, 2.0).map(|rep| rep.output),
        },
        Case {
            name: "exp_two_pass_mesh",
            cfg: square,
            n: 512,
            key_range: None,
            run: |p, r, n| pdm_sort::exp_two_pass_mesh(p, r, n).map(|rep| rep.output),
        },
        Case {
            name: "radix_sort",
            cfg: square,
            n: 512,
            key_range: None,
            run: |p, r, n| pdm_sort::radix_sort(p, r, n, 64).map(|rep| rep.report.output),
        },
        Case {
            name: "integer_sort",
            cfg: square,
            n: 512,
            key_range: Some(8),
            run: |p, r, n| pdm_sort::integer_sort(p, r, n, 8).map(|rep| rep.output),
        },
        Case {
            name: "merge_sort",
            cfg: cube,
            n: cc_n,
            key_range: None,
            run: |p, r, n| pdm_baseline::merge_sort(p, r, n).map(|(out, _, _)| out),
        },
        Case {
            name: "cc_columnsort",
            cfg: cube,
            n: cc_n,
            key_range: None,
            run: |p, r, n| pdm_baseline::cc_columnsort(p, r, n).map(|rep| rep.output),
        },
        Case {
            name: "cc_columnsort_skip12",
            cfg: cube,
            n: cc_n,
            key_range: None,
            run: |p, r, n| pdm_baseline::cc_columnsort_skip12(p, r, n).map(|rep| rep.output),
        },
        Case {
            name: "subblock_columnsort",
            cfg: cube,
            n: cc_n,
            key_range: None,
            run: |p, r, n| pdm_baseline::subblock_columnsort(p, r, n).map(|rep| rep.output),
        },
        Case {
            name: "srm_merge_sort",
            cfg: cube,
            n: cc_n,
            key_range: None,
            run: |p, r, n| {
                pdm_baseline::srm_merge_sort(p, r, n, pdm_baseline::Striping::Randomized, 7)
                    .map(|rep| rep.output)
            },
        },
    ]
}

fn workload(case: &Case) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(0xFA17);
    match case.key_range {
        Some(range) => (0..case.n).map(|i| (i as u64 * 7 + 3) % range).collect(),
        None => {
            let mut v: Vec<u64> = (0..case.n as u64).collect();
            v.shuffle(&mut rng);
            v
        }
    }
}

/// Drive one matrix cell. Returns whether the run succeeded, so sweeps can
/// assert coverage (e.g. the no-fault leg must always succeed).
fn drive(case: &Case, storage: Box<dyn Storage<u64>>, label: &str) -> bool {
    let data = workload(case);
    let mut pdm: DynPdm = Pdm::with_storage(case.cfg, storage)
        .unwrap_or_else(|e| panic!("{}/{label}: config rejected: {e}", case.name));
    let input = match pdm.alloc_region_for_keys(case.n) {
        Ok(r) => r,
        Err(_) => {
            assert_eq!(pdm.mem().current(), 0, "{}/{label}: alloc leak", case.name);
            return false;
        }
    };
    if pdm.ingest(&input, &data).is_err() {
        // Fault landed inside ingest — clean error, nothing leaked.
        assert_eq!(pdm.mem().current(), 0, "{}/{label}: ingest leak", case.name);
        return false;
    }
    match (case.run)(&mut pdm, &input, case.n) {
        Ok(out) => {
            match pdm.inspect_prefix(&out, case.n) {
                Ok(got) => {
                    let mut want = data;
                    want.sort_unstable();
                    assert_eq!(got, want, "{}/{label}: silently corrupted output", case.name);
                    assert_eq!(pdm.mem().current(), 0, "{}/{label}: success leak", case.name);
                    true
                }
                Err(_) => {
                    // The sort's own I/O dodged the fault but the
                    // verification read tripped it — still a clean error.
                    assert_eq!(pdm.mem().current(), 0, "{}/{label}: inspect leak", case.name);
                    false
                }
            }
        }
        Err(_) => {
            assert_eq!(
                pdm.mem().current(),
                0,
                "{}/{label}: error path leaked tracked memory",
                case.name
            );
            false
        }
    }
}

fn flaky(cfg: &PdmConfig, mode: FailMode) -> Box<dyn Storage<u64>> {
    StorageBuilder::new(BackendKind::Mem, cfg.num_disks, cfg.block_size)
        .inject(mode)
        .build::<u64>()
        .expect("mem + flaky stack")
        .storage
}

#[test]
fn no_fault_leg_succeeds_for_every_algorithm() {
    for case in cases() {
        assert!(
            drive(&case, flaky(&case.cfg, FailMode::Never), "never"),
            "{}: clean run failed — matrix geometry is wrong",
            case.name
        );
    }
}

#[test]
fn read_faults_resolve_cleanly_across_the_matrix() {
    for case in cases() {
        for k in [0u64, 7, 63, 200, 1000] {
            drive(&case, flaky(&case.cfg, FailMode::NthRead(k)), &format!("nth-read:{k}"));
        }
    }
}

#[test]
fn write_faults_resolve_cleanly_across_the_matrix() {
    for case in cases() {
        for k in [0u64, 7, 63, 200, 1000] {
            drive(&case, flaky(&case.cfg, FailMode::NthWrite(k)), &format!("nth-write:{k}"));
        }
    }
}

#[test]
fn dead_disk_resolves_cleanly_across_the_matrix() {
    for case in cases() {
        for d in 0..case.cfg.num_disks {
            drive(&case, flaky(&case.cfg, FailMode::Disk(d)), &format!("disk:{d}"));
        }
    }
}

#[test]
fn disk_death_mid_run_resolves_cleanly_across_the_matrix() {
    for case in cases() {
        for after in [0u64, 32, 128, 512] {
            drive(
                &case,
                flaky(&case.cfg, FailMode::DiskAfter(1, after)),
                &format!("disk-after:1:{after}"),
            );
        }
    }
}

/// Drive `three_pass2` with overlap enabled over a prebuilt storage
/// stack; returns the sorted output and the final counters.
fn overlap_run(storage: Box<dyn Storage<u64>>, data: &[u64], d: usize, b: usize) -> (Vec<u64>, IoStats) {
    let n = data.len();
    let mut pdm: DynPdm = Pdm::with_storage(PdmConfig::square(d, b), storage).unwrap();
    pdm.set_overlap(true);
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, data).unwrap();
    pdm.reset_stats();
    let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    let out = pdm.inspect_prefix(&rep.output, n).unwrap();
    let (_, stats) = pdm.into_parts();
    (out, stats)
}

#[test]
fn overlap_stays_on_through_the_retry_stack_and_heals_faults() {
    // The point of completion-time retry: `--overlap on --retry N` must
    // keep genuinely overlapped batches AND heal transient faults, with
    // output and pass counters identical to a clean in-memory run.
    let d = 4usize;
    let b = 16usize;
    let n = b * b * b;
    let mut rng = StdRng::seed_from_u64(0x0E11A);
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rng);
    let policy = RetryPolicy { max_attempts: 8, backoff_steps: 1 };

    let clean = StorageBuilder::new(BackendKind::Mem, d, b)
        .build::<u64>()
        .unwrap();
    let (want, ref_stats) = overlap_run(clean.storage, &data, d, b);
    assert!(
        ref_stats.overlap.prefetch_batches + ref_stats.overlap.flush_batches > 0,
        "reference leg never issued an overlapped batch"
    );

    // Leg 1: threaded backend, logical transient faults healed at issue
    // time by the forwarding retry wrapper.
    let built = StorageBuilder::new(BackendKind::Threaded, d, b)
        .inject(FailMode::TransientRate { seed: 0xBEEF, rate_ppm: 20_000 })
        .retry(policy)
        .build::<u64>()
        .unwrap();
    assert!(
        built.caps.overlap,
        "flaky+retry wrappers must pass the threaded backend's overlap capability through"
    );
    let counters = built.retry_counters.clone().unwrap();
    let (out, stats) = overlap_run(built.storage, &data, d, b);
    let snap = counters.snapshot();
    assert_eq!(out, want, "threaded overlap+retry leg corrupted output");
    assert_eq!(stats.read_steps, ref_stats.read_steps, "threaded leg pass count drifted");
    assert_eq!(stats.write_steps, ref_stats.write_steps, "threaded leg pass count drifted");
    assert_eq!(stats.blocks_read, ref_stats.blocks_read);
    assert_eq!(stats.blocks_written, ref_stats.blocks_written);
    assert_eq!(stats.per_disk_reads, ref_stats.per_disk_reads);
    assert_eq!(stats.per_disk_writes, ref_stats.per_disk_writes);
    assert_eq!(snap.exhausted, 0, "threaded leg exhausted a retry budget");
    assert!(snap.total_retries() > 0, "2% transient rate never fired on the threaded leg");

    // Leg 2: async real-disk backend, real file-level faults (short
    // transfers) healed at *completion time* inside the disk workers.
    let built = StorageBuilder::new(BackendKind::AsyncFile, d, b)
        .inject_file(FileFaultMode::ShortRate { seed: 0xF00D, rate_ppm: 20_000 })
        .retry(policy)
        .build::<u64>()
        .unwrap();
    assert!(
        built.caps.overlap,
        "completion-time retry must keep the async backend's overlap capability on"
    );
    let counters = built.retry_counters.clone().unwrap();
    let (out, stats) = overlap_run(built.storage, &data, d, b);
    let snap = counters.snapshot();
    assert_eq!(out, want, "async-file overlap+retry leg corrupted output");
    assert_eq!(stats.read_steps, ref_stats.read_steps, "async-file leg pass count drifted");
    assert_eq!(stats.write_steps, ref_stats.write_steps, "async-file leg pass count drifted");
    assert_eq!(stats.blocks_read, ref_stats.blocks_read);
    assert_eq!(stats.blocks_written, ref_stats.blocks_written);
    assert_eq!(stats.per_disk_reads, ref_stats.per_disk_reads);
    assert_eq!(stats.per_disk_writes, ref_stats.per_disk_writes);
    assert_eq!(snap.exhausted, 0, "async-file leg exhausted a retry budget");
    assert!(
        snap.completion_retries() > 0,
        "2% file fault rate never triggered a completion-time retry"
    );
    #[cfg(feature = "block-checksums")]
    {
        assert!(built.caps.checksums, "async backend must checksum under the feature");
        let verified: u64 = stats.wall.disks.iter().map(|dw| dw.checksums_verified).sum();
        assert!(verified > 0, "checksummed reads were never verified on completion");
    }
}

#[test]
fn transient_faults_heal_under_retry_for_every_algorithm() {
    // 2 % per-op transient rate; 6 attempts give odds of full-run survival
    // indistinguishable from certainty at these op counts.
    let policy = RetryPolicy { max_attempts: 6, backoff_steps: 1 };
    let mut total_retries = 0u64;
    for case in cases() {
        let built = StorageBuilder::new(BackendKind::Mem, case.cfg.num_disks, case.cfg.block_size)
            .inject(FailMode::TransientRate { seed: 0xC0FFEE, rate_ppm: 20_000 })
            .retry(policy)
            .build::<u64>()
            .expect("mem + flaky + retry stack");
        let counters = built.retry_counters.clone().expect("retry layer present");
        let ok = drive(&case, built.storage, "transient+retry");
        assert!(
            ok,
            "{}: retry layer failed to heal a 2% transient fault rate",
            case.name
        );
        let snap = counters.snapshot();
        assert_eq!(snap.exhausted, 0, "{}: retry budget exhausted", case.name);
        total_retries += snap.total_retries();
    }
    assert!(
        total_retries > 0,
        "transient sweep never actually injected a fault — rate wiring is broken"
    );
}
