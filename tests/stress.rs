//! Large-scale stress tests — `#[ignore]`d by default; run with
//! `cargo test --release -p pdm-integration --test stress -- --ignored`.
//!
//! These push the algorithms to `b = 64` (`M = 4096`, `N` up to `M² ≈ 16.7M`
//! keys ≈ 134 MB of u64), where constant-factor issues that toy sizes hide
//! (striping phase errors, window off-by-ones at scale, memory blowups)
//! would surface.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn big_permutation(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n as u64).collect();
    v.shuffle(&mut rng);
    v
}

fn spot_check_sorted<S: Storage<u64>>(pdm: &mut Pdm<u64, S>, out: &Region, n: usize) {
    // full inspection of 16M keys is fine in release; also verify the
    // multiset by the sum-of-ranks identity (input was a permutation)
    let got = pdm.inspect_prefix(out, n).unwrap();
    assert!(got.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
    assert_eq!(got.first(), Some(&0));
    assert_eq!(got.last(), Some(&((n - 1) as u64)));
    let sum: u128 = got.iter().map(|&k| k as u128).sum();
    assert_eq!(sum, (n as u128) * (n as u128 - 1) / 2, "multiset damaged");
}

#[test]
#[ignore = "large: ~135MB working set"]
fn seven_pass_at_m_squared_b64() {
    let b = 64usize;
    let m = b * b;
    let n = m * m; // 16_777_216
    let data = big_permutation(n, 1);
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(8, b)).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    drop(data);
    pdm.reset_stats();
    let rep = pdm_sort::seven_pass(&mut pdm, &input, n).unwrap();
    assert!((rep.read_passes - 7.0).abs() < 1e-9, "read {}", rep.read_passes);
    assert!((rep.write_passes - 7.0).abs() < 1e-9);
    assert!(rep.peak_mem <= pdm.cfg().mem_limit());
    spot_check_sorted(&mut pdm, &rep.output, n);
}

#[test]
#[ignore = "large: ~20MB working set"]
fn three_passes_at_m_sqrt_m_b64() {
    let b = 64usize;
    let n = b * b * b; // 262144
    let data = big_permutation(n, 2);
    for which in ["tp1", "tp2"] {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(8, b)).unwrap();
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        pdm.reset_stats();
        let rep = match which {
            "tp1" => pdm_sort::three_pass1(&mut pdm, &input, n).unwrap(),
            _ => pdm_sort::three_pass2(&mut pdm, &input, n).unwrap(),
        };
        assert!((rep.read_passes - 3.0).abs() < 1e-9, "{which}: {}", rep.read_passes);
        assert!(pdm.stats().read_parallel_efficiency(8) > 0.999, "{which}");
        spot_check_sorted(&mut pdm, &rep.output, n);
    }
}

#[test]
#[ignore = "large: Monte-Carlo at b = 64"]
fn expected_two_pass_success_rate_at_scale() {
    let b = 64usize;
    let m = b * b;
    let cap = pdm_sort::expected_two_pass::capacity(m, 2.0);
    let n = (cap / m) * m;
    let mut fallbacks = 0;
    for seed in 0..10u64 {
        let data = big_permutation(n, 100 + seed);
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(8, b)).unwrap();
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        pdm.reset_stats();
        let rep = pdm_sort::expected_two_pass(&mut pdm, &input, n).unwrap();
        fallbacks += usize::from(rep.fell_back);
        spot_check_sorted(&mut pdm, &rep.output, n);
        if !rep.fell_back {
            assert!((rep.read_passes - 2.0).abs() < 1e-9);
        }
    }
    assert_eq!(fallbacks, 0, "α=2 capacity should essentially never fail");
}

#[test]
#[ignore = "large: radix at 4M keys"]
fn radix_sort_4m_keys() {
    let b = 64usize;
    let n = 4_000_000usize;
    let mut rng = StdRng::seed_from_u64(3);
    use rand::Rng;
    let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() >> 1).collect();
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(8, b)).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    pdm.reset_stats();
    let rep = pdm_sort::radix_sort(&mut pdm, &input, n, 63).unwrap();
    let got = pdm.inspect_prefix(&rep.report.output, n).unwrap();
    let mut want = data;
    want.sort_unstable();
    assert_eq!(got, want);
    assert!(rep.report.peak_mem <= pdm.cfg().mem_limit());
}

#[test]
#[ignore = "large: file-backed out-of-core run"]
fn file_backed_sort_really_stays_out_of_core() {
    // M = 4096 keys = 32 KiB of tracked memory sorting 2M keys = 16 MB on
    // real disk files: peak tracked memory must stay ≤ the limit while the
    // disk files carry the full data volume.
    let b = 64usize;
    let n = 2_000_000usize;
    let data = big_permutation(n, 4);
    let storage = FileStorage::<u64>::create_temp(4, b).unwrap();
    let mut pdm = Pdm::with_storage(PdmConfig::square(4, b), storage).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    drop(data);
    pdm.reset_stats();
    let rep = pdm_sort::pdm_sort(&mut pdm, &input, n).unwrap();
    assert!(
        rep.peak_mem <= pdm.cfg().mem_limit(),
        "peak {} exceeds limit {}",
        rep.peak_mem,
        pdm.cfg().mem_limit()
    );
    spot_check_sorted(&mut pdm, &rep.output, n);
}
