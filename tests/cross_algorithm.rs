//! Cross-algorithm consistency: different algorithms, one truth.
//!
//! All of the paper's sorters and all baselines must produce the *same*
//! output on the same input; pass counts must respect the paper's
//! ordering; capacity formulas must nest the way §8 describes.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn run_all_at_m_sqrt_m(data: &[u64], b: usize) -> Vec<(&'static str, Vec<u64>, f64)> {
    let n = data.len();
    let mut results = Vec::new();
    macro_rules! go {
        ($name:literal, $f:expr) => {{
            let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
            let input = pdm.alloc_region_for_keys(n).unwrap();
            pdm.ingest(&input, data).unwrap();
            pdm.reset_stats();
            #[allow(clippy::redundant_closure_call)]
            let (out, passes) = $f(&mut pdm, &input, n);
            let got = pdm.inspect_prefix(&out, n).unwrap();
            results.push(($name, got, passes));
        }};
    }
    go!("three_pass1", |p: &mut Pdm<u64>, r: &Region, n| {
        let rep = pdm_sort::three_pass1(p, r, n).unwrap();
        (rep.output, rep.read_passes)
    });
    go!("three_pass2", |p: &mut Pdm<u64>, r: &Region, n| {
        let rep = pdm_sort::three_pass2(p, r, n).unwrap();
        (rep.output, rep.read_passes)
    });
    go!("expected_two_pass", |p: &mut Pdm<u64>, r: &Region, n| {
        let rep = pdm_sort::expected_two_pass(p, r, n).unwrap();
        (rep.output, rep.read_passes)
    });
    go!("exp_two_pass_mesh", |p: &mut Pdm<u64>, r: &Region, n| {
        let rep = pdm_sort::exp_two_pass_mesh(p, r, n).unwrap();
        (rep.output, rep.read_passes)
    });
    go!("seven_pass", |p: &mut Pdm<u64>, r: &Region, n| {
        let rep = pdm_sort::seven_pass(p, r, n).unwrap();
        (rep.output, rep.read_passes)
    });
    go!("mergesort", |p: &mut Pdm<u64>, r: &Region, n| {
        let (out, rp, _) = pdm_baseline::merge_sort(p, r, n).unwrap();
        (out, rp)
    });
    results
}

#[test]
fn every_algorithm_agrees_on_the_same_input() {
    let b = 16usize;
    let n = b * b * b;
    let mut rng = StdRng::seed_from_u64(11);
    let mut data: Vec<u64> = (0..n as u64).map(|i| i % 977).collect();
    data.shuffle(&mut rng);
    let results = run_all_at_m_sqrt_m(&data, b);
    let reference = &results[0].1;
    for (name, got, _) in &results {
        assert_eq!(got, reference, "{name} disagrees");
    }
}

#[test]
fn pass_counts_respect_the_paper_ordering() {
    // On a random permutation at N = M√M: expected-2 < deterministic-3,
    // and SevenPass (made for M², wasteful here) costs the most.
    let b = 16usize;
    let n = b * b * b;
    let mut rng = StdRng::seed_from_u64(12);
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rng);
    let results = run_all_at_m_sqrt_m(&data, b);
    let get = |name: &str| {
        results
            .iter()
            .find(|(n2, _, _)| *n2 == name)
            .map(|(_, _, p)| *p)
            .unwrap()
    };
    let e2p = get("expected_two_pass");
    let tp1 = get("three_pass1");
    let tp2 = get("three_pass2");
    let sp = get("seven_pass");
    // this permutation should not trip the fallback at N = M√M… unless it
    // does, in which case e2p = 5; accept but require the common case
    if e2p < 4.0 {
        assert!(e2p < tp1, "expected two pass {e2p} !< three pass {tp1}");
    }
    assert_eq!(tp1, tp2, "both three-pass algorithms cost the same");
    assert!(sp > tp2, "seven pass {sp} should exceed three pass {tp2}");
}

#[test]
fn capacity_formulas_nest_correctly() {
    // §8's story: cap(E2P) < M√M = cap(3P) < cap(E3P struct) ≤ cap(E6P) < M²
    for b in [32usize, 64] {
        let m = b * b;
        let c2 = pdm_sort::expected_two_pass::capacity(m, 2.0);
        let c3 = pdm_sort::three_pass2::capacity(m);
        let c3e = pdm_sort::expected_three_pass::structural_capacity(m, 2.0);
        let c6 = pdm_sort::seven_pass::capacity_six(m, 2.0);
        let c7 = pdm_sort::seven_pass::capacity(m);
        assert!(c2 < c3, "b={b}");
        assert!(c3 <= c3e, "b={b}");
        assert!(c3e <= c6, "b={b}: {c3e} > {c6}");
        assert!(c6 < c7, "b={b}");
        // and the baselines: cc < 3P2 at the same memory
        let bcc = 1usize << (m.trailing_zeros() / 3);
        let ccc = pdm_baseline::cc_columnsort::capacity(&PdmConfig::new(4, bcc, m));
        assert!(ccc < c3, "b={b}: cc {ccc} !< 3P2 {c3}");
        // subblock beats cc (that is its reason to exist)
        let csb = pdm_baseline::subblock::capacity(&PdmConfig::new(4, bcc, m));
        assert!(csb >= ccc, "b={b}: subblock {csb} < cc {ccc}");
    }
}

#[test]
fn expected_algorithms_never_lose_correctness_to_fallback() {
    // adversarial inputs: fallback path must still agree with reference
    let b = 16usize;
    let n = b * b * b;
    let data: Vec<u64> = (0..n as u64).rev().collect();
    let mut want = data.clone();
    want.sort_unstable();
    for algo in ["expected_two_pass", "exp_two_pass_mesh"] {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, b)).unwrap();
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        let rep = match algo {
            "expected_two_pass" => pdm_sort::expected_two_pass(&mut pdm, &input, n).unwrap(),
            _ => pdm_sort::exp_two_pass_mesh(&mut pdm, &input, n).unwrap(),
        };
        assert!(rep.fell_back, "{algo} must fall back on reverse input");
        assert_eq!(pdm.inspect_prefix(&rep.output, n).unwrap(), want);
    }
}

#[test]
fn lower_bound_is_respected_by_every_measured_run() {
    let b = 16usize;
    let m = b * b;
    let n = b * b * b;
    let mut rng = StdRng::seed_from_u64(13);
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rng);
    let lb = pdm_theory::min_passes(n, m, b);
    for (name, _, passes) in run_all_at_m_sqrt_m(&data, b) {
        assert!(
            passes + 1e-9 >= lb,
            "{name} measured {passes} beats the lower bound {lb}"
        );
    }
}

#[test]
fn in_memory_lmm_reference_agrees_with_pdm_three_pass2() {
    // the out-of-core ThreePass2 is the PDM specialization of lmm_sort
    let b = 16usize;
    let n = b * b * b;
    let mut rng = StdRng::seed_from_u64(14);
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rng);

    let in_memory = pdm_lmm::lmm_sort(&data, b, b, b * b);

    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    assert_eq!(pdm.inspect_prefix(&rep.output, n).unwrap(), in_memory);
}
