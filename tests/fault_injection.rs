//! Fault injection: every algorithm must turn a storage failure into a
//! clean `Err` — no panic, no corrupted-but-Ok output, and no leaked
//! tracked memory (all `MemGuard`s released on the error path).

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

type FlakyPdm = Pdm<u64, FlakyStorage<MemStorage<u64>>>;

fn machine(mode: FailMode, d: usize, b: usize) -> FlakyPdm {
    let inner = MemStorage::new(d, b);
    Pdm::with_storage(PdmConfig::square(d, b), FlakyStorage::new(inner, mode)).unwrap()
}

fn workload(n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(77);
    let mut v: Vec<u64> = (0..n as u64).collect();
    v.shuffle(&mut rng);
    v
}

/// Run `algo` against a machine that fails the `k`-th read; the result must
/// be either a clean success (fault landed outside the algorithm's reads —
/// possible for later k) or a clean error. Either way the memory tracker
/// must drain back to zero.
fn check_fault_at<F>(k: u64, algo: F)
where
    F: FnOnce(&mut FlakyPdm, &Region, usize) -> Result<Region>,
{
    let b = 8usize;
    let n = 512usize;
    let data = workload(n);
    let mut pdm = machine(FailMode::NthRead(k), 2, b);
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    let result = algo(&mut pdm, &input, n);
    match result {
        Ok(out) => {
            // fault didn't hit this run's reads — output must still be right
            let got = pdm.inspect_prefix(&out, n).unwrap();
            let mut want = data.clone();
            want.sort_unstable();
            assert_eq!(got, want, "fault at read {k} silently corrupted output");
        }
        Err(e) => {
            assert!(
                matches!(e, PdmError::Io(_)),
                "fault at read {k} surfaced as unexpected error: {e}"
            );
        }
    }
    assert_eq!(
        pdm.mem().current(),
        0,
        "fault at read {k} leaked tracked memory"
    );
}

#[test]
fn three_pass2_fails_cleanly_at_any_read() {
    // sweep fault positions across all three passes (192 block reads total)
    for k in [0u64, 1, 30, 64, 100, 128, 170, 191, 10_000] {
        check_fault_at(k, |pdm, r, n| {
            pdm_sort::three_pass2(pdm, r, n).map(|rep| rep.output)
        });
    }
}

#[test]
fn three_pass1_fails_cleanly_at_any_read() {
    for k in [0u64, 40, 90, 150, 191] {
        check_fault_at(k, |pdm, r, n| {
            pdm_sort::three_pass1(pdm, r, n).map(|rep| rep.output)
        });
    }
}

#[test]
fn expected_two_pass_fails_cleanly_at_any_read() {
    for k in [0u64, 50, 100, 127] {
        check_fault_at(k, |pdm, r, n| {
            pdm_sort::expected_two_pass(pdm, r, n).map(|rep| rep.output)
        });
    }
}

#[test]
fn seven_pass_fails_cleanly_at_any_read() {
    for k in [0u64, 100, 300, 447] {
        check_fault_at(k, |pdm, r, n| {
            pdm_sort::seven_pass(pdm, r, n).map(|rep| rep.output)
        });
    }
}

#[test]
fn radix_and_integer_sorts_fail_cleanly() {
    for k in [0u64, 64, 130] {
        check_fault_at(k, |pdm, r, n| {
            pdm_sort::radix_sort(pdm, r, n, 64).map(|rep| rep.report.output)
        });
    }
    let b = 8usize;
    let n = 512usize;
    let data: Vec<u64> = (0..n).map(|i| (i % 8) as u64).collect();
    let mut pdm = machine(FailMode::NthRead(20), 2, b);
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    let res = pdm_sort::integer_sort(&mut pdm, &input, n, 8);
    assert!(res.is_err() || pdm.mem().current() == 0);
    assert_eq!(pdm.mem().current(), 0);
}

#[test]
fn write_faults_fail_cleanly_too() {
    let b = 8usize;
    let n = 512usize;
    let data = workload(n);
    for k in [0u64, 32, 100, 180] {
        let inner = MemStorage::new(2, b);
        let mut pdm: FlakyPdm =
            Pdm::with_storage(PdmConfig::square(2, b), FlakyStorage::new(inner, FailMode::NthWrite(k)))
                .unwrap();
        let input = pdm.alloc_region_for_keys(n).unwrap();
        // the ingest itself writes; skip configs where it eats the fault
        if pdm.ingest(&input, &data).is_err() {
            continue;
        }
        let res = pdm_sort::three_pass2(&mut pdm, &input, n);
        assert!(res.is_err(), "write fault at {k} was swallowed");
        assert_eq!(pdm.mem().current(), 0, "write fault at {k} leaked memory");
    }
}

#[test]
fn dead_disk_fails_every_algorithm_cleanly() {
    let b = 8usize;
    let n = 512usize;
    let data = workload(n);
    let mut pdm = machine(FailMode::Disk(1), 2, b);
    let input = pdm.alloc_region_for_keys(n).unwrap();
    // ingest hits disk 1 immediately
    assert!(pdm.ingest(&input, &data).is_err());
    assert_eq!(pdm.mem().current(), 0);
}

#[test]
fn retried_batches_charge_the_originating_disk_in_probe_stream() {
    // Sort through a flaky + retrying stack with the probe on, then check
    // that the `retry.disk{d}.retries` gauges account for every retry:
    // re-issued batch blocks must be charged to the disk that failed, not
    // dropped on the floor (sync retries carry no disk by design, but
    // FlakyStorage never injects into sync, so the sums match exactly).
    let b = 8usize;
    let n = 512usize;
    let built = StorageBuilder::new(BackendKind::Mem, 2, b)
        .inject(FailMode::TransientRate {
            seed: 0xD15C,
            rate_ppm: 20_000,
        })
        .retry(RetryPolicy {
            max_attempts: 6,
            backoff_steps: 1,
        })
        .build::<u64>()
        .unwrap();
    let counters = built.retry_counters.clone().unwrap();
    let mut pdm = Pdm::with_storage(PdmConfig::square(2, b), built.storage).unwrap();
    pdm.attach_retry_counters(counters.clone());
    pdm.enable_probe(1 << 14);
    let data = workload(n);
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    // Snapshot before the verification reads below: those go through the
    // same retrying stack and would advance the counters past the
    // machine's last phase-boundary fold (and thus past the last gauges).
    let snap = counters.snapshot();
    let mut want = data.clone();
    want.sort_unstable();
    assert_eq!(pdm.inspect_prefix(&rep.output, n).unwrap(), want);
    assert!(snap.total_retries() > 0, "2% fault rate never fired");
    assert_eq!(
        snap.per_disk_retries.iter().sum::<u64>(),
        snap.total_retries(),
        "every retried block op must be attributed to a disk"
    );

    // The probe stream carries the same attribution: the last
    // `retry.disk{d}.retries` gauge per disk equals the final counter.
    let mut last_gauge = [None::<i64>; 2];
    for ev in pdm.stats().probe().unwrap().events() {
        if let ProbeEvent::Gauge { name, value, .. } = ev {
            for (d, slot) in last_gauge.iter_mut().enumerate() {
                if name == &format!("retry.disk{d}.retries") {
                    *slot = Some(*value);
                }
            }
        }
    }
    for (d, &n_retries) in snap.per_disk_retries.iter().enumerate() {
        if n_retries > 0 {
            assert_eq!(
                last_gauge[d],
                Some(n_retries as i64),
                "probe gauge for disk {d} must match the final per-disk count"
            );
        }
    }
}

#[test]
fn grouped_completion_errors_drain_every_pooled_buffer() {
    // A permanent EIO surfacing at completion time aborts a grouped read
    // batch on the async backend (no retry layer armed). Every block
    // buffer the workers checked out of the pool while serving the batch
    // — decoded before the failure or staged after it — must flow back:
    // an error return hands the caller nothing, so the pool must balance.
    use std::sync::Arc;
    let d = 2usize;
    let b = 8usize;
    let mut s = AsyncFileStorage::<u64>::create_temp(d, b).unwrap();
    for disk in 0..d {
        s.ensure_capacity(disk, 4).unwrap();
    }
    let reqs: Vec<(usize, usize)> = (0..8).map(|i| (i % d, i / d)).collect();
    let data: Vec<u64> = (0..(reqs.len() * b) as u64).collect();
    s.write_batch(&reqs, &data).unwrap();
    // Arm the fault after the writes: op indices restart at zero, so the
    // EIO lands on the 4th block op of the read batch below.
    s.set_file_faults(Arc::new(FileFaults::new(FileFaultMode::Eio(3))));
    let mut out = vec![0u64; data.len()];
    let err = s.read_batch(&reqs, &mut out).unwrap_err();
    assert!(
        !err.is_transient(),
        "an injected EIO must classify as permanent, got: {err}"
    );
    let st = s.pool_stats().expect("async backend reports pool stats");
    assert!(st.hits + st.misses > 0, "the batch never touched the pool");
    assert_eq!(
        st.returns,
        st.hits + st.misses,
        "grouped-completion error path leaked pooled buffers: {st:?}"
    );
}

#[test]
fn baseline_mergesort_fails_cleanly() {
    for k in [0u64, 64, 128] {
        check_fault_at(k, |pdm, r, n| {
            pdm_baseline::merge_sort(pdm, r, n).map(|(out, _, _)| out)
        });
    }
}
