//! Backend equivalence: the cost model is backend-independent.
//!
//! The same algorithm on the same input must produce identical output AND
//! identical I/O statistics on the in-memory, file-backed, thread-per-disk,
//! and async real-disk backends — the backends only change where bytes
//! live, never what the machine charges for moving them.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn workload(n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(21);
    let mut v: Vec<u64> = (0..n as u64).collect();
    v.shuffle(&mut rng);
    v
}

fn run_on<S: Storage<u64>>(storage: S, data: &[u64], b: usize) -> (Vec<u64>, IoStats, usize) {
    let n = data.len();
    let mut pdm = Pdm::with_storage(PdmConfig::square(4, b), storage).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, data).unwrap();
    pdm.reset_stats();
    let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    let out = pdm.inspect_prefix(&rep.output, n).unwrap();
    let peak = pdm.mem().peak();
    let (_, stats) = pdm.into_parts();
    (out, stats, peak)
}

#[test]
fn all_backends_agree_bit_for_bit_and_step_for_step() {
    let b = 16usize;
    let n = b * b * b;
    let data = workload(n);

    let (out_mem, stats_mem, peak_mem) = run_on(MemStorage::new(4, b), &data, b);
    let (out_file, stats_file, peak_file) =
        run_on(FileStorage::<u64>::create_temp(4, b).unwrap(), &data, b);
    let (out_thr, stats_thr, peak_thr) = run_on(ThreadedStorage::<u64>::new(4, b), &data, b);

    assert_eq!(out_mem, out_file, "file backend output differs");
    assert_eq!(out_mem, out_thr, "threaded backend output differs");

    // identical cost-model accounting
    assert_eq!(stats_mem.blocks_read, stats_file.blocks_read);
    assert_eq!(stats_mem.read_steps, stats_file.read_steps);
    assert_eq!(stats_mem.write_steps, stats_file.write_steps);
    assert_eq!(stats_mem.per_disk_reads, stats_file.per_disk_reads);
    assert_eq!(stats_mem.blocks_read, stats_thr.blocks_read);
    assert_eq!(stats_mem.read_steps, stats_thr.read_steps);
    assert_eq!(stats_mem.per_disk_writes, stats_thr.per_disk_writes);

    // identical memory profile
    assert_eq!(peak_mem, peak_file);
    assert_eq!(peak_mem, peak_thr);
}

#[test]
fn async_file_backend_matches_mem_on_both_overlap_legs() {
    // The real-disk async backend is still a cost-model citizen: same
    // output bytes, same step accounting, same memory profile as the
    // in-memory reference — with overlap off AND on (overlap may only
    // move wall-clock, never counters).
    let b = 16usize;
    let n = b * b * b;
    let data = workload(n);
    let (out_mem, stats_mem, peak_mem) = run_on(MemStorage::new(4, b), &data, b);

    for overlap in [false, true] {
        let storage = AsyncFileStorage::<u64>::create_temp(4, b).unwrap();
        let mut pdm = Pdm::with_storage(PdmConfig::square(4, b), storage).unwrap();
        pdm.set_overlap(overlap);
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        pdm.reset_stats();
        let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
        let out = pdm.inspect_prefix(&rep.output, n).unwrap();
        let peak = pdm.mem().peak();
        let (_, stats) = pdm.into_parts();

        assert_eq!(out, out_mem, "async-file output differs (overlap={overlap})");
        assert_eq!(stats.blocks_read, stats_mem.blocks_read, "overlap={overlap}");
        assert_eq!(stats.blocks_written, stats_mem.blocks_written, "overlap={overlap}");
        assert_eq!(stats.read_steps, stats_mem.read_steps, "overlap={overlap}");
        assert_eq!(stats.write_steps, stats_mem.write_steps, "overlap={overlap}");
        assert_eq!(stats.per_disk_reads, stats_mem.per_disk_reads, "overlap={overlap}");
        assert_eq!(stats.per_disk_writes, stats_mem.per_disk_writes, "overlap={overlap}");
        assert_eq!(peak, peak_mem, "overlap={overlap}");
        if overlap {
            assert!(
                stats.overlap.prefetch_batches + stats.overlap.flush_batches > 0,
                "overlap leg never actually issued an overlapped batch"
            );
        }
    }
}

fn run_probed<S: Storage<u64>>(storage: S, data: &[u64], b: usize) -> (IoStats, Box<Probe>) {
    let n = data.len();
    let mut pdm = Pdm::with_storage(PdmConfig::square(4, b), storage).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, data).unwrap();
    pdm.reset_stats();
    pdm.enable_probe(1 << 20);
    pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    let (_, mut stats) = pdm.into_parts();
    let probe = stats.take_probe().expect("probe was enabled");
    (stats, probe)
}

#[test]
fn probe_event_streams_are_identical_across_backends_and_replay_exactly() {
    let b = 16usize;
    let n = b * b * b;
    let data = workload(n);

    let (stats_mem, probe_mem) = run_probed(MemStorage::new(4, b), &data, b);
    let (stats_file, probe_file) =
        run_probed(FileStorage::<u64>::create_temp(4, b).unwrap(), &data, b);
    let (stats_thr, probe_thr) = run_probed(ThreadedStorage::<u64>::new(4, b), &data, b);

    // The structured event stream carries no wall-clock, so it must be
    // identical — event for event — on every backend.
    assert_eq!(probe_mem.dropped, 0, "cap should be ample for this run");
    assert_eq!(probe_mem, probe_file, "file backend event stream differs");
    assert_eq!(probe_mem, probe_thr, "threaded backend event stream differs");

    // Replaying the stream reconstructs the aggregate counters exactly.
    let rep = replay(probe_mem.events(), 4);
    assert_eq!(rep.blocks_read, stats_mem.blocks_read);
    assert_eq!(rep.blocks_written, stats_mem.blocks_written);
    assert_eq!(rep.read_steps, stats_mem.read_steps);
    assert_eq!(rep.write_steps, stats_mem.write_steps);
    assert_eq!(rep.per_disk_reads, stats_mem.per_disk_reads);
    assert_eq!(rep.per_disk_writes, stats_mem.per_disk_writes);

    // ... and the per-phase attribution, including grouped batches.
    assert_eq!(rep.phases.len(), stats_mem.phases.len());
    for (got, want) in rep.phases.iter().zip(&stats_mem.phases) {
        assert_eq!(got.name, want.name);
        assert_eq!(got.read_steps, want.read_steps, "phase {}", want.name);
        assert_eq!(got.write_steps, want.write_steps, "phase {}", want.name);
        assert_eq!(got.blocks_read, want.blocks_read, "phase {}", want.name);
        assert_eq!(got.blocks_written, want.blocks_written, "phase {}", want.name);
    }

    // Overlap counters: batch counts are deterministic everywhere; the
    // hit/stall split is timing-dependent on the threaded backend, but
    // every rotation is exactly one of the two.
    for s in [&stats_file, &stats_thr] {
        let (a, b) = (&stats_mem.overlap, &s.overlap);
        assert_eq!(a.prefetch_batches, b.prefetch_batches);
        assert_eq!(a.flush_batches, b.flush_batches);
        assert_eq!(
            a.prefetch_hits + a.prefetch_stalls,
            b.prefetch_hits + b.prefetch_stalls
        );
        assert_eq!(a.flush_hits + a.flush_stalls, b.flush_hits + b.flush_stalls);
    }
}

fn run_probed_telemetry<S: Storage<u64>>(
    storage: S,
    data: &[u64],
    b: usize,
    telemetry: bool,
) -> (IoStats, Box<Probe>) {
    let n = data.len();
    let mut pdm = Pdm::with_storage(PdmConfig::square(4, b), storage).unwrap();
    if telemetry {
        pdm.attach_span_sink(std::sync::Arc::new(SpanSink::new(1 << 20)));
    }
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, data).unwrap();
    pdm.reset_stats();
    pdm.enable_probe(1 << 20);
    pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    let (_, mut stats) = pdm.into_parts();
    let probe = stats.take_probe().expect("probe was enabled");
    (stats, probe)
}

#[test]
fn telemetry_never_perturbs_the_event_stream_or_counters() {
    // Wall-clock telemetry (latency histograms, queue gauges, span sinks)
    // rides beside the step clock, never inside it: enabling it must leave
    // the probe's structured event stream and every deterministic counter
    // identical on every backend. `IoStats` equality deliberately ignores
    // the `wall` field, so the whole-struct compares below encode exactly
    // that contract.
    let b = 16usize;
    let n = b * b * b;
    let data = workload(n);

    let (base_stats, base_probe) = run_probed_telemetry(MemStorage::new(4, b), &data, b, false);

    let (mem_on, p_mem_on) = run_probed_telemetry(MemStorage::new(4, b), &data, b, true);
    assert_eq!(base_probe, p_mem_on, "telemetry changed the mem event stream");
    assert_eq!(base_stats, mem_on, "telemetry changed the mem counters");
    assert!(!mem_on.wall.has_samples(), "step-clocked mem backend records no wall samples");

    let (thr_off, p_thr_off) =
        run_probed_telemetry(ThreadedStorage::<u64>::new(4, b), &data, b, false);
    let (thr_on, p_thr_on) =
        run_probed_telemetry(ThreadedStorage::<u64>::new(4, b), &data, b, true);
    assert_eq!(p_thr_off, p_thr_on, "telemetry changed the threaded event stream");
    assert_eq!(thr_off, thr_on, "telemetry changed the threaded counters");
    assert_eq!(base_probe, p_thr_on, "threaded event stream differs from mem");
    assert!(thr_on.wall.has_samples(), "threaded backend should record latency samples");

    let (af_off, p_af_off) = run_probed_telemetry(
        AsyncFileStorage::<u64>::create_temp(4, b).unwrap(),
        &data,
        b,
        false,
    );
    let (af_on, p_af_on) = run_probed_telemetry(
        AsyncFileStorage::<u64>::create_temp(4, b).unwrap(),
        &data,
        b,
        true,
    );
    assert_eq!(p_af_off, p_af_on, "telemetry changed the async-file event stream");
    assert_eq!(af_off, af_on, "telemetry changed the async-file counters");
    assert_eq!(base_probe, p_af_on, "async-file event stream differs from mem");
    assert!(af_on.wall.has_samples(), "async-file backend should record latency samples");

    // Replaying the telemetry-on stream still reconstructs the counters.
    let rep = replay(p_af_on.events(), 4);
    assert_eq!(rep.blocks_read, base_stats.blocks_read);
    assert_eq!(rep.blocks_written, base_stats.blocks_written);
    assert_eq!(rep.read_steps, base_stats.read_steps);
    assert_eq!(rep.write_steps, base_stats.write_steps);
    assert_eq!(rep.per_disk_reads, base_stats.per_disk_reads);
    assert_eq!(rep.per_disk_writes, base_stats.per_disk_writes);
}

#[test]
fn file_backend_survives_every_algorithm() {
    let b = 8usize;
    let n = b * b * b;
    let data = workload(n);
    let mut want = data.clone();
    want.sort_unstable();

    macro_rules! run {
        ($f:expr) => {{
            let storage = FileStorage::<u64>::create_temp(2, b).unwrap();
            let mut pdm = Pdm::with_storage(PdmConfig::square(2, b), storage).unwrap();
            let input = pdm.alloc_region_for_keys(n).unwrap();
            pdm.ingest(&input, &data).unwrap();
            #[allow(clippy::redundant_closure_call)]
            let out = $f(&mut pdm, &input, n);
            assert_eq!(pdm.inspect_prefix(&out, n).unwrap(), want);
        }};
    }
    run!(|p: &mut Pdm<u64, FileStorage<u64>>, r: &Region, n| pdm_sort::three_pass1(p, r, n)
        .unwrap()
        .output);
    run!(|p: &mut Pdm<u64, FileStorage<u64>>, r: &Region, n| pdm_sort::expected_two_pass(p, r, n)
        .unwrap()
        .output);
    run!(|p: &mut Pdm<u64, FileStorage<u64>>, r: &Region, n| pdm_sort::radix_sort(p, r, n, 64)
        .unwrap()
        .report
        .output);
    run!(
        |p: &mut Pdm<u64, FileStorage<u64>>, r: &Region, n| pdm_baseline::merge_sort(p, r, n)
            .unwrap()
            .0
    );
}

#[test]
fn file_backend_data_is_really_on_disk() {
    // write through one storage handle, read through a fresh one on the
    // same directory — proves the bytes hit the filesystem
    let dir = std::env::temp_dir().join(format!("pdm-persist-{}", std::process::id()));
    let b = 8usize;
    {
        let storage = FileStorage::<u64>::create(&dir, 2, b).unwrap();
        let mut pdm = Pdm::with_storage(PdmConfig::square(2, b), storage).unwrap();
        let r = pdm.alloc_region_for_keys(64).unwrap();
        pdm.write_region(&r, &(0..64u64).collect::<Vec<_>>()).unwrap();
        pdm.sync().unwrap();
    }
    {
        let mut storage = FileStorage::<u64>::create_readback(&dir, 2, b).unwrap();
        let mut out = vec![0u64; b];
        storage.read_block(0, 0, &mut out).unwrap();
        // block 0 of a region starting at disk 0 = first B keys
        assert_eq!(out, (0..b as u64).collect::<Vec<_>>());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threaded_backend_handles_concurrent_batches() {
    // many stripes in flight — exercises the per-disk worker queues
    let b = 16usize;
    let storage = ThreadedStorage::<u64>::new(8, b);
    let mut pdm = Pdm::with_storage(PdmConfig::new(8, b, 2 * 8 * b), storage).unwrap();
    let n = 8 * b * 64;
    let data = workload(n);
    let r = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&r, &data).unwrap();
    let mut out = Vec::new();
    for chunk_start in (0..r.len_blocks()).step_by(8) {
        let take = 8.min(r.len_blocks() - chunk_start);
        pdm.read_range(&r, chunk_start, take, &mut out).unwrap();
    }
    assert_eq!(out[..n], data[..]);
}
