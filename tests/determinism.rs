//! Determinism and serialization: identical runs produce identical I/O
//! traces (the whole reproduction depends on it), and the config/stats
//! types round-trip through serde for experiment logging.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn run_once(seed: u64) -> (Vec<u64>, IoStats, usize) {
    let b = 16usize;
    let n = b * b * b;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rng);
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    pdm.reset_stats();
    let rep = pdm_sort::pdm_sort(&mut pdm, &input, n).unwrap();
    let out = pdm.inspect_prefix(&rep.output, n).unwrap();
    let peak = pdm.mem().peak();
    (out, pdm.stats().clone(), peak)
}

#[test]
fn identical_runs_produce_identical_io_traces() {
    let (out1, stats1, peak1) = run_once(42);
    let (out2, stats2, peak2) = run_once(42);
    assert_eq!(out1, out2);
    assert_eq!(stats1, stats2, "I/O trace must be bit-for-bit reproducible");
    assert_eq!(peak1, peak2);
}

#[test]
fn different_seeds_still_agree_on_costs_for_oblivious_algorithms() {
    // the comparison algorithms are oblivious: the I/O *schedule* is input
    // independent, so two different permutations cost identical steps
    let (_, stats1, _) = run_once(1);
    let (_, stats2, _) = run_once(2);
    assert_eq!(stats1.read_steps, stats2.read_steps);
    assert_eq!(stats1.write_steps, stats2.write_steps);
    assert_eq!(stats1.blocks_read, stats2.blocks_read);
    assert_eq!(stats1.per_disk_reads, stats2.per_disk_reads);
}

#[test]
fn expected_algorithms_have_input_independent_schedules_too() {
    // ExpectedTwoPass without fallback is oblivious as well — both random
    // inputs cost the same steps (the fallback path differs, of course)
    let b = 16usize;
    let n = 2048usize;
    let mut traces = Vec::new();
    for seed in [10u64, 11] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data: Vec<u64> = (0..n as u64).collect();
        data.shuffle(&mut rng);
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        pdm.reset_stats();
        let rep = pdm_sort::expected_two_pass(&mut pdm, &input, n).unwrap();
        assert!(!rep.fell_back);
        traces.push((pdm.stats().read_steps, pdm.stats().write_steps));
    }
    assert_eq!(traces[0], traces[1]);
}

#[test]
fn transient_fault_schedule_is_identical_across_backends_and_kernel_legs() {
    // `FailMode::TransientRate` derives its fault schedule purely from
    // (seed, operation index), and the operation sequence is fixed by the
    // I/O schedule — which neither the storage backend nor the `parallel`
    // kernel feature may perturb. This file is compiled against both
    // feature legs, so the hard equality below also pins the schedule (and
    // the healed retry counters) to be identical with parallel kernels on
    // and off.
    let cfg = PdmConfig::square(2, 8);
    let n = 512usize;
    let policy = RetryPolicy { max_attempts: 6, backoff_steps: 1 };
    let dir = std::env::temp_dir().join(format!("pdm-det-transient-{}", std::process::id()));

    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut StdRng::seed_from_u64(0xD15C));
    let mut want = data.clone();
    want.sort_unstable();

    let mut legs: Vec<(&str, Vec<u64>, RetrySnapshot, IoStats)> = Vec::new();
    // "mem" runs twice: the repeat proves the schedule is a function of the
    // run, not of ambient state left behind by the first execution.
    for label in ["mem", "file", "threaded", "mem"] {
        let inner: Box<dyn Storage<u64>> = match label {
            "mem" => Box::new(MemStorage::new(cfg.num_disks, cfg.block_size)),
            "file" => {
                Box::new(FileStorage::create(&dir, cfg.num_disks, cfg.block_size).unwrap())
            }
            _ => Box::new(ThreadedStorage::new(cfg.num_disks, cfg.block_size)),
        };
        let flaky =
            FlakyStorage::new(inner, FailMode::TransientRate { seed: 0xD15C, rate_ppm: 20_000 });
        let retrying = RetryingStorage::new(flaky, policy);
        let counters = retrying.counters();
        let storage: Box<dyn Storage<u64>> = Box::new(retrying);
        let mut pdm = Pdm::with_storage(cfg, storage).unwrap();
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        pdm.reset_stats();
        let rep = pdm_sort::seven_pass(&mut pdm, &input, n).unwrap();
        let got = pdm.inspect_prefix(&rep.output, n).unwrap();
        assert_eq!(got, want, "{label}: corrupted output under transient faults");
        legs.push((label, got, counters.snapshot(), pdm.stats().clone()));
    }
    std::fs::remove_dir_all(&dir).ok();

    let (_, out0, retry0, stats0) = &legs[0];
    assert!(
        retry0.total_retries() > 0,
        "transient rate never fired — the schedule assertion below is vacuous"
    );
    for (label, out, retry, stats) in &legs[1..] {
        assert_eq!(out, out0, "{label}: output diverged");
        assert_eq!(retry, retry0, "{label}: fault schedule diverged from mem backend");
        assert_eq!(stats, stats0, "{label}: I/O trace diverged from mem backend");
    }
}

#[test]
fn config_and_stats_serde_round_trip() {
    let cfg = PdmConfig::square(4, 32).with_workspace_factor(3);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: PdmConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);

    let (_, stats, _) = run_once(5);
    let json = serde_json::to_string(&stats).unwrap();
    let back: IoStats = serde_json::from_str(&json).unwrap();
    assert_eq!(stats, back);
    // phases survive too
    assert!(!back.phases.is_empty());
}

#[test]
fn region_serde_round_trip() {
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, 8)).unwrap();
    let r = pdm.alloc_region_at(10, 1).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: Region = serde_json::from_str(&json).unwrap();
    assert_eq!(r, back);
    for i in 0..10 {
        assert_eq!(r.addr(i).unwrap(), back.addr(i).unwrap());
    }
}
