//! Overlap-window depth sweep: the budget shapes *when* blocks move,
//! never *which* blocks move.
//!
//! For every window budget — one block (degenerate, no lookahead beyond
//! the batch in hand), one batch (a stripe of D blocks), the default
//! (D × DEFAULT_QUEUE_DEPTH), and an effectively unbounded budget — and
//! on every backend, a sort with overlap forced on must produce
//! byte-identical output, identical pass/step counters, and an identical
//! structured probe event stream. The adaptive controller is one more
//! leg of the same sweep: retuning between phases must be just as
//! invisible.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const D: usize = 4;

fn workload(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n as u64).collect();
    v.shuffle(&mut rng);
    v
}

/// The sweep: explicit budgets plus `None` (default) — the adaptive leg
/// is driven separately through `set_overlap_autotune`.
fn budgets(b: usize) -> Vec<(&'static str, Option<usize>)> {
    vec![
        ("1-block", Some(1)),
        ("1-batch", Some(D)),
        ("default", None),
        ("huge", Some(D * b * b * 64)),
    ]
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Backend {
    Mem,
    Threaded,
    AsyncFile,
}

fn make_storage(kind: Backend, b: usize) -> Box<dyn Storage<u64>> {
    match kind {
        Backend::Mem => Box::new(MemStorage::new(D, b)),
        Backend::Threaded => Box::new(ThreadedStorage::<u64>::new(D, b)),
        Backend::AsyncFile => Box::new(AsyncFileStorage::<u64>::create_temp(D, b).unwrap()),
    }
}

struct Leg {
    out: Vec<u64>,
    stats: IoStats,
    probe: Box<Probe>,
    read_passes: f64,
    write_passes: f64,
}

fn run_leg(
    kind: Backend,
    b: usize,
    data: &[u64],
    window: Option<usize>,
    autotune: bool,
    algo: fn(&mut Pdm<u64, Box<dyn Storage<u64>>>, &Region, usize) -> pdm_model::Result<pdm_sort::SortReport>,
) -> Leg {
    let n = data.len();
    let mut pdm = Pdm::with_storage(PdmConfig::square(D, b), make_storage(kind, b)).unwrap();
    pdm.set_overlap(true);
    if autotune {
        pdm.set_overlap_autotune(true);
    } else {
        pdm.set_overlap_window(window);
    }
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, data).unwrap();
    pdm.reset_stats();
    pdm.enable_probe(1 << 20);
    let rep = algo(&mut pdm, &input, n).unwrap();
    assert!(!rep.fell_back, "unexpected fallback in depth sweep");
    let out = pdm.inspect_prefix(&rep.output, n).unwrap();
    let (_, mut stats) = pdm.into_parts();
    let probe = stats.take_probe().expect("probe was enabled");
    Leg { out, stats, probe, read_passes: rep.read_passes, write_passes: rep.write_passes }
}

fn assert_legs_match(label: &str, base: &Leg, got: &Leg) {
    assert_eq!(got.out, base.out, "{label}: window budget changed the sorted output");
    assert_eq!(got.read_passes, base.read_passes, "{label}: read passes differ");
    assert_eq!(got.write_passes, base.write_passes, "{label}: write passes differ");
    assert_eq!(got.stats.blocks_read, base.stats.blocks_read, "{label}");
    assert_eq!(got.stats.blocks_written, base.stats.blocks_written, "{label}");
    assert_eq!(got.stats.read_steps, base.stats.read_steps, "{label}");
    assert_eq!(got.stats.write_steps, base.stats.write_steps, "{label}");
    assert_eq!(got.stats.per_disk_reads, base.stats.per_disk_reads, "{label}");
    assert_eq!(got.stats.per_disk_writes, base.stats.per_disk_writes, "{label}");
    // The budget shifts *when* overlapped batches are issued, so the event
    // interleaving may differ — but every leg's stream must still replay
    // to exactly the shared counters.
    let rep = replay(got.probe.events(), D);
    assert_eq!(rep.blocks_read, base.stats.blocks_read, "{label}: replay drifted");
    assert_eq!(rep.blocks_written, base.stats.blocks_written, "{label}: replay drifted");
    assert_eq!(rep.read_steps, base.stats.read_steps, "{label}: replay drifted");
    assert_eq!(rep.write_steps, base.stats.write_steps, "{label}: replay drifted");
    assert_eq!(rep.per_disk_reads, base.stats.per_disk_reads, "{label}: replay drifted");
    assert_eq!(rep.per_disk_writes, base.stats.per_disk_writes, "{label}: replay drifted");
}

fn sweep(
    algo_name: &str,
    n: usize,
    b: usize,
    algo: fn(&mut Pdm<u64, Box<dyn Storage<u64>>>, &Region, usize) -> pdm_model::Result<pdm_sort::SortReport>,
) {
    let data = workload(n, 37);
    // Fixed-depth reference: the default window on the mem backend. Every
    // budget on every backend must reproduce its cost-model stream.
    let base = run_leg(Backend::Mem, b, &data, None, false, algo);

    // Anchor: overlap (any window) never changes the sorted output or the
    // aggregate counters relative to a fully blocking run. The *ordering*
    // of Io charges does shift — read-ahead charges reads at issue, which
    // runs ahead of consumption — so streams compare within overlap legs
    // only.
    let mut pdm = Pdm::with_storage(PdmConfig::square(D, b), make_storage(Backend::Mem, b)).unwrap();
    pdm.set_overlap(false);
    let input = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&input, &data).unwrap();
    pdm.reset_stats();
    let rep = algo(&mut pdm, &input, n).unwrap();
    let blocking_out = pdm.inspect_prefix(&rep.output, n).unwrap();
    let (_, blocking_stats) = pdm.into_parts();
    assert_eq!(base.out, blocking_out, "{algo_name}: overlap changed the sorted output");
    assert_eq!(
        (base.read_passes, base.write_passes),
        (rep.read_passes, rep.write_passes),
        "{algo_name}: overlap changed the pass counts"
    );
    assert_eq!(base.stats.read_steps, blocking_stats.read_steps, "{algo_name}");
    assert_eq!(base.stats.write_steps, blocking_stats.write_steps, "{algo_name}");
    assert_eq!(base.stats.blocks_read, blocking_stats.blocks_read, "{algo_name}");
    assert_eq!(base.stats.blocks_written, blocking_stats.blocks_written, "{algo_name}");

    for kind in [Backend::Mem, Backend::Threaded, Backend::AsyncFile] {
        for (bname, window) in budgets(b) {
            let leg = run_leg(kind, b, &data, window, false, algo);
            assert_legs_match(&format!("{algo_name}/{kind:?}/{bname}"), &base, &leg);
        }
        let leg = run_leg(kind, b, &data, None, true, algo);
        assert_legs_match(&format!("{algo_name}/{kind:?}/adaptive"), &base, &leg);
    }
}

#[test]
fn seven_pass_is_invariant_across_window_budgets_and_backends() {
    let b = 16;
    sweep("seven_pass", b * b * b, b, |p, r, n| pdm_sort::seven_pass(p, r, n));
}

#[test]
fn three_pass2_is_invariant_across_window_budgets_and_backends() {
    let b = 16;
    sweep("three_pass2", b * b * b, b, |p, r, n| pdm_sort::three_pass2(p, r, n));
}

#[test]
fn speculative_two_pass_is_invariant_across_window_budgets_and_backends() {
    // expected_two_pass's pass 2 issues speculative bucket prefetches;
    // abandoning or consuming them must never leak into the counters.
    // Its capacity at M = 256 is under a thousand keys, so N sits below
    // the three-pass sweeps'.
    let b = 16;
    sweep("expected_two_pass", 768, b, |p, r, n| pdm_sort::expected_two_pass(p, r, n));
}

#[test]
fn tiny_window_still_overlaps_on_async_file() {
    // Even the degenerate one-block budget must keep the machinery live:
    // batches still flow through the read-ahead/write-behind queues (the
    // budget bounds *outstanding* blocks, not participation).
    let b = 16;
    let n = b * b * b;
    let data = workload(n, 41);
    let leg = run_leg(Backend::AsyncFile, b, &data, Some(1), false, |p, r, n| {
        pdm_sort::seven_pass(p, r, n)
    });
    assert!(
        leg.stats.overlap.prefetch_batches + leg.stats.overlap.flush_batches > 0,
        "one-block window disabled overlap entirely"
    );
}
