//! End-to-end integration tests: every public sorting entry point, against
//! a reference sort, across input sizes and distributions.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn reference(data: &[u64]) -> Vec<u64> {
    let mut v = data.to_vec();
    v.sort_unstable();
    v
}

fn ingest(pdm: &mut Pdm<u64>, data: &[u64]) -> Region {
    let r = pdm.alloc_region_for_keys(data.len()).unwrap();
    pdm.ingest(&r, data).unwrap();
    r
}

fn distributions(n: usize, seed: u64) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u64> = (0..n as u64).collect();
    perm.shuffle(&mut rng);
    vec![
        ("permutation", perm),
        ("sorted", (0..n as u64).collect()),
        ("reversed", (0..n as u64).rev().collect()),
        ("constant", vec![7; n]),
        (
            "few_distinct",
            (0..n).map(|_| rng.gen_range(0..4u64)).collect(),
        ),
        (
            "wide_random",
            (0..n).map(|_| rng.gen::<u64>() >> 1).collect(),
        ),
    ]
}

#[test]
fn all_comparison_algorithms_sort_all_distributions() {
    let b = 16usize;
    let n = b * b * b; // M√M
    for (name, data) in distributions(n, 1) {
        for algo in [
            "three_pass1",
            "three_pass2",
            "expected_two_pass",
            "exp_two_pass_mesh",
        ] {
            let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
            let input = ingest(&mut pdm, &data);
            let out = match algo {
                "three_pass1" => pdm_sort::three_pass1(&mut pdm, &input, n).unwrap().output,
                "three_pass2" => pdm_sort::three_pass2(&mut pdm, &input, n).unwrap().output,
                "expected_two_pass" => {
                    pdm_sort::expected_two_pass(&mut pdm, &input, n).unwrap().output
                }
                _ => pdm_sort::exp_two_pass_mesh(&mut pdm, &input, n).unwrap().output,
            };
            assert_eq!(
                pdm.inspect_prefix(&out, n).unwrap(),
                reference(&data),
                "{algo} failed on {name}"
            );
        }
    }
}

#[test]
fn m_squared_algorithms_sort_all_distributions() {
    let b = 8usize;
    let n = b * b * b * b; // M² = 4096
    for (name, data) in distributions(n, 2) {
        // SevenPass at full M²
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, b)).unwrap();
        let input = ingest(&mut pdm, &data);
        let out = pdm_sort::seven_pass(&mut pdm, &input, n).unwrap().output;
        assert_eq!(
            pdm.inspect_prefix(&out, n).unwrap(),
            reference(&data),
            "seven_pass failed on {name}"
        );
        // ExpectedSixPass at its (smaller) capacity
        let nn = n.min(pdm_sort::seven_pass::capacity_six(b * b, 2.0));
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, b)).unwrap();
        let input = ingest(&mut pdm, &data[..nn]);
        let out = pdm_sort::expected_six_pass(&mut pdm, &input, nn, 2.0)
            .unwrap()
            .output;
        assert_eq!(
            pdm.inspect_prefix(&out, nn).unwrap(),
            reference(&data[..nn]),
            "expected_six_pass failed on {name}"
        );
    }
}

#[test]
fn dispatcher_handles_every_size_band() {
    let mut rng = StdRng::seed_from_u64(3);
    let b = 16usize;
    // sizes crossing every dispatcher tier for M = 256
    for n in [1usize, 200, 256, 257, 800, 1000, 4096, 5000, 16000, 65536] {
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 48)).collect();
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, b)).unwrap();
        let input = ingest(&mut pdm, &data);
        let rep = pdm_sort::pdm_sort(&mut pdm, &input, n).unwrap();
        assert_eq!(
            pdm.inspect_prefix(&rep.output, n).unwrap(),
            reference(&data),
            "dispatcher failed at n = {n} via {}",
            rep.algorithm
        );
    }
}

#[test]
fn integer_and_radix_sorts_end_to_end() {
    let mut rng = StdRng::seed_from_u64(4);
    let b = 16usize;
    let n = 20_000usize;
    let bounded: Vec<u64> = (0..n).map(|_| rng.gen_range(0..b as u64)).collect();
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
    let input = ingest(&mut pdm, &bounded);
    let rep = pdm_sort::integer_sort(&mut pdm, &input, n, b as u64).unwrap();
    assert_eq!(pdm.inspect_prefix(&rep.output, n).unwrap(), reference(&bounded));

    let wide: Vec<u64> = (0..n).map(|_| rng.gen::<u64>()).collect();
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
    let input = ingest(&mut pdm, &wide);
    let rep = pdm_sort::radix_sort(&mut pdm, &input, n, 64).unwrap();
    assert_eq!(
        pdm.inspect_prefix(&rep.report.output, n).unwrap(),
        reference(&wide)
    );
}

#[test]
fn baselines_end_to_end() {
    let mut rng = StdRng::seed_from_u64(5);
    let m = 512usize; // B = 8 = M^{1/3}
    let cfg = PdmConfig::new(2, 8, m);
    let n = pdm_baseline::cc_columnsort::capacity(&cfg);
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rng);
    let mut pdm: Pdm<u64> = Pdm::new(cfg).unwrap();
    let input = ingest(&mut pdm, &data);
    let rep = pdm_baseline::cc_columnsort(&mut pdm, &input, n).unwrap();
    assert_eq!(pdm.inspect_prefix(&rep.output, n).unwrap(), reference(&data));

    let mut pdm: Pdm<u64> = Pdm::new(cfg).unwrap();
    let input = ingest(&mut pdm, &data);
    let (out, rp, wp) = pdm_baseline::merge_sort(&mut pdm, &input, n).unwrap();
    assert_eq!(pdm.inspect_prefix(&out, n).unwrap(), reference(&data));
    assert!(rp > 0.0 && wp > 0.0);
}

#[test]
fn sort_reports_are_internally_consistent() {
    let b = 16usize;
    let n = 4096usize;
    let mut rng = StdRng::seed_from_u64(6);
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rng);
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
    let input = ingest(&mut pdm, &data);
    pdm.reset_stats();
    let rep = pdm_sort::three_pass2(&mut pdm, &input, n).unwrap();
    let d = pdm.cfg().num_disks;
    let bb = pdm.cfg().block_size;
    assert_eq!(rep.read_passes, pdm.stats().read_passes(n, d, bb));
    assert_eq!(rep.n, n);
    assert!(rep.peak_mem <= pdm.cfg().mem_limit());
    // phase deltas sum to the totals
    let phase_reads: u64 = pdm.stats().phases.iter().map(|p| p.blocks_read).sum();
    assert_eq!(phase_reads, pdm.stats().blocks_read);
}

#[test]
fn tagged_records_sort_by_key_everywhere() {
    let mut rng = StdRng::seed_from_u64(7);
    let b = 16usize;
    let n = 4096usize;
    let data: Vec<Tagged> = (0..n as u64)
        .map(|i| Tagged::new(rng.gen_range(0..1000), i))
        .collect();
    let mut pdm: Pdm<Tagged> = Pdm::new(PdmConfig::square(4, b)).unwrap();
    let r = pdm.alloc_region_for_keys(n).unwrap();
    pdm.ingest(&r, &data).unwrap();
    let rep = pdm_sort::three_pass2(&mut pdm, &r, n).unwrap();
    let got = pdm.inspect_prefix(&rep.output, n).unwrap();
    assert!(got.windows(2).all(|w| w[0] <= w[1]));
    let mut got_payloads: Vec<u64> = got.iter().map(|t| t.payload).collect();
    got_payloads.sort_unstable();
    assert_eq!(got_payloads, (0..n as u64).collect::<Vec<_>>());
}
