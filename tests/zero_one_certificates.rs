//! Exhaustive 0-1 correctness certificates.
//!
//! The deterministic algorithms here are *oblivious*: their I/O schedule
//! and sort-block structure depend only on `N`, never on key values. The
//! classic 0-1 principle (which the paper generalizes in §3) therefore
//! applies: **if the algorithm sorts every binary input of length `N`, it
//! sorts every input of length `N`.** At the smallest legal geometry
//! (`b = √M = 2`, `M = 4`) the full `2^N` enumeration is feasible, giving a
//! machine-checked total-correctness certificate for the exact code paths
//! (padding, boundary `l = √M`, window warm-up/flush) that random testing
//! only samples.
//!
//! Additionally the permutation space at `N = 8` (40 320 inputs) is swept
//! directly — a certificate that does not even rely on the principle.

use pdm_model::prelude::*;

fn machine() -> Pdm<u64> {
    Pdm::new(PdmConfig::square(2, 2)).unwrap() // D = 2, B = 2, M = 4
}

fn run_sorted(
    algo: &str,
    data: &[u64],
) -> Vec<u64> {
    let mut pdm = machine();
    let input = pdm.alloc_region_for_keys(data.len()).unwrap();
    pdm.ingest(&input, data).unwrap();
    let out = match algo {
        "three_pass1" => pdm_sort::three_pass1(&mut pdm, &input, data.len()).unwrap().output,
        "three_pass2" => pdm_sort::three_pass2(&mut pdm, &input, data.len()).unwrap().output,
        "expected_two_pass" => {
            pdm_sort::expected_two_pass(&mut pdm, &input, data.len()).unwrap().output
        }
        "seven_pass" => pdm_sort::seven_pass(&mut pdm, &input, data.len()).unwrap().output,
        other => panic!("unknown algo {other}"),
    };
    pdm.inspect_prefix(&out, data.len()).unwrap()
}

fn certify_binary(algo: &str, n: usize) {
    assert!(n <= 20);
    let mut buf = vec![0u64; n];
    for mask in 0u64..(1u64 << n) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (mask >> i) & 1;
        }
        let got = run_sorted(algo, &buf);
        let zeros = n - mask.count_ones() as usize;
        let sorted = got[..zeros].iter().all(|&k| k == 0) && got[zeros..].iter().all(|&k| k == 1);
        assert!(sorted, "{algo} failed on binary input {mask:#x} (n = {n})");
    }
}

fn certify_permutations(algo: &str, n: usize) {
    // Heap's algorithm over n! permutations
    assert!(n <= 8);
    let mut perm: Vec<u64> = (0..n as u64).collect();
    let want: Vec<u64> = (0..n as u64).collect();
    let mut c = vec![0usize; n];
    assert_eq!(run_sorted(algo, &perm), want);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            assert_eq!(run_sorted(algo, &perm), want, "{algo} failed on {perm:?}");
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

/// `N = M√M = 8` at the minimal geometry: every one of the 2^8 binary
/// inputs — by the 0-1 principle, a total-correctness certificate for the
/// oblivious three-pass algorithms at this size.
#[test]
fn three_pass_algorithms_certified_at_full_capacity() {
    certify_binary("three_pass1", 8);
    certify_binary("three_pass2", 8);
}

/// Direct enumeration of all 8! = 40 320 permutations (no principle
/// needed) for both three-pass algorithms.
#[test]
fn three_pass_algorithms_certified_on_all_permutations() {
    certify_permutations("three_pass1", 8);
    certify_permutations("three_pass2", 8);
}

/// The expected algorithm's correctness is unconditional (abort + fallback)
/// — still, certify all binary inputs and all permutations at N = 8.
#[test]
fn expected_two_pass_certified() {
    certify_binary("expected_two_pass", 8);
    certify_permutations("expected_two_pass", 8);
}

/// Ragged sizes exercise the padding paths: all binary inputs for every
/// N in 1..=8 (three_pass2).
#[test]
fn ragged_sizes_certified_binary() {
    for n in 1..=8usize {
        certify_binary("three_pass2", n);
        certify_binary("three_pass1", n);
    }
}

/// `N = M² = 16` at the minimal geometry: all 2^16 binary inputs through
/// the full seven-pass pipeline (runs in ~seconds in release; the 0-1
/// principle then certifies all 16-key inputs).
#[test]
#[ignore = "65 536 SevenPass runs — use --release"]
fn seven_pass_certified_at_m_squared() {
    certify_binary("seven_pass", 16);
}

/// Smaller but unignored: all binary inputs of the seven-pass pipeline at
/// N = 12 (ragged: 1.5 runs) and N = 8.
#[test]
fn seven_pass_certified_binary_small() {
    certify_binary("seven_pass", 8);
    certify_binary("seven_pass", 12);
}
