//! Checkpoint/resume torture tests: kill a sort mid-pass (via injected
//! disk death), then restart against the surviving disk files and the
//! last checkpoint manifest. The resumed run must replay completed
//! passes without I/O, re-execute the interrupted pass, and land on
//! output byte-identical to an uninterrupted run.

use pdm_model::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const D: usize = 2;
const B: usize = 8;
const N: usize = 512;

fn workload() -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(0x0C0FFEE);
    let mut v: Vec<u64> = (0..N as u64).collect();
    v.shuffle(&mut rng);
    v
}

fn digest_of(data: &[u64]) -> u64 {
    data.iter()
        .fold(FNV_OFFSET, |st, k| fnv1a(st, &k.to_le_bytes()))
}

fn fresh_manifest(cfg: &PdmConfig, digest: u64) -> Manifest {
    Manifest {
        algo: "three-pass1".into(),
        num_disks: cfg.num_disks,
        block_size: cfg.block_size,
        mem_capacity: cfg.mem_capacity,
        num_keys: N,
        digest,
        completed: 0,
        frontier: 0,
        phases: Vec::new(),
    }
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static C: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "pdm-ckres-{tag}-{}-{}",
        std::process::id(),
        C.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Reference: uninterrupted sorted output plus the total pass count.
fn reference_run(data: &[u64], overlap: bool) -> (Vec<u64>, usize) {
    let cfg = PdmConfig::square(D, B);
    let mut pdm: Pdm<u64> = Pdm::new(cfg).unwrap();
    pdm.set_overlap(overlap);
    let input = pdm.alloc_region_for_keys(N).unwrap();
    pdm.ingest(&input, data).unwrap();
    let rep = pdm_sort::three_pass1(&mut pdm, &input, N).unwrap();
    let out = pdm.inspect_prefix(&rep.output, N).unwrap();
    (out, pdm.stats().phases.len())
}

/// Run three_pass1 over persistent files with a disk that dies after
/// `kill_after` block operations, checkpointing each pass. Returns the
/// completed-pass count recorded by the last durable checkpoint, or
/// `None` if the run actually survived (fault landed past its I/O).
fn interrupted_run(
    scratch: &std::path::Path,
    ckdir: &std::path::Path,
    data: &[u64],
    digest: u64,
    kill_after: u64,
    overlap: bool,
) -> Option<usize> {
    let cfg = PdmConfig::square(D, B);
    let file = FileStorage::<u64>::create(scratch, D, B).unwrap();
    let flaky = FlakyStorage::new(file, FailMode::DiskAfter(1, kill_after));
    let mut pdm = Pdm::with_storage(cfg, flaky).unwrap();
    pdm.set_overlap(overlap);
    let input = pdm.alloc_region_for_keys(N).unwrap();
    if pdm.ingest(&input, data).is_err() {
        assert_eq!(pdm.mem().current(), 0, "kill@{kill_after}: ingest leak");
        return Some(0);
    }
    let store = CheckpointStore::create(ckdir).unwrap();
    pdm.attach_checkpoint(store, fresh_manifest(&cfg, digest));
    match pdm_sort::three_pass1(&mut pdm, &input, N) {
        Ok(_) => None,
        Err(_) => {
            // The "crash": machine dropped here, disks and manifests stay.
            assert_eq!(
                pdm.mem().current(),
                0,
                "kill@{kill_after}: error path leaked tracked memory"
            );
            let latest = CheckpointStore::create(ckdir)
                .unwrap()
                .load_latest()
                .unwrap();
            Some(latest.map_or(0, |m| m.completed))
        }
    }
}

/// Restart from the surviving files + manifest and finish the sort.
fn resumed_run(
    scratch: &std::path::Path,
    ckdir: &std::path::Path,
    digest: u64,
    overlap: bool,
) -> (Vec<u64>, usize, usize) {
    let cfg = PdmConfig::square(D, B);
    let store = CheckpointStore::create(ckdir).unwrap();
    let manifest = store
        .load_latest()
        .unwrap()
        .expect("interrupted run left no checkpoint");
    manifest
        .check_compatible("three-pass1", &cfg, N, digest)
        .unwrap();
    let file = FileStorage::<u64>::create_readback(scratch, D, B).unwrap();
    let mut pdm = Pdm::with_storage(cfg, file).unwrap();
    pdm.set_overlap(overlap);
    let input = pdm.alloc_region_for_keys(N).unwrap();
    // No ingest: the keys are already on disk from before the crash.
    let skipped = manifest.completed;
    pdm.attach_checkpoint(store, manifest);
    let rep = pdm_sort::three_pass1(&mut pdm, &input, N).unwrap();
    if let Some(e) = pdm.take_checkpoint_error() {
        panic!("resume left a deferred checkpoint error: {e}");
    }
    let out = pdm.inspect_prefix(&rep.output, N).unwrap();
    let live = pdm.stats().phases.len();
    (out, skipped, live)
}

#[test]
fn kill_mid_pass_then_resume_is_byte_identical() {
    let data = workload();
    let digest = digest_of(&data);

    // Both overlap legs run the same sweep: with overlap on, the
    // pipelines' read-ahead/write-behind wrappers are live (eagerly
    // completed on the file backend), so the drain-before-checkpoint
    // discipline and the resume path run with in-flight tokens in play,
    // and must land on the same bytes and pass counts.
    for overlap in [false, true] {
        let (want, total_passes) = reference_run(&data, overlap);

        // Sweep kill points across the whole I/O schedule: early
        // (mid-pass-1), mid (pass 2), late (pass 3), and past-the-end
        // (run survives).
        let mut resumed_with_progress = 0usize;
        for kill_after in [40u64, 120, 200, 260, 320, 100_000] {
            let scratch = unique_dir("scratch");
            let ckdir = unique_dir("ck");
            match interrupted_run(&scratch, &ckdir, &data, digest, kill_after, overlap) {
                None => {
                    // Fault never fired — nothing to resume.
                }
                Some(completed) => {
                    assert!(
                        completed < total_passes,
                        "kill@{kill_after}: checkpoint claims a finished run that errored"
                    );
                    if completed > 0 {
                        let (got, skipped, live) =
                            resumed_run(&scratch, &ckdir, digest, overlap);
                        assert_eq!(
                            got, want,
                            "kill@{kill_after} overlap={overlap}: resumed output \
                             differs from uninterrupted run"
                        );
                        assert_eq!(skipped, completed, "kill@{kill_after}");
                        assert_eq!(
                            live,
                            total_passes - completed,
                            "kill@{kill_after} overlap={overlap}: wrong number of \
                             live re-executed passes"
                        );
                        resumed_with_progress += 1;
                    }
                }
            }
            std::fs::remove_dir_all(&scratch).ok();
            std::fs::remove_dir_all(&ckdir).ok();
        }
        assert!(
            resumed_with_progress >= 2,
            "overlap={overlap}: sweep never exercised a genuine mid-run resume — \
             kill points need retuning"
        );
    }
}

#[test]
fn resume_refuses_a_mismatched_manifest() {
    let data = workload();
    let digest = digest_of(&data);
    let scratch = unique_dir("scratch");
    let ckdir = unique_dir("ck");
    // Interrupt mid-pass-2 so a real checkpoint exists.
    let completed = interrupted_run(&scratch, &ckdir, &data, digest, 200, false)
        .expect("kill@200 should interrupt the run");
    assert!(completed > 0, "kill@200 should land after pass 1");
    let store = CheckpointStore::create(&ckdir).unwrap();
    let manifest = store.load_latest().unwrap().unwrap();
    let cfg = PdmConfig::square(D, B);
    assert!(manifest.check_compatible("three-pass2", &cfg, N, digest).is_err());
    assert!(manifest
        .check_compatible("three-pass1", &PdmConfig::square(4, B), N, digest)
        .is_err());
    assert!(manifest.check_compatible("three-pass1", &cfg, N - 1, digest).is_err());
    assert!(manifest
        .check_compatible("three-pass1", &cfg, N, digest ^ 1)
        .is_err());
    assert!(manifest.check_compatible("three-pass1", &cfg, N, digest).is_ok());
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::remove_dir_all(&ckdir).ok();
}

/// Torn-write sweep on the async real-disk backend: a torn write
/// persists half a block but reports success, so only the checksum
/// sidecar can catch it — and only at the next read of that block.
/// Every outcome, in the interrupted run and after resume, must be
/// either byte-correct output or a clean `Corrupt` error naming the
/// block. Silently wrong bytes fail the sweep.
#[cfg(feature = "block-checksums")]
#[test]
fn torn_writes_on_the_async_backend_surface_as_corrupt_never_wrong_bytes() {
    use std::sync::Arc;
    let data = workload();
    let digest = digest_of(&data);
    let (want, _) = reference_run(&data, true);
    let cfg = PdmConfig::square(D, B);
    let mut corrupt_seen = 0usize;
    for torn_after in [0u64, 50, 130, 210, 300, 100_000] {
        let scratch = unique_dir("torn-scratch");
        let ckdir = unique_dir("torn-ck");
        let outcome = {
            let mut storage = AsyncFileStorage::<u64>::create(&scratch, D, B).unwrap();
            storage.set_file_faults(Arc::new(FileFaults::new(FileFaultMode::TornWrite(torn_after))));
            let mut pdm = Pdm::with_storage(cfg, storage).unwrap();
            pdm.set_overlap(true);
            let input = pdm.alloc_region_for_keys(N).unwrap();
            let store = CheckpointStore::create(&ckdir).unwrap();
            pdm.attach_checkpoint(store, fresh_manifest(&cfg, digest));
            (|| {
                pdm.ingest(&input, &data)?;
                let rep = pdm_sort::three_pass1(&mut pdm, &input, N)?;
                pdm.inspect_prefix(&rep.output, N)
            })()
        };
        match outcome {
            // The torn block was overwritten before any read saw it (a
            // rewrite re-records the checksum over what was persisted),
            // or the nth op landed past the run: output must be right.
            Ok(got) => assert_eq!(got, want, "torn@{torn_after}: silently wrong bytes"),
            Err(e) => {
                assert!(
                    matches!(e, PdmError::Corrupt { .. }),
                    "torn@{torn_after}: expected Corrupt, got: {e}"
                );
                corrupt_seen += 1;
                // Resume over the surviving files + sidecars. The torn
                // block either gets rewritten by the re-executed pass
                // (healed — output must be byte-correct) or is read
                // again (the sidecar must re-detect the corruption).
                let store = CheckpointStore::create(&ckdir).unwrap();
                if let Some(manifest) = store.load_latest().unwrap() {
                    if manifest.completed > 0 {
                        manifest.check_compatible("three-pass1", &cfg, N, digest).unwrap();
                        let storage = AsyncFileStorage::<u64>::create_readback(&scratch, D, B).unwrap();
                        let mut pdm = Pdm::with_storage(cfg, storage).unwrap();
                        pdm.set_overlap(true);
                        let input = pdm.alloc_region_for_keys(N).unwrap();
                        pdm.attach_checkpoint(store, manifest);
                        let resumed = (|| {
                            let rep = pdm_sort::three_pass1(&mut pdm, &input, N)?;
                            pdm.inspect_prefix(&rep.output, N)
                        })();
                        match resumed {
                            Ok(got) => assert_eq!(
                                got, want,
                                "torn@{torn_after}: resume produced wrong bytes"
                            ),
                            Err(e) => assert!(
                                matches!(e, PdmError::Corrupt { .. }),
                                "torn@{torn_after}: resume must re-detect corruption, got: {e}"
                            ),
                        }
                    }
                }
            }
        }
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::remove_dir_all(&ckdir).ok();
    }
    assert!(
        corrupt_seen >= 1,
        "sweep never tripped a checksum — torn-write points need retuning"
    );
}

#[test]
fn full_stack_transient_faults_retry_and_checkpoints_compose() {
    // The production CLI stack: FileStorage → FlakyStorage(transient) →
    // RetryingStorage, with checkpoints on. The run must complete
    // correctly, record every pass, and show healed retries.
    let data = workload();
    let digest = digest_of(&data);
    let (want, total_passes) = reference_run(&data, false);
    let scratch = unique_dir("scratch");
    let ckdir = unique_dir("ck");
    let cfg = PdmConfig::square(D, B);
    let file = FileStorage::<u64>::create(&scratch, D, B).unwrap();
    let flaky = FlakyStorage::new(
        file,
        FailMode::TransientRate { seed: 99, rate_ppm: 10_000 },
    );
    let retrying = RetryingStorage::new(
        flaky,
        RetryPolicy { max_attempts: 6, backoff_steps: 2 },
    );
    let counters = retrying.counters();
    let mut pdm = Pdm::with_storage(cfg, retrying).unwrap();
    pdm.attach_retry_counters(counters.clone());
    let input = pdm.alloc_region_for_keys(N).unwrap();
    pdm.ingest(&input, &data).unwrap();
    let store = CheckpointStore::create(&ckdir).unwrap();
    pdm.attach_checkpoint(store, fresh_manifest(&cfg, digest));
    let rep = pdm_sort::three_pass1(&mut pdm, &input, N).unwrap();
    assert!(pdm.take_checkpoint_error().is_none());
    // Snapshot before `inspect_prefix`: the verification reads below go
    // through the same retrying stack and would advance the live counters
    // past the machine's last phase-boundary fold.
    let snap = counters.snapshot();
    assert!(snap.total_retries() > 0, "1% fault rate never fired");
    assert_eq!(snap.exhausted, 0);
    // Retries show up in the machine's own stats at phase boundaries.
    let folded = pdm.stats().retry.clone();
    assert_eq!(folded.reads_retried, snap.reads_retried);
    assert_eq!(folded.writes_retried, snap.writes_retried);
    assert_eq!(pdm.inspect_prefix(&rep.output, N).unwrap(), want);
    // Every pass got a durable checkpoint.
    let latest = CheckpointStore::create(&ckdir)
        .unwrap()
        .load_latest()
        .unwrap()
        .unwrap();
    assert_eq!(latest.completed, total_passes);
    assert_eq!(latest.phases.len(), total_passes);
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::remove_dir_all(&ckdir).ok();
}
