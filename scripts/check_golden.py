#!/usr/bin/env python3
"""Golden pass-count regression gate.

Runs `pdmsort sort --stats` for every case in results/golden_passes.json
and checks the measured read passes against the recorded expectation:
an exact value (± tol) for deterministic algorithms, a [min, max] band
for expected-case algorithms and baselines.

Usage:
    scripts/check_golden.py [--binary target/release/pdmsort]
                            [--golden results/golden_passes.json]
                            [--update]

--update rewrites the `exact` values in the golden file to the measured
ones (bands are left alone) — review the diff before committing it.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def key_kind(sort_args):
    """The record type a `--key KIND` in --sort-args selects (default u64).

    The gen invocation must produce the same record type the sort run is
    asked to assert, so the flag is forwarded to both.
    """
    args = list(sort_args)
    for i, a in enumerate(args):
        if a == "--key" and i + 1 < len(args):
            return args[i + 1]
        if a.startswith("--key="):
            return a.split("=", 1)[1]
    return "u64"


def run_case(binary, case, workdir, sort_args=()):
    inp = os.path.join(workdir, "in.keys")
    outp = os.path.join(workdir, "out.keys")
    stats = os.path.join(workdir, "stats.json")
    subprocess.run(
        [binary, "gen", str(case["n"]), inp,
         "--dist", case["dist"], "--seed", str(case["seed"]),
         "--key", key_kind(sort_args)],
        check=True, capture_output=True, text=True,
    )
    subprocess.run(
        [binary, "sort", inp, outp,
         "--disks", str(case["disks"]), "--b", str(case["b"]),
         "--algo", case["algo"], "--stats", stats, *sort_args],
        check=True, capture_output=True, text=True,
    )
    subprocess.run([binary, "verify", outp], check=True,
                   capture_output=True, text=True)
    with open(stats) as f:
        return json.load(f)


def check(expect, measured):
    """Return (ok, description-of-expectation)."""
    if "exact" in expect:
        tol = expect.get("tol", 0.01)
        return (abs(measured - expect["exact"]) <= tol,
                f"= {expect['exact']} ± {tol}")
    return (expect["min"] <= measured <= expect["max"],
            f"in [{expect['min']}, {expect['max']}]")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", default="target/release/pdmsort")
    ap.add_argument("--golden", default="results/golden_passes.json")
    ap.add_argument("--update", action="store_true",
                    help="rewrite exact expectations to the measured values")
    ap.add_argument("--sort-args", default="",
                    help="extra args appended to every `pdmsort sort` call, "
                         "e.g. --sort-args='--threads 0' for a binary built "
                         "with the parallel feature")
    args = ap.parse_args()
    sort_args = args.sort_args.split()

    with open(args.golden) as f:
        golden = json.load(f)

    failures = 0
    kind = key_kind(sort_args)
    for case in golden["cases"]:
        if case["algo"] == "radix" and kind != "u64":
            # Radix sorts by integer rank; key–payload and string records
            # are comparison-only by design, so the case does not apply.
            print(f"skip {case['name']}: radix is u64-only (--key {kind})")
            continue
        with tempfile.TemporaryDirectory(prefix="pdm-golden-") as wd:
            try:
                artifact = run_case(args.binary, case, wd, sort_args)
            except subprocess.CalledProcessError as e:
                print(f"FAIL {case['name']}: pdmsort exited "
                      f"{e.returncode}\n{e.stderr}")
                failures += 1
                continue
        measured = artifact["read_passes"]
        expect = case["read_passes"]
        ok, desc = check(expect, measured)
        status = "ok  " if ok else "FAIL"
        print(f"{status} {case['name']}: read passes {measured:.3f} "
              f"(expected {desc}, fell_back={artifact.get('fell_back')})")
        if not ok:
            failures += 1
        if args.update and "exact" in expect:
            expect["exact"] = round(measured, 3)

    if args.update:
        with open(args.golden, "w") as f:
            json.dump(golden, f, indent=2)
            f.write("\n")
        print(f"updated {args.golden}")

    if failures:
        print(f"{failures} golden case(s) failed")
        return 1
    print("all golden cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
