#!/bin/bash
# Offline build + test harness.
#
# The growth container has no network access, so `cargo build` cannot fetch
# the external crates (serde, serde_json, crossbeam, rand, rayon). This
# script compiles the real workspace sources with bare rustc against the
# functional shims in scripts/offline/shims/ and, with --run, executes the
# unit- and integration-test binaries.
#
# What the shims cover honestly: rand is a real deterministic PRNG (not the
# StdRng stream), crossbeam channels wrap std::sync::mpsc, rayon's
# par_sort_unstable / par_chunks_mut are genuinely multi-threaded. What they
# do NOT cover: serde derives expand to nothing, so serde_json round-trip
# tests are compiled but skipped at runtime (--skip filters below). CI with
# network runs those against the real crates.
#
# Usage:
#   scripts/offline/check.sh            # compile everything (both feature legs)
#   scripts/offline/check.sh --run      # ...and run all test binaries
#   scripts/offline/check.sh --shims    # force shim rebuild
set -e
S="$(cd "$(dirname "$0")/shims" && pwd)"
REPO="$(cd "$S/../../.." && pwd)"
O="${PDM_OFFLINE_OUT:-/tmp/pdm-offline-out}"
R="$REPO/crates"
mkdir -p "$O"
cd "$O"

E="--edition 2021"
OPT="-C opt-level=2"
RUN=0
FORCE_SHIMS=0
for a in "$@"; do
  case "$a" in
    --run) RUN=1 ;;
    --shims) FORCE_SHIMS=1 ;;
  esac
done

if [ ! -f "$O/libserde.rlib" ] || [ "$FORCE_SHIMS" = 1 ]; then
  echo "== shims"
  rustc $E --crate-type proc-macro --crate-name serde_derive "$S/serde_derive.rs" -o "$O/libserde_derive.so"
  rustc $E $OPT --crate-type rlib --crate-name serde "$S/serde.rs" --extern serde_derive="$O/libserde_derive.so" -o "$O/libserde.rlib"
  rustc $E $OPT --crate-type rlib --crate-name serde_json "$S/serde_json.rs" -o "$O/libserde_json.rlib"
  rustc $E $OPT --crate-type rlib --crate-name crossbeam "$S/crossbeam.rs" -o "$O/libcrossbeam.rlib"
  rustc $E $OPT --crate-type rlib --crate-name rand "$S/rand.rs" -o "$O/librand.rlib"
  rustc $E $OPT --crate-type rlib --crate-name rayon "$S/rayon.rs" -o "$O/librayon.rlib"
fi

SERDE="--extern serde=$O/libserde.rlib --extern serde_derive=$O/libserde_derive.so"
XB="--extern crossbeam=$O/libcrossbeam.rlib"
RAND="--extern rand=$O/librand.rlib"
RAYON="--extern rayon=$O/librayon.rlib"
JSON="--extern serde_json=$O/libserde_json.rlib"

step() { echo "== $1"; shift; "$@"; }

# ---- library rlibs (sequential leg) ----------------------------------------
# pdm-uring is dependency-free by design (raw syscalls), so it builds first.
step pdm-uring rustc $E $OPT --crate-type rlib --crate-name pdm_uring "$R/pdm-uring/src/lib.rs" -o "$O/libpdm_uring.rlib"
PU="--extern pdm_uring=$O/libpdm_uring.rlib"
step pdm-model rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_model "$R/pdm-model/src/lib.rs" $SERDE $XB -o "$O/libpdm_model.rlib"
PM="--extern pdm_model=$O/libpdm_model.rlib"
# uring feature leg: io_uring submission path in the async file backend
step "pdm-model(uring)" rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_model --cfg 'feature="uring"' "$R/pdm-model/src/lib.rs" $SERDE $XB $PU -o "$O/libpdm_model_uring.rlib"
step pdm-theory rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_theory "$R/pdm-theory/src/lib.rs" $PM $RAND -o "$O/libpdm_theory.rlib"
PT="--extern pdm_theory=$O/libpdm_theory.rlib"
step pdm-lmm rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_lmm "$R/pdm-lmm/src/lib.rs" $PM $PT -o "$O/libpdm_lmm.rlib"
PL="--extern pdm_lmm=$O/libpdm_lmm.rlib"
step pdm-mesh rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_mesh "$R/pdm-mesh/src/lib.rs" $PM $RAYON -o "$O/libpdm_mesh.rlib"
PMESH="--extern pdm_mesh=$O/libpdm_mesh.rlib"
step pdm-sort rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_sort "$R/core/src/lib.rs" $PM $PT $PL $PMESH -o "$O/libpdm_sort.rlib"
PS="--extern pdm_sort=$O/libpdm_sort.rlib"
step pdm-baseline rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_baseline "$R/pdm-baseline/src/lib.rs" $PM $PS $RAND -o "$O/libpdm_baseline.rlib"
PB="--extern pdm_baseline=$O/libpdm_baseline.rlib"

# ---- pdm-sort `parallel` feature leg ---------------------------------------
step "pdm-sort(parallel)" rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_sort --cfg 'feature="parallel"' "$R/core/src/lib.rs" $PM $PT $PL $PMESH $RAYON -o "$O/libpdm_sort_par.rlib"
PSPAR="--extern pdm_sort=$O/libpdm_sort_par.rlib"

# ---- binaries ---------------------------------------------------------------
step pdm-cli rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_cli "$R/pdm-cli/src/lib.rs" $PM $PS $PB $PMESH $PT $RAND $SERDE $JSON -o "$O/libpdm_cli.rlib"
step pdm-cli-par rustc $E $OPT -L dependency=$O --crate-type rlib --crate-name pdm_cli --cfg 'feature="parallel"' "$R/pdm-cli/src/lib.rs" $PM $PSPAR $PB $PMESH $PT $RAND $SERDE $JSON -o "$O/libpdm_cli_par.rlib"
step pdmsort-bin rustc $E $OPT -L dependency=$O --crate-name pdmsort "$R/pdm-cli/src/main.rs" --extern pdm_cli="$O/libpdm_cli.rlib" $PM $PS $PB $PMESH $PT $RAND $SERDE $JSON -o "$O/pdmsort"
step pdmsort-bin-par rustc $E $OPT -L dependency=$O --crate-name pdmsort --cfg 'feature="parallel"' "$R/pdm-cli/src/main.rs" --extern pdm_cli="$O/libpdm_cli_par.rlib" $PM $PSPAR $PB $PMESH $PT $RAND $RAYON $SERDE $JSON -o "$O/pdmsort_par"
# Bench binaries get opt-level=3: the generic kernels monomorphize inside
# the bench crate, so this is where their codegen happens (matches the
# release profile real cargo would use).
OPT3="-C opt-level=3"
step bench-lib rustc $E $OPT3 -L dependency=$O --crate-type rlib --crate-name pdm_bench "$R/bench/src/lib.rs" $PM $PS $PB $PL $PMESH $PT $RAND $RAYON -o "$O/libpdm_bench.rlib"
step bench-bin rustc $E $OPT3 -L dependency=$O --crate-name pdm_bench_bin "$R/bench/src/bin/bench.rs" --extern pdm_bench="$O/libpdm_bench.rlib" $PM $PS $PB $PL $PMESH $PT $RAND $RAYON -o "$O/pdm-bench"
# parallel-leg bench binary: run_sort_par rows come from this one
step bench-lib-par rustc $E $OPT3 -L dependency=$O --crate-type rlib --crate-name pdm_bench --cfg 'feature="parallel"' "$R/bench/src/lib.rs" $PM $PSPAR $PB $PL $PMESH $PT $RAND $RAYON -o "$O/libpdm_bench_par.rlib"
step bench-bin-par rustc $E $OPT3 -L dependency=$O --crate-name pdm_bench_bin --cfg 'feature="parallel"' "$R/bench/src/bin/bench.rs" --extern pdm_bench="$O/libpdm_bench_par.rlib" $PM $PSPAR $PB $PL $PMESH $PT $RAND $RAYON -o "$O/pdm-bench-par"

# ---- unit-test binaries ------------------------------------------------------
step ut:pdm-uring rustc $E $OPT --test --crate-name pdm_uring_t "$R/pdm-uring/src/lib.rs" -o "$O/ut_pdm_uring"
step ut:pdm-model rustc $E $OPT -L dependency=$O --test --crate-name pdm_model_t "$R/pdm-model/src/lib.rs" $SERDE $XB $RAND $JSON -o "$O/ut_pdm_model"
step ut:pdm-model-uring rustc $E $OPT -L dependency=$O --test --crate-name pdm_model_uring_t --cfg 'feature="uring"' "$R/pdm-model/src/lib.rs" $SERDE $XB $PU $RAND $JSON -o "$O/ut_pdm_model_uring"
step ut:pdm-sort rustc $E $OPT -L dependency=$O --test --crate-name pdm_sort_t "$R/core/src/lib.rs" $PM $PT $PL $PMESH $RAND -o "$O/ut_pdm_sort"
step ut:pdm-sort-par rustc $E $OPT -L dependency=$O --test --crate-name pdm_sort_par_t --cfg 'feature="parallel"' "$R/core/src/lib.rs" $PM $PT $PL $PMESH $RAND $RAYON -o "$O/ut_pdm_sort_par"
step ut:pdm-lmm rustc $E $OPT -L dependency=$O --test --crate-name pdm_lmm_t "$R/pdm-lmm/src/lib.rs" $PM $PT $RAND -o "$O/ut_pdm_lmm"
step ut:pdm-theory rustc $E $OPT -L dependency=$O --test --crate-name pdm_theory_t "$R/pdm-theory/src/lib.rs" $PM $RAND -o "$O/ut_pdm_theory"
step ut:pdm-mesh rustc $E $OPT -L dependency=$O --test --crate-name pdm_mesh_t "$R/pdm-mesh/src/lib.rs" $PM $RAYON $RAND -o "$O/ut_pdm_mesh"
step ut:pdm-baseline rustc $E $OPT -L dependency=$O --test --crate-name pdm_baseline_t "$R/pdm-baseline/src/lib.rs" $PM $PS $RAND -o "$O/ut_pdm_baseline"
step ut:pdm-cli rustc $E $OPT -L dependency=$O --test --crate-name pdm_cli_t "$R/pdm-cli/src/lib.rs" $PM $PS $PB $PMESH $PT $RAND $SERDE $JSON -o "$O/ut_pdm_cli"

# ---- integration-test binaries (skip properties.rs: needs proptest) ---------
for t in end_to_end cross_algorithm backends fault_injection fault_matrix checkpoint_resume determinism stress zero_one_certificates kernel_equivalence overlap_depth_sweep records; do
  [ -f "$REPO/tests/$t.rs" ] || continue
  step "it:$t" rustc $E $OPT -L dependency=$O --test --crate-name "t_$t" "$REPO/tests/$t.rs" $PM $PS $PB $PMESH $PT $PL $RAND $JSON -o "$O/t_$t"
done
# kernel equivalence again, against the parallel-feature core
step "it:kernel_equivalence(par)" rustc $E $OPT -L dependency=$O --test --crate-name t_kernel_equivalence_par "$REPO/tests/kernel_equivalence.rs" $PM $PSPAR $PB $PMESH $PT $PL $RAND $JSON -o "$O/t_kernel_equivalence_par"
# determinism again, against the parallel-feature core: the transient-fault
# schedule test must hold with parallel kernels on and off
step "it:determinism(par)" rustc $E $OPT -L dependency=$O --test --crate-name t_determinism_par "$REPO/tests/determinism.rs" $PM $PSPAR $PB $PMESH $PT $PL $RAND $JSON -o "$O/t_determinism_par"

echo "BUILD OK"
[ "$RUN" = 1 ] || exit 0

# serde derives are no-ops offline, so anything that round-trips JSON through
# serde_json is compiled but cannot run; real CI covers those.
SERDE_SKIPS="--skip _json --skip json_round_trip --skip serde_round_trip --skip stats_artifact --skip events_file --skip events_stream --skip report_"

run() { echo "-- run $1"; shift; "$@"; }
run ut:pdm-uring "$O/ut_pdm_uring" -q
run ut:pdm-model "$O/ut_pdm_model" -q --skip events_serialize_as_tagged_json $SERDE_SKIPS
run ut:pdm-model-uring "$O/ut_pdm_model_uring" -q --skip events_serialize_as_tagged_json $SERDE_SKIPS
run ut:pdm-sort "$O/ut_pdm_sort" -q
run ut:pdm-sort-par "$O/ut_pdm_sort_par" -q
run ut:pdm-lmm "$O/ut_pdm_lmm" -q
run ut:pdm-theory "$O/ut_pdm_theory" -q
run ut:pdm-mesh "$O/ut_pdm_mesh" -q
run ut:pdm-baseline "$O/ut_pdm_baseline" -q
run ut:pdm-cli "$O/ut_pdm_cli" -q $SERDE_SKIPS
for t in end_to_end cross_algorithm backends fault_injection fault_matrix checkpoint_resume determinism stress zero_one_certificates kernel_equivalence overlap_depth_sweep records; do
  [ -x "$O/t_$t" ] || continue
  run "it:$t" "$O/t_$t" -q $SERDE_SKIPS
done
[ -x "$O/t_kernel_equivalence_par" ] && run "it:kernel_equivalence(par)" "$O/t_kernel_equivalence_par" -q
[ -x "$O/t_determinism_par" ] && run "it:determinism(par)" "$O/t_determinism_par" -q $SERDE_SKIPS
echo "ALL TESTS OK"
