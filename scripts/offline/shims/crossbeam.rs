//! crossbeam shim over std::sync::mpsc for offline typechecking.
//!
//! Functional where the workspace needs it: `is_empty`/`len` are backed by
//! a shared depth counter (incremented on send, decremented on successful
//! recv), so overlap readiness polling behaves like real crossbeam.
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError};

    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
        depth: Arc<AtomicUsize>,
    }
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
                depth: self.depth.clone(),
            }
        }
    }
    impl<T> Sender<T> {
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            // Count before sending so a receiver that observes the message
            // never observes a depth of zero for it.
            self.depth.fetch_add(1, Ordering::SeqCst);
            let r = self.tx.send(v);
            if r.is_err() {
                self.depth.fetch_sub(1, Ordering::SeqCst);
            }
            r
        }
    }

    pub struct Receiver<T> {
        rx: Arc<Mutex<mpsc::Receiver<T>>>,
        depth: Arc<AtomicUsize>,
    }
    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                rx: self.rx.clone(),
                depth: self.depth.clone(),
            }
        }
    }
    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let r = self.rx.lock().unwrap().recv();
            if r.is_ok() {
                self.depth.fetch_sub(1, Ordering::SeqCst);
            }
            r
        }
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            let r = self.rx.lock().unwrap().try_recv();
            if r.is_ok() {
                self.depth.fetch_sub(1, Ordering::SeqCst);
            }
            r
        }
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::SeqCst)
        }
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    pub struct Iter<'a, T>(&'a Receiver<T>);
    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx,
                depth: depth.clone(),
            },
            Receiver {
                rx: Arc::new(Mutex::new(rx)),
                depth,
            },
        )
    }
}
