//! serde_json shim for offline typechecking. Bodies diverge; never run.
use std::fmt;

#[derive(Debug)]
pub struct Error;
impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shim")
    }
}
impl std::error::Error for Error {}
impl From<Error> for std::io::Error {
    fn from(_: Error) -> Self {
        std::io::Error::other("shim")
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized>(_v: &T) -> Result<String> {
    unimplemented!()
}
pub fn to_string_pretty<T: ?Sized>(_v: &T) -> Result<String> {
    unimplemented!()
}
pub fn to_writer<W, T: ?Sized>(_w: W, _v: &T) -> Result<()> {
    unimplemented!()
}
pub fn from_str<T>(_s: &str) -> Result<T> {
    unimplemented!()
}

#[derive(Debug, Clone, PartialEq)]
pub struct Value;
impl Value {
    pub fn as_str(&self) -> Option<&str> {
        unimplemented!()
    }
    pub fn as_u64(&self) -> Option<u64> {
        unimplemented!()
    }
    pub fn as_i64(&self) -> Option<i64> {
        unimplemented!()
    }
    pub fn as_f64(&self) -> Option<f64> {
        unimplemented!()
    }
    pub fn as_bool(&self) -> Option<bool> {
        unimplemented!()
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        unimplemented!()
    }
    pub fn get<I>(&self, _index: I) -> Option<&Value> {
        unimplemented!()
    }
    pub fn is_null(&self) -> bool {
        unimplemented!()
    }
    pub fn is_string(&self) -> bool {
        unimplemented!()
    }
    pub fn is_boolean(&self) -> bool {
        unimplemented!()
    }
    pub fn is_number(&self) -> bool {
        unimplemented!()
    }
    pub fn is_object(&self) -> bool {
        unimplemented!()
    }
    pub fn is_array(&self) -> bool {
        unimplemented!()
    }
}
impl<I> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, _index: I) -> &Value {
        unimplemented!()
    }
}
impl fmt::Display for Value {
    fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
        unimplemented!()
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, _other: &&str) -> bool {
        unimplemented!()
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, _other: &u64) -> bool {
        unimplemented!()
    }
}
