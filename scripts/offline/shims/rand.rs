//! rand shim for offline builds AND test execution.
//!
//! The container this repo grows in has no network access, so the real
//! `rand` crate cannot be fetched. This shim is functional: a splitmix64
//! core backs `gen`/`gen_range`/`gen_bool`/`shuffle`, so every test that
//! synthesizes inputs actually runs. It is NOT the real StdRng stream —
//! only determinism-per-seed matters for the offline harness. CI with
//! network uses the real crate via Cargo; nothing in the repo's committed
//! results depends on the exact stream.

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Integer / float generation, mirroring the subset of `rand::distributions`
/// the workspace uses.
pub trait FromRng: Sized + Copy {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    /// Uniform in `[lo, hi)`; `hi > lo` is the caller's obligation.
    fn from_span<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The next value up, saturating: used to widen `..=hi` into `..hi+1`.
    fn succ(self) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
            fn from_span<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn succ(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn from_span<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + Self::from_rng(rng) * (hi - lo)
    }
    fn succ(self) -> Self {
        self
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn from_span<R: RngCore + ?Sized>(_rng: &mut R, lo: Self, _hi: Self) -> Self {
        lo
    }
    fn succ(self) -> Self {
        self
    }
}

/// Both `lo..hi` and `lo..=hi` work with `gen_range`, as in real rand 0.8.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: FromRng> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::from_span(rng, self.start, self.end)
    }
}

impl<T: FromRng> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::from_span(rng, lo, hi.succ())
    }
}

pub trait Rng: RngCore {
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }
    fn gen_range<T: FromRng, S: SampleRange<T>>(&mut self, r: S) -> T {
        r.sample(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as FromRng>::from_rng(self) < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    pub struct StdRng {
        pub(crate) state: u64,
    }
    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }
    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0xA076_1D64_78BD_642F }
        }
    }

    pub mod mock {
        /// Arithmetic-progression RNG, same contract as rand's mock StepRng.
        pub struct StepRng {
            v: u64,
            step: u64,
        }
        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, step: increment }
            }
        }
        impl crate::RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

/// Process-local "entropy": good enough for examples; tests seed explicitly.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng { state: nanos ^ (std::process::id() as u64) << 32 }
}

pub mod seq {
    pub trait SliceRandom {
        fn shuffle<R: super::Rng + ?Sized>(&mut self, rng: &mut R);
    }
    impl<T> SliceRandom for [T] {
        fn shuffle<R: super::Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }
}
