//! serde shim: traits exist but carry no obligations; derives are no-ops.
pub use serde_derive::{Deserialize, Serialize};

pub trait Ser {}
impl<T: ?Sized> Ser for T {}
