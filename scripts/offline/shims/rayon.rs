//! rayon shim for offline builds.
//!
//! The hot entry points the workspace actually leans on for speed —
//! `par_sort_unstable` and `par_chunks_mut(..).for_each(..)` — are
//! genuinely parallel here (std::thread::scope over worker chunks), so
//! offline benchmark numbers reflect real concurrency. Everything else
//! (`par_iter`, `into_par_iter` on ranges) degrades to the std sequential
//! iterator, which is API-compatible for the combinators the workspace
//! uses (`map`, `filter`, `enumerate`, `min`, `max`, `collect`, ...).

use std::sync::atomic::{AtomicUsize, Ordering};

static POOL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn effective_threads() -> usize {
    let configured = POOL_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Returns the number of threads parallel operations will fan out to.
pub fn current_num_threads() -> usize {
    effective_threads()
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global pool already built")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        POOL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

pub mod prelude {
    use super::effective_threads;

    // ---- parallel sort ----------------------------------------------------

    pub trait ParallelSliceMut<T: Send> {
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        fn par_chunks_mut(&mut self, n: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            let threads = effective_threads();
            let n = self.len();
            if threads <= 1 || n < 2 * threads {
                self.sort_unstable();
                return;
            }
            // Sort `threads` nearly-equal chunks concurrently, then merge
            // pairs bottom-up. The final content is the unique sorted
            // permutation of the input, so output is byte-identical to
            // sort_unstable regardless of thread count.
            let chunk = n.div_ceil(threads);
            std::thread::scope(|s| {
                for piece in self.chunks_mut(chunk) {
                    s.spawn(|| piece.sort_unstable());
                }
            });
            let mut width = chunk;
            while width < n {
                let mut start = 0;
                while start + width < n {
                    let end = (start + 2 * width).min(n);
                    merge_runs(&mut self[start..end], width);
                    start = end;
                }
                width *= 2;
            }
        }

        fn par_chunks_mut(&mut self, n: usize) -> ParChunksMut<'_, T> {
            ParChunksMut { slice: self, chunk: n }
        }
    }

    /// Classic scratch-buffer merge of `v[..mid]` and `v[mid..]`. The left
    /// run is staged in raw storage and bitwise-moved back, which keeps the
    /// bound at `T: Ord` like rayon's own merge (keys here are plain ints).
    fn merge_runs<T: Ord>(v: &mut [T], mid: usize) {
        let len = v.len();
        if mid == 0 || mid == len || v[mid - 1] <= v[mid] {
            return;
        }
        let mut tmp: Vec<T> = Vec::with_capacity(mid);
        // SAFETY: tmp's capacity is `mid`; we bitwise-copy the left run in
        // and never set its length, so no element is dropped twice. Every
        // write below lands at index k <= j with k < j while j is unread,
        // so no live element is overwritten before it is consumed.
        unsafe {
            std::ptr::copy_nonoverlapping(v.as_ptr(), tmp.as_mut_ptr(), mid);
            let t = tmp.as_ptr();
            let p = v.as_mut_ptr();
            let (mut i, mut j, mut k) = (0usize, mid, 0usize);
            while i < mid && j < len {
                if *p.add(j) < *t.add(i) {
                    std::ptr::copy(p.add(j), p.add(k), 1);
                    j += 1;
                } else {
                    std::ptr::copy(t.add(i), p.add(k), 1);
                    i += 1;
                }
                k += 1;
            }
            while i < mid {
                std::ptr::copy(t.add(i), p.add(k), 1);
                i += 1;
                k += 1;
            }
        }
    }

    pub struct ParChunksMut<'a, T: Send> {
        slice: &'a mut [T],
        chunk: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Runs `f` over every chunk, distributing chunks across threads
        /// round-robin (chunks here are uniform rows, so this balances).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Send + Sync,
        {
            let threads = effective_threads();
            if threads <= 1 {
                for c in self.slice.chunks_mut(self.chunk) {
                    f(c);
                }
                return;
            }
            let mut buckets: Vec<Vec<&'a mut [T]>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, c) in self.slice.chunks_mut(self.chunk).enumerate() {
                buckets[i % threads].push(c);
            }
            std::thread::scope(|s| {
                for bucket in buckets {
                    let f = &f;
                    s.spawn(move || {
                        for c in bucket {
                            f(c);
                        }
                    });
                }
            });
        }

        /// Sequential fallback that yields `(index, chunk)` like rayon's
        /// enumerate; combinator chains beyond `for_each` are cold paths.
        pub fn enumerate(self) -> std::iter::Enumerate<std::slice::ChunksMut<'a, T>> {
            self.slice.chunks_mut(self.chunk).enumerate()
        }
    }

    // ---- parallel iterators (sequential stand-ins) ------------------------

    /// `into_par_iter()` hands back the std iterator: every combinator the
    /// workspace chains on it (`map`, `filter`, `min`, `max`, `collect`)
    /// then resolves to the sequential std implementation.
    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator,
    {
        type Iter = std::ops::Range<T>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` likewise degrades to the std shared-slice iterator.
    pub trait IntoParallelRefIterator<'a> {
        type Iter;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.as_slice().iter()
        }
    }
}
