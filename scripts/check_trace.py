#!/usr/bin/env python3
"""Chrome trace-event artifact gate.

Validates a `pdmsort sort --trace-out` file: the JSON shape Perfetto and
chrome://tracing accept, and the structural invariants the exporter
promises:

  * top level is `{"traceEvents": [...]}` (a bare event list is also
    accepted, as both loaders take it);
  * every event carries `ph`, `pid`, `tid`; duration events (`B`/`E`)
    also carry `name` and a numeric `ts`;
  * per (pid, tid) track, `B`/`E` events pair up like balanced brackets
    and timestamps are monotonically non-decreasing — each track is one
    worker recording its spans sequentially, so time never runs backward;
  * at least one span exists somewhere (an all-metadata trace means the
    instrumentation never fired);
  * with --disks D: one named track per disk worker (`diskN read`,
    `diskN write` for every N < D) plus the `phases` track, each named
    via `thread_name` metadata and each carrying at least one span.

Usage:
    scripts/check_trace.py trace.json [--disks D]
"""

import argparse
import json
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}")


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if isinstance(events, list):
            return events
        fail(f"{path}: object form must hold a 'traceEvents' list")
        return []
    fail(f"{path}: top level must be an object or a list")
    return []


def check_tracks(events, path):
    """Bracket-match B/E pairs and check ts monotonicity per track.

    Returns {(pid, tid): span_count} for the duration tracks and
    {(pid, tid): name} for tracks named via thread_name metadata.
    """
    spans = {}
    names = {}
    stacks = {}
    last_ts = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event #{i} is not an object")
            continue
        ph = ev.get("ph")
        if ph is None or "pid" not in ev or "tid" not in ev:
            fail(f"{path}: event #{i} lacks ph/pid/tid")
            continue
        key = (ev["pid"], ev["tid"])
        if ph == "M":
            if ev.get("name") == "thread_name":
                names[key] = ev.get("args", {}).get("name", "")
            continue
        if ph not in ("B", "E"):
            continue
        name = ev.get("name")
        ts = ev.get("ts")
        if not isinstance(name, str) or not isinstance(ts, (int, float)):
            fail(f"{path}: event #{i} ({ph}) lacks a name or numeric ts")
            continue
        if ts < last_ts.get(key, float("-inf")):
            fail(f"{path}: track {key}: ts runs backward at event #{i} "
                 f"({ts} after {last_ts[key]})")
        last_ts[key] = ts
        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append(name)
        else:
            if not stack:
                fail(f"{path}: track {key}: E '{name}' with no open B")
            elif stack[-1] != name:
                fail(f"{path}: track {key}: E '{name}' closes B "
                     f"'{stack[-1]}'")
            else:
                stack.pop()
                spans[key] = spans.get(key, 0) + 1
    for key, stack in stacks.items():
        if stack:
            fail(f"{path}: track {key}: {len(stack)} B event(s) never "
                 f"closed ({stack[-1]} deepest)")
    return spans, names


def check_disks(spans, names, disks, path):
    by_name = {name: key for key, name in names.items()}
    wanted = ["phases"]
    for d in range(disks):
        wanted += [f"disk{d} read", f"disk{d} write"]
    for name in wanted:
        key = by_name.get(name)
        if key is None:
            fail(f"{path}: no track named '{name}'")
        elif not spans.get(key):
            fail(f"{path}: track '{name}' has no spans")
        else:
            print(f"  ok: track '{name}': {spans[key]} span(s)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="trace-event JSON from --trace-out")
    ap.add_argument("--disks", type=int, default=None,
                    help="require one read + one write track per disk "
                         "0..D plus the phases track, each with spans")
    args = ap.parse_args()

    events = load_events(args.trace)
    spans, names = check_tracks(events, args.trace)
    total = sum(spans.values())
    if total == 0:
        fail(f"{args.trace}: no complete spans on any track")
    else:
        print(f"  ok: {total} span(s) across {len(spans)} track(s), "
              f"{len(names)} named track(s)")
    if args.disks is not None:
        check_disks(spans, names, args.disks, args.trace)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed")
        return 1
    print("\nall trace checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
