#!/usr/bin/env python3
"""Benchmark baseline gate.

Validates a `pdm-bench` JSON artifact (schema + structural invariants)
and, when given both a current run and the committed baseline, fails on
wall-clock regressions beyond a tolerance.

Structural invariants (always checked on the current file):
  * the loser-tree merge must beat the BinaryHeap reference on every
    `kway_merge_*` row — the whole point of the kernel;
  * every threaded-backend algorithm row that reports a block-pool hit
    rate must stay above 90% (steady state recycles buffers).

Regression check (only for rows whose identity — name plus n/k/backend —
appears in both files): ns_per_key / loser_ns_per_key / wall_ms may not
exceed baseline by more than --tolerance (default 25%). Quick-mode runs
use smaller sizes, so most rows simply don't match the full-mode
baseline and only the schema + invariants apply.

Usage:
    scripts/check_bench.py --current out.json [--baseline BENCH_kernels.json]
                           [--tolerance 0.25]
"""

import argparse
import json
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}")


def require(obj, key, typ, ctx):
    if key not in obj:
        fail(f"{ctx}: missing key '{key}'")
        return None
    val = obj[key]
    if typ is float:
        if not isinstance(val, (int, float)) or isinstance(val, bool):
            fail(f"{ctx}: '{key}' should be a number, got {type(val).__name__}")
            return None
        return float(val)
    if not isinstance(val, typ):
        fail(f"{ctx}: '{key}' should be {typ.__name__}, got {type(val).__name__}")
        return None
    return val


def check_schema(doc, path):
    require(doc, "schema_version", int, path)
    require(doc, "quick", bool, path)
    require(doc, "parallel_build", bool, path)
    for row in require(doc, "kernels", list, path) or []:
        ctx = f"{path}:kernels[{row.get('name', '?')}]"
        require(row, "name", str, ctx)
        require(row, "n", int, ctx)
        require(row, "ns_per_key", float, ctx)
        require(row, "allocs", int, ctx)
    for row in require(doc, "merges", list, path) or []:
        ctx = f"{path}:merges[{row.get('name', '?')}]"
        require(row, "name", str, ctx)
        require(row, "n", int, ctx)
        require(row, "k", int, ctx)
        require(row, "heap_ns_per_key", float, ctx)
        require(row, "loser_ns_per_key", float, ctx)
    for row in require(doc, "algorithms", list, path) or []:
        ctx = f"{path}:algorithms[{row.get('name', '?')}]"
        require(row, "name", str, ctx)
        require(row, "backend", str, ctx)
        require(row, "n", int, ctx)
        require(row, "wall_ms", float, ctx)
        require(row, "read_passes", float, ctx)
        require(row, "write_passes", float, ctx)


def check_invariants(doc, path):
    for row in doc.get("merges", []):
        name, n = row.get("name", "?"), row.get("n", 0)
        heap = row.get("heap_ns_per_key", 0.0)
        loser = row.get("loser_ns_per_key", float("inf"))
        if not loser < heap:
            fail(
                f"{path}: {name} n={n}: loser tree ({loser:.2f} ns/key) does "
                f"not beat heap ({heap:.2f} ns/key)"
            )
        else:
            print(f"  ok: {name} n={n}: loser {loser:.2f} < heap {heap:.2f} "
                  f"ns/key ({heap / loser:.2f}x)")
    for row in doc.get("algorithms", []):
        rate = row.get("pool_hit_rate")
        if rate is None:
            continue
        ident = f"{row.get('name', '?')}[{row.get('backend', '?')}]"
        if rate <= 0.9:
            fail(f"{path}: {ident}: pool hit rate {rate:.3f} <= 0.9")
        else:
            print(f"  ok: {ident}: pool hit rate {rate:.3f}")


def rows_by_identity(doc):
    out = {}
    for row in doc.get("kernels", []):
        out[("kernel", row.get("name"), row.get("n"))] = ("ns_per_key", row)
    for row in doc.get("merges", []):
        out[("merge", row.get("name"), row.get("n"), row.get("k"))] = (
            "loser_ns_per_key", row)
    for row in doc.get("algorithms", []):
        out[("algo", row.get("name"), row.get("backend"), row.get("n"))] = (
            "wall_ms", row)
    return out


def check_regressions(current, baseline, tolerance):
    base_rows = rows_by_identity(baseline)
    cur_rows = rows_by_identity(current)
    matched = 0
    for ident, (metric, cur) in cur_rows.items():
        if ident not in base_rows:
            continue
        _, base = base_rows[ident]
        b, c = base.get(metric), cur.get(metric)
        if not b or c is None:
            continue
        matched += 1
        ratio = c / b
        label = "/".join(str(p) for p in ident)
        if ratio > 1.0 + tolerance:
            fail(f"{label}: {metric} regressed {ratio:.2f}x "
                 f"({b:.2f} -> {c:.2f}, tolerance {1.0 + tolerance:.2f}x)")
        else:
            print(f"  ok: {label}: {metric} {b:.2f} -> {c:.2f} ({ratio:.2f}x)")
    print(f"compared {matched} row(s) against baseline")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", default="BENCH_kernels.json",
                    help="bench JSON to validate (default: the baseline itself)")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline to diff against (optional)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed slowdown fraction vs baseline (default 0.25)")
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    check_schema(current, args.current)
    check_invariants(current, args.current)

    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        check_schema(baseline, args.baseline)
        check_regressions(current, baseline, args.tolerance)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed")
        return 1
    print("\nall bench checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
