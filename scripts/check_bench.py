#!/usr/bin/env python3
"""Benchmark baseline gate.

Validates a `pdm-bench` JSON artifact (schema + structural invariants)
and, when given both a current run and the committed baseline, fails on
wall-clock regressions beyond a tolerance.

Structural invariants (always checked on the current file):
  * the loser-tree merge must beat the BinaryHeap reference on every
    `kway_merge_*` row — the whole point of the kernel;
  * every threaded-backend algorithm row that reports a block-pool hit
    rate must stay above 90% (steady state recycles buffers);
  * the run-formation A/B section: up/down run formation may never read
    more passes than greedy on any benched workload, and on the
    nearly-sorted workload it must strictly win with an average run
    length above memory (that is the 2-competitive strategy's whole
    claim — adaptive runs ≫ M on favorable inputs).

Overlap artifact (--overlap BENCH_overlap.json): validates the schema of
the read-ahead/write-behind A/B rows and gates the headline claim —
`seven_pass` with overlap on the duplex threaded backend must beat
blocking I/O by at least 20% wall-clock, every row must improve at all,
and the write-behind stall rate must stay under 75%. A "stall" only
means the depth-4 window was full and the caller briefly waited on the
oldest flush — a saturated write worker stalls on most batches while
still hiding a third of the wall clock, so the gate is set to catch
near-total serialization (stall rate approaching 100%), not steady-state
back-pressure. Pass counts in the artifact are
recorded from legs the bench itself asserts identical, so no cross-leg
check is needed here. Both A/B artifacts also fold the wall-clock
telemetry of the overlap leg into each row — merged per-disk read/write
service-latency p50/p99 plus the stall share of the run — and those are
gated too: percentiles must be present and non-zero, p50 <= p99, and the
stall share must be a valid fraction.

Real-disk artifact (--real-disk BENCH_realdisk.json): validates the
async-file backend A/B artifact and gates the headline real-disk claim —
`seven_pass` with overlap on must strictly beat overlap off. The smoke
run lands on tmpfs where I/O latency is tiny, so the gate only demands a
strict win (improvement > 0), not the 20% floor the latency-simulated
overlap artifact earns. The mergesort baseline row must be present, and
every sorter row must stay within the paper's constant pass budget (the
baseline's own pass count grows with n, so at smoke sizes it is not a
useful yardstick).

Fault artifact (--fault BENCH_fault.json): validates the fault-tolerance
overhead artifact and gates the "free when nothing fails" claim — arming
the full stack (file fault shim at a zero rate, completion-time retry,
checksums when compiled in) may cost at most 5% wall-clock over the
plain async-file stack, and the injected leg must show the machinery
actually healing retries.

Regression check (only for rows whose identity — name plus n/k/backend —
appears in both files): ns_per_key / loser_ns_per_key / wall_ms may not
exceed baseline by more than --tolerance (default 25%). Quick-mode runs
use smaller sizes, so most rows simply don't match the full-mode
baseline and only the schema + invariants apply.

Usage:
    scripts/check_bench.py --current out.json [--baseline BENCH_kernels.json]
                           [--tolerance 0.25] [--overlap BENCH_overlap.json]
    scripts/check_bench.py --real-disk BENCH_realdisk.json
"""

import argparse
import json
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}")


def require(obj, key, typ, ctx):
    if key not in obj:
        fail(f"{ctx}: missing key '{key}'")
        return None
    val = obj[key]
    if typ is float:
        if not isinstance(val, (int, float)) or isinstance(val, bool):
            fail(f"{ctx}: '{key}' should be a number, got {type(val).__name__}")
            return None
        return float(val)
    if not isinstance(val, typ):
        fail(f"{ctx}: '{key}' should be {typ.__name__}, got {type(val).__name__}")
        return None
    return val


def check_schema(doc, path):
    require(doc, "schema_version", int, path)
    require(doc, "quick", bool, path)
    require(doc, "parallel_build", bool, path)
    for row in require(doc, "kernels", list, path) or []:
        ctx = f"{path}:kernels[{row.get('name', '?')}]"
        require(row, "name", str, ctx)
        require(row, "n", int, ctx)
        require(row, "ns_per_key", float, ctx)
        require(row, "allocs", int, ctx)
    for row in require(doc, "merges", list, path) or []:
        ctx = f"{path}:merges[{row.get('name', '?')}]"
        require(row, "name", str, ctx)
        require(row, "n", int, ctx)
        require(row, "k", int, ctx)
        require(row, "heap_ns_per_key", float, ctx)
        require(row, "loser_ns_per_key", float, ctx)
    for row in require(doc, "algorithms", list, path) or []:
        ctx = f"{path}:algorithms[{row.get('name', '?')}]"
        require(row, "name", str, ctx)
        require(row, "backend", str, ctx)
        require(row, "n", int, ctx)
        require(row, "wall_ms", float, ctx)
        require(row, "read_passes", float, ctx)
        require(row, "write_passes", float, ctx)
    for row in require(doc, "run_gen", list, path) or []:
        ctx = f"{path}:run_gen[{row.get('workload', '?')}]"
        require(row, "workload", str, ctx)
        require(row, "n", int, ctx)
        require(row, "m", int, ctx)
        require(row, "greedy_runs", int, ctx)
        require(row, "greedy_read_passes", float, ctx)
        require(row, "greedy_write_passes", float, ctx)
        require(row, "updown_runs", int, ctx)
        require(row, "updown_avg_run_len", float, ctx)
        require(row, "updown_merge_levels", int, ctx)
        require(row, "updown_read_passes", float, ctx)
        require(row, "updown_write_passes", float, ctx)


def check_invariants(doc, path):
    for row in doc.get("merges", []):
        name, n = row.get("name", "?"), row.get("n", 0)
        heap = row.get("heap_ns_per_key", 0.0)
        loser = row.get("loser_ns_per_key", float("inf"))
        if not loser < heap:
            fail(
                f"{path}: {name} n={n}: loser tree ({loser:.2f} ns/key) does "
                f"not beat heap ({heap:.2f} ns/key)"
            )
        else:
            print(f"  ok: {name} n={n}: loser {loser:.2f} < heap {heap:.2f} "
                  f"ns/key ({heap / loser:.2f}x)")
    for row in doc.get("algorithms", []):
        rate = row.get("pool_hit_rate")
        if rate is None:
            continue
        ident = f"{row.get('name', '?')}[{row.get('backend', '?')}]"
        if rate <= 0.9:
            fail(f"{path}: {ident}: pool hit rate {rate:.3f} <= 0.9")
        else:
            print(f"  ok: {ident}: pool hit rate {rate:.3f}")
    check_run_gen_invariants(doc, path)


def check_run_gen_invariants(doc, path):
    """Gate the greedy-vs-up/down run-formation A/B.

    Up/down replacement selection is 2-competitive in run count, so on
    every benched workload its merge phase may not read more passes than
    greedy's fixed seven. On nearly-sorted input the strategy must
    actually cash in: strictly fewer read passes than greedy, runs
    strictly fewer than greedy's ⌈n/M⌉, and an average run length above
    memory capacity M.
    """
    rows = doc.get("run_gen", [])
    if not rows:
        fail(f"{path}: run_gen section is missing or empty")
        return
    by_workload = {row.get("workload"): row for row in rows}
    if "nearly-sorted" not in by_workload:
        fail(f"{path}: no run_gen row for the nearly-sorted workload")
    for row in rows:
        w, n = row.get("workload", "?"), row.get("n", 0)
        ident = f"run_gen {w} n={n}"
        grp = row.get("greedy_read_passes", 0.0)
        urp = row.get("updown_read_passes", float("inf"))
        if row.get("greedy_runs", 0) <= 0 or row.get("updown_runs", 0) <= 0:
            fail(f"{path}: {ident}: a leg produced zero runs")
        if grp <= 0 or urp <= 0:
            fail(f"{path}: {ident}: pass counters are empty — a leg did no I/O")
        if urp > grp:
            fail(f"{path}: {ident}: up/down reads {urp} passes > greedy's "
                 f"{grp} — the adaptive strategy lost its 2-competitive edge")
        else:
            print(f"  ok: {ident}: up/down {urp} <= greedy {grp} read passes "
                  f"({row.get('updown_runs')} vs {row.get('greedy_runs')} runs)")
    ns = by_workload.get("nearly-sorted")
    if ns is not None:
        ident = f"run_gen nearly-sorted n={ns.get('n', 0)}"
        if not ns.get("updown_read_passes", float("inf")) < ns.get(
                "greedy_read_passes", 0.0):
            fail(f"{path}: {ident}: up/down does not strictly beat greedy "
                 f"on the workload built for it")
        if not ns.get("updown_runs", float("inf")) < ns.get("greedy_runs", 0):
            fail(f"{path}: {ident}: up/down cut no fewer runs than greedy")
        avg, m = ns.get("updown_avg_run_len", 0.0), ns.get("m", 0)
        if avg <= m:
            fail(f"{path}: {ident}: average up/down run length {avg:.0f} "
                 f"<= M={m} — runs never grew past memory")
        else:
            print(f"  ok: {ident}: avg run length {avg:.0f} = "
                  f"{avg / max(m, 1):.1f}x memory capacity")


# Floors on (blocking - overlap) / blocking. seven_pass holds the bar for
# the coalesced deep pipeline; expected_two_pass must at least win, which
# proves the speculative pass-2 prefetch is not a regression in disguise.
OVERLAP_MIN_IMPROVEMENT = {"seven_pass": 0.45, "expected_two_pass": 0.0}
OVERLAP_MAX_FLUSH_STALL_RATE = 0.75
# Ceiling on the share of run wall time the overlap leg spends blocked in
# retirement waits. With grouped submissions amortizing the per-batch seek
# charge, seven_pass sits near 0.1; 0.45 catches a regression to the
# serialized-seek regime (where it measured ~0.7).
OVERLAP_MAX_STALL_SHARE = {"seven_pass": 0.45}


def check_wall_percentiles(row, ctx):
    """Schema + sanity for the folded wall-clock latency fields.

    Every A/B row carries the merged per-disk service-latency percentiles
    of its overlap leg (or its only leg, for the baseline). The recording
    backends time every kernel round, so a row that did I/O must report
    non-zero read and write percentiles, each p50 must not exceed its
    p99, and the stall share is a fraction of the stamped run wall time.
    """
    for key in ("read_p50_us", "read_p99_us", "write_p50_us",
                "write_p99_us", "stall_share"):
        require(row, key, float, ctx)
    for d in ("read", "write"):
        p50 = row.get(f"{d}_p50_us", 0.0)
        p99 = row.get(f"{d}_p99_us", 0.0)
        if p50 <= 0.0 or p99 <= 0.0:
            fail(f"{ctx}: {d} latency percentiles are zero — the backend "
                 f"recorded no wall-clock samples")
        elif p50 > p99:
            fail(f"{ctx}: {d} p50 {p50:.1f}µs exceeds p99 {p99:.1f}µs")
        else:
            print(f"  ok: {ctx}: {d} p50 {p50:.1f}µs <= p99 {p99:.1f}µs")
    share = row.get("stall_share", 0.0)
    if not 0.0 <= share <= 1.0:
        fail(f"{ctx}: stall_share {share} outside [0, 1]")
    else:
        print(f"  ok: {ctx}: stall share {share:.1%} of run wall time")


def check_overlap_schema(doc, path):
    require(doc, "schema_version", int, path)
    require(doc, "quick", bool, path)
    for row in require(doc, "overlap", list, path) or []:
        ctx = f"{path}:overlap[{row.get('name', '?')}]"
        require(row, "name", str, ctx)
        require(row, "n", int, ctx)
        require(row, "latency_us", int, ctx)
        require(row, "wall_ms_blocking", float, ctx)
        require(row, "wall_ms_overlap", float, ctx)
        require(row, "improvement", float, ctx)
        require(row, "read_passes", float, ctx)
        require(row, "write_passes", float, ctx)
        require(row, "prefetch_batches", int, ctx)
        require(row, "prefetch_stalls", int, ctx)
        require(row, "flush_batches", int, ctx)
        require(row, "flush_stalls", int, ctx)
        check_wall_percentiles(row, ctx)


def check_overlap_invariants(doc, path):
    rows = doc.get("overlap", [])
    if not rows:
        fail(f"{path}: overlap artifact has no rows")
    names = {row.get("name") for row in rows}
    for wanted in OVERLAP_MIN_IMPROVEMENT:
        if wanted not in names:
            fail(f"{path}: no overlap row for '{wanted}'")
    for row in rows:
        name, n = row.get("name", "?"), row.get("n", 0)
        ident = f"{name} n={n}"
        imp = row.get("improvement", 0.0)
        floor = OVERLAP_MIN_IMPROVEMENT.get(name, 0.0)
        if imp <= floor:
            fail(f"{path}: {ident}: overlap improvement {imp:.1%} <= "
                 f"required floor {floor:.0%}")
        else:
            print(f"  ok: {ident}: overlap beats blocking by {imp:.1%} "
                  f"(floor {floor:.0%})")
        if row.get("read_passes", 0) <= 0 or row.get("write_passes", 0) <= 0:
            fail(f"{path}: {ident}: pass counters are empty — the A/B "
                 f"legs did no I/O")
        batches = row.get("flush_batches", 0)
        if batches:
            stall_rate = row.get("flush_stalls", 0) / batches
            if stall_rate > OVERLAP_MAX_FLUSH_STALL_RATE:
                fail(f"{path}: {ident}: flush stall rate {stall_rate:.1%} > "
                     f"{OVERLAP_MAX_FLUSH_STALL_RATE:.0%} — write-behind is "
                     f"serializing instead of overlapping")
            else:
                print(f"  ok: {ident}: flush stall rate {stall_rate:.1%}")
        ceiling = OVERLAP_MAX_STALL_SHARE.get(name)
        if ceiling is not None:
            share = row.get("stall_share", 0.0)
            if share > ceiling:
                fail(f"{path}: {ident}: stall share {share:.1%} > "
                     f"{ceiling:.0%} — the overlap leg is back to waiting "
                     f"out per-batch seeks instead of hiding them")
            else:
                print(f"  ok: {ident}: stall share {share:.1%} "
                      f"(ceiling {ceiling:.0%})")


REALDISK_MUST_IMPROVE = {"seven_pass"}

# Largest read-pass count any PDM sorter row may report: the title's "small
# number of passes" is 7 (seven_pass is the deepest pipeline we bench).
REALDISK_PASS_BUDGET = 7.0


def check_realdisk_row(row, ctx):
    require(row, "name", str, ctx)
    require(row, "n", int, ctx)
    require(row, "wall_ms_blocking", float, ctx)
    require(row, "wall_ms_overlap", float, ctx)
    require(row, "improvement", float, ctx)
    require(row, "read_passes", float, ctx)
    require(row, "write_passes", float, ctx)
    check_wall_percentiles(row, ctx)


def check_realdisk_schema(doc, path):
    require(doc, "schema_version", int, path)
    require(doc, "quick", bool, path)
    backend = require(doc, "backend", str, path)
    if backend is not None and backend != "async-file":
        fail(f"{path}: real-disk artifact backend is '{backend}', "
             f"expected 'async-file'")
    require(doc, "direct_io", bool, path)
    for row in require(doc, "real_disk", list, path) or []:
        check_realdisk_row(row, f"{path}:real_disk[{row.get('name', '?')}]")
    baseline = require(doc, "baseline", dict, path)
    if baseline is not None:
        check_realdisk_row(baseline, f"{path}:baseline")


def check_realdisk_invariants(doc, path):
    rows = doc.get("real_disk", [])
    if not rows:
        fail(f"{path}: real-disk artifact has no rows")
    names = {row.get("name") for row in rows}
    for wanted in REALDISK_MUST_IMPROVE:
        if wanted not in names:
            fail(f"{path}: no real-disk row for '{wanted}'")
    for row in rows:
        name, n = row.get("name", "?"), row.get("n", 0)
        ident = f"{name} n={n}"
        if row.get("read_passes", 0) <= 0 or row.get("write_passes", 0) <= 0:
            fail(f"{path}: {ident}: pass counters are empty — the A/B "
                 f"legs did no I/O")
        imp = row.get("improvement", 0.0)
        if name in REALDISK_MUST_IMPROVE:
            if imp <= 0.0:
                fail(f"{path}: {ident}: overlap-on ({row.get('wall_ms_overlap')} ms) "
                     f"does not beat overlap-off "
                     f"({row.get('wall_ms_blocking')} ms) on real disk")
            else:
                print(f"  ok: {ident}: overlap beats blocking by {imp:.1%}")
        else:
            print(f"  ok: {ident}: improvement {imp:.1%} (informational)")
    baseline = doc.get("baseline") or {}
    if baseline.get("name") != "mergesort":
        fail(f"{path}: baseline row must be the naive external mergesort")
        return
    if baseline.get("read_passes", 0) <= 0 or baseline.get("write_passes", 0) <= 0:
        fail(f"{path}: mergesort baseline did no I/O")
    # The paper's currency: every sorter stays within a small constant pass
    # budget regardless of n. (The mergesort baseline's pass count grows
    # with n, so it is not a useful yardstick at smoke-test sizes.)
    for row in rows:
        rp = row.get("read_passes", float("inf"))
        if rp > REALDISK_PASS_BUDGET:
            fail(f"{path}: {row.get('name', '?')}: {rp} read passes exceeds "
                 f"the paper's {REALDISK_PASS_BUDGET}-pass budget")
        else:
            print(f"  ok: {row.get('name', '?')}: {rp} read passes within "
                  f"the {REALDISK_PASS_BUDGET}-pass budget")


# Fault tolerance must be (nearly) free when nothing goes wrong: arming
# the full stack — file fault shim at a zero rate, completion-time retry,
# checksum verification when compiled in — may cost at most this fraction
# of the plain stack's wall clock.
FAULT_MAX_OVERHEAD = 0.05
# Page-cache-speed smoke runs finish in single-digit milliseconds, where
# scheduler jitter alone exceeds 5%; a run within this absolute slack of
# the plain leg passes regardless of the ratio. Full-size runs are long
# enough that the relative ceiling is the binding constraint.
FAULT_ABS_SLACK_MS = 1.0


def check_fault_schema(doc, path):
    require(doc, "schema_version", int, path)
    require(doc, "quick", bool, path)
    backend = require(doc, "backend", str, path)
    if backend is not None and backend != "async-file":
        fail(f"{path}: fault artifact backend is '{backend}', "
             f"expected 'async-file'")
    require(doc, "checksums", bool, path)
    for row in require(doc, "fault", list, path) or []:
        ctx = f"{path}:fault[{row.get('name', '?')}]"
        require(row, "name", str, ctx)
        require(row, "n", int, ctx)
        require(row, "wall_ms_plain", float, ctx)
        require(row, "wall_ms_armed", float, ctx)
        require(row, "overhead", float, ctx)
        require(row, "wall_ms_injected", float, ctx)
        require(row, "retries_healed", int, ctx)
        require(row, "read_passes", float, ctx)
        require(row, "write_passes", float, ctx)


def check_fault_invariants(doc, path):
    rows = doc.get("fault", [])
    if not rows:
        fail(f"{path}: fault artifact has no rows")
    for row in rows:
        name, n = row.get("name", "?"), row.get("n", 0)
        ident = f"{name} n={n}"
        if row.get("read_passes", 0) <= 0 or row.get("write_passes", 0) <= 0:
            fail(f"{path}: {ident}: pass counters are empty — the legs "
                 f"did no I/O")
        overhead = row.get("overhead", float("inf"))
        delta_ms = row.get("wall_ms_armed", float("inf")) - row.get(
            "wall_ms_plain", 0.0)
        if overhead > FAULT_MAX_OVERHEAD and delta_ms > FAULT_ABS_SLACK_MS:
            fail(f"{path}: {ident}: zero-fault overhead {overhead:.1%} "
                 f"(+{delta_ms:.2f} ms) > {FAULT_MAX_OVERHEAD:.0%} and "
                 f"beyond the {FAULT_ABS_SLACK_MS:.1f} ms jitter slack — "
                 f"the armed stack is not free when nothing fails")
        else:
            print(f"  ok: {ident}: zero-fault overhead {overhead:.1%} "
                  f"(+{delta_ms:.2f} ms; ceiling {FAULT_MAX_OVERHEAD:.0%} "
                  f"or {FAULT_ABS_SLACK_MS:.1f} ms slack)")
        # The injected leg proves the machinery actually fires: a 1%
        # transient rate over thousands of block ops cannot heal nothing.
        if row.get("retries_healed", 0) <= 0:
            fail(f"{path}: {ident}: the injected leg healed zero retries — "
                 f"fault injection never reached the async workers")
        else:
            print(f"  ok: {ident}: injected leg healed "
                  f"{row['retries_healed']} retries "
                  f"({row.get('wall_ms_injected', 0):.2f} ms)")


def rows_by_identity(doc):
    out = {}
    for row in doc.get("kernels", []):
        out[("kernel", row.get("name"), row.get("n"))] = ("ns_per_key", row)
    for row in doc.get("merges", []):
        out[("merge", row.get("name"), row.get("n"), row.get("k"))] = (
            "loser_ns_per_key", row)
    for row in doc.get("algorithms", []):
        out[("algo", row.get("name"), row.get("backend"), row.get("n"))] = (
            "wall_ms", row)
    for row in doc.get("run_gen", []):
        out[("run_gen", row.get("workload"), row.get("n"))] = (
            "updown_read_passes", row)
    return out


def check_regressions(current, baseline, tolerance):
    base_rows = rows_by_identity(baseline)
    cur_rows = rows_by_identity(current)
    matched = 0
    for ident, (metric, cur) in cur_rows.items():
        if ident not in base_rows:
            continue
        _, base = base_rows[ident]
        b, c = base.get(metric), cur.get(metric)
        if not b or c is None:
            continue
        matched += 1
        ratio = c / b
        label = "/".join(str(p) for p in ident)
        if ratio > 1.0 + tolerance:
            fail(f"{label}: {metric} regressed {ratio:.2f}x "
                 f"({b:.2f} -> {c:.2f}, tolerance {1.0 + tolerance:.2f}x)")
        else:
            print(f"  ok: {label}: {metric} {b:.2f} -> {c:.2f} ({ratio:.2f}x)")
    print(f"compared {matched} row(s) against baseline")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", default="BENCH_kernels.json",
                    help="bench JSON to validate (default: the baseline itself)")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline to diff against (optional)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed slowdown fraction vs baseline (default 0.25)")
    ap.add_argument("--overlap", default=None,
                    help="overlap A/B artifact (BENCH_overlap.json) to "
                         "validate and gate")
    ap.add_argument("--real-disk", default=None, dest="real_disk",
                    help="real-disk A/B artifact (BENCH_realdisk.json) to "
                         "validate and gate; exclusive mode, mirrors "
                         "`pdm-bench --real-disk`")
    ap.add_argument("--fault", default=None,
                    help="fault-tolerance overhead artifact "
                         "(BENCH_fault.json) to validate and gate; exclusive "
                         "mode, mirrors `pdm-bench --fault-out`")
    args = ap.parse_args()

    if args.fault:
        with open(args.fault) as f:
            fault = json.load(f)
        check_fault_schema(fault, args.fault)
        check_fault_invariants(fault, args.fault)
        if FAILURES:
            print(f"\n{len(FAILURES)} check(s) failed")
            return 1
        print("\nall fault-tolerance checks passed")
        return 0

    if args.real_disk:
        with open(args.real_disk) as f:
            realdisk = json.load(f)
        check_realdisk_schema(realdisk, args.real_disk)
        check_realdisk_invariants(realdisk, args.real_disk)
        if FAILURES:
            print(f"\n{len(FAILURES)} check(s) failed")
            return 1
        print("\nall real-disk checks passed")
        return 0

    with open(args.current) as f:
        current = json.load(f)
    check_schema(current, args.current)
    check_invariants(current, args.current)

    if args.overlap:
        with open(args.overlap) as f:
            overlap = json.load(f)
        check_overlap_schema(overlap, args.overlap)
        check_overlap_invariants(overlap, args.overlap)

    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        check_schema(baseline, args.baseline)
        check_regressions(current, baseline, args.tolerance)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed")
        return 1
    print("\nall bench checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
