//! Integer sorting of 32-bit keys — the paper's §7 motivation:
//! "weather data, market data … the key size is no more than 32 bits.
//! The same is true for personal data kept by governments."
//!
//! Generates a synthetic weather-station archive (station id · hour
//! packed into a 32-bit key, with a payload handle), sorts it with
//! `RadixSort`, and compares against the general-purpose comparison path.
//!
//! ```text
//! cargo run --release -p pdm-integration --example weather_keys
//! ```

use pdm_model::prelude::*;
use rand::Rng;

fn main() -> Result<()> {
    let cfg = PdmConfig::square(4, 64); // M = 4096, B = 64, R = M/B = 64
    let n = 2_000_000usize;
    println!("synthesizing {n} weather observations (32-bit keys + payload)…");
    let mut rng = rand::thread_rng();
    let data: Vec<Tagged> = (0..n as u64)
        .map(|i| {
            let station: u32 = rng.gen_range(0..50_000);
            let hour: u32 = rng.gen_range(0..87_600); // 10 years hourly
            let key = ((station as u64) << 17) | hour as u64; // 32-ish bits
            Tagged::new(key, i) // payload = record locator
        })
        .collect();

    // RadixSort: passes grow like log(N/M)/log(M/B), independent of key
    // comparisons.
    let mut pdm: Pdm<Tagged> = Pdm::new(cfg)?;
    let input = pdm.alloc_region_for_keys(n)?;
    pdm.ingest(&input, &data)?;
    pdm.reset_stats();
    let rep = pdm_sort::radix_sort(&mut pdm, &input, n, 34)?;
    println!(
        "RadixSort:   {:>6.3} read passes, {:>6.3} write passes, {} rounds, {} in-memory segments",
        rep.report.read_passes, rep.report.write_passes, rep.max_rounds, rep.segments_sorted
    );
    let sorted = pdm.inspect_prefix(&rep.report.output, n)?;
    assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));

    // The comparison-based route for the same data (SevenPass territory —
    // n exceeds M√M here).
    let mut pdm2: Pdm<Tagged> = Pdm::new(cfg)?;
    let input2 = pdm2.alloc_region_for_keys(n)?;
    pdm2.ingest(&input2, &data)?;
    pdm2.reset_stats();
    let rep2 = pdm_sort::pdm_sort(&mut pdm2, &input2, n)?;
    println!(
        "{}:   {:>6.3} read passes, {:>6.3} write passes",
        rep2.algorithm, rep2.read_passes, rep2.write_passes
    );
    let sorted2 = pdm2.inspect_prefix(&rep2.output, n)?;
    assert_eq!(sorted, sorted2, "both paths must agree");
    println!("both paths verified identical ✓");
    println!(
        "(the paper's §7 point: for bounded integer keys the radix route beats\n the comparison route once N ≫ M√M — Theorem 7.2's pass count has no\n log(N!)-style comparison term)"
    );
    Ok(())
}
