//! Watch the 0-1 dirty band shrink — the structural invariant behind
//! every correctness proof in the paper (Theorem 3.1's "at most √M/2
//! dirty rows", the shuffling lemma's displacement window, Shearsort's
//! halving).
//!
//! Builds a 0-1 mesh, runs Shearsort phase by phase printing the dirty-row
//! count, then shows the same contraction inside `ThreePass1`'s pipeline
//! and the shuffling lemma's displacement measurement.
//!
//! ```text
//! cargo run --release -p pdm-integration --example dirty_bands
//! ```

use pdm_mesh::{dirty_row_count, Mesh};
use pdm_model::prelude::*;
use rand::seq::SliceRandom;
use rand::Rng;

fn main() -> Result<()> {
    let mut rng = rand::thread_rng();

    // 1. Shearsort's halving principle on a 64×64 0-1 mesh.
    let side = 64usize;
    let k = rng.gen_range(0..side * side);
    let mut bits: Vec<u8> = (0..side * side).map(|i| u8::from(i >= k)).collect();
    bits.shuffle(&mut rng);
    let mut mesh = Mesh::from_vec(side, side, bits);
    println!("Shearsort on a {side}x{side} 0-1 mesh ({k} zeros):");
    println!("  start: {} dirty rows", dirty_row_count(&mesh, 0, 1));
    for phase in 1..=pdm_mesh::shearsort::phases_needed(side) {
        pdm_mesh::shearsort::shear_phase(&mut mesh);
        println!(
            "  after phase {phase}: {} dirty rows (halving principle)",
            dirty_row_count(&mesh, 0, 1)
        );
    }

    // 2. ThreePass1's invariant: ≤ √M/2 dirty rows entering the cleanup.
    let b = 32usize;
    let n = b * b * b;
    let k = rng.gen_range(1..n);
    let mut data: Vec<u64> = (0..n).map(|i| u64::from(i >= k)).collect();
    data.shuffle(&mut rng);
    let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b))?;
    let input = pdm.alloc_region_for_keys(n)?;
    pdm.ingest(&input, &data)?;
    for alternate in [true, false] {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b))?;
        let input = pdm.alloc_region_for_keys(n)?;
        pdm.ingest(&input, &data)?;
        let d = pdm_sort::three_pass1::dirty_rows_after_pass2(
            &mut pdm,
            &input,
            n,
            pdm_sort::three_pass1::Options {
                alternate_directions: alternate,
            },
            0,
            1,
        )?;
        println!(
            "\nThreePass1 (N = M√M = {n}, alternating = {alternate}): {d} dirty rows after pass 2 (bound: √M/2 = {})",
            b / 2
        );
    }

    // 3. The shuffling lemma's displacement window.
    let (sn, q) = (1usize << 16, 1usize << 8);
    let trial = pdm_theory::shuffling::trial_max_displacement(sn, q, &mut rng);
    let bound = pdm_theory::displacement_bound(sn, q, 2.0);
    println!(
        "\nShuffling lemma (n = {sn}, q = {q}): measured max displacement {trial}, bound {bound:.0}"
    );
    println!("(the expected-pass algorithms pick N so this window fits one memory load)");
    Ok(())
}
