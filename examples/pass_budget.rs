//! Pass budgets in action: the expected-two-pass algorithm, its online
//! verification, and the fallback — the paper's central "good expected
//! performance" story (§5).
//!
//! Runs `ExpectedTwoPass` on (a) many random inputs and (b) an adversarial
//! reverse-sorted input, showing the detector catching the bad case and
//! the deterministic fallback rescuing it.
//!
//! ```text
//! cargo run --release -p pdm-integration --example pass_budget
//! ```

use pdm_model::prelude::*;
use rand::seq::SliceRandom;

fn main() -> Result<()> {
    let cfg = PdmConfig::square(4, 64); // M = 4096
    let m = cfg.mem_capacity;
    let cap = pdm_sort::expected_two_pass::capacity(m, 2.0);
    let n = (cap / m) * m;
    println!("M = {m}, Theorem 5.1 capacity(α=2) = {cap}; using N = {n}");
    println!(
        "paper: expected passes = 2(1−M^−α) + 5·M^−α (for M = 10^8: 2 + 3·10^−16)\n"
    );

    // (a) random inputs
    let trials = 25;
    let mut fallbacks = 0;
    let mut total_passes = 0.0;
    for t in 0..trials {
        let mut data: Vec<u64> = (0..n as u64).collect();
        data.shuffle(&mut rand::thread_rng());
        let mut pdm: Pdm<u64> = Pdm::new(cfg)?;
        let input = pdm.alloc_region_for_keys(n)?;
        pdm.ingest(&input, &data)?;
        pdm.reset_stats();
        let rep = pdm_sort::expected_two_pass(&mut pdm, &input, n)?;
        fallbacks += usize::from(rep.fell_back);
        total_passes += rep.read_passes;
        if t < 3 {
            println!(
                "random trial {t}: {:.3} read passes{}",
                rep.read_passes,
                if rep.fell_back { " (fell back!)" } else { "" }
            );
        }
    }
    println!(
        "…{trials} random trials: {fallbacks} fallbacks, mean {:.3} read passes\n",
        total_passes / trials as f64
    );

    // (b) the adversarial case
    let data: Vec<u64> = (0..(m * 64) as u64).rev().collect();
    let n_bad = data.len();
    let mut pdm: Pdm<u64> = Pdm::new(cfg)?;
    let input = pdm.alloc_region_for_keys(n_bad)?;
    pdm.ingest(&input, &data)?;
    pdm.reset_stats();
    let rep = pdm_sort::expected_two_pass(&mut pdm, &input, n_bad)?;
    println!(
        "adversarial reverse input (N = {n_bad}): fell_back = {}, {:.3} read passes",
        rep.fell_back, rep.read_passes
    );
    let out = pdm.inspect_prefix(&rep.output, n_bad)?;
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
    println!("output still correct ✓ (abort check + ThreePass2 fallback, ≤ 5 passes total)");

    // phase breakdown of the adversarial run
    println!("\nphase breakdown:");
    for ph in &pdm.stats().phases {
        println!(
            "  {:<28} {:>8} blocks read, {:>8} written",
            ph.name, ph.blocks_read, ph.blocks_written
        );
    }

    // stripe-efficiency timeline of a fresh, traced run (█ = full stripes)
    let mut pdm: Pdm<u64> = Pdm::new(cfg)?;
    let input = pdm.alloc_region_for_keys(n)?;
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rand::thread_rng());
    pdm.ingest(&input, &data)?;
    pdm.reset_stats();
    pdm.stats_mut().enable_trace(4096);
    let _ = pdm_sort::expected_two_pass(&mut pdm, &input, n)?;
    println!("\nper-batch stripe efficiency (ExpectedTwoPass, one char per I/O batch):");
    println!("{}", pdm.stats().trace_sparkline(cfg.num_disks, 96));
    Ok(())
}
