//! Quickstart: sort `M√M` keys on a simulated 4-disk PDM in three passes.
//!
//! ```text
//! cargo run --release -p pdm-integration --example quickstart
//! ```

use pdm_model::prelude::*;
use rand::seq::SliceRandom;

fn main() -> Result<()> {
    // A machine with D = 4 disks, block size B = √M = 64, memory M = 4096.
    let cfg = PdmConfig::square(4, 64);
    let mut pdm: Pdm<u64> = Pdm::new(cfg)?;
    println!(
        "PDM machine: D = {}, B = {}, M = {} keys",
        cfg.num_disks, cfg.block_size, cfg.mem_capacity
    );

    // N = M√M keys — the paper's headline problem size — already residing
    // on the disks (ingest is not charged as I/O).
    let n = cfg.mem_capacity * cfg.block_size;
    let mut data: Vec<u64> = (0..n as u64).collect();
    data.shuffle(&mut rand::thread_rng());
    let input = pdm.alloc_region_for_keys(n)?;
    pdm.ingest(&input, &data)?;
    println!("input: {n} keys (= M√M)");

    // Let the dispatcher pick the paper's cheapest algorithm for this N.
    let report = pdm_sort::pdm_sort(&mut pdm, &input, n)?;
    println!("algorithm: {}", report.algorithm);
    println!("read passes:  {:.3}", report.read_passes);
    println!("write passes: {:.3}", report.write_passes);
    println!(
        "peak internal memory: {} keys (limit {})",
        report.peak_mem,
        cfg.mem_limit()
    );
    println!(
        "disk parallelism: {:.1}% of stripe capacity used",
        100.0 * pdm.stats().read_parallel_efficiency(cfg.num_disks)
    );
    println!(
        "lower bound (Lemma 2.1): ≥ {:.2} passes",
        pdm_theory::av_min_passes(n, cfg.mem_capacity, cfg.block_size)
    );

    // Verify.
    let sorted = pdm.inspect_prefix(&report.output, n)?;
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    println!("output verified sorted ✓");
    Ok(())
}
