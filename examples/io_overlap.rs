//! I/O–computation overlap on the thread-per-disk backend — the
//! Dementiev–Sanders idea the paper cites ("overlaps I/O and computation
//! optimally", [11]).
//!
//! Streams the same data twice over disks with an emulated 500 µs/block
//! latency: once with blocking reads, once with the double-buffered
//! [`PrefetchReader`], doing a fixed slice of "computation" per stripe.
//!
//! ```text
//! cargo run --release -p pdm-integration --example io_overlap
//! ```

use pdm_model::prelude::*;
use std::time::{Duration, Instant};

fn main() -> Result<()> {
    let (d, b) = (4usize, 64usize);
    let latency = Duration::from_micros(500);
    let n = 256 * b; // 64 stripes
    let data: Vec<u64> = (0..n as u64).collect();
    let compute_per_stripe = Duration::from_millis(1);

    println!(
        "streaming {n} keys over {d} disks with {latency:?}/block latency, \
         {compute_per_stripe:?} of compute per stripe\n"
    );

    // blocking
    let storage = ThreadedStorage::<u64>::with_latency(d, b, latency);
    let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage)?;
    let r = pdm.alloc_region_for_keys(n)?;
    pdm.ingest(&r, &data)?;
    let t0 = Instant::now();
    let mut rd = RunReader::new(&pdm, r, n, d)?;
    let mut buf = Vec::new();
    let mut acc = 0u64;
    loop {
        buf.clear();
        if rd.take_into(&mut pdm, d * b, &mut buf)? == 0 {
            break;
        }
        acc ^= checksum(&buf);
        std::thread::sleep(compute_per_stripe);
    }
    let blocking = t0.elapsed();
    println!("blocking reads:   {blocking:>10.2?}   (I/O and compute serialized)");

    // overlapped
    let storage = ThreadedStorage::<u64>::with_latency(d, b, latency);
    let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage)?;
    let r = pdm.alloc_region_for_keys(n)?;
    pdm.ingest(&r, &data)?;
    let t0 = Instant::now();
    let mut rd = PrefetchReader::new(&mut pdm, r, n, d)?;
    let mut buf = Vec::new();
    let mut acc2 = 0u64;
    loop {
        buf.clear();
        if rd.take_into(&mut pdm, d * b, &mut buf)? == 0 {
            break;
        }
        acc2 ^= checksum(&buf);
        std::thread::sleep(compute_per_stripe);
    }
    let overlapped = t0.elapsed();
    println!("prefetch overlap: {overlapped:>10.2?}   (next stripe in flight during compute)");
    assert_eq!(acc, acc2, "both paths must read identical data");
    println!(
        "\nspeedup: {:.2}x (ideal: {:.2}x — max(io, compute) vs io + compute)",
        blocking.as_secs_f64() / overlapped.as_secs_f64(),
        (latency.as_secs_f64() + compute_per_stripe.as_secs_f64())
            / latency.as_secs_f64().max(compute_per_stripe.as_secs_f64())
    );
    println!("note: pass counts are identical either way — overlap buys wall-clock, not I/O.");
    Ok(())
}

fn checksum(chunk: &[u64]) -> u64 {
    chunk
        .iter()
        .fold(0u64, |acc, &k| acc.wrapping_add(k).rotate_left(7))
}
