//! Threaded storage: each disk is serviced by a *read worker* and a
//! *write worker* thread (a full-duplex disk), so batch I/O really does
//! proceed disk-parallel in wall-clock time and — with overlap enabled —
//! prefetches and flush-behinds on the same disk service concurrently
//! instead of convoying in a single queue.
//!
//! The logical cost model is identical across backends (the machine layer
//! does all accounting); this backend exists so the Criterion benches can
//! demonstrate the *wall-clock* `D`-way scaling that the PDM's parallel-step
//! metric predicts — the property the paper's "full parallelism" claims
//! (Thm 3.1 proof, §7) are about. The two workers of a disk share its data
//! array behind a mutex, but the emulated access latency is slept *outside*
//! the lock, so a disk's read stream and write stream genuinely overlap.
//! Synchronous callers can't tell: a blocking batch is all-reads or
//! all-writes and waits for every reply before returning, so duplexing only
//! shows up once the overlap layer keeps both streams in flight.
//!
//! Duplexing makes read-overtakes-write *possible* in the raw backend, so
//! the dispatch path tracks in-flight write slots and refuses a read of a
//! slot whose write has not retired ([`PdmError::ReadDuringFlush`]) rather
//! than returning whichever bytes win the race. The pipeline discipline
//! (write-behind drained before its region is re-read, enforced at every
//! phase boundary by the checkpoint guard) keeps correct code off that
//! path entirely.

use crate::error::{PdmError, Result};
use crate::key::PdmKey;
use crate::pool::{BlockPool, PoolStats};
use crate::stats::{DiskWallRec, SpanSink, StorageWallSnapshot};
use crate::storage::Storage;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `charge_latency` models seek/rotation cost: a disk pays it once per
/// batch it participates in (requests queued together stream back-to-back),
/// so only the first request of a dispatch sets it.
enum Request<K> {
    Read {
        slot: usize,
        charge_latency: bool,
        reply: Sender<Result<Vec<K>>>,
    },
    Write {
        slot: usize,
        data: Vec<K>,
        charge_latency: bool,
        reply: Sender<Result<()>>,
    },
    Ensure { slots: usize, reply: Sender<Result<()>> },
    Shutdown,
}

/// One disk's backing array, shared by its read and write workers. Only
/// the (cheap) copy in/out holds the lock; latency is slept before taking
/// it.
struct DiskData<K> {
    data: Vec<K>,
    allocated: usize,
}

struct DiskWorker<K: PdmKey> {
    disk: Arc<Mutex<DiskData<K>>>,
    block_size: usize,
    latency: Duration,
    rx: Receiver<Request<K>>,
    /// Shared with the owning [`ThreadedStorage`]: read replies are drawn
    /// from here, retired write payloads go back here.
    pool: Arc<BlockPool<K>>,
    /// Wall-clock recorder for this disk (latency histograms + queue
    /// gauge), shared by both of its workers and the dispatch side. One
    /// histogram sample covers one serviced block, emulated access latency
    /// included, queueing excluded.
    wall: Arc<DiskWallRec>,
    /// Span sink for trace export, set at most once after spawn; unset
    /// costs one lock-free check per serviced request.
    sink: Arc<OnceLock<Arc<SpanSink>>>,
    /// Trace track id of this worker (`2·disk` read side, `2·disk + 1`
    /// write side).
    track: u32,
    /// In-flight write slots for this disk (slot → outstanding count);
    /// the write worker decrements *after* committing, before replying.
    pending_writes: Arc<Mutex<HashMap<usize, usize>>>,
}

impl<K: PdmKey> DiskWorker<K> {
    fn run(self) {
        while let Ok(req) = self.rx.recv() {
            match req {
                Request::Read { slot, charge_latency, reply } => {
                    let t0 = Instant::now();
                    let res = self.read(slot, charge_latency);
                    self.retire(false, t0);
                    let _ = reply.send(res);
                }
                Request::Write { slot, data, charge_latency, reply } => {
                    let t0 = Instant::now();
                    let res = self.write(slot, &data, charge_latency);
                    self.retire(true, t0);
                    self.pool.put(data);
                    // Retire the hazard entry only once the bytes are
                    // committed, so a racing read check can never pass
                    // while stale data is still visible.
                    let mut pending = self.pending_writes.lock().unwrap();
                    if let Some(count) = pending.get_mut(&slot) {
                        *count -= 1;
                        if *count == 0 {
                            pending.remove(&slot);
                        }
                    }
                    drop(pending);
                    let _ = reply.send(res);
                }
                Request::Ensure { slots, reply } => {
                    let mut disk = self.disk.lock().unwrap();
                    if slots > disk.allocated {
                        disk.data.resize(slots * self.block_size, K::MAX);
                        disk.allocated = slots;
                    }
                    let _ = reply.send(Ok(()));
                }
                Request::Shutdown => break,
            }
        }
    }

    /// Record one serviced block into the wall recorder (and the span sink
    /// when trace export is live), then release its queue-gauge slot.
    fn retire(&self, write: bool, t0: Instant) {
        let t1 = Instant::now();
        let ns = t1.saturating_duration_since(t0).as_nanos() as u64;
        if write {
            self.wall.write.record(ns);
        } else {
            self.wall.read.record(ns);
        }
        if let Some(sink) = self.sink.get() {
            sink.record(self.track, if write { "write" } else { "read" }, t0, t1);
        }
        self.wall.queue_sub(1);
    }

    fn simulate_latency(&self, charge: bool) {
        if charge && !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }

    fn read(&self, slot: usize, charge_latency: bool) -> Result<Vec<K>> {
        self.simulate_latency(charge_latency);
        let disk = self.disk.lock().unwrap();
        if slot >= disk.allocated {
            return Err(PdmError::BadSlot {
                disk: usize::MAX,
                slot,
                allocated: disk.allocated,
            });
        }
        let off = slot * self.block_size;
        let mut buf = self.pool.get(self.block_size);
        buf.extend_from_slice(&disk.data[off..off + self.block_size]);
        Ok(buf)
    }

    fn write(&self, slot: usize, data: &[K], charge_latency: bool) -> Result<()> {
        if data.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: self.block_size,
            });
        }
        self.simulate_latency(charge_latency);
        let mut disk = self.disk.lock().unwrap();
        if slot >= disk.allocated {
            return Err(PdmError::BadSlot {
                disk: usize::MAX,
                slot,
                allocated: disk.allocated,
            });
        }
        let off = slot * self.block_size;
        disk.data[off..off + self.block_size].copy_from_slice(data);
        Ok(())
    }
}

/// Storage whose `D` disks are serviced by `2D` worker threads: one read
/// worker and one write worker per disk (a full-duplex disk model).
pub struct ThreadedStorage<K: PdmKey> {
    read_senders: Vec<Sender<Request<K>>>,
    write_senders: Vec<Sender<Request<K>>>,
    handles: Vec<JoinHandle<()>>,
    block_size: usize,
    pool: Arc<BlockPool<K>>,
    wall: Vec<Arc<DiskWallRec>>,
    sink: Arc<OnceLock<Arc<SpanSink>>>,
    /// Per-disk in-flight write slots, shared with that disk's write
    /// worker. Reads consult this before dispatch (see module docs).
    pending_writes: Vec<Arc<Mutex<HashMap<usize, usize>>>>,
}

impl<K: PdmKey> ThreadedStorage<K> {
    /// Spawn `num_disks` duplex worker pairs with zero emulated latency.
    pub fn new(num_disks: usize, block_size: usize) -> Self {
        Self::with_latency(num_disks, block_size, Duration::ZERO)
    }

    /// Spawn workers that sleep `latency` per serviced batch, emulating a
    /// disk with that access time.
    pub fn with_latency(num_disks: usize, block_size: usize, latency: Duration) -> Self {
        let mut read_senders = Vec::with_capacity(num_disks);
        let mut write_senders = Vec::with_capacity(num_disks);
        let mut handles = Vec::with_capacity(2 * num_disks);
        let mut wall = Vec::with_capacity(num_disks);
        let mut pending_writes = Vec::with_capacity(num_disks);
        let sink: Arc<OnceLock<Arc<SpanSink>>> = Arc::new(OnceLock::new());
        // Steady state keeps ~2 buffers per disk in flight (one being
        // filled/drained on each side of the channel); 4×D gives slack for
        // the overlap layer's double-buffering without unbounded retention.
        // Pinned to this storage's block size so a buffer from a different
        // geometry can never be recycled into our free list.
        let pool = Arc::new(BlockPool::for_blocks(4 * num_disks.max(1), block_size));
        for d in 0..num_disks {
            let disk = Arc::new(Mutex::new(DiskData::<K> {
                data: Vec::new(),
                allocated: 0,
            }));
            let rec = Arc::new(DiskWallRec::new());
            let pending = Arc::new(Mutex::new(HashMap::new()));
            for (kind, senders) in
                [("r", &mut read_senders), ("w", &mut write_senders)]
            {
                let (tx, rx) = unbounded();
                let worker = DiskWorker::<K> {
                    disk: Arc::clone(&disk),
                    block_size,
                    latency,
                    rx,
                    pool: Arc::clone(&pool),
                    wall: Arc::clone(&rec),
                    sink: Arc::clone(&sink),
                    track: (2 * d + usize::from(kind == "w")) as u32,
                    pending_writes: Arc::clone(&pending),
                };
                let h = std::thread::Builder::new()
                    .name(format!("pdm-disk-{d}{kind}"))
                    .spawn(move || worker.run())
                    .expect("spawn disk worker");
                senders.push(tx);
                handles.push(h);
            }
            wall.push(rec);
            pending_writes.push(pending);
        }
        Self {
            read_senders,
            write_senders,
            handles,
            block_size,
            pool,
            wall,
            sink,
            pending_writes,
        }
    }

    /// Traffic counters of the shared block-buffer pool. After warmup a
    /// steady-state sort should serve nearly every block from the free
    /// list (hit rate → 1.0).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Shared handle to the block-buffer pool (the overlap layer returns
    /// read buffers through this).
    pub(crate) fn pool_handle(&self) -> Arc<BlockPool<K>> {
        Arc::clone(&self.pool)
    }

    /// Cumulative wall-clock service time per disk, in nanoseconds: the
    /// time each worker spent actually reading/writing blocks (emulated
    /// latency included; queueing excluded). An imbalanced profile here is
    /// the wall-clock shadow of the step-count imbalance the
    /// [`crate::stats::IoStats`] per-disk counters record.
    ///
    /// Derived from the per-disk latency histograms (read sum + write sum),
    /// which keep exact sums alongside their log-bucketed counts.
    pub fn per_disk_service_nanos(&self) -> Vec<u64> {
        self.wall
            .iter()
            .map(|w| w.read.sum() + w.write.sum())
            .collect()
    }

    fn check_disk(&self, disk: usize) -> Result<()> {
        if disk >= self.read_senders.len() {
            return Err(PdmError::BadDisk {
                disk,
                num_disks: self.read_senders.len(),
            });
        }
        Ok(())
    }

    /// The read/write hazard gate (see module docs): a read of a slot whose
    /// overlapped write has not retired would race the duplex write stream,
    /// so it is refused outright. `check_disk` must have passed already.
    fn check_no_write_in_flight(&self, disk: usize, slot: usize) -> Result<()> {
        if self.pending_writes[disk].lock().unwrap().contains_key(&slot) {
            return Err(PdmError::ReadDuringFlush { disk, slot });
        }
        Ok(())
    }

    /// Marks the first request each disk sees in the current dispatch, so
    /// the worker charges its access latency once per batch rather than
    /// once per block (queued blocks stream back-to-back on a real disk).
    fn first_touch(seen: &mut Vec<bool>, disk: usize) -> bool {
        let first = !seen[disk];
        seen[disk] = true;
        first
    }

    /// Dispatch a batch of reads without waiting: returns one reply
    /// receiver per request (in request order). Used by the overlap layer.
    pub(crate) fn dispatch_reads(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Vec<Receiver<Result<Vec<K>>>>> {
        // A whole batch's reply buffers are in flight at once — and with
        // overlap enabled, a write batch may be too. Retaining less than
        // that re-allocates the excess on every batch.
        self.pool
            .reserve_retained(2 * reqs.len() + self.read_senders.len());
        let mut replies = Vec::with_capacity(reqs.len());
        let mut seen = vec![false; self.read_senders.len()];
        for &(disk, slot) in reqs {
            self.check_disk(disk)?;
            self.check_no_write_in_flight(disk, slot)?;
            let (tx, rx) = unbounded();
            let charge_latency = Self::first_touch(&mut seen, disk);
            self.wall[disk].queue_add(1);
            self.read_senders[disk]
                .send(Request::Read { slot, charge_latency, reply: tx })
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
            replies.push(rx);
        }
        Ok(replies)
    }

    /// Dispatch a batch of writes without waiting: `data` holds one block
    /// per request, staged into pooled buffers the workers return after
    /// committing. Returns the reply receivers.
    pub(crate) fn dispatch_writes(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Vec<Receiver<Result<()>>>> {
        let b = self.block_size;
        debug_assert_eq!(data.len(), reqs.len() * b);
        // Same in-flight reasoning as dispatch_reads.
        self.pool
            .reserve_retained(2 * reqs.len() + self.read_senders.len());
        let mut replies = Vec::with_capacity(reqs.len());
        let mut seen = vec![false; self.read_senders.len()];
        for (i, &(disk, slot)) in reqs.iter().enumerate() {
            self.check_disk(disk)?;
            let (tx, rx) = unbounded();
            let mut block = self.pool.get(b);
            block.extend_from_slice(&data[i * b..(i + 1) * b]);
            let charge_latency = Self::first_touch(&mut seen, disk);
            // Register the hazard before the worker can possibly see the
            // request; its write worker retires the entry after commit.
            *self.pending_writes[disk]
                .lock()
                .unwrap()
                .entry(slot)
                .or_insert(0) += 1;
            self.wall[disk].queue_add(1);
            self.write_senders[disk]
                .send(Request::Write {
                    slot,
                    data: block,
                    charge_latency,
                    reply: tx,
                })
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
            replies.push(rx);
        }
        Ok(replies)
    }

    fn fix_disk_in_err(e: PdmError, disk: usize) -> PdmError {
        match e {
            PdmError::BadSlot { slot, allocated, .. } => PdmError::BadSlot {
                disk,
                slot,
                allocated,
            },
            other => other,
        }
    }
}

impl<K: PdmKey> Storage<K> for ThreadedStorage<K> {
    fn num_disks(&self) -> usize {
        self.read_senders.len()
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        self.check_disk(disk)?;
        let (tx, rx) = unbounded();
        // Either worker could resize (the data is behind the shared lock);
        // routing through the write worker keeps the resize ordered after
        // any writes already queued for this disk.
        self.write_senders[disk]
            .send(Request::Ensure { slots, reply: tx })
            .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
        rx.recv()
            .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        self.check_disk(disk)?;
        if out.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.block_size,
            });
        }
        self.check_no_write_in_flight(disk, slot)?;
        let (tx, rx) = unbounded();
        self.wall[disk].queue_add(1);
        self.read_senders[disk]
            .send(Request::Read { slot, charge_latency: true, reply: tx })
            .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
        let data = rx
            .recv()
            .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?
            .map_err(|e| Self::fix_disk_in_err(e, disk))?;
        out.copy_from_slice(&data);
        self.pool.put(data);
        Ok(())
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        self.check_disk(disk)?;
        let (tx, rx) = unbounded();
        let mut block = self.pool.get(data.len());
        block.extend_from_slice(data);
        self.wall[disk].queue_add(1);
        self.write_senders[disk]
            .send(Request::Write {
                slot,
                data: block,
                charge_latency: true,
                reply: tx,
            })
            .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
        rx.recv()
            .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?
            .map_err(|e| Self::fix_disk_in_err(e, disk))
    }

    /// Dispatch all requests first, then collect replies — different disks
    /// service their queues concurrently, so a one-block-per-disk batch
    /// completes in one disk-latency rather than `D`.
    fn read_batch(&mut self, reqs: &[(usize, usize)], out: &mut [K]) -> Result<()> {
        let b = self.block_size;
        debug_assert_eq!(out.len(), reqs.len() * b);
        let pending = self.dispatch_reads(reqs)?;
        for (i, (&(disk, _), rx)) in reqs.iter().zip(pending).enumerate() {
            let data = rx
                .recv()
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?
                .map_err(|e| Self::fix_disk_in_err(e, disk))?;
            out[i * b..(i + 1) * b].copy_from_slice(&data);
            self.pool.put(data);
        }
        Ok(())
    }

    fn write_batch(&mut self, reqs: &[(usize, usize)], data: &[K]) -> Result<()> {
        debug_assert_eq!(data.len(), reqs.len() * self.block_size);
        let pending = self.dispatch_writes(reqs, data)?;
        for (&(disk, _), rx) in reqs.iter().zip(pending) {
            rx.recv()
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?
                .map_err(|e| Self::fix_disk_in_err(e, disk))?;
        }
        Ok(())
    }

    fn pool_stats(&self) -> Option<PoolStats> {
        Some(self.pool.stats())
    }

    fn wall_snapshot(&self) -> Option<StorageWallSnapshot> {
        Some(StorageWallSnapshot {
            disks: self.wall.iter().map(|w| w.snapshot()).collect(),
            uring: Default::default(),
        })
    }

    fn attach_span_sink(&mut self, sink: Arc<SpanSink>) {
        for d in 0..self.read_senders.len() {
            sink.register_track(2 * d as u32, &format!("disk{d} read"));
            sink.register_track(2 * d as u32 + 1, &format!("disk{d} write"));
        }
        let _ = self.sink.set(sink);
    }

    /// The worker threads service requests while the caller computes, so
    /// overlap genuinely hides latency here (unlike the eager defaults);
    /// each disk has independent read and write workers (duplex) and block
    /// buffers recycle through a pool.
    fn caps(&self) -> crate::storage::StorageCaps {
        crate::storage::StorageCaps {
            overlap: true,
            duplex: true,
            direct_io: false,
            checksums: false,
            pooled: true,
        }
    }

    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn crate::overlap::PendingRead<K> + Send>> {
        let replies = self.dispatch_reads(reqs)?;
        Ok(Box::new(crate::overlap::ThreadedPending::new(
            replies,
            self.block_size,
            self.pool_handle(),
        )))
    }

    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn crate::overlap::PendingWrite + Send>> {
        // dispatch_writes copies `data` into pooled buffers before
        // returning, honoring the copy-at-issue contract.
        let replies = self.dispatch_writes(reqs, data)?;
        Ok(Box::new(crate::overlap::ThreadedWritePending::new(replies)))
    }
}

impl<K: PdmKey> Drop for ThreadedStorage<K> {
    fn drop(&mut self) {
        for tx in self.read_senders.iter().chain(&self.write_senders) {
            let _ = tx.send(Request::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::machine::Pdm;

    #[test]
    fn round_trip_via_machine() {
        let cfg = PdmConfig::new(4, 8, 64);
        let storage = ThreadedStorage::<u64>::new(4, 8);
        let mut pdm = Pdm::with_storage(cfg, storage).unwrap();
        let r = pdm.alloc_region_for_keys(64).unwrap();
        let data: Vec<u64> = (0..64).map(|i| i * 7 % 64).collect();
        pdm.ingest(&r, &data).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn batch_io_is_disk_parallel_in_wall_clock() {
        use std::time::Instant;
        let d = 4;
        let lat = Duration::from_millis(3);
        let mut s = ThreadedStorage::<u64>::with_latency(d, 4, lat);
        for disk in 0..d {
            s.ensure_capacity(disk, 1).unwrap();
        }
        let reqs: Vec<(usize, usize)> = (0..d).map(|disk| (disk, 0)).collect();
        let mut out = vec![0u64; d * 4];
        // warm-up
        s.read_batch(&reqs, &mut out).unwrap();
        let t = Instant::now();
        for _ in 0..5 {
            s.read_batch(&reqs, &mut out).unwrap();
        }
        let parallel = t.elapsed();
        // Sequential lower bound would be 5 * D * lat = 60ms; parallel should
        // be near 5 * lat = 15ms. Use a generous threshold for CI noise.
        assert!(
            parallel < Duration::from_millis(45),
            "batch across {d} disks took {parallel:?}, expected ~{:?}",
            lat * 5
        );
    }

    #[test]
    fn errors_carry_correct_disk_index() {
        let mut s = ThreadedStorage::<u64>::new(2, 4);
        s.ensure_capacity(0, 1).unwrap();
        let mut out = [0u64; 4];
        match s.read_block(1, 5, &mut out) {
            Err(PdmError::BadSlot { disk, slot, .. }) => {
                assert_eq!(disk, 1);
                assert_eq!(slot, 5);
            }
            other => panic!("expected BadSlot, got {other:?}"),
        }
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let s = ThreadedStorage::<u64>::new(8, 16);
        drop(s); // must not hang or panic
    }

    #[test]
    fn per_disk_service_time_accumulates_and_balances() {
        let d = 4;
        let lat = Duration::from_millis(10);
        let mut s = ThreadedStorage::<u64>::with_latency(d, 4, lat);
        for disk in 0..d {
            s.ensure_capacity(disk, 2).unwrap();
        }
        assert_eq!(s.per_disk_service_nanos(), vec![0; d], "no I/O yet");
        // 3 blocks per disk, striped, dispatched as ONE batch: each disk
        // charges its access latency once for the whole batch.
        let reqs: Vec<(usize, usize)> = (0..3 * d).map(|i| (i % d, i / d % 2)).collect();
        let mut out = vec![0u64; reqs.len() * 4];
        s.read_batch(&reqs, &mut out).unwrap();
        let busy = s.per_disk_service_nanos();
        let floor = lat.as_nanos() as u64;
        let ceiling = (3 * lat).as_nanos() as u64;
        for (disk, &ns) in busy.iter().enumerate() {
            assert!(
                ns >= floor,
                "disk {disk} joined a batch at {lat:?} access cost but logged only {ns}ns"
            );
            assert!(
                ns < ceiling,
                "disk {disk} logged {ns}ns for a 3-block batch — latency is being \
                 charged per block again instead of per batch"
            );
        }
    }

    #[test]
    fn separate_batches_each_charge_latency() {
        let lat = Duration::from_millis(5);
        let mut s = ThreadedStorage::<u64>::with_latency(1, 4, lat);
        s.ensure_capacity(0, 1).unwrap();
        let mut out = vec![0u64; 4];
        for _ in 0..3 {
            s.read_batch(&[(0, 0)], &mut out).unwrap();
        }
        let ns = s.per_disk_service_nanos()[0];
        assert!(
            ns >= (3 * lat).as_nanos() as u64,
            "3 one-block batches must pay 3 access latencies, logged {ns}ns"
        );
    }

    #[test]
    fn duplex_disk_services_reads_and_writes_concurrently() {
        use std::time::Instant;
        let lat = Duration::from_millis(20);
        let mut s = ThreadedStorage::<u64>::with_latency(1, 4, lat);
        s.ensure_capacity(0, 2).unwrap();
        let payload = vec![3u64; 4];
        s.write_batch(&[(0, 0)], &payload).unwrap();
        // One write and one read in flight on the SAME disk, disjoint
        // slots: the duplex workers sleep their latencies concurrently,
        // so both retire in ~1 latency rather than 2.
        let t = Instant::now();
        let w = s.start_write_batch(&[(0, 1)], &payload).unwrap();
        let r = s.start_read_batch(&[(0, 0)]).unwrap();
        let mut out = vec![0u64; 4];
        r.wait(&mut out).unwrap();
        w.wait().unwrap();
        let both = t.elapsed();
        assert_eq!(out, payload);
        assert!(
            both < lat * 2,
            "read+write on one duplex disk took {both:?}; a shared queue \
             would serialize them to ≥ {:?}",
            lat * 2
        );
    }

    #[test]
    fn read_of_slot_with_write_in_flight_is_refused() {
        let lat = Duration::from_millis(50);
        let mut s = ThreadedStorage::<u64>::with_latency(1, 4, lat);
        s.ensure_capacity(0, 1).unwrap();
        let payload = vec![9u64; 4];
        // The write worker sleeps its access latency before committing, so
        // the hazard entry is reliably still registered when we read.
        let w = s.start_write_batch(&[(0, 0)], &payload).unwrap();
        let mut out = vec![0u64; 4];
        match s.read_batch(&[(0, 0)], &mut out) {
            Err(PdmError::ReadDuringFlush { disk: 0, slot: 0 }) => {}
            other => panic!("expected ReadDuringFlush, got {other:?}"),
        }
        // Once the write retires, the same read is clean.
        w.wait().unwrap();
        s.read_batch(&[(0, 0)], &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn wall_telemetry_records_histograms_gauges_and_spans() {
        let d = 2;
        let lat = Duration::from_millis(2);
        let mut s = ThreadedStorage::<u64>::with_latency(d, 4, lat);
        let sink = Arc::new(SpanSink::new(1 << 12));
        s.attach_span_sink(Arc::clone(&sink));
        for disk in 0..d {
            s.ensure_capacity(disk, 2).unwrap();
        }
        let reqs: Vec<(usize, usize)> = (0..2 * d).map(|i| (i % d, i / d)).collect();
        let data = vec![1u64; reqs.len() * 4];
        let mut out = vec![0u64; reqs.len() * 4];
        s.write_batch(&reqs, &data).unwrap();
        s.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(out, data);
        let snap = s.wall_snapshot().unwrap();
        assert_eq!(snap.disks.len(), d);
        for (disk, dw) in snap.disks.iter().enumerate() {
            assert_eq!(dw.read.count, 2, "disk {disk} read samples");
            assert_eq!(dw.write.count, 2, "disk {disk} write samples");
            // the first block of each batch charges the access latency
            assert!(
                dw.read.max >= lat.as_nanos() as u64,
                "disk {disk} read max {} below access latency",
                dw.read.max
            );
            // both blocks of a batch are queued before the first (which
            // sleeps the access latency) retires
            assert!(
                dw.queue_high_water >= 2,
                "disk {disk} queue high-water {} < 2",
                dw.queue_high_water
            );
        }
        // service totals derive from the histograms
        let nanos = s.per_disk_service_nanos();
        for (disk, dw) in snap.disks.iter().enumerate() {
            assert_eq!(nanos[disk], dw.read.sum + dw.write.sum);
        }
        // one span per serviced block, on the right named tracks
        let spans = sink.spans();
        assert_eq!(spans.len(), 2 * reqs.len());
        let tracks = sink.tracks();
        assert_eq!(tracks.len(), 2 * d);
        assert!(tracks.contains(&(0, "disk0 read".to_string())));
        assert!(tracks.contains(&(3, "disk1 write".to_string())));
        assert!(spans.iter().any(|sp| sp.tid == 1 && sp.name == "write"));
        assert!(spans.iter().any(|sp| sp.tid == 2 && sp.name == "read"));
    }

    #[test]
    fn block_buffers_are_recycled_across_batches() {
        let d = 4;
        let mut s = ThreadedStorage::<u64>::new(d, 8);
        for disk in 0..d {
            s.ensure_capacity(disk, 4).unwrap();
        }
        let reqs: Vec<(usize, usize)> = (0..2 * d).map(|i| (i % d, i / d)).collect();
        let data = vec![7u64; reqs.len() * 8];
        let mut out = vec![0u64; reqs.len() * 8];
        // Warmup primes the pool; everything after should be hits.
        s.write_batch(&reqs, &data).unwrap();
        s.read_batch(&reqs, &mut out).unwrap();
        let warm = s.pool_stats();
        for _ in 0..20 {
            s.write_batch(&reqs, &data).unwrap();
            s.read_batch(&reqs, &mut out).unwrap();
        }
        let st = s.pool_stats();
        assert_eq!(out, data);
        // A get can race ahead of the puts of in-flight buffers from the
        // same batch, so steady state may add a few buffers — but each
        // extra miss grows the pool permanently, so growth is bounded by
        // one batch's worth, never per-iteration.
        assert!(
            st.misses - warm.misses <= reqs.len() as u64,
            "steady state kept allocating block buffers: {st:?} after warmup {warm:?}"
        );
        assert!(st.hit_rate() > 0.9, "pool hit rate {:.3} ≤ 0.9: {st:?}", st.hit_rate());
        assert_eq!(st.returns, st.hits + st.misses, "every buffer handed out came back");
    }
}
