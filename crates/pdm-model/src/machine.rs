//! The PDM machine: storage + I/O accounting + tracked internal memory.
//!
//! [`Pdm`] is what algorithms program against. It exposes:
//!
//! * region allocation on the striped disks ([`Pdm::alloc_region`]),
//! * **accounted** batch block I/O ([`Pdm::read_blocks`] /
//!   [`Pdm::write_blocks`]) — every call updates [`IoStats`] with block
//!   counts and parallel-step costs,
//! * **tracked** internal-memory buffers ([`Pdm::alloc_buf`]),
//! * unaccounted `ingest`/`inspect` escape hatches for placing the input on
//!   disk and verifying the output (the input "already resides on the
//!   disks" in the model, so materializing it must not count as I/O).

use crate::checkpoint::{Checkpoint, CheckpointStore, Manifest};
use crate::config::PdmConfig;
use crate::error::{PdmError, Result};
use crate::key::PdmKey;
use crate::layout::Region;
use crate::mem::{MemTracker, TrackedBuf};
use crate::overlap::{
    DeferredReadCharge, PendingGuard, TrackedRead, TrackedWrite, DEFAULT_QUEUE_DEPTH,
};
use crate::stats::{IoStats, SpanSink};
use crate::storage::{MemStorage, Storage};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Checkpoint wiring of a machine: the store manifests are written to,
/// how many phases to replay without I/O, and bookkeeping carried between
/// the infallible phase boundaries.
struct CheckpointState {
    store: CheckpointStore,
    /// Identity of the run, filled into every emitted manifest.
    base: Manifest,
    /// Phases to replay without storage I/O (from the resume manifest).
    skip_phases: usize,
    /// Expected allocation frontier at the skip→live transition.
    resume_frontier: usize,
    /// Phases begun so far (replayed and live).
    phases_seen: usize,
    /// Names of completed phases (carried over on resume, then appended).
    completed_names: Vec<String>,
    /// First error deferred from an infallible boundary (manifest write
    /// failure or frontier drift). Surfaced via
    /// [`Checkpoint::take_checkpoint_error`].
    deferred: Option<PdmError>,
}

/// Feedback state for the adaptive overlap window (see
/// [`Pdm::set_overlap_autotune`]): the current budget plus the overlap
/// completion counters as of the last phase boundary, so each boundary
/// can steer on that phase's stall rate alone.
struct OverlapTuner {
    window_blocks: usize,
    last_completions: u64,
    last_stalls: u64,
}

/// A simulated parallel-disk machine over storage backend `S`.
pub struct Pdm<K: PdmKey, S: Storage<K> = MemStorage<K>> {
    cfg: PdmConfig,
    storage: S,
    stats: IoStats,
    mem: Arc<MemTracker>,
    /// Allocation frontier, identical on every disk (lockstep levels).
    next_slot: usize,
    /// Scratch: per-disk multiplicities of the current batch.
    disk_counts: Vec<u64>,
    /// Scratch: physical addresses of the current batch.
    addr_buf: Vec<(usize, usize)>,
    /// Live view of an attached retry layer's counters, folded into
    /// `stats.retry` at phase boundaries and sync points.
    retry: Option<crate::storage_retry::RetryCounters>,
    /// When set, block-pool occupancy is sampled into `pool.*` probe
    /// gauges at phase boundaries. Opt-in: pool traffic depends on the
    /// backend, and gauges would break probe-stream equality across
    /// backends for consumers that expect it.
    pool_gauges: bool,
    /// Last pool snapshot emitted as gauges, to skip no-change samples.
    last_pool: crate::pool::PoolStats,
    /// Checkpoint wiring, when attached (see [`Checkpoint`]).
    ckpt: Option<Box<CheckpointState>>,
    /// Whether algorithm pipelines should issue overlapped I/O
    /// (see [`Pdm::set_overlap`]). Off by default: overlap changes
    /// wall-clock only, never the accounted pass counts.
    overlap: bool,
    /// Explicit overlap window budget in blocks, when configured (see
    /// [`Pdm::set_overlap_window`]); `None` derives the default from the
    /// disk count and [`DEFAULT_QUEUE_DEPTH`].
    overlap_window: Option<usize>,
    /// Stall-feedback controller for the window budget, when enabled
    /// (see [`Pdm::set_overlap_autotune`]).
    overlap_tuner: Option<OverlapTuner>,
    /// Overlap tokens issued but not yet retired. Checkpoint boundaries
    /// refuse to persist a manifest while this is non-zero — a pending
    /// write means the disks are not settled.
    pending_io: Arc<AtomicUsize>,
    /// Span sink for wall-clock trace export, when attached (see
    /// [`Pdm::attach_span_sink`]): the machine records one span per named
    /// phase; the backend records per-service spans.
    span_sink: Option<Arc<SpanSink>>,
    /// The open phase's wall-clock span, closed at the next boundary.
    open_phase_wall: Option<(String, Instant)>,
    _key: std::marker::PhantomData<K>,
}

impl<K: PdmKey> Pdm<K, MemStorage<K>> {
    /// A machine with the default in-memory backend.
    pub fn new(cfg: PdmConfig) -> Result<Self> {
        let storage = MemStorage::new(cfg.num_disks, cfg.block_size);
        Self::with_storage(cfg, storage)
    }
}

impl<K: PdmKey, S: Storage<K>> Pdm<K, S> {
    /// A machine over an explicit storage backend (file-backed, threaded, …).
    pub fn with_storage(cfg: PdmConfig, storage: S) -> Result<Self> {
        cfg.validate()?;
        if storage.num_disks() != cfg.num_disks || storage.block_size() != cfg.block_size {
            return Err(PdmError::BadConfig(format!(
                "storage geometry ({} disks, B = {}) does not match config ({} disks, B = {})",
                storage.num_disks(),
                storage.block_size(),
                cfg.num_disks,
                cfg.block_size
            )));
        }
        Ok(Self {
            stats: IoStats::new(cfg.num_disks),
            mem: MemTracker::new(cfg.mem_limit()),
            next_slot: 0,
            disk_counts: vec![0; cfg.num_disks],
            addr_buf: Vec::new(),
            retry: None,
            pool_gauges: false,
            last_pool: crate::pool::PoolStats::default(),
            ckpt: None,
            overlap: false,
            overlap_window: None,
            overlap_tuner: None,
            pending_io: Arc::new(AtomicUsize::new(0)),
            span_sink: None,
            open_phase_wall: None,
            cfg,
            storage,
            _key: std::marker::PhantomData,
        })
    }

    /// Machine configuration.
    pub fn cfg(&self) -> &PdmConfig {
        &self.cfg
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Mutable access to the counters (for phase bracketing).
    pub fn stats_mut(&mut self) -> &mut IoStats {
        &mut self.stats
    }

    /// Reset all I/O counters (memory peak included). Trace and probe
    /// enablement survive the reset with their original caps, so callers
    /// that reset between staging and measurement keep observability on.
    pub fn reset_stats(&mut self) {
        let trace_cap = self.stats.trace_capacity();
        let probe_cap = self.stats.probe_capacity();
        self.stats = IoStats::new(self.cfg.num_disks);
        if let Some(cap) = trace_cap {
            self.stats.enable_trace(cap);
        }
        if let Some(cap) = probe_cap {
            self.stats.enable_probe(cap);
        }
        self.mem.reset_peak();
    }

    /// Attach a live view of a [`crate::storage_retry::RetryingStorage`]'s
    /// counters (obtained from
    /// [`crate::storage_retry::RetryingStorage::counters`] before the
    /// storage moves into the machine). The machine folds a snapshot into
    /// [`IoStats::retry`] — and drops `retry.*` probe gauges when the
    /// counters moved — at every phase boundary and sync point.
    pub fn attach_retry_counters(&mut self, counters: crate::storage_retry::RetryCounters) {
        self.retry = Some(counters);
    }

    /// Fold the attached retry counters (if any) into `stats.retry`,
    /// emitting probe gauges when they changed since the last fold.
    fn refresh_retry_stats(&mut self) {
        if let Some(c) = &self.retry {
            let snap = c.snapshot();
            if snap != self.stats.retry {
                self.stats
                    .probe_gauge("retry.retries", snap.total_retries() as i64);
                if snap.completion_retries() > 0 {
                    self.stats
                        .probe_gauge("retry.completion", snap.completion_retries() as i64);
                }
                self.stats.probe_gauge("retry.exhausted", snap.exhausted as i64);
                self.stats
                    .probe_gauge("retry.backoff_steps", snap.backoff_steps as i64);
                for (d, &n) in snap.per_disk_retries.iter().enumerate() {
                    if n > 0 {
                        self.stats
                            .probe_gauge(&format!("retry.disk{d}.retries"), n as i64);
                    }
                }
                self.stats.retry = snap;
            }
        }
    }

    /// Harvest the backend's cumulative wall-clock telemetry (per-disk
    /// latency histograms, queue gauges, uring counters) into
    /// [`IoStats::wall`]. The snapshot is cumulative, so each harvest
    /// overwrites the previous one — mirroring the retry fold above.
    /// Wall-clock only: no probe events, no step-counter effect.
    fn refresh_wall_stats(&mut self) {
        if let Some(w) = self.storage.wall_snapshot() {
            self.stats.wall.disks = w.disks;
            self.stats.wall.uring = w.uring;
        }
    }

    /// Attach a shared span sink for wall-clock trace export: the machine
    /// records one span per named phase on [`SpanSink::PHASE_TRACK`], and
    /// backends that time their I/O record one span per service operation
    /// on per-disk tracks. Purely observational — probe streams and step
    /// counters are identical with and without a sink attached.
    pub fn attach_span_sink(&mut self, sink: Arc<SpanSink>) {
        sink.register_track(SpanSink::PHASE_TRACK, "phases");
        self.storage.attach_span_sink(Arc::clone(&sink));
        self.span_sink = Some(sink);
    }

    /// Close the open phase span (if tracing) and optionally open a new one.
    fn roll_phase_span(&mut self, next: Option<String>) {
        if let Some(sink) = &self.span_sink {
            let now = Instant::now();
            if let Some((name, t0)) = self.open_phase_wall.take() {
                sink.record(SpanSink::PHASE_TRACK, &name, t0, now);
            }
            self.open_phase_wall = next.map(|n| (n, now));
        }
    }

    /// Block-buffer pool counters of the backend, when it has a pool
    /// (currently [`crate::storage_threaded::ThreadedStorage`]).
    pub fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        self.storage.pool_stats()
    }

    /// Sample `pool.hits` / `pool.misses` / `pool.free` probe gauges at
    /// phase boundaries. Off by default so probe streams stay byte-equal
    /// across backends; enable it when pool telemetry matters more.
    pub fn enable_pool_gauges(&mut self) {
        self.pool_gauges = true;
    }

    /// Emit pool gauges if enabled, the backend has a pool, and the
    /// counters moved since the last sample.
    fn refresh_pool_stats(&mut self) {
        if !self.pool_gauges {
            return;
        }
        if let Some(snap) = self.storage.pool_stats() {
            if snap != self.last_pool {
                self.last_pool = snap;
                self.stats.probe_gauge("pool.hits", snap.hits as i64);
                self.stats.probe_gauge("pool.misses", snap.misses as i64);
                self.stats.probe_gauge("pool.free", snap.free as i64);
            }
        }
    }

    /// Whether the machine is replaying already-checkpointed phases: block
    /// I/O and stats are elided until the first incomplete phase opens.
    fn replaying(&self) -> bool {
        self.ckpt
            .as_deref()
            .is_some_and(|c| c.skip_phases > 0 && c.phases_seen <= c.skip_phases)
    }

    /// Open a named phase, sampling memory gauges from the machine's
    /// [`MemTracker`] at the boundary (see [`IoStats::begin_phase_gauged`]).
    /// Algorithms should prefer this over `stats_mut().begin_phase` so that
    /// per-phase residency shows up in reports and probe streams (and so
    /// checkpoint replay can count phases).
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        let name = name.into();
        let frontier = self.next_slot;
        if let Some(c) = self.ckpt.as_deref_mut() {
            c.phases_seen += 1;
            if c.skip_phases > 0 && c.phases_seen <= c.skip_phases {
                return; // replayed phase: no stats, no storage I/O
            }
            // Skip→live transition: the algorithm has now replayed every
            // allocation the completed phases made, so the frontier must
            // match the checkpoint's. Drift means the allocation order
            // was not deterministic and the resumed run would read the
            // wrong regions.
            if c.skip_phases > 0
                && c.phases_seen == c.skip_phases + 1
                && frontier != c.resume_frontier
                && c.deferred.is_none()
            {
                c.deferred = Some(PdmError::BadConfig(format!(
                    "resume frontier mismatch: replayed allocations reached slot {frontier}, \
                     checkpoint recorded {}",
                    c.resume_frontier
                )));
            }
        }
        self.refresh_retry_stats();
        self.refresh_pool_stats();
        self.refresh_wall_stats();
        self.retune_overlap_window();
        self.roll_phase_span(Some(name.clone()));
        let (cur, peak) = (self.mem.current(), self.mem.peak());
        self.stats.begin_phase_gauged(name, cur, peak);
        // Opening a phase auto-closes the previous one at the stats layer;
        // checkpoint the just-closed phase so algorithms that bracket with
        // back-to-back begin_phase calls still checkpoint every pass.
        self.write_checkpoint();
    }

    /// Close the open phase with memory gauges sampled at the boundary.
    /// With a checkpoint attached, a completed live phase syncs the
    /// backend and atomically persists a manifest; failures there are
    /// deferred (see [`Checkpoint::take_checkpoint_error`]) so the phase
    /// boundary itself stays infallible.
    pub fn end_phase(&mut self) {
        if self.replaying() {
            return;
        }
        self.refresh_retry_stats();
        self.refresh_pool_stats();
        self.refresh_wall_stats();
        self.retune_overlap_window();
        self.roll_phase_span(None);
        let (cur, peak) = (self.mem.current(), self.mem.peak());
        self.stats.end_phase_gauged(cur, peak);
        self.write_checkpoint();
    }

    /// Persist a manifest for the just-closed phase, if a checkpoint store
    /// is attached and a new live phase actually closed.
    fn write_checkpoint(&mut self) {
        let Some(c) = self.ckpt.as_deref() else { return };
        let total = c.skip_phases + self.stats.phases.len();
        if total <= c.completed_names.len() {
            return; // end_phase without a newly closed phase
        }
        // The manifest asserts the pass's output is settled on disk; an
        // unretired overlap read/write means it is not. Refuse to persist a
        // manifest in that state rather than record a stale frontier.
        let pending = self.pending_io.load(Ordering::Relaxed);
        if pending > 0 {
            let c = self.ckpt.as_deref_mut().expect("checked above");
            if c.deferred.is_none() {
                c.deferred = Some(PdmError::PendingIo { pending });
            }
            return;
        }
        // Flush the backend before writing the manifest.
        let sync_res = self.storage.sync();
        let frontier = self.next_slot;
        let phases = &self.stats.phases;
        let c = self.ckpt.as_deref_mut().expect("checked above");
        if let Err(e) = sync_res {
            if c.deferred.is_none() {
                c.deferred = Some(e);
            }
            return;
        }
        for p in &phases[(c.completed_names.len() - c.skip_phases)..] {
            c.completed_names.push(p.name.clone());
        }
        let mut m = c.base.clone();
        m.completed = c.skip_phases + phases.len();
        m.frontier = frontier;
        m.phases = c.completed_names.clone();
        if let Err(e) = c.store.save(&m) {
            if c.deferred.is_none() {
                c.deferred = Some(e);
            }
        }
    }

    /// Attach a structured event probe to the machine's counters (see
    /// [`IoStats::enable_probe`]).
    pub fn enable_probe(&mut self, cap: usize) {
        self.stats.enable_probe(cap);
    }

    /// The internal-memory accountant.
    pub fn mem(&self) -> &Arc<MemTracker> {
        &self.mem
    }

    /// Allocate a tracked working buffer of `cap` keys.
    pub fn alloc_buf(&self, cap: usize) -> Result<TrackedBuf<K>> {
        TrackedBuf::with_capacity(&self.mem, cap)
    }

    /// Allocate a striped region of `num_blocks` blocks starting on disk 0.
    pub fn alloc_region(&mut self, num_blocks: usize) -> Result<Region> {
        self.alloc_region_at(num_blocks, 0)
    }

    /// Allocate a striped region whose logical block 0 lands on `start_disk`
    /// (diagonal striping for layouts that need rotated starts).
    pub fn alloc_region_at(&mut self, num_blocks: usize, start_disk: usize) -> Result<Region> {
        if start_disk >= self.cfg.num_disks {
            return Err(PdmError::BadDisk {
                disk: start_disk,
                num_disks: self.cfg.num_disks,
            });
        }
        let region = Region::new(
            self.next_slot,
            start_disk,
            num_blocks,
            self.cfg.num_disks,
            self.cfg.block_size,
        );
        let new_top = region.max_slot() + 1;
        for d in 0..self.cfg.num_disks {
            self.storage.ensure_capacity(d, new_top)?;
        }
        self.next_slot = new_top.max(self.next_slot);
        Ok(region)
    }

    /// Allocate a region just large enough for `n` keys (the last block is
    /// implicitly padded with `K::MAX`).
    pub fn alloc_region_for_keys(&mut self, n: usize) -> Result<Region> {
        self.alloc_region(self.cfg.blocks_for(n))
    }

    fn gather_addrs(&mut self, region: &Region, indices: &[usize]) -> Result<()> {
        self.addr_buf.clear();
        self.disk_counts.iter_mut().for_each(|c| *c = 0);
        for &i in indices {
            let a = region.addr(i)?;
            self.addr_buf.push((a.disk, a.slot));
            self.disk_counts[a.disk] += 1;
        }
        Ok(())
    }

    /// Read the given logical blocks of `region`, appending `B` keys per
    /// block to `out` in request order. Accounted: the batch costs
    /// `max(per-disk block count)` parallel read steps.
    pub fn read_blocks(&mut self, region: &Region, indices: &[usize], out: &mut Vec<K>) -> Result<()> {
        if self.replaying() {
            // Checkpoint replay: the phase already ran; hand back `K::MAX`
            // filler (monotone, so downstream sortedness checks stay
            // satisfied) without touching storage or stats.
            out.resize(out.len() + indices.len() * self.cfg.block_size, K::MAX);
            return Ok(());
        }
        self.gather_addrs(region, indices)?;
        let b = self.cfg.block_size;
        let start = out.len();
        out.resize(start + indices.len() * b, K::MAX);
        self.storage.read_batch(&self.addr_buf, &mut out[start..])?;
        self.stats.record_read_batch(&self.disk_counts);
        Ok(())
    }

    /// Write `data` (exactly `indices.len() × B` keys) to the given logical
    /// blocks of `region`. Accounted like [`Pdm::read_blocks`].
    pub fn write_blocks(&mut self, region: &Region, indices: &[usize], data: &[K]) -> Result<()> {
        if data.len() != indices.len() * self.cfg.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: indices.len() * self.cfg.block_size,
            });
        }
        if self.replaying() {
            return Ok(()); // checkpoint replay: the write already happened
        }
        self.gather_addrs(region, indices)?;
        self.storage.write_batch(&self.addr_buf, data)?;
        self.stats.record_write_batch(&self.disk_counts);
        Ok(())
    }

    fn gather_addrs_multi(&mut self, targets: &[(Region, usize)]) -> Result<()> {
        self.addr_buf.clear();
        self.disk_counts.iter_mut().for_each(|c| *c = 0);
        for &(region, i) in targets {
            let a = region.addr(i)?;
            self.addr_buf.push((a.disk, a.slot));
            self.disk_counts[a.disk] += 1;
        }
        Ok(())
    }

    /// Read one batch of blocks drawn from *multiple* regions —
    /// `sources[i]` is `(region, logical_block)`. Accounted as a single
    /// batch (steps = max per-disk multiplicity), which is how algorithms
    /// writing one block to each of many staggered regions keep full disk
    /// parallelism.
    ///
    /// # Example
    ///
    /// ```
    /// use pdm_model::prelude::*;
    /// let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 64)).unwrap();
    /// // four regions staggered across the four disks
    /// let regions: Vec<Region> = (0..4)
    ///     .map(|i| pdm.alloc_region_at(2, i).unwrap())
    ///     .collect();
    /// let targets: Vec<(Region, usize)> = regions.iter().map(|r| (*r, 0)).collect();
    /// pdm.write_blocks_multi(&targets, &vec![7u64; 32]).unwrap();
    /// // block 0 of each region is on a distinct disk → one parallel step
    /// assert_eq!(pdm.stats().write_steps, 1);
    /// let mut out = Vec::new();
    /// pdm.read_blocks_multi(&targets, &mut out).unwrap();
    /// assert_eq!(pdm.stats().read_steps, 1);
    /// ```
    pub fn read_blocks_multi(
        &mut self,
        sources: &[(Region, usize)],
        out: &mut Vec<K>,
    ) -> Result<()> {
        if self.replaying() {
            out.resize(out.len() + sources.len() * self.cfg.block_size, K::MAX);
            return Ok(());
        }
        self.gather_addrs_multi(sources)?;
        let b = self.cfg.block_size;
        let start = out.len();
        out.resize(start + sources.len() * b, K::MAX);
        self.storage.read_batch(&self.addr_buf, &mut out[start..])?;
        self.stats.record_read_batch(&self.disk_counts);
        Ok(())
    }

    /// Write one batch of blocks into multiple regions (see
    /// [`Pdm::read_blocks_multi`]).
    pub fn write_blocks_multi(&mut self, targets: &[(Region, usize)], data: &[K]) -> Result<()> {
        if data.len() != targets.len() * self.cfg.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: targets.len() * self.cfg.block_size,
            });
        }
        if self.replaying() {
            return Ok(()); // checkpoint replay: the write already happened
        }
        self.gather_addrs_multi(targets)?;
        self.storage.write_batch(&self.addr_buf, data)?;
        self.stats.record_write_batch(&self.disk_counts);
        Ok(())
    }

    /// Read logical blocks `start..start + count` of `region` (a *stripe
    /// read*: consecutive blocks hit all `D` disks round-robin, so `count`
    /// blocks cost `⌈count/D⌉` steps when `count` is stripe-aligned).
    pub fn read_range(
        &mut self,
        region: &Region,
        start: usize,
        count: usize,
        out: &mut Vec<K>,
    ) -> Result<()> {
        let idx: Vec<usize> = (start..start + count).collect();
        self.read_blocks(region, &idx, out)
    }

    /// Write `data` to logical blocks `start..` of `region`; `data` must be
    /// block-aligned (whole blocks).
    pub fn write_range(&mut self, region: &Region, start: usize, data: &[K]) -> Result<()> {
        let b = self.cfg.block_size;
        if data.len() % b != 0 {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: (data.len() / b + 1) * b,
            });
        }
        let count = data.len() / b;
        let idx: Vec<usize> = (start..start + count).collect();
        self.write_blocks(region, &idx, data)
    }

    /// Read the entire region (accounted). The caller is responsible for the
    /// result fitting in internal memory; pair with [`Pdm::alloc_buf`].
    pub fn read_region(&mut self, region: &Region, out: &mut Vec<K>) -> Result<()> {
        self.read_range(region, 0, region.len_blocks(), out)
    }

    /// Write an entire region (accounted); `data` is padded to a whole number
    /// of blocks with `K::MAX`.
    pub fn write_region(&mut self, region: &Region, data: &[K]) -> Result<()> {
        let total = region.len_keys();
        if data.len() > total {
            return Err(PdmError::RegionOutOfBounds {
                index: data.len(),
                len: total,
            });
        }
        if data.len() == total {
            return self.write_range(region, 0, data);
        }
        let mut padded = Vec::with_capacity(total);
        padded.extend_from_slice(data);
        padded.resize(total, K::MAX);
        self.write_range(region, 0, &padded)
    }

    /// Place input data into a region **without** I/O accounting: in the PDM
    /// the input already resides on the disks. Pads the final block with
    /// `K::MAX`.
    pub fn ingest(&mut self, region: &Region, data: &[K]) -> Result<()> {
        let b = self.cfg.block_size;
        if data.len() > region.len_keys() {
            return Err(PdmError::RegionOutOfBounds {
                index: data.len(),
                len: region.len_keys(),
            });
        }
        let mut block = vec![K::MAX; b];
        for i in 0..region.len_blocks() {
            let lo = i * b;
            let hi = ((i + 1) * b).min(data.len());
            if lo >= data.len() {
                block.iter_mut().for_each(|k| *k = K::MAX);
            } else {
                block[..hi - lo].copy_from_slice(&data[lo..hi]);
                block[hi - lo..].iter_mut().for_each(|k| *k = K::MAX);
            }
            let a = region.addr(i)?;
            self.storage.write_block(a.disk, a.slot, &block)?;
        }
        Ok(())
    }

    /// Read back a region **without** I/O accounting (verification only).
    pub fn inspect(&mut self, region: &Region) -> Result<Vec<K>> {
        let b = self.cfg.block_size;
        let mut out = vec![K::MAX; region.len_keys()];
        for i in 0..region.len_blocks() {
            let a = region.addr(i)?;
            self.storage.read_block(a.disk, a.slot, &mut out[i * b..(i + 1) * b])?;
        }
        Ok(out)
    }

    /// Read back the first `n` keys of a region without accounting (drops
    /// `K::MAX` padding of the tail).
    pub fn inspect_prefix(&mut self, region: &Region, n: usize) -> Result<Vec<K>> {
        let mut v = self.inspect(region)?;
        v.truncate(n);
        Ok(v)
    }

    /// Ask algorithm pipelines to drive the disks with overlapped I/O
    /// (prefetch read-ahead and flush-behind writes) instead of blocking
    /// batches. Purely a wall-clock lever: the step and pass accounting of
    /// every batch is charged at issue time with the same rules, so
    /// enabling overlap never changes the counted quantities. Defaults
    /// off; callers typically enable it when [`Storage::caps`] reports
    /// `overlap` — a genuinely asynchronous backend.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Whether algorithm pipelines should issue overlapped I/O.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// Override the overlap window budget, in **blocks** (`None` restores
    /// the derived default, `D × DEFAULT_QUEUE_DEPTH`). The budget bounds
    /// how much data [`crate::overlap::ReadAhead`] /
    /// [`crate::overlap::WriteBehind`] keep in flight; like
    /// [`Pdm::set_overlap`] it is purely a wall-clock lever — batches are
    /// charged at issue with the blocking rules at every budget, so the
    /// accounted pass and step counts never move. Values are clamped to at
    /// least one block; a budget smaller than one batch still admits one
    /// batch at a time (progress guarantee in the helpers).
    pub fn set_overlap_window(&mut self, blocks: Option<usize>) {
        self.overlap_window = blocks.map(|b| b.max(1));
        if let Some(t) = self.overlap_tuner.as_mut() {
            t.window_blocks = self
                .overlap_window
                .unwrap_or(self.cfg.num_disks * DEFAULT_QUEUE_DEPTH)
                .max(1);
        }
    }

    /// Enable (or disable) the stall-feedback controller: at every phase
    /// boundary the machine inspects the just-finished phase's overlap
    /// hit/stall counters and widens the window (×2, capped at 4× the
    /// derived default) when most retirements stalled, or narrows it (÷2,
    /// floored at one stripe) when stalls were rare — so a workload whose
    /// batch grain the static default mispredicts converges on its own
    /// budget. Wall-clock only: the tuner reads counters that overlap
    /// accounting already maintains and steers future issue depth, never
    /// the charging rules.
    pub fn set_overlap_autotune(&mut self, on: bool) {
        if !on {
            self.overlap_tuner = None;
            return;
        }
        let ov = &self.stats.overlap;
        self.overlap_tuner = Some(OverlapTuner {
            window_blocks: self.overlap_window_blocks(),
            last_completions: ov.prefetch_hits
                + ov.prefetch_stalls
                + ov.flush_hits
                + ov.flush_stalls,
            last_stalls: ov.prefetch_stalls + ov.flush_stalls,
        });
    }

    /// The current overlap window budget in blocks: the autotuned value
    /// when the feedback controller is on, else the configured override,
    /// else `D × DEFAULT_QUEUE_DEPTH` — deep enough that `D`-block
    /// sub-batches pipeline `DEFAULT_QUEUE_DEPTH` deep per disk, while a
    /// full-stripe pipeline at the same budget keeps the classic handful
    /// of batches in flight.
    pub fn overlap_window_blocks(&self) -> usize {
        if let Some(t) = &self.overlap_tuner {
            return t.window_blocks;
        }
        self.overlap_window
            .unwrap_or(self.cfg.num_disks * DEFAULT_QUEUE_DEPTH)
            .max(1)
    }

    /// Steer the adaptive window from the last phase's stall rate (see
    /// [`Pdm::set_overlap_autotune`]). Called at phase boundaries, where
    /// the pipelines' helpers have drained — the next phase's helpers
    /// snapshot the adjusted budget at construction.
    fn retune_overlap_window(&mut self) {
        let default_window = (self.cfg.num_disks * DEFAULT_QUEUE_DEPTH).max(1);
        let floor = self.cfg.num_disks.max(1);
        let Some(t) = self.overlap_tuner.as_mut() else {
            return;
        };
        let ov = &self.stats.overlap;
        let completions =
            ov.prefetch_hits + ov.prefetch_stalls + ov.flush_hits + ov.flush_stalls;
        let stalls = ov.prefetch_stalls + ov.flush_stalls;
        // saturating: reset_stats may have rewound the counters mid-run
        let dc = completions.saturating_sub(t.last_completions);
        let ds = stalls.saturating_sub(t.last_stalls);
        t.last_completions = completions;
        t.last_stalls = stalls;
        if dc < 8 {
            return; // too few retirements to steer on
        }
        let stall_rate = ds as f64 / dc as f64;
        if stall_rate > 0.5 {
            t.window_blocks = t.window_blocks.saturating_mul(2).min(4 * default_window);
        } else if stall_rate < 0.05 {
            t.window_blocks = (t.window_blocks / 2).max(floor);
        }
    }

    /// Overlap operations issued but not yet retired (reads and writes).
    pub fn pending_io(&self) -> usize {
        self.pending_io.load(Ordering::Relaxed)
    }

    /// Issue a batch of block reads without waiting for the data (see
    /// [`crate::overlap`]). The parallel-step cost is charged now, with
    /// the same batch rule as [`Pdm::read_blocks`]; the returned token
    /// yields the blocks when retired via [`Pdm::finish_read_blocks`].
    /// During checkpoint replay the token is a filler: retiring it yields
    /// `K::MAX` keys and no storage or stats are touched.
    pub fn start_read_blocks(
        &mut self,
        region: &Region,
        indices: &[usize],
    ) -> Result<TrackedRead<K>> {
        let expected = indices.len() * self.cfg.block_size;
        if self.replaying() {
            return Ok(TrackedRead::replay(expected, PendingGuard::new(&self.pending_io)));
        }
        self.gather_addrs(region, indices)?;
        self.issue_read(expected)
    }

    /// [`Pdm::start_read_blocks`] over multiple regions — `sources[i]` is
    /// `(region, logical_block)`, accounted as a single batch like
    /// [`Pdm::read_blocks_multi`].
    pub fn start_read_blocks_multi(
        &mut self,
        sources: &[(Region, usize)],
    ) -> Result<TrackedRead<K>> {
        let expected = sources.len() * self.cfg.block_size;
        if self.replaying() {
            return Ok(TrackedRead::replay(expected, PendingGuard::new(&self.pending_io)));
        }
        self.gather_addrs_multi(sources)?;
        self.issue_read(expected)
    }

    fn issue_read(&mut self, expected: usize) -> Result<TrackedRead<K>> {
        let pending = self.storage.start_read_batch(&self.addr_buf)?;
        self.stats.record_read_batch(&self.disk_counts);
        let id = self.stats.overlap_issue(false, self.addr_buf.len() as u64);
        Ok(TrackedRead::live(
            pending,
            expected,
            id,
            PendingGuard::new(&self.pending_io),
        ))
    }

    /// Issue several schedule steps as **one** storage submission while
    /// charging each step with the blocking batch rule, exactly as `k`
    /// separate [`Pdm::start_read_blocks_multi`] calls would: `k` `Io`
    /// probe events, `read_steps += Σ max(per-disk blocks)` over the
    /// steps, per-disk totals summed per block. Only the *storage* layer
    /// sees a single batch — emulated backends pay their per-batch seek
    /// latency once for the whole group, and the real-disk backend gets
    /// one deep submission instead of `k` shallow ones. The retired data
    /// comes back concatenated in step order.
    ///
    /// This is the coalescing primitive behind [`crate::overlap::ReadAhead`];
    /// speculative schedules must not use it (a data-dependent abort in
    /// the middle of a group would have charged steps the blocking path
    /// never reaches).
    pub fn start_read_blocks_group(
        &mut self,
        steps: &[Vec<(Region, usize)>],
    ) -> Result<TrackedRead<K>> {
        debug_assert!(!steps.is_empty(), "empty read group");
        let total_blocks: usize = steps.iter().map(|s| s.len()).sum();
        let expected = total_blocks * self.cfg.block_size;
        if self.replaying() {
            return Ok(TrackedRead::replay(expected, PendingGuard::new(&self.pending_io)));
        }
        let mut addrs = Vec::with_capacity(total_blocks);
        for step in steps {
            self.gather_addrs_multi(step)?;
            self.stats.record_read_batch(&self.disk_counts);
            addrs.extend_from_slice(&self.addr_buf);
        }
        let pending = self.storage.start_read_batch(&addrs)?;
        let id = self.stats.overlap_issue(false, total_blocks as u64);
        Ok(TrackedRead::live(
            pending,
            expected,
            id,
            PendingGuard::new(&self.pending_io),
        ))
    }

    /// Issue a batch of block reads *speculatively*: the physical reads
    /// dispatch now, but **nothing is charged** — no step cost, no probe
    /// event, no overlap counter — until the token is retired through
    /// [`Pdm::finish_read_blocks`], which then charges the batch exactly
    /// as a blocking read at the consumption point would have, followed by
    /// the usual overlap issue/complete pair. Dropping an unconsumed token
    /// abandons the read with zero accounting trace, which is what makes
    /// this safe for schedules a data-dependent abort may cut short
    /// (`expected_two_pass`'s pass 2): the blocking path never charges
    /// batches past the abort, and neither does the speculative one.
    pub fn start_read_blocks_multi_speculative(
        &mut self,
        sources: &[(Region, usize)],
    ) -> Result<TrackedRead<K>> {
        let expected = sources.len() * self.cfg.block_size;
        if self.replaying() {
            return Ok(TrackedRead::replay(expected, PendingGuard::new(&self.pending_io)));
        }
        self.gather_addrs_multi(sources)?;
        let pending = self.storage.start_read_batch(&self.addr_buf)?;
        let charge = DeferredReadCharge {
            counts: self.disk_counts.clone(),
            blocks: self.addr_buf.len() as u64,
        };
        Ok(TrackedRead::live_deferred(
            pending,
            expected,
            charge,
            PendingGuard::new(&self.pending_io),
        ))
    }

    /// Retire an overlapped read, writing its blocks (request order) into
    /// `out`, which must hold exactly the issued `blocks × B` keys.
    /// Records the hit/stall split in [`crate::stats::OverlapCounters`]
    /// and emits the paired `OverlapComplete` probe event. A speculative
    /// token first charges its deferred batch cost here, so the step
    /// counters and probe stream are position-identical to the blocking
    /// path that would have read the batch at this point.
    pub fn finish_read_blocks(&mut self, mut pending: TrackedRead<K>, out: &mut [K]) -> Result<()> {
        let live = !pending.is_replay();
        let id = match pending.take_deferred() {
            Some(charge) if live => {
                self.stats.record_read_batch(&charge.counts);
                self.stats.overlap_issue(false, charge.blocks)
            }
            _ => pending.id(),
        };
        let stalled = !pending.is_ready();
        let t0 = (live && stalled).then(Instant::now);
        pending.wait(out)?;
        if live {
            if let Some(t0) = t0 {
                self.stats
                    .record_overlap_stall(false, t0.elapsed().as_nanos() as u64);
            }
            self.stats.overlap_complete(false, id, stalled);
        }
        Ok(())
    }

    /// Issue a batch of block writes without waiting for completion (see
    /// [`crate::overlap`]). Step cost is charged at issue, and so is the
    /// data hand-off: [`Storage::start_write_batch`] copies (or writes)
    /// the payload before returning, so `data`'s buffer is immediately
    /// reusable. Retire the token with [`Pdm::finish_write_blocks`].
    pub fn start_write_blocks(
        &mut self,
        region: &Region,
        indices: &[usize],
        data: &[K],
    ) -> Result<TrackedWrite> {
        if data.len() != indices.len() * self.cfg.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: indices.len() * self.cfg.block_size,
            });
        }
        if self.replaying() {
            return Ok(TrackedWrite::replay(PendingGuard::new(&self.pending_io)));
        }
        self.gather_addrs(region, indices)?;
        self.issue_write(data)
    }

    /// [`Pdm::start_write_blocks`] into multiple regions (see
    /// [`Pdm::write_blocks_multi`]).
    pub fn start_write_blocks_multi(
        &mut self,
        targets: &[(Region, usize)],
        data: &[K],
    ) -> Result<TrackedWrite> {
        if data.len() != targets.len() * self.cfg.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: targets.len() * self.cfg.block_size,
            });
        }
        if self.replaying() {
            return Ok(TrackedWrite::replay(PendingGuard::new(&self.pending_io)));
        }
        self.gather_addrs_multi(targets)?;
        self.issue_write(data)
    }

    fn issue_write(&mut self, data: &[K]) -> Result<TrackedWrite> {
        let pending = self.storage.start_write_batch(&self.addr_buf, data)?;
        self.stats.record_write_batch(&self.disk_counts);
        let id = self.stats.overlap_issue(true, self.addr_buf.len() as u64);
        Ok(TrackedWrite::live(pending, id, PendingGuard::new(&self.pending_io)))
    }

    /// Write-side twin of [`Pdm::start_read_blocks_group`]: `data` is the
    /// concatenation of the steps' payloads in step order, each step is
    /// charged exactly as its own [`Pdm::start_write_blocks_multi`] call,
    /// and the storage layer sees one batch. The payload is copied (or
    /// written) before this returns, so the caller's buffer is immediately
    /// reusable; per-disk issue order follows step order, keeping same-slot
    /// writes as ordered as they were unbatched.
    pub fn start_write_blocks_group(
        &mut self,
        steps: &[Vec<(Region, usize)>],
        data: &[K],
    ) -> Result<TrackedWrite> {
        debug_assert!(!steps.is_empty(), "empty write group");
        let total_blocks: usize = steps.iter().map(|s| s.len()).sum();
        if data.len() != total_blocks * self.cfg.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: total_blocks * self.cfg.block_size,
            });
        }
        if self.replaying() {
            return Ok(TrackedWrite::replay(PendingGuard::new(&self.pending_io)));
        }
        let mut addrs = Vec::with_capacity(total_blocks);
        for step in steps {
            self.gather_addrs_multi(step)?;
            self.stats.record_write_batch(&self.disk_counts);
            addrs.extend_from_slice(&self.addr_buf);
        }
        let pending = self.storage.start_write_batch(&addrs, data)?;
        let id = self.stats.overlap_issue(true, total_blocks as u64);
        Ok(TrackedWrite::live(pending, id, PendingGuard::new(&self.pending_io)))
    }

    /// Retire an overlapped write (see [`Pdm::finish_read_blocks`]).
    pub fn finish_write_blocks(&mut self, pending: TrackedWrite) -> Result<()> {
        let live = !pending.is_replay();
        let stalled = !pending.is_ready();
        let id = pending.id();
        let t0 = (live && stalled).then(Instant::now);
        pending.wait()?;
        if live {
            if let Some(t0) = t0 {
                self.stats
                    .record_overlap_stall(true, t0.elapsed().as_nanos() as u64);
            }
            self.stats.overlap_complete(true, id, stalled);
        }
        Ok(())
    }

    /// Open an I/O scheduling group (see [`IoStats::begin_group`]): until
    /// [`Pdm::end_io_group`], block batches are charged as one concurrent
    /// window — `max(per-disk blocks)` parallel steps at close.
    ///
    /// # Example
    ///
    /// ```
    /// use pdm_model::prelude::*;
    /// let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 64)).unwrap();
    /// let r = pdm.alloc_region(4).unwrap();
    /// let block = vec![1u64; 8];
    /// pdm.begin_io_group();
    /// for i in 0..4 {
    ///     // four single-block writes — ungrouped they would cost 4 steps
    ///     pdm.write_blocks(&r, &[i], &block).unwrap();
    /// }
    /// pdm.end_io_group();
    /// // striped round-robin, issued concurrently: one parallel step
    /// assert_eq!(pdm.stats().write_steps, 1);
    /// ```
    pub fn begin_io_group(&mut self) {
        if self.replaying() {
            return;
        }
        self.stats.begin_group();
    }

    /// Close the open I/O group, charging its deferred step cost.
    pub fn end_io_group(&mut self) {
        if self.replaying() {
            return;
        }
        self.stats.end_group();
    }

    /// Flush the storage backend.
    pub fn sync(&mut self) -> Result<()> {
        self.refresh_retry_stats();
        self.refresh_wall_stats();
        self.storage.sync()
    }

    /// Consume the machine, returning backend and final counters.
    pub fn into_parts(mut self) -> (S, IoStats) {
        self.refresh_retry_stats();
        self.refresh_wall_stats();
        self.roll_phase_span(None);
        (self.storage, self.stats)
    }
}

impl<K: PdmKey, S: Storage<K>> Checkpoint for Pdm<K, S> {
    fn attach_checkpoint(&mut self, store: CheckpointStore, manifest: Manifest) {
        self.ckpt = Some(Box::new(CheckpointState {
            skip_phases: manifest.completed,
            resume_frontier: manifest.frontier,
            phases_seen: 0,
            completed_names: manifest.phases.clone(),
            deferred: None,
            base: manifest,
            store,
        }));
    }

    fn take_checkpoint_error(&mut self) -> Option<PdmError> {
        self.ckpt.as_deref_mut().and_then(|c| c.deferred.take())
    }

    fn completed_phases(&self) -> usize {
        self.ckpt
            .as_deref()
            .map_or(0, |c| c.completed_names.len())
    }

    fn skipped_phases(&self) -> usize {
        self.ckpt.as_deref().map_or(0, |c| c.skip_phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Pdm<u64> {
        // D = 4, B = 8, M = 64 (limit 128 with default workspace factor 2)
        Pdm::new(PdmConfig::new(4, 8, 64)).unwrap()
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let cfg = PdmConfig::new(4, 8, 64);
        let bad = MemStorage::<u64>::new(2, 8);
        assert!(Pdm::with_storage(cfg, bad).is_err());
    }

    #[test]
    fn ingest_then_read_region_counts_only_reads() {
        let mut pdm = machine();
        let data: Vec<u64> = (0..64).collect();
        let r = pdm.alloc_region_for_keys(64).unwrap();
        pdm.ingest(&r, &data).unwrap();
        assert_eq!(pdm.stats().blocks_read, 0);
        assert_eq!(pdm.stats().blocks_written, 0);

        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
        // 8 blocks over 4 disks, striped → 2 parallel steps
        assert_eq!(pdm.stats().blocks_read, 8);
        assert_eq!(pdm.stats().read_steps, 2);
    }

    #[test]
    fn one_full_stripe_is_one_step() {
        let mut pdm = machine();
        let r = pdm.alloc_region(4).unwrap();
        let mut out = Vec::new();
        pdm.read_range(&r, 0, 4, &mut out).unwrap();
        assert_eq!(pdm.stats().read_steps, 1);
        assert_eq!(pdm.stats().blocks_read, 4);
    }

    #[test]
    fn same_disk_batch_costs_multiple_steps() {
        let mut pdm = machine();
        let r = pdm.alloc_region(8).unwrap();
        // blocks 0 and 4 both live on disk 0
        let mut out = Vec::new();
        pdm.read_blocks(&r, &[0, 4], &mut out).unwrap();
        assert_eq!(pdm.stats().read_steps, 2);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut pdm = machine();
        let r = pdm.alloc_region(4).unwrap();
        let data: Vec<u64> = (100..132).collect();
        pdm.write_region(&r, &data).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(pdm.stats().write_steps, 1);
    }

    #[test]
    fn write_region_pads_with_max() {
        let mut pdm = machine();
        let r = pdm.alloc_region_for_keys(10).unwrap(); // 2 blocks = 16 keys
        pdm.write_region(&r, &(0..10).collect::<Vec<u64>>()).unwrap();
        let all = pdm.inspect(&r).unwrap();
        assert_eq!(&all[..10], &(0..10).collect::<Vec<u64>>()[..]);
        assert!(all[10..].iter().all(|&k| k == u64::MAX));
        let pre = pdm.inspect_prefix(&r, 10).unwrap();
        assert_eq!(pre.len(), 10);
    }

    #[test]
    fn ingest_pads_partial_final_block() {
        let mut pdm = machine();
        let r = pdm.alloc_region_for_keys(9).unwrap();
        pdm.ingest(&r, &[1u64; 9]).unwrap();
        let all = pdm.inspect(&r).unwrap();
        assert_eq!(all.len(), 16);
        assert!(all[9..].iter().all(|&k| k == u64::MAX));
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut pdm = machine();
        let r1 = pdm.alloc_region(5).unwrap();
        let r2 = pdm.alloc_region(5).unwrap();
        pdm.ingest(&r1, &[7u64; 40]).unwrap();
        pdm.ingest(&r2, &[9u64; 40]).unwrap();
        assert!(pdm.inspect(&r1).unwrap().iter().all(|&k| k == 7));
        assert!(pdm.inspect(&r2).unwrap().iter().all(|&k| k == 9));
    }

    #[test]
    fn alloc_region_at_rotates_start_disk() {
        let mut pdm = machine();
        let r = pdm.alloc_region_at(4, 2).unwrap();
        assert_eq!(r.addr(0).unwrap().disk, 2);
        assert_eq!(r.addr(2).unwrap().disk, 0);
        assert!(pdm.alloc_region_at(1, 99).is_err());
    }

    #[test]
    fn multi_region_batch_counts_one_step_when_staggered() {
        let mut pdm = machine();
        // four regions staggered across the four disks; block 0 of each
        // lands on a distinct disk → one parallel step for the batch
        let regions: Vec<_> = (0..4)
            .map(|i| pdm.alloc_region_at(2, i).unwrap())
            .collect();
        let data: Vec<u64> = (0..32).collect();
        let targets: Vec<_> = regions.iter().map(|r| (*r, 0usize)).collect();
        pdm.write_blocks_multi(&targets, &data).unwrap();
        assert_eq!(pdm.stats().write_steps, 1);
        assert_eq!(pdm.stats().blocks_written, 4);
        let mut out = Vec::new();
        pdm.read_blocks_multi(&targets, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(pdm.stats().read_steps, 1);
    }

    #[test]
    fn multi_region_unstaggered_loses_parallelism() {
        let mut pdm = machine();
        let regions: Vec<_> = (0..4).map(|_| pdm.alloc_region(2).unwrap()).collect();
        let targets: Vec<_> = regions.iter().map(|r| (*r, 0usize)).collect();
        // every region's block 0 is on disk 0 → 4 steps
        let data: Vec<u64> = (0..32).collect();
        pdm.write_blocks_multi(&targets, &data).unwrap();
        assert_eq!(pdm.stats().write_steps, 4);
    }

    #[test]
    fn write_blocks_multi_rejects_ragged_data() {
        let mut pdm = machine();
        let r = pdm.alloc_region(2).unwrap();
        assert!(pdm.write_blocks_multi(&[(r, 0)], &[1u64; 5]).is_err());
    }

    #[test]
    fn buffers_enforce_memory_limit() {
        let pdm = machine();
        let limit = pdm.cfg().mem_limit(); // 2*64 + 2*4*8 = 192
        assert_eq!(limit, 192);
        let b1 = pdm.alloc_buf(limit - 10).unwrap();
        assert!(pdm.alloc_buf(11).is_err());
        drop(b1);
        assert!(pdm.alloc_buf(limit).is_ok());
        assert_eq!(pdm.mem().peak(), limit);
    }

    #[test]
    fn write_range_rejects_ragged_data() {
        let mut pdm = machine();
        let r = pdm.alloc_region(2).unwrap();
        assert!(pdm.write_range(&r, 0, &[1u64; 5]).is_err());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut pdm = machine();
        let r = pdm.alloc_region(4).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        pdm.reset_stats();
        assert_eq!(pdm.stats().blocks_read, 0);
        assert_eq!(pdm.stats().read_steps, 0);
    }

    #[test]
    fn phase_bracketing_via_stats_mut() {
        let mut pdm = machine();
        let r = pdm.alloc_region(4).unwrap();
        pdm.stats_mut().begin_phase("p1");
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        pdm.stats_mut().end_phase();
        assert_eq!(pdm.stats().phases.len(), 1);
        assert_eq!(pdm.stats().phases[0].blocks_read, 4);
    }

    #[test]
    fn machine_phases_sample_memory_gauges() {
        let mut pdm = machine();
        let r = pdm.alloc_region(4).unwrap();
        let buf = pdm.alloc_buf(32).unwrap();
        pdm.begin_phase("with-buf");
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        pdm.end_phase();
        drop(buf);
        pdm.begin_phase("after-drop");
        pdm.end_phase();
        let ph = &pdm.stats().phases;
        assert_eq!(ph[0].mem_begin, 32);
        assert_eq!(ph[0].mem_end, 32);
        assert!(ph[0].mem_peak >= 32);
        assert_eq!(ph[1].mem_begin, 0);
        assert!(ph[1].mem_peak >= 32, "peak is a high-water mark");
    }

    #[test]
    fn reset_stats_preserves_trace_and_probe_enablement() {
        let mut pdm = machine();
        pdm.stats_mut().enable_trace(128);
        pdm.enable_probe(256);
        let r = pdm.alloc_region(4).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        pdm.reset_stats();
        assert_eq!(pdm.stats().blocks_read, 0);
        assert_eq!(pdm.stats().trace.as_ref().map(|t| t.len()), Some(0));
        assert_eq!(pdm.stats().probe().map(|p| p.events().len()), Some(0));
        out.clear();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(pdm.stats().trace.as_ref().unwrap().len(), 1);
        assert_eq!(pdm.stats().probe().unwrap().events().len(), 1);
    }

    #[test]
    fn probe_stream_matches_machine_accounting() {
        let mut pdm = machine();
        pdm.enable_probe(1 << 12);
        let r = pdm.alloc_region(8).unwrap();
        pdm.begin_phase("write");
        pdm.write_region(&r, &(0..64u64).collect::<Vec<_>>()).unwrap();
        pdm.begin_phase("grouped");
        let block = vec![1u64; 8];
        pdm.begin_io_group();
        for i in 0..4 {
            pdm.write_blocks(&r, &[i], &block).unwrap();
        }
        pdm.end_io_group();
        pdm.end_phase();
        let replayed =
            crate::probe::replay(pdm.stats().probe().unwrap().events(), pdm.cfg().num_disks);
        assert_eq!(replayed.write_steps, pdm.stats().write_steps);
        assert_eq!(replayed.blocks_written, pdm.stats().blocks_written);
        assert_eq!(replayed.per_disk_writes, pdm.stats().per_disk_writes);
        assert_eq!(replayed.phases.len(), 2);
        assert_eq!(replayed.phases[1].write_steps, 1, "grouped stripe is one step");
    }

    #[test]
    fn wall_stats_harvest_from_threaded_backend() {
        let cfg = PdmConfig::new(2, 8, 64);
        let storage = crate::storage_threaded::ThreadedStorage::<u64>::new(2, 8);
        let mut pdm = Pdm::with_storage(cfg, storage).unwrap();
        let sink = Arc::new(SpanSink::new(1 << 10));
        pdm.attach_span_sink(Arc::clone(&sink));
        let r = pdm.alloc_region(4).unwrap();
        pdm.begin_phase("p");
        pdm.write_region(&r, &(0..32u64).collect::<Vec<_>>()).unwrap();
        pdm.end_phase();
        assert!(pdm.stats().wall.has_samples(), "end_phase harvests the backend");
        let (_s, stats) = pdm.into_parts();
        assert_eq!(stats.wall.disks.len(), 2);
        assert!(stats.wall.disks.iter().all(|d| d.write.count == 2));
        // the phase produced one span on the phase track, the workers one
        // span per serviced block
        let spans = sink.spans();
        assert_eq!(
            spans.iter().filter(|s| s.tid == SpanSink::PHASE_TRACK).count(),
            1
        );
        assert_eq!(spans.iter().filter(|s| s.name == "write").count(), 4);
    }

    fn fresh_manifest(algo: &str, cfg: &PdmConfig, num_keys: usize) -> Manifest {
        Manifest {
            algo: algo.into(),
            num_disks: cfg.num_disks,
            block_size: cfg.block_size,
            mem_capacity: cfg.mem_capacity,
            num_keys,
            digest: 0xfeed,
            completed: 0,
            frontier: 0,
            phases: Vec::new(),
        }
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pdm-machine-ckpt-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// A deterministic two-phase "algorithm": pass 1 materializes data into
    /// a fresh region, pass 2 reads it back and writes a transformed copy.
    fn two_phase(pdm: &mut Pdm<u64>) -> Region {
        pdm.begin_phase("pass-1");
        let r1 = pdm.alloc_region(4).unwrap();
        let data: Vec<u64> = (100..132).collect();
        pdm.write_blocks(&r1, &[0, 1, 2, 3], &data).unwrap();
        pdm.end_phase();

        pdm.begin_phase("pass-2");
        let r2 = pdm.alloc_region(4).unwrap();
        let mut buf = Vec::new();
        pdm.read_blocks(&r1, &[0, 1, 2, 3], &mut buf).unwrap();
        let out: Vec<u64> = buf.iter().map(|x| x.wrapping_add(1)).collect();
        pdm.write_blocks(&r2, &[0, 1, 2, 3], &out).unwrap();
        pdm.end_phase();
        r2
    }

    #[test]
    fn fresh_run_checkpoints_every_phase() {
        let dir = ckpt_dir("fresh");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut pdm = machine();
        let m = fresh_manifest("two-phase", pdm.cfg(), 32);
        pdm.attach_checkpoint(store.clone(), m);
        let r2 = two_phase(&mut pdm);
        assert!(pdm.take_checkpoint_error().is_none());
        assert_eq!(pdm.completed_phases(), 2);
        assert_eq!(pdm.skipped_phases(), 0);
        let latest = store.load_latest().unwrap().unwrap();
        assert_eq!(latest.completed, 2);
        assert_eq!(latest.phases, vec!["pass-1".to_string(), "pass-2".to_string()]);
        assert_eq!(latest.frontier, 2, "two 4-block regions, one slot level each");
        assert!(dir.join("pass-1.ckpt").is_file(), "per-pass history kept");
        assert!(dir.join("pass-2.ckpt").is_file());
        let mut check = Vec::new();
        pdm.read_blocks(&r2, &[0], &mut check).unwrap();
        assert_eq!(check[0], 101);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_completed_phase_without_io() {
        let dir = ckpt_dir("resume");
        let store = CheckpointStore::create(&dir).unwrap();
        // Run pass 1 only, then "crash": keep the storage, drop the machine.
        let mut pdm = machine();
        pdm.attach_checkpoint(store.clone(), fresh_manifest("two-phase", pdm.cfg(), 32));
        pdm.begin_phase("pass-1");
        let r1 = pdm.alloc_region(4).unwrap();
        let data: Vec<u64> = (100..132).collect();
        pdm.write_blocks(&r1, &[0, 1, 2, 3], &data).unwrap();
        pdm.end_phase();
        assert!(pdm.take_checkpoint_error().is_none());
        let (storage, stats_before) = pdm.into_parts();
        assert_eq!(stats_before.phases.len(), 1);

        // Resume: same storage, manifest loaded back from the store.
        let m = store.load_latest().unwrap().unwrap();
        assert_eq!(m.completed, 1);
        let mut pdm = Pdm::with_storage(PdmConfig::new(4, 8, 64), storage).unwrap();
        pdm.attach_checkpoint(store.clone(), m);
        let r2 = two_phase(&mut pdm);
        assert!(
            pdm.take_checkpoint_error().is_none(),
            "replayed allocations must land on the recorded frontier"
        );
        assert_eq!(pdm.skipped_phases(), 1);
        assert_eq!(pdm.completed_phases(), 2);
        // Replayed pass 1 cost nothing; only pass 2 executed and counted.
        assert_eq!(pdm.stats().phases.len(), 1);
        assert_eq!(pdm.stats().phases[0].name, "pass-2");
        assert_eq!(pdm.stats().blocks_read, 4);
        assert_eq!(pdm.stats().blocks_written, 4);
        // Pass 2 read the *real* pass-1 output out of the resumed storage.
        let mut check = Vec::new();
        pdm.read_blocks(&r2, &[0, 1, 2, 3], &mut check).unwrap();
        let expect: Vec<u64> = (101..133).collect();
        assert_eq!(check, expect);
        let latest = store.load_latest().unwrap().unwrap();
        assert_eq!(latest.completed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_frontier_drift_is_detected() {
        let dir = ckpt_dir("drift");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut pdm = machine();
        let mut m = fresh_manifest("two-phase", pdm.cfg(), 32);
        m.completed = 1;
        m.frontier = 999; // deliberately wrong
        m.phases = vec!["pass-1".to_string()];
        pdm.attach_checkpoint(store, m);
        let _ = two_phase(&mut pdm);
        let e = pdm.take_checkpoint_error().expect("drift must be flagged");
        assert!(e.to_string().contains("frontier mismatch"), "got: {e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_elides_grouped_and_multi_region_io() {
        let mut pdm = machine();
        let mut m = fresh_manifest("x", pdm.cfg(), 0);
        m.completed = 1;
        m.frontier = 8;
        m.phases = vec!["p1".to_string()];
        // No store needed to exercise replay gating: attach with a store in
        // a directory we never write to (phase 2 is never reached).
        let dir = ckpt_dir("gates");
        pdm.attach_checkpoint(CheckpointStore::create(&dir).unwrap(), m);
        pdm.begin_phase("p1");
        let a = pdm.alloc_region(4).unwrap();
        let b = pdm.alloc_region(4).unwrap();
        pdm.begin_io_group();
        let mut buf = Vec::new();
        pdm.read_blocks_multi(&[(a, 0), (b, 0)], &mut buf).unwrap();
        assert_eq!(buf.len(), 16, "replay reads still size their buffers");
        assert!(buf.iter().all(|&k| k == u64::MAX), "replay reads return MAX filler");
        pdm.write_blocks_multi(&[(a, 1), (b, 1)], &vec![0u64; 16]).unwrap();
        pdm.end_io_group();
        pdm.end_phase();
        assert_eq!(pdm.stats().blocks_read, 0);
        assert_eq!(pdm.stats().blocks_written, 0);
        assert_eq!(pdm.stats().read_steps, 0);
        assert_eq!(pdm.stats().phases.len(), 0, "replayed phase opens no stats phase");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
