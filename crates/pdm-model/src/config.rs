//! Machine configuration for the Parallel Disk Model.
//!
//! A PDM machine is characterized by three parameters (Vitter–Shriver):
//!
//! * `D` — the number of independent disks; one parallel I/O step can move
//!   at most one block per disk,
//! * `B` — the block size in keys (records),
//! * `M` — the internal memory size in keys, typically a small constant
//!   multiple of `D·B`.
//!
//! The paper's algorithms all use `B = √M`, so [`PdmConfig::square`] is the
//! configuration constructor used throughout the reproduction.

use crate::error::{PdmError, Result};
use serde::{Deserialize, Serialize};

/// Static description of a PDM machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdmConfig {
    /// Number of independent disks `D`.
    pub num_disks: usize,
    /// Block size `B`, in keys.
    pub block_size: usize,
    /// Internal memory capacity `M`, in keys.
    pub mem_capacity: usize,
    /// Constant-factor workspace slack: the enforced in-memory limit is
    /// `workspace_factor × mem_capacity` keys.
    ///
    /// The PDM literature treats `M` as defined up to a small constant
    /// (`M = c·DB`); the paper's cleanup phases explicitly hold two
    /// `M`-sized windows at once (§5 of the paper), so the default is 2.
    pub workspace_factor: usize,
}

impl PdmConfig {
    /// Build a configuration with explicit `D`, `B`, `M` and the default
    /// workspace factor of 2.
    pub fn new(num_disks: usize, block_size: usize, mem_capacity: usize) -> Self {
        Self {
            num_disks,
            block_size,
            mem_capacity,
            workspace_factor: 2,
        }
    }

    /// The paper's canonical configuration: internal memory `M = b²` keys
    /// and block size `B = √M = b`, spread over `num_disks` disks.
    ///
    /// `b` is the square root of the memory size; e.g. `square(4, 64)` gives
    /// `M = 4096`, `B = 64`, `D = 4`.
    pub fn square(num_disks: usize, b: usize) -> Self {
        Self::new(num_disks, b, b * b)
    }

    /// Override the workspace slack factor (see [`PdmConfig::workspace_factor`]).
    pub fn with_workspace_factor(mut self, factor: usize) -> Self {
        self.workspace_factor = factor;
        self
    }

    /// `√M`, when `M` is a perfect square. The paper's algorithms require
    /// this; returns an error otherwise.
    pub fn sqrt_m(&self) -> Result<usize> {
        let m = self.mem_capacity;
        let r = (m as f64).sqrt().round() as usize;
        if r * r == m {
            Ok(r)
        } else {
            Err(PdmError::BadConfig(format!(
                "M = {m} is not a perfect square"
            )))
        }
    }

    /// The enforced internal-memory limit in keys:
    /// `workspace_factor × M` plus a two-stripe (`2·D·B`) I/O staging
    /// allowance. The PDM assumes `M ≥ D·B`, so the allowance is a constant
    /// fraction of `M`; it lets an algorithm whose working set is exactly
    /// `2M` (e.g. the paper's "two `Z_i` windows in memory") still stage
    /// one stripe of blocks for its next parallel write.
    pub fn mem_limit(&self) -> usize {
        self.workspace_factor * self.mem_capacity + 2 * self.num_disks * self.block_size
    }

    /// Number of parallel I/O steps constituting one *pass* over `n` keys:
    /// `⌈n / (D·B)⌉` (the paper defines a pass as `N/DB` read I/Os plus the
    /// same number of writes).
    pub fn steps_per_pass(&self, n: usize) -> usize {
        n.div_ceil(self.num_disks * self.block_size)
    }

    /// Number of blocks needed to hold `n` keys.
    pub fn blocks_for(&self, n: usize) -> usize {
        n.div_ceil(self.block_size)
    }

    /// Validate internal consistency: all parameters positive, the memory at
    /// least one stripe (`D·B`), and the block size at most `M`.
    pub fn validate(&self) -> Result<()> {
        if self.num_disks == 0 {
            return Err(PdmError::BadConfig("D must be positive".into()));
        }
        if self.block_size == 0 {
            return Err(PdmError::BadConfig("B must be positive".into()));
        }
        if self.mem_capacity == 0 {
            return Err(PdmError::BadConfig("M must be positive".into()));
        }
        if self.workspace_factor == 0 {
            return Err(PdmError::BadConfig("workspace_factor must be positive".into()));
        }
        if self.block_size > self.mem_capacity {
            return Err(PdmError::BadConfig(format!(
                "B = {} exceeds M = {}",
                self.block_size, self.mem_capacity
            )));
        }
        if self.num_disks * self.block_size > self.mem_capacity {
            return Err(PdmError::BadConfig(format!(
                "one stripe D·B = {} exceeds M = {}; PDM assumes M ≥ D·B",
                self.num_disks * self.block_size,
                self.mem_capacity
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_config_has_b_eq_sqrt_m() {
        let cfg = PdmConfig::square(4, 64);
        assert_eq!(cfg.block_size, 64);
        assert_eq!(cfg.mem_capacity, 4096);
        assert_eq!(cfg.sqrt_m().unwrap(), 64);
        cfg.validate().unwrap();
    }

    #[test]
    fn sqrt_m_rejects_non_square() {
        let cfg = PdmConfig::new(2, 10, 1000);
        assert!(cfg.sqrt_m().is_err());
    }

    #[test]
    fn steps_per_pass_rounds_up() {
        let cfg = PdmConfig::new(4, 16, 256);
        // one stripe = 64 keys
        assert_eq!(cfg.steps_per_pass(64), 1);
        assert_eq!(cfg.steps_per_pass(65), 2);
        assert_eq!(cfg.steps_per_pass(256), 4);
    }

    #[test]
    fn validate_rejects_degenerate() {
        assert!(PdmConfig::new(0, 8, 64).validate().is_err());
        assert!(PdmConfig::new(2, 0, 64).validate().is_err());
        assert!(PdmConfig::new(2, 8, 0).validate().is_err());
        // B > M
        assert!(PdmConfig::new(1, 128, 64).validate().is_err());
        // D*B > M
        assert!(PdmConfig::new(16, 8, 64).validate().is_err());
        // workspace_factor = 0
        assert!(PdmConfig::new(2, 8, 64)
            .with_workspace_factor(0)
            .validate()
            .is_err());
    }

    #[test]
    fn mem_limit_uses_workspace_factor_plus_staging() {
        let cfg = PdmConfig::new(2, 8, 64).with_workspace_factor(3);
        // 3*64 + 2*2*8 = 224
        assert_eq!(cfg.mem_limit(), 224);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let cfg = PdmConfig::new(2, 8, 64);
        assert_eq!(cfg.blocks_for(0), 0);
        assert_eq!(cfg.blocks_for(8), 1);
        assert_eq!(cfg.blocks_for(9), 2);
    }
}
