//! Fault-injecting storage wrapper for robustness testing.
//!
//! [`FlakyStorage`] wraps any backend and fails the `k`-th block operation
//! (or every operation matching a disk), letting tests prove that every
//! algorithm propagates storage errors as `Err` instead of panicking,
//! corrupting its output, or leaking tracked memory. Deterministic — the
//! failure schedule is a plain counter, not a coin flip — so failures are
//! reproducible and shrinkable.

use crate::error::{PdmError, Result};
use crate::key::PdmKey;
use crate::storage::Storage;

/// Which operations to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Fail the `n`-th block read (0-based, counting reads only).
    NthRead(u64),
    /// Fail the `n`-th block write.
    NthWrite(u64),
    /// Fail every operation touching the given disk.
    Disk(usize),
    /// Never fail (pass-through; useful as a control).
    Never,
}

/// A storage wrapper that injects [`PdmError::Io`] failures per a
/// deterministic schedule.
pub struct FlakyStorage<S> {
    inner: S,
    mode: FailMode,
    reads: u64,
    writes: u64,
    /// Operations failed so far.
    pub injected: u64,
}

impl<S> FlakyStorage<S> {
    /// Wrap `inner` with the given failure schedule.
    pub fn new(inner: S, mode: FailMode) -> Self {
        Self {
            inner,
            mode,
            reads: 0,
            writes: 0,
            injected: 0,
        }
    }

    /// The wrapped backend.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn fail(&mut self) -> PdmError {
        self.injected += 1;
        PdmError::Io(std::io::Error::other("injected fault"))
    }
}

impl<K: PdmKey, S: Storage<K>> Storage<K> for FlakyStorage<S> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        self.inner.ensure_capacity(disk, slots)
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        let n = self.reads;
        self.reads += 1;
        match self.mode {
            FailMode::NthRead(k) if n == k => return Err(self.fail()),
            FailMode::Disk(d) if d == disk => return Err(self.fail()),
            _ => {}
        }
        self.inner.read_block(disk, slot, out)
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        let n = self.writes;
        self.writes += 1;
        match self.mode {
            FailMode::NthWrite(k) if n == k => return Err(self.fail()),
            FailMode::Disk(d) if d == disk => return Err(self.fail()),
            _ => {}
        }
        self.inner.write_block(disk, slot, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::machine::Pdm;
    use crate::storage::MemStorage;

    fn flaky_machine(mode: FailMode) -> Pdm<u64, FlakyStorage<MemStorage<u64>>> {
        let inner = MemStorage::new(2, 8);
        Pdm::with_storage(PdmConfig::new(2, 8, 64), FlakyStorage::new(inner, mode)).unwrap()
    }

    #[test]
    fn passthrough_mode_behaves_normally() {
        let mut pdm = flaky_machine(FailMode::Never);
        let r = pdm.alloc_region_for_keys(32).unwrap();
        let data: Vec<u64> = (0..32).collect();
        pdm.write_region(&r, &data).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn nth_read_fails_exactly_once() {
        let mut pdm = flaky_machine(FailMode::NthRead(2));
        let r = pdm.alloc_region_for_keys(64).unwrap();
        pdm.ingest(&r, &(0..64u64).collect::<Vec<_>>()).unwrap();
        let mut out = Vec::new();
        // blocks 0,1 fine; block 2 fails
        assert!(pdm.read_range(&r, 0, 2, &mut out).is_ok());
        assert!(matches!(
            pdm.read_range(&r, 2, 1, &mut out),
            Err(PdmError::Io(_))
        ));
        // subsequent reads succeed (one-shot failure)
        assert!(pdm.read_range(&r, 3, 1, &mut out).is_ok());
    }

    #[test]
    fn disk_mode_fails_only_that_disk() {
        let mut pdm = flaky_machine(FailMode::Disk(1));
        let r = pdm.alloc_region_for_keys(64).unwrap();
        // block 0 → disk 0 (ok), block 1 → disk 1 (fails)
        let mut out = Vec::new();
        assert!(pdm.read_range(&r, 0, 1, &mut out).is_ok());
        assert!(pdm.read_range(&r, 1, 1, &mut out).is_err());
    }

    #[test]
    fn ingest_faults_surface_too() {
        let mut pdm = flaky_machine(FailMode::NthWrite(0));
        let r = pdm.alloc_region_for_keys(16).unwrap();
        assert!(pdm.ingest(&r, &[1u64; 16]).is_err());
    }
}
