//! Fault-injecting storage wrapper for robustness testing.
//!
//! [`FlakyStorage`] wraps any backend and fails block operations per a
//! deterministic schedule, letting tests prove that every algorithm
//! propagates storage errors as `Err` instead of panicking, corrupting its
//! output, or leaking tracked memory. All schedules — including the
//! probabilistic-looking [`FailMode::TransientRate`] — are pure functions
//! of a counter (and a seed), never a live coin flip, so failures are
//! reproducible and shrinkable.
//!
//! Two fault *classes* are injected:
//!
//! * **transient** ([`FailMode::TransientRate`], [`FailMode::EveryNth`]) —
//!   the error kind is `Interrupted`, so [`PdmError::is_transient`] is
//!   true. Because the operation counter advances on every attempt, the
//!   reissued operation draws a fresh schedule slot and (for any
//!   `EveryNth(n)` with `n > 1`, and with high probability for
//!   `TransientRate`) succeeds: faults *heal on retry*, which is what
//!   makes [`crate::storage_retry::RetryingStorage`] testable end-to-end.
//! * **permanent** ([`FailMode::NthRead`], [`FailMode::NthWrite`],
//!   [`FailMode::Disk`], [`FailMode::DiskAfter`]) — the error kind is
//!   `Other`; retry layers must give up immediately.

use crate::error::{PdmError, Result};
use crate::key::PdmKey;
use crate::storage::Storage;

/// Which operations to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Fail the `n`-th block read (0-based, counting reads only).
    NthRead(u64),
    /// Fail the `n`-th block write.
    NthWrite(u64),
    /// Fail every operation touching the given disk.
    Disk(usize),
    /// Fail every operation touching disk `.0` from combined operation
    /// index `.1` onward (0-based over reads + writes): the disk works,
    /// then dies for good — a permanent mid-run failure, unlike the
    /// heal-on-retry transient modes.
    DiskAfter(usize, u64),
    /// Fail each operation independently with probability `rate_ppm` per
    /// million, drawn deterministically from `seed` and the combined
    /// operation index. Failures are transient (`Interrupted`): the retry
    /// is a new operation index and draws afresh.
    TransientRate {
        /// Seed mixed into every per-operation draw.
        seed: u64,
        /// Failure probability in parts per million (1% = 10_000).
        rate_ppm: u32,
    },
    /// Fail every `n`-th combined operation (indices `0, n, 2n, …`;
    /// `n = 0` is treated as `Never`). Transient: the retry lands on a
    /// non-multiple index and succeeds — except `n = 1`, which fails
    /// every attempt and so exercises retry *exhaustion*.
    EveryNth(u64),
    /// Never fail (pass-through; useful as a control).
    Never,
}

/// A storage wrapper that injects [`PdmError::Io`] failures per a
/// deterministic schedule.
pub struct FlakyStorage<S> {
    inner: S,
    mode: FailMode,
    reads: u64,
    writes: u64,
    /// Operations failed so far.
    pub injected: u64,
}

/// SplitMix64 finalizer: a well-mixed pure hash of one word, good enough
/// to turn (seed, op index) into an independent uniform draw.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<S> FlakyStorage<S> {
    /// Wrap `inner` with the given failure schedule.
    pub fn new(inner: S, mode: FailMode) -> Self {
        Self {
            inner,
            mode,
            reads: 0,
            writes: 0,
            injected: 0,
        }
    }

    /// The wrapped backend.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn fail(&mut self) -> PdmError {
        self.injected += 1;
        PdmError::Io(std::io::Error::other("injected fault"))
    }

    fn fail_transient(&mut self) -> PdmError {
        self.injected += 1;
        PdmError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected transient fault",
        ))
    }

    /// Apply the disk-independent schedules that count reads and writes
    /// together; `op` is the combined 0-based operation index.
    fn check_combined(&mut self, disk: usize, op: u64) -> Result<()> {
        match self.mode {
            FailMode::Disk(d) if d == disk => Err(self.fail()),
            FailMode::DiskAfter(d, n) if d == disk && op >= n => Err(self.fail()),
            FailMode::TransientRate { seed, rate_ppm } => {
                if splitmix64(seed ^ op) % 1_000_000 < u64::from(rate_ppm) {
                    Err(self.fail_transient())
                } else {
                    Ok(())
                }
            }
            FailMode::EveryNth(n) if n > 0 && op % n == 0 => Err(self.fail_transient()),
            _ => Ok(()),
        }
    }

    /// Advance the read schedule by one block and apply it. Called once per
    /// block whether the block travels through `read_block` or inside a
    /// `start_read_batch`, so overlapped and blocking runs draw identical
    /// fault schedules.
    fn check_read_op(&mut self, disk: usize) -> Result<()> {
        let n = self.reads;
        let op = self.reads + self.writes;
        self.reads += 1;
        if let FailMode::NthRead(k) = self.mode {
            if n == k {
                return Err(self.fail());
            }
        }
        self.check_combined(disk, op)
    }

    /// Advance the write schedule by one block and apply it; see
    /// [`FlakyStorage::check_read_op`].
    fn check_write_op(&mut self, disk: usize) -> Result<()> {
        let n = self.writes;
        let op = self.reads + self.writes;
        self.writes += 1;
        if let FailMode::NthWrite(k) = self.mode {
            if n == k {
                return Err(self.fail());
            }
        }
        self.check_combined(disk, op)
    }
}

impl<K: PdmKey, S: Storage<K>> Storage<K> for FlakyStorage<S> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        self.inner.ensure_capacity(disk, slots)
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        self.check_read_op(disk)?;
        self.inner.read_block(disk, slot, out)
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        self.check_write_op(disk)?;
        self.inner.write_block(disk, slot, data)
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }

    fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        self.inner.pool_stats()
    }

    fn wall_snapshot(&self) -> Option<crate::stats::StorageWallSnapshot> {
        self.inner.wall_snapshot()
    }

    fn attach_span_sink(&mut self, sink: std::sync::Arc<crate::stats::SpanSink>) {
        self.inner.attach_span_sink(sink)
    }

    /// Inner caps, unchanged. Overlap survives fault injection: the
    /// `start_*_batch` forwards below apply the per-block schedule at
    /// issue time (advancing the same counters as the blocking path) and
    /// then hand the whole batch to the inner backend asynchronously.
    fn caps(&self) -> crate::storage::StorageCaps {
        self.inner.caps()
    }

    /// Apply the per-block read schedule at issue time — one draw per
    /// block, identical to the blocking decomposition — then forward the
    /// intact batch to the inner backend. A scheduled fault fails the
    /// whole start (nothing is issued), matching how a blocking batch
    /// stops at its first failed block.
    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn crate::overlap::PendingRead<K> + Send>> {
        for &(disk, _) in reqs {
            self.check_read_op(disk)?;
        }
        self.inner.start_read_batch(reqs)
    }

    /// See [`FlakyStorage`]'s `start_read_batch`; same protocol for writes.
    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn crate::overlap::PendingWrite + Send>> {
        for &(disk, _) in reqs {
            self.check_write_op(disk)?;
        }
        self.inner.start_write_batch(reqs, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::machine::Pdm;
    use crate::storage::MemStorage;

    fn flaky_machine(mode: FailMode) -> Pdm<u64, FlakyStorage<MemStorage<u64>>> {
        let inner = MemStorage::new(2, 8);
        Pdm::with_storage(PdmConfig::new(2, 8, 64), FlakyStorage::new(inner, mode)).unwrap()
    }

    #[test]
    fn passthrough_mode_behaves_normally() {
        let mut pdm = flaky_machine(FailMode::Never);
        let r = pdm.alloc_region_for_keys(32).unwrap();
        let data: Vec<u64> = (0..32).collect();
        pdm.write_region(&r, &data).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn nth_read_fails_exactly_once() {
        let mut pdm = flaky_machine(FailMode::NthRead(2));
        let r = pdm.alloc_region_for_keys(64).unwrap();
        pdm.ingest(&r, &(0..64u64).collect::<Vec<_>>()).unwrap();
        let mut out = Vec::new();
        // blocks 0,1 fine; block 2 fails
        assert!(pdm.read_range(&r, 0, 2, &mut out).is_ok());
        assert!(matches!(
            pdm.read_range(&r, 2, 1, &mut out),
            Err(PdmError::Io(_))
        ));
        // subsequent reads succeed (one-shot failure)
        assert!(pdm.read_range(&r, 3, 1, &mut out).is_ok());
    }

    #[test]
    fn disk_mode_fails_only_that_disk() {
        let mut pdm = flaky_machine(FailMode::Disk(1));
        let r = pdm.alloc_region_for_keys(64).unwrap();
        // block 0 → disk 0 (ok), block 1 → disk 1 (fails)
        let mut out = Vec::new();
        assert!(pdm.read_range(&r, 0, 1, &mut out).is_ok());
        assert!(pdm.read_range(&r, 1, 1, &mut out).is_err());
    }

    #[test]
    fn ingest_faults_surface_too() {
        let mut pdm = flaky_machine(FailMode::NthWrite(0));
        let r = pdm.alloc_region_for_keys(16).unwrap();
        assert!(pdm.ingest(&r, &[1u64; 16]).is_err());
    }

    #[test]
    fn disk_after_works_then_dies_permanently() {
        let mut s = FlakyStorage::new(MemStorage::<u64>::new(2, 4), FailMode::DiskAfter(1, 3));
        s.ensure_capacity(0, 4).unwrap();
        s.ensure_capacity(1, 4).unwrap();
        let mut out = [0u64; 4];
        // ops 0,1,2 on disk 1 succeed; from op 3 the disk is gone for good
        assert!(s.read_block(1, 0, &mut out).is_ok());
        assert!(s.read_block(1, 1, &mut out).is_ok());
        assert!(s.read_block(1, 2, &mut out).is_ok());
        let e = s.read_block(1, 3, &mut out).unwrap_err();
        assert!(!e.is_transient(), "DiskAfter faults are permanent");
        assert!(s.read_block(1, 0, &mut out).is_err());
        assert!(s.write_block(1, 0, &[0; 4]).is_err());
        // the other disk is unaffected
        assert!(s.read_block(0, 0, &mut out).is_ok());
        assert_eq!(s.injected, 3);
    }

    #[test]
    fn transient_rate_is_deterministic_and_transient() {
        let mk = || {
            FlakyStorage::new(
                MemStorage::<u64>::new(1, 4),
                FailMode::TransientRate {
                    seed: 42,
                    rate_ppm: 200_000, // 20%: a few K ops will surely hit
                },
            )
        };
        let run = |s: &mut FlakyStorage<MemStorage<u64>>| {
            s.ensure_capacity(0, 8).unwrap();
            let mut out = [0u64; 4];
            let mut fails = Vec::new();
            for i in 0..2_000u64 {
                if let Err(e) = s.read_block(0, (i % 8) as usize, &mut out) {
                    assert!(e.is_transient());
                    fails.push(i);
                }
            }
            fails
        };
        let (f1, f2) = (run(&mut mk()), run(&mut mk()));
        assert_eq!(f1, f2, "same seed, same schedule");
        assert!(!f1.is_empty(), "20% over 2000 ops must fire");
        assert!(f1.len() < 1_000, "and must not fire every time");
    }

    #[test]
    fn every_nth_heals_on_the_next_attempt() {
        let mut s = FlakyStorage::new(MemStorage::<u64>::new(1, 4), FailMode::EveryNth(3));
        s.ensure_capacity(0, 4).unwrap();
        let mut out = [0u64; 4];
        // op 0 fails, ops 1,2 succeed, op 3 fails, …
        let e = s.read_block(0, 0, &mut out).unwrap_err();
        assert!(e.is_transient());
        assert!(s.read_block(0, 0, &mut out).is_ok(), "retry heals");
        assert!(s.write_block(0, 0, &[1; 4]).is_ok());
        assert!(s.read_block(0, 1, &mut out).is_err());
        assert_eq!(s.injected, 2);
    }
}
