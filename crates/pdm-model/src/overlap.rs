//! I/O–computation overlap (the Dementiev–Sanders idea the paper cites:
//! "a sorting algorithm based on multi-way merge that overlaps I/O and
//! computation optimally").
//!
//! The synchronous [`Storage`] trait makes every read blocking; real disk
//! controllers let you *issue* a batch and keep computing until you need
//! the data. [`OverlapStorage`] adds exactly that: `start_read_batch`
//! dispatches the requests and returns a [`PendingRead`] token;
//! `PendingRead::wait` blocks only for whatever hasn't completed yet.
//!
//! [`PrefetchReader`] builds the classic double-buffered sequential
//! scanner on top: while the consumer chews on stripe `k`, stripe `k+1`
//! is already in flight. On [`crate::storage_threaded::ThreadedStorage`]
//! (per-disk worker threads with emulated latency) this hides the disk
//! time behind computation — measured by the `overlap` bench and tests.
//!
//! Accounting note: parallel-step costs are charged at *issue* time with
//! the same batch rule as blocking reads, so overlap changes wall-clock
//! only, never the pass counts.

use crate::error::{PdmError, Result};
use crate::key::PdmKey;
use crate::layout::Region;
use crate::machine::Pdm;
use crate::mem::TrackedBuf;
use crate::storage::Storage;
use crate::storage_threaded::ThreadedStorage;

/// A handle to an in-flight batch of block reads.
pub trait PendingRead<K> {
    /// Block until every request completes, writing the blocks (in request
    /// order) into `out`, which must hold exactly `requests × B` keys.
    fn wait(self: Box<Self>, out: &mut [K]) -> Result<()>;

    /// Whether every request has already completed, so `wait` would not
    /// block. Purely observational (feeds the overlap hit/stall counters in
    /// [`crate::stats::OverlapCounters`]); eager backends are always ready.
    fn is_ready(&self) -> bool {
        true
    }
}

/// Storage that can issue reads without blocking on their completion.
pub trait OverlapStorage<K: PdmKey>: Storage<K> {
    /// Dispatch a batch of `(disk, slot)` reads; returns a completion token.
    fn start_read_batch(&mut self, reqs: &[(usize, usize)])
        -> Result<Box<dyn PendingRead<K> + Send>>;
}

/// Trivial implementation for any synchronous storage: the "pending" read
/// completed eagerly. Lets pipeline code run unchanged (just without the
/// wall-clock benefit) on the memory and file backends.
pub struct EagerPending<K> {
    data: Vec<K>,
}

impl<K: PdmKey> PendingRead<K> for EagerPending<K> {
    fn wait(self: Box<Self>, out: &mut [K]) -> Result<()> {
        if out.len() != self.data.len() {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.data.len(),
            });
        }
        out.copy_from_slice(&self.data);
        Ok(())
    }
}

impl<K: PdmKey> OverlapStorage<K> for crate::storage::MemStorage<K> {
    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn PendingRead<K> + Send>> {
        let b = self.block_size();
        let mut data = vec![K::MAX; reqs.len() * b];
        self.read_batch(reqs, &mut data)?;
        Ok(Box::new(EagerPending { data }))
    }
}

impl<K: PdmKey> OverlapStorage<K> for crate::storage_file::FileStorage<K> {
    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn PendingRead<K> + Send>> {
        let b = self.block_size();
        let mut data = vec![K::MAX; reqs.len() * b];
        self.read_batch(reqs, &mut data)?;
        Ok(Box::new(EagerPending { data }))
    }
}

/// Genuinely asynchronous pending read: per-request reply channels from
/// the disk worker threads. Reply buffers are drained into `out` and
/// returned to the storage's block pool.
pub struct ThreadedPending<K> {
    replies: Vec<crossbeam::channel::Receiver<Result<Vec<K>>>>,
    block_size: usize,
    pool: std::sync::Arc<crate::pool::BlockPool<K>>,
}

impl<K: PdmKey> PendingRead<K> for ThreadedPending<K> {
    fn wait(self: Box<Self>, out: &mut [K]) -> Result<()> {
        let b = self.block_size;
        if out.len() != self.replies.len() * b {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.replies.len() * b,
            });
        }
        for (i, rx) in self.replies.into_iter().enumerate() {
            let data = rx
                .recv()
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))??;
            out[i * b..(i + 1) * b].copy_from_slice(&data);
            self.pool.put(data);
        }
        Ok(())
    }

    fn is_ready(&self) -> bool {
        self.replies.iter().all(|rx| !rx.is_empty())
    }
}

impl<K: PdmKey> OverlapStorage<K> for ThreadedStorage<K> {
    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn PendingRead<K> + Send>> {
        let replies = self.dispatch_reads(reqs)?;
        Ok(Box::new(ThreadedPending {
            replies,
            block_size: self.block_size(),
            pool: self.pool_handle(),
        }))
    }
}

/// A handle to an in-flight batch of block writes.
pub trait PendingWrite {
    /// Block until every write completes.
    fn wait(self: Box<Self>) -> Result<()>;

    /// Whether every write has already retired (see
    /// [`PendingRead::is_ready`]).
    fn is_ready(&self) -> bool {
        true
    }
}

/// Write-side extension of [`OverlapStorage`].
pub trait OverlapWriteStorage<K: PdmKey>: OverlapStorage<K> {
    /// Dispatch a batch of `(disk, slot)` writes taking `requests × B` keys
    /// of `data`; returns a completion token.
    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn PendingWrite + Send>>;
}

/// Eagerly-completed write (synchronous backends).
pub struct EagerWriteDone;

impl PendingWrite for EagerWriteDone {
    fn wait(self: Box<Self>) -> Result<()> {
        Ok(())
    }
}

impl<K: PdmKey> OverlapWriteStorage<K> for crate::storage::MemStorage<K> {
    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn PendingWrite + Send>> {
        self.write_batch(reqs, data)?;
        Ok(Box::new(EagerWriteDone))
    }
}

impl<K: PdmKey> OverlapWriteStorage<K> for crate::storage_file::FileStorage<K> {
    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn PendingWrite + Send>> {
        self.write_batch(reqs, data)?;
        Ok(Box::new(EagerWriteDone))
    }
}

/// Asynchronous write completion from the per-disk workers.
pub struct ThreadedWritePending {
    replies: Vec<crossbeam::channel::Receiver<Result<()>>>,
}

impl PendingWrite for ThreadedWritePending {
    fn wait(self: Box<Self>) -> Result<()> {
        for rx in self.replies {
            rx.recv()
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))??;
        }
        Ok(())
    }

    fn is_ready(&self) -> bool {
        self.replies.iter().all(|rx| !rx.is_empty())
    }
}

impl<K: PdmKey> OverlapWriteStorage<K> for ThreadedStorage<K> {
    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn PendingWrite + Send>> {
        let replies = self.dispatch_writes(reqs, data)?;
        Ok(Box::new(ThreadedWritePending { replies }))
    }
}

/// Write-behind sequential writer: flushes each full batch asynchronously
/// and only waits for it when the *next* batch is ready (or at `finish`),
/// so block serialization overlaps the producer's computation.
pub struct FlushBehindWriter<K: PdmKey> {
    region: Region,
    next_block: usize,
    batch_keys: usize,
    filling: TrackedBuf<K>,
    inflight_data: TrackedBuf<K>,
    inflight: Option<Box<dyn PendingWrite + Send>>,
    written: usize,
}

impl<K: PdmKey> FlushBehindWriter<K> {
    /// Writer over `region` with `batch_blocks`-block flush units (two
    /// tracked buffers: one filling, one in flight).
    pub fn new<S: OverlapWriteStorage<K>>(
        pdm: &mut Pdm<K, S>,
        region: Region,
        batch_blocks: usize,
    ) -> Result<Self> {
        let b = pdm.cfg().block_size;
        let batch_keys = batch_blocks.max(1) * b;
        Ok(Self {
            region,
            next_block: 0,
            batch_keys,
            filling: pdm.alloc_buf(batch_keys)?,
            inflight_data: pdm.alloc_buf(batch_keys)?,
            inflight: None,
            written: 0,
        })
    }

    fn flush_filling<S: OverlapWriteStorage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        if self.filling.is_empty() {
            return Ok(());
        }
        debug_assert_eq!(self.filling.len() % self.region.block_size(), 0);
        // retire the previous in-flight batch before reusing its buffer
        if let Some(p) = self.inflight.take() {
            let ov = &mut pdm.stats_mut().overlap;
            if p.is_ready() {
                ov.flush_hits += 1;
            } else {
                ov.flush_stalls += 1;
            }
            p.wait()?;
        }
        std::mem::swap(&mut self.filling, &mut self.inflight_data);
        self.filling.clear();
        let nblocks = self.inflight_data.len() / self.region.block_size();
        let idx: Vec<usize> = (self.next_block..self.next_block + nblocks).collect();
        let pending = pdm.start_write_blocks(&self.region, &idx, &self.inflight_data)?;
        pdm.stats_mut().overlap.flush_batches += 1;
        self.next_block += nblocks;
        self.inflight = Some(pending);
        Ok(())
    }

    /// Append keys, flushing asynchronously as batches fill.
    pub fn push_slice<S: OverlapWriteStorage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        ks: &[K],
    ) -> Result<()> {
        for &k in ks {
            self.filling.push(k);
            self.written += 1;
            if self.filling.len() == self.batch_keys {
                self.flush_filling(pdm)?;
            }
        }
        Ok(())
    }

    /// Pad the final block with `K::MAX`, flush everything, wait for
    /// completion, and return the key count written (padding excluded).
    pub fn finish<S: OverlapWriteStorage<K>>(mut self, pdm: &mut Pdm<K, S>) -> Result<usize> {
        let b = self.region.block_size();
        let rem = self.filling.len() % b;
        if rem != 0 {
            for _ in rem..b {
                self.filling.push(K::MAX);
            }
        }
        self.flush_filling(pdm)?;
        if let Some(p) = self.inflight.take() {
            let ov = &mut pdm.stats_mut().overlap;
            if p.is_ready() {
                ov.flush_hits += 1;
            } else {
                ov.flush_stalls += 1;
            }
            p.wait()?;
        }
        Ok(self.written)
    }
}

/// Double-buffered sequential reader: always keeps the next batch of
/// blocks in flight while the current one is being consumed.
pub struct PrefetchReader<K: PdmKey> {
    region: Region,
    batch_blocks: usize,
    next_block: usize,
    total_keys: usize,
    yielded: usize,
    current: TrackedBuf<K>,
    pos: usize,
    inflight: Option<(Box<dyn PendingRead<K> + Send>, usize)>,
    inflight_buf: TrackedBuf<K>,
}

impl<K: PdmKey> PrefetchReader<K> {
    /// Reader over the first `total_keys` keys of `region`, prefetching
    /// `batch_blocks` blocks ahead. Charges `2 × batch_blocks × B` keys of
    /// internal memory (two buffers — that is the price of overlap).
    pub fn new<S: OverlapStorage<K>>(
        pdm: &mut Pdm<K, S>,
        region: Region,
        total_keys: usize,
        batch_blocks: usize,
    ) -> Result<Self> {
        let b = pdm.cfg().block_size;
        let batch_blocks = batch_blocks.max(1);
        let mut rd = Self {
            region,
            batch_blocks,
            next_block: 0,
            total_keys,
            yielded: 0,
            current: pdm.alloc_buf(batch_blocks * b)?,
            pos: 0,
            inflight: None,
            inflight_buf: pdm.alloc_buf(batch_blocks * b)?,
        };
        rd.issue_next(pdm)?;
        Ok(rd)
    }

    fn issue_next<S: OverlapStorage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        debug_assert!(self.inflight.is_none());
        let blocks_left = self.region.len_blocks().saturating_sub(self.next_block);
        let take = self.batch_blocks.min(blocks_left);
        if take == 0 {
            return Ok(());
        }
        let idx: Vec<usize> = (self.next_block..self.next_block + take).collect();
        let pending = pdm.start_read_blocks(&self.region, &idx)?;
        pdm.stats_mut().overlap.prefetch_batches += 1;
        self.next_block += take;
        self.inflight = Some((pending, take));
        Ok(())
    }

    /// Rotate: wait for the in-flight batch, make it current, and issue the
    /// next one. Returns false when the stream is exhausted.
    fn rotate<S: OverlapStorage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<bool> {
        let Some((pending, blocks)) = self.inflight.take() else {
            return Ok(false);
        };
        let ov = &mut pdm.stats_mut().overlap;
        if pending.is_ready() {
            ov.prefetch_hits += 1;
        } else {
            ov.prefetch_stalls += 1;
        }
        let b = self.region.block_size();
        {
            let buf = self.inflight_buf.as_vec_mut();
            buf.clear();
            buf.resize(blocks * b, K::MAX);
            pending.wait(buf)?;
        }
        std::mem::swap(&mut self.current, &mut self.inflight_buf);
        self.pos = 0;
        self.issue_next(pdm)?;
        Ok(true)
    }

    /// Keys not yet yielded.
    pub fn remaining(&self) -> usize {
        self.total_keys - self.yielded
    }

    /// Pull up to `n` keys into `out`; returns how many were delivered.
    pub fn take_into<S: OverlapStorage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        n: usize,
        out: &mut Vec<K>,
    ) -> Result<usize> {
        let mut got = 0usize;
        while got < n && self.yielded < self.total_keys {
            if self.pos >= self.current.len() {
                if !self.rotate(pdm)? {
                    break;
                }
                if self.current.is_empty() {
                    break;
                }
            }
            let avail = (self.current.len() - self.pos)
                .min(n - got)
                .min(self.total_keys - self.yielded);
            out.extend_from_slice(&self.current[self.pos..self.pos + avail]);
            self.pos += avail;
            self.yielded += avail;
            got += avail;
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use std::time::{Duration, Instant};

    #[test]
    fn prefetch_reader_round_trips_on_mem_backend() {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let n = 777usize;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 3 % 1000).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let mut rd = PrefetchReader::new(&mut pdm, r, n, 4).unwrap();
        let mut out = Vec::new();
        while rd.take_into(&mut pdm, 100, &mut out).unwrap() > 0 {}
        assert_eq!(out, data);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn prefetch_accounting_matches_blocking_reads() {
        let n = 512usize;
        let data: Vec<u64> = (0..n as u64).collect();

        let mut pdm1: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let r1 = pdm1.alloc_region_for_keys(n).unwrap();
        pdm1.ingest(&r1, &data).unwrap();
        let mut rd = PrefetchReader::new(&mut pdm1, r1, n, 4).unwrap();
        let mut out = Vec::new();
        while rd.take_into(&mut pdm1, 64, &mut out).unwrap() > 0 {}

        let mut pdm2: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let r2 = pdm2.alloc_region_for_keys(n).unwrap();
        pdm2.ingest(&r2, &data).unwrap();
        let mut rd2 = crate::stream::RunReader::new(&pdm2, r2, n, 4).unwrap();
        let mut out2 = Vec::new();
        rd2.take_into(&mut pdm2, n, &mut out2).unwrap();

        assert_eq!(out, out2);
        assert_eq!(pdm1.stats().blocks_read, pdm2.stats().blocks_read);
        assert_eq!(pdm1.stats().read_steps, pdm2.stats().read_steps);
    }

    #[test]
    fn overlap_hides_disk_latency_on_threaded_backend() {
        // Per-block latency 2ms; 32 blocks in batches of 4 over 4 disks →
        // 8 stripes ≈ 16ms of pure disk time. With ~2ms of compute per
        // stripe, blocking ≈ 32ms; overlapped ≈ max(disk, compute) + ε.
        let (d, b) = (4usize, 16usize);
        let lat = Duration::from_millis(2);
        let n = 32 * b;
        let data: Vec<u64> = (0..n as u64).collect();
        let compute = |chunk: &[u64]| -> u64 {
            // deterministic checksum + 2ms of "compute" per stripe. Slept,
            // not spun: on a single-core host a spinning consumer starves
            // the disk workers' reply sends, which would measure scheduler
            // contention instead of I/O overlap (real disk completion is
            // interrupt-driven and doesn't contend with the CPU this way).
            let mut acc = 0u64;
            for &k in chunk {
                acc = acc.wrapping_add(k).rotate_left(7);
            }
            std::thread::sleep(Duration::from_millis(2));
            acc
        };

        // blocking
        let storage = ThreadedStorage::<u64>::with_latency(d, b, lat);
        let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let t0 = Instant::now();
        let mut rd = crate::stream::RunReader::new(&pdm, r, n, d).unwrap();
        let mut buf = Vec::new();
        let mut acc = 0u64;
        loop {
            buf.clear();
            if rd.take_into(&mut pdm, d * b, &mut buf).unwrap() == 0 {
                break;
            }
            acc ^= compute(&buf);
        }
        let blocking = t0.elapsed();

        // overlapped
        let storage = ThreadedStorage::<u64>::with_latency(d, b, lat);
        let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let t0 = Instant::now();
        let mut rd = PrefetchReader::new(&mut pdm, r, n, d).unwrap();
        let mut buf = Vec::new();
        let mut acc2 = 0u64;
        loop {
            buf.clear();
            if rd.take_into(&mut pdm, d * b, &mut buf).unwrap() == 0 {
                break;
            }
            acc2 ^= compute(&buf);
        }
        let overlapped = t0.elapsed();

        assert_eq!(acc, acc2);
        assert!(
            overlapped.as_secs_f64() < blocking.as_secs_f64() * 0.8,
            "overlap gave no benefit: blocking {blocking:?}, overlapped {overlapped:?}"
        );
    }

    #[test]
    fn flush_behind_writer_round_trips() {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let n = 300usize;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 13 % 997).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        let mut w = FlushBehindWriter::new(&mut pdm, r, 4).unwrap();
        for chunk in data.chunks(37) {
            w.push_slice(&mut pdm, chunk).unwrap();
        }
        assert_eq!(w.finish(&mut pdm).unwrap(), n);
        assert_eq!(pdm.inspect_prefix(&r, n).unwrap(), data);
    }

    #[test]
    fn flush_behind_accounting_matches_run_writer() {
        let n = 512usize;
        let data: Vec<u64> = (0..n as u64).collect();

        let mut pdm1: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let r1 = pdm1.alloc_region_for_keys(n).unwrap();
        let mut w1 = FlushBehindWriter::new(&mut pdm1, r1, 4).unwrap();
        w1.push_slice(&mut pdm1, &data).unwrap();
        w1.finish(&mut pdm1).unwrap();

        let mut pdm2: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let r2 = pdm2.alloc_region_for_keys(n).unwrap();
        let mut w2 = crate::stream::RunWriter::new(&pdm2, r2, 4).unwrap();
        w2.push_slice(&mut pdm2, &data).unwrap();
        w2.finish(&mut pdm2).unwrap();

        assert_eq!(pdm1.inspect(&r1).unwrap(), pdm2.inspect(&r2).unwrap());
        assert_eq!(pdm1.stats().blocks_written, pdm2.stats().blocks_written);
        assert_eq!(pdm1.stats().write_steps, pdm2.stats().write_steps);
    }

    #[test]
    fn write_behind_hides_latency_on_threaded_backend() {
        let (d, b) = (4usize, 16usize);
        let lat = Duration::from_millis(2);
        let n = 32 * b;
        let data: Vec<u64> = (0..n as u64).collect();

        // blocking writes (RunWriter waits out each stripe)
        let storage = ThreadedStorage::<u64>::with_latency(d, b, lat);
        let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        let t0 = Instant::now();
        let mut w = crate::stream::RunWriter::new(&pdm, r, d).unwrap();
        for chunk in data.chunks(d * b) {
            w.push_slice(&mut pdm, chunk).unwrap();
            std::thread::sleep(Duration::from_millis(2)); // producer compute
        }
        w.finish(&mut pdm).unwrap();
        let blocking = t0.elapsed();

        // write-behind
        let storage = ThreadedStorage::<u64>::with_latency(d, b, lat);
        let mut pdm2 = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let r2 = pdm2.alloc_region_for_keys(n).unwrap();
        let t0 = Instant::now();
        let mut w = FlushBehindWriter::new(&mut pdm2, r2, d).unwrap();
        for chunk in data.chunks(d * b) {
            w.push_slice(&mut pdm2, chunk).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        w.finish(&mut pdm2).unwrap();
        let overlapped = t0.elapsed();

        assert_eq!(pdm.inspect_prefix(&r, n).unwrap(), pdm2.inspect_prefix(&r2, n).unwrap());
        assert!(
            overlapped.as_secs_f64() < blocking.as_secs_f64() * 0.8,
            "write-behind gave no benefit: {blocking:?} vs {overlapped:?}"
        );
    }

    #[test]
    fn eager_pending_checks_length() {
        let p = Box::new(EagerPending { data: vec![1u64, 2] });
        let mut small = [0u64; 1];
        assert!(p.wait(&mut small).is_err());
    }

    #[test]
    fn overlap_counters_track_batches_hits_and_stalls() {
        // eager backend: every rotation is a hit, never a stall
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let n = 512usize;
        let data: Vec<u64> = (0..n as u64).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let mut rd = PrefetchReader::new(&mut pdm, r, n, 4).unwrap();
        let mut out = Vec::new();
        while rd.take_into(&mut pdm, 64, &mut out).unwrap() > 0 {}
        let ov = pdm.stats().overlap;
        assert_eq!(ov.prefetch_batches, 16, "64 blocks in 4-block batches");
        assert_eq!(ov.prefetch_hits, 16, "every issued batch rotates in once");
        assert_eq!(ov.prefetch_stalls, 0, "eager backend never stalls");

        let r2 = pdm.alloc_region_for_keys(n).unwrap();
        let mut w = FlushBehindWriter::new(&mut pdm, r2, 4).unwrap();
        w.push_slice(&mut pdm, &data).unwrap();
        w.finish(&mut pdm).unwrap();
        let ov = pdm.stats().overlap;
        assert_eq!(ov.flush_batches, 16);
        assert_eq!(ov.flush_hits + ov.flush_stalls, 16, "every issued batch retires");
        assert_eq!(ov.flush_stalls, 0, "eager backend never stalls");
    }

    #[test]
    fn overlap_counters_balance_on_threaded_backend() {
        // hit/stall split is timing-dependent, but every issued batch must
        // retire exactly once
        let (d, b) = (4usize, 8usize);
        let storage = ThreadedStorage::<u64>::new(d, b);
        let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let n = 16 * b;
        let data: Vec<u64> = (0..n as u64).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let mut rd = PrefetchReader::new(&mut pdm, r, n, d).unwrap();
        let mut out = Vec::new();
        while rd.take_into(&mut pdm, d * b, &mut out).unwrap() > 0 {}
        assert_eq!(out, data);
        let ov = pdm.stats().overlap;
        assert_eq!(ov.prefetch_batches, 4);
        assert_eq!(ov.prefetch_hits + ov.prefetch_stalls, 4);
    }
}
