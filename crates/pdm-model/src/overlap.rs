//! I/O–computation overlap (the Dementiev–Sanders idea the paper cites:
//! "a sorting algorithm based on multi-way merge that overlaps I/O and
//! computation optimally").
//!
//! The synchronous [`Storage`] batch calls make every read blocking; real
//! disk controllers let you *issue* a batch and keep computing until you
//! need the data. [`Storage::start_read_batch`] /
//! [`Storage::start_write_batch`] add exactly that: they dispatch the
//! requests and return a [`PendingRead`] / [`PendingWrite`] token whose
//! `wait` blocks only for whatever hasn't completed yet. Synchronous
//! backends fall back to eager completion (correct, no latency hiding);
//! [`crate::storage_threaded::ThreadedStorage`] services the token from
//! its per-disk workers.
//!
//! Algorithms do not touch storage tokens directly — they go through
//! [`Pdm::start_read_blocks`](crate::machine::Pdm::start_read_blocks) and
//! friends, which wrap the token in a [`TrackedRead`] / [`TrackedWrite`].
//! The tracked wrappers carry the machine's in-flight counter (checkpoint
//! boundaries refuse to persist a manifest while it is non-zero) and the
//! probe-event id pairing each `OverlapComplete` with its `OverlapIssue`.
//!
//! Pipeline-facing helpers, all gated on
//! [`Pdm::overlap`](crate::machine::Pdm::overlap):
//!
//! - [`ReadAhead`]: runs a precomputed schedule of read batches one batch
//!   ahead of the consumer. Each schedule entry is exactly one blocking
//!   batch, so the step accounting is identical with overlap on or off.
//! - [`WriteBehind`]: issues each write batch asynchronously and retires
//!   it when the next one is ready (or at `finish`).
//! - [`PrefetchReader`] / [`FlushBehindWriter`]: double-buffered
//!   sequential stream variants of the same ideas.
//!
//! Accounting note: parallel-step costs are charged at *issue* time with
//! the same batch rule as blocking reads, so overlap changes wall-clock
//! only, never the pass counts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{PdmError, Result};
use crate::key::PdmKey;
use crate::layout::Region;
use crate::machine::Pdm;
use crate::mem::TrackedBuf;
use crate::storage::Storage;

/// A handle to an in-flight batch of block reads.
pub trait PendingRead<K> {
    /// Block until every request completes, writing the blocks (in request
    /// order) into `out`, which must hold exactly `requests × B` keys.
    fn wait(self: Box<Self>, out: &mut [K]) -> Result<()>;

    /// Whether every request has already completed, so `wait` would not
    /// block. Purely observational (feeds the overlap hit/stall counters in
    /// [`crate::stats::OverlapCounters`]); eager backends are always ready.
    fn is_ready(&self) -> bool {
        true
    }
}

/// Trivial pending read for any synchronous storage: the read completed
/// eagerly at issue. Lets pipeline code run unchanged (just without the
/// wall-clock benefit) on the memory and file backends.
pub struct EagerPending<K> {
    data: Vec<K>,
}

impl<K> EagerPending<K> {
    /// Wrap an eagerly-read payload.
    pub fn new(data: Vec<K>) -> Self {
        Self { data }
    }
}

impl<K: PdmKey> PendingRead<K> for EagerPending<K> {
    fn wait(self: Box<Self>, out: &mut [K]) -> Result<()> {
        if out.len() != self.data.len() {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.data.len(),
            });
        }
        out.copy_from_slice(&self.data);
        Ok(())
    }
}

/// Genuinely asynchronous pending read: per-request reply channels from
/// the disk worker threads. Reply buffers are drained into `out` and
/// returned to the storage's block pool.
pub struct ThreadedPending<K> {
    replies: Vec<crossbeam::channel::Receiver<Result<Vec<K>>>>,
    block_size: usize,
    pool: Arc<crate::pool::BlockPool<K>>,
}

impl<K> ThreadedPending<K> {
    pub(crate) fn new(
        replies: Vec<crossbeam::channel::Receiver<Result<Vec<K>>>>,
        block_size: usize,
        pool: Arc<crate::pool::BlockPool<K>>,
    ) -> Self {
        Self {
            replies,
            block_size,
            pool,
        }
    }
}

impl<K: PdmKey> PendingRead<K> for ThreadedPending<K> {
    fn wait(self: Box<Self>, out: &mut [K]) -> Result<()> {
        let b = self.block_size;
        if out.len() != self.replies.len() * b {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.replies.len() * b,
            });
        }
        for (i, rx) in self.replies.into_iter().enumerate() {
            let data = rx
                .recv()
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))??;
            out[i * b..(i + 1) * b].copy_from_slice(&data);
            self.pool.put(data);
        }
        Ok(())
    }

    fn is_ready(&self) -> bool {
        self.replies.iter().all(|rx| !rx.is_empty())
    }
}

/// A handle to an in-flight batch of block writes.
pub trait PendingWrite {
    /// Block until every write completes.
    fn wait(self: Box<Self>) -> Result<()>;

    /// Whether every write has already retired (see
    /// [`PendingRead::is_ready`]).
    fn is_ready(&self) -> bool {
        true
    }
}

/// Eagerly-completed write (synchronous backends).
pub struct EagerWriteDone;

impl PendingWrite for EagerWriteDone {
    fn wait(self: Box<Self>) -> Result<()> {
        Ok(())
    }
}

/// Asynchronous write completion from the per-disk workers.
pub struct ThreadedWritePending {
    replies: Vec<crossbeam::channel::Receiver<Result<()>>>,
}

impl ThreadedWritePending {
    pub(crate) fn new(replies: Vec<crossbeam::channel::Receiver<Result<()>>>) -> Self {
        Self { replies }
    }
}

impl PendingWrite for ThreadedWritePending {
    fn wait(self: Box<Self>) -> Result<()> {
        for rx in self.replies {
            rx.recv()
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))??;
        }
        Ok(())
    }

    fn is_ready(&self) -> bool {
        self.replies.iter().all(|rx| !rx.is_empty())
    }
}

/// RAII increment of the machine's in-flight operation counter. Created
/// at issue, released when the owning token is waited on *or* abandoned —
/// either way the count returns to zero, so a leak-free error path never
/// wedges the checkpoint guard. (An abandoned token may still have
/// physical I/O in flight on the threaded backend; abandonment only
/// happens on error propagation, where no manifest is written anyway.)
pub(crate) struct PendingGuard {
    ctr: Arc<AtomicUsize>,
}

impl PendingGuard {
    pub(crate) fn new(ctr: &Arc<AtomicUsize>) -> Self {
        ctr.fetch_add(1, Ordering::Relaxed);
        Self {
            ctr: Arc::clone(ctr),
        }
    }
}

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.ctr.fetch_sub(1, Ordering::Relaxed);
    }
}

/// An in-flight read issued through
/// [`Pdm::start_read_blocks`](crate::machine::Pdm::start_read_blocks);
/// retire it with
/// [`Pdm::finish_read_blocks`](crate::machine::Pdm::finish_read_blocks).
///
/// During checkpoint replay the token carries no storage operation at
/// all: retiring it yields `K::MAX` filler, mirroring the blocking replay
/// path.
pub struct TrackedRead<K> {
    inner: Option<Box<dyn PendingRead<K> + Send>>,
    expected: usize,
    id: u64,
    deferred: Option<Box<DeferredReadCharge>>,
    _guard: PendingGuard,
}

/// Accounting a *speculative* read postponed from issue to consumption
/// (see [`Pdm::start_read_blocks_multi_speculative`]). The blocking path
/// only ever charges batches it actually consumes — a data-dependent
/// early abort (e.g. `expected_two_pass`'s pass-2 cleanliness check)
/// never reads past the aborting window — so a speculative issue must
/// not charge anything until the consumer commits to the batch. Dropping
/// an unconsumed token abandons the physical read without touching any
/// counter or probe stream.
pub(crate) struct DeferredReadCharge {
    /// Per-disk block multiplicities of the batch, captured at issue.
    pub(crate) counts: Vec<u64>,
    /// Total blocks in the batch.
    pub(crate) blocks: u64,
}

impl<K: PdmKey> TrackedRead<K> {
    pub(crate) fn live(
        inner: Box<dyn PendingRead<K> + Send>,
        expected: usize,
        id: u64,
        guard: PendingGuard,
    ) -> Self {
        Self {
            inner: Some(inner),
            expected,
            id,
            deferred: None,
            _guard: guard,
        }
    }

    pub(crate) fn live_deferred(
        inner: Box<dyn PendingRead<K> + Send>,
        expected: usize,
        charge: DeferredReadCharge,
        guard: PendingGuard,
    ) -> Self {
        Self {
            inner: Some(inner),
            expected,
            id: 0,
            deferred: Some(Box::new(charge)),
            _guard: guard,
        }
    }

    pub(crate) fn replay(expected: usize, guard: PendingGuard) -> Self {
        Self {
            inner: None,
            expected,
            id: 0,
            deferred: None,
            _guard: guard,
        }
    }

    pub(crate) fn take_deferred(&mut self) -> Option<Box<DeferredReadCharge>> {
        self.deferred.take()
    }

    pub(crate) fn is_replay(&self) -> bool {
        self.inner.is_none()
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Whether waiting would not block (replay fillers are always ready).
    pub fn is_ready(&self) -> bool {
        self.inner.as_ref().is_none_or(|p| p.is_ready())
    }

    /// Keys this read will deliver.
    pub fn expected_keys(&self) -> usize {
        self.expected
    }

    pub(crate) fn wait(self, out: &mut [K]) -> Result<()> {
        if out.len() != self.expected {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.expected,
            });
        }
        match self.inner {
            Some(p) => p.wait(out),
            None => {
                out.fill(K::MAX);
                Ok(())
            }
        }
    }
}

/// An in-flight write issued through
/// [`Pdm::start_write_blocks`](crate::machine::Pdm::start_write_blocks);
/// retire it with
/// [`Pdm::finish_write_blocks`](crate::machine::Pdm::finish_write_blocks).
/// The payload was copied (or written) at issue, so only completion is
/// outstanding.
pub struct TrackedWrite {
    inner: Option<Box<dyn PendingWrite + Send>>,
    id: u64,
    _guard: PendingGuard,
}

impl TrackedWrite {
    pub(crate) fn live(inner: Box<dyn PendingWrite + Send>, id: u64, guard: PendingGuard) -> Self {
        Self {
            inner: Some(inner),
            id,
            _guard: guard,
        }
    }

    pub(crate) fn replay(guard: PendingGuard) -> Self {
        Self {
            inner: None,
            id: 0,
            _guard: guard,
        }
    }

    pub(crate) fn is_replay(&self) -> bool {
        self.inner.is_none()
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Whether waiting would not block.
    pub fn is_ready(&self) -> bool {
        self.inner.as_ref().is_none_or(|p| p.is_ready())
    }

    pub(crate) fn wait(self) -> Result<()> {
        match self.inner {
            Some(p) => p.wait(),
            None => Ok(()),
        }
    }
}

/// Default per-disk submit-queue depth: the number of blocks one disk
/// comfortably keeps in flight. It doubles as the default io_uring ring
/// size on the real-disk backend and as the per-disk factor of the
/// default overlap window budget (`D × DEFAULT_QUEUE_DEPTH` blocks).
pub const DEFAULT_QUEUE_DEPTH: usize = 32;

/// The pipeline helpers bound their in-flight window in **blocks**, not
/// batches (see [`Pdm::overlap_window_blocks`]). A fixed batch count is
/// the wrong unit: a coarse three-pass load issues full-stripe batches
/// (where a couple of batches are already classic double buffering),
/// while `seven_pass`'s fine-grained sub-batch emission issues `D`-block
/// slivers — at the same batch depth it keeps an order of magnitude less
/// data in flight and stalls on most retirements. A block budget gives
/// both the same bytes-in-flight, so the fine-grained pipelines go deep
/// enough to hide ~100µs device latency. One batch is always admitted
/// even when it alone exceeds the budget (progress guarantee).
///
/// Deepening the window changes wall-clock only: step costs are charged
/// at issue with the blocking batch rule, and writes to the same slot
/// stay ordered (each disk's write stream is one FIFO queue).
///
/// Batch-schedule read-ahead: runs a precomputed list of read batches a
/// bounded window ahead of the consumer. Every schedule entry keeps its
/// own step charge (the blocking batch rule, applied per entry), so pass
/// and step accounting are byte-identical with overlap on or off — the
/// only difference is *when* the data movement happens relative to
/// compute.
///
/// Consecutive entries are *coalesced* into one storage submission up to
/// half the window budget ([`Pdm::start_read_blocks_group`]): emulated
/// backends then pay their per-batch seek latency once per group instead
/// of once per sliver, and the real-disk backend gets deep submissions.
/// Half the budget keeps two groups alive — one being consumed while the
/// next is in flight — which is the classic double buffer at group
/// granularity. Speculative schedules never coalesce: a data-dependent
/// abort mid-group would have charged steps the blocking path never
/// reaches.
///
/// Completion stays FIFO here deliberately: the consumer needs batches in
/// schedule order, so out-of-order retirement could only reorder waits,
/// not deliveries, and would buy nothing.
///
/// With overlap disabled ([`Pdm::overlap`](crate::machine::Pdm::overlap)
/// is false) every `next_into` degenerates to a blocking
/// `read_blocks_multi`, so pipelines wire this in unconditionally.
///
/// Memory note: single-step groups wait the pending read directly into
/// the *caller's* buffer; multi-step groups land in an untracked staging
/// vector — the same accounting bucket as the backend-owned in-flight
/// copies — so a pipeline's tracked peak is unchanged by enabling
/// overlap.
pub struct ReadAhead<K: PdmKey> {
    steps: Vec<Vec<(Region, usize)>>,
    next: usize,
    /// In-flight groups: the pending read, per-step key counts, and the
    /// group's total block count.
    inflight: std::collections::VecDeque<(TrackedRead<K>, Vec<usize>, usize)>,
    inflight_blocks: usize,
    budget_blocks: usize,
    /// Retired multi-step group data not yet handed to the consumer
    /// (untracked; served front to back).
    staged: Vec<K>,
    staged_pos: usize,
    staged_steps: std::collections::VecDeque<usize>,
    /// Defer batch accounting to consumption time (see
    /// [`ReadAhead::new_speculative`]).
    speculative: bool,
    enabled: bool,
}

impl<K: PdmKey> ReadAhead<K> {
    /// Schedule `steps`, issuing the leading window immediately when the
    /// machine has overlap enabled. Every step must be non-empty, so that
    /// each `next_into` call maps to exactly one schedule entry in both
    /// the overlapped and the blocking mode.
    pub fn new<S: Storage<K>>(
        pdm: &mut Pdm<K, S>,
        steps: Vec<Vec<(Region, usize)>>,
    ) -> Result<Self> {
        Self::with_mode(pdm, steps, false)
    }

    /// Like [`ReadAhead::new`], but every batch is issued *speculatively*:
    /// nothing is charged to the step counters or probe stream until the
    /// consumer actually retires the batch, and dropping the helper
    /// abandons unconsumed batches without a trace. This is the only safe
    /// shape for schedules a data-dependent abort may cut short — the
    /// blocking path never charges batches past the abort point, and
    /// neither does this one.
    pub fn new_speculative<S: Storage<K>>(
        pdm: &mut Pdm<K, S>,
        steps: Vec<Vec<(Region, usize)>>,
    ) -> Result<Self> {
        Self::with_mode(pdm, steps, true)
    }

    fn with_mode<S: Storage<K>>(
        pdm: &mut Pdm<K, S>,
        steps: Vec<Vec<(Region, usize)>>,
        speculative: bool,
    ) -> Result<Self> {
        debug_assert!(steps.iter().all(|s| !s.is_empty()), "empty read-ahead step");
        let mut ra = Self {
            steps,
            next: 0,
            inflight: std::collections::VecDeque::new(),
            inflight_blocks: 0,
            budget_blocks: pdm.overlap_window_blocks(),
            staged: Vec::new(),
            staged_pos: 0,
            staged_steps: std::collections::VecDeque::new(),
            speculative,
            enabled: pdm.overlap(),
        };
        if ra.enabled {
            ra.top_up(pdm)?;
        }
        Ok(ra)
    }

    fn top_up<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        // Coalescing grain: half the window, so at least two groups stay
        // alive. Speculative schedules submit step by step (see above).
        let group_cap = if self.speculative { 0 } else { self.budget_blocks / 2 };
        while self.next < self.steps.len() {
            let blocks = self.steps[self.next].len();
            if !self.inflight.is_empty() && self.inflight_blocks + blocks > self.budget_blocks {
                break;
            }
            let start = self.next;
            let mut group_blocks = blocks;
            self.next += 1;
            while self.next < self.steps.len() {
                let b = self.steps[self.next].len();
                if group_blocks + b > group_cap
                    || self.inflight_blocks + group_blocks + b > self.budget_blocks
                {
                    break;
                }
                group_blocks += b;
                self.next += 1;
            }
            let (pending, step_keys) = {
                let group = &self.steps[start..self.next];
                let step_keys: Vec<usize> =
                    group.iter().map(|s| s.len() * pdm.cfg().block_size).collect();
                let pending = if self.speculative {
                    pdm.start_read_blocks_multi_speculative(&group[0])?
                } else if group.len() == 1 {
                    pdm.start_read_blocks_multi(&group[0])?
                } else {
                    pdm.start_read_blocks_group(group)?
                };
                (pending, step_keys)
            };
            self.inflight.push_back((pending, step_keys, group_blocks));
            self.inflight_blocks += group_blocks;
        }
        Ok(())
    }

    /// Batches in the schedule.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Append the next batch's keys to `out` and keep the read-ahead
    /// window full. Returns false when the schedule is exhausted (every
    /// issued batch has then been retired — nothing is left pending).
    pub fn next_into<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        out: &mut Vec<K>,
    ) -> Result<bool> {
        if !self.enabled {
            if self.next >= self.steps.len() {
                return Ok(false);
            }
            pdm.read_blocks_multi(&self.steps[self.next], out)?;
            self.next += 1;
            return Ok(true);
        }
        // Serve steps still staged from the last retired group first.
        if let Some(keys) = self.staged_steps.pop_front() {
            out.extend_from_slice(&self.staged[self.staged_pos..self.staged_pos + keys]);
            self.staged_pos += keys;
            if self.staged_steps.is_empty() {
                self.staged.clear();
                self.staged_pos = 0;
            }
            return Ok(true);
        }
        let Some((pending, step_keys, blocks)) = self.inflight.pop_front() else {
            return Ok(false);
        };
        self.inflight_blocks -= blocks;
        let keys: usize = step_keys.iter().sum();
        if step_keys.len() == 1 {
            let base = out.len();
            out.resize(base + keys, K::MAX);
            pdm.finish_read_blocks(pending, &mut out[base..])?;
        } else {
            self.staged.resize(keys, K::MAX);
            pdm.finish_read_blocks(pending, &mut self.staged)?;
            out.extend_from_slice(&self.staged[..step_keys[0]]);
            self.staged_pos = step_keys[0];
            self.staged_steps = step_keys[1..].iter().copied().collect();
        }
        self.top_up(pdm)?;
        Ok(true)
    }
}

/// Write-behind for batch-shaped writers: each `write` is staged (the
/// payload is copied immediately, so the caller's buffer is reusable the
/// moment the call returns) and consecutive batches are *coalesced* into
/// one storage submission up to half the window budget
/// ([`Pdm::start_write_blocks_group`]) — every staged batch keeps its own
/// step charge, but emulated backends pay per-batch seek latency once per
/// group and the real-disk backend gets deep submissions. Once the
/// in-flight window exceeds the machine's block budget
/// ([`Pdm::overlap_window_blocks`]) the helper retires submissions to
/// make room, and `finish` drains the rest.
///
/// Room is made in two sweeps. First, every in-flight submission whose
/// backend reports it already completed ([`TrackedWrite::is_ready`]) is
/// retired — in any queue position, since retiring a token only harvests
/// its completion; the *disk* ordering of two writes to the same slot is
/// fixed by the per-disk worker FIFO at issue time, not by retirement
/// order (and within a coalesced group, by step order). Only if the
/// window is still over budget does the helper block on the oldest
/// submission (FIFO), so one slow disk no longer holds the whole window
/// hostage behind a head-of-line wait while younger batches sit
/// completed behind it.
///
/// The staging buffers are untracked, like the backend-owned in-flight
/// copies the unstaged path already makes: a pipeline's tracked peak is
/// unchanged by enabling overlap.
///
/// With overlap disabled every call degenerates to the blocking
/// `write_blocks` / `write_blocks_multi`.
pub struct WriteBehind<K: PdmKey> {
    /// In-flight submissions with their block counts.
    inflight: std::collections::VecDeque<(TrackedWrite, usize)>,
    inflight_blocks: usize,
    budget_blocks: usize,
    /// Staged batches awaiting coalesced submission (untracked).
    staged_steps: Vec<Vec<(Region, usize)>>,
    staged_data: Vec<K>,
    staged_blocks: usize,
    /// Coalescing grain in blocks (half the window); 0 submits every
    /// batch as soon as it is staged.
    group_cap: usize,
    enabled: bool,
}

impl<K: PdmKey> WriteBehind<K> {
    /// A writer gated on the machine's overlap switch.
    pub fn new<S: Storage<K>>(pdm: &Pdm<K, S>) -> Self {
        let budget_blocks = pdm.overlap_window_blocks();
        Self {
            inflight: std::collections::VecDeque::new(),
            inflight_blocks: 0,
            budget_blocks,
            staged_steps: Vec::new(),
            staged_data: Vec::new(),
            staged_blocks: 0,
            group_cap: budget_blocks / 2,
            enabled: pdm.overlap(),
        }
    }

    fn retire_oldest<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        if let Some((p, blocks)) = self.inflight.pop_front() {
            self.inflight_blocks -= blocks;
            pdm.finish_write_blocks(p)?;
        }
        Ok(())
    }

    /// Retire every submission the backend has already completed,
    /// regardless of queue position. Free on eager backends (everything
    /// is always ready, so this is plain FIFO drainage) and pure win on
    /// async ones.
    fn retire_ready<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0.is_ready() {
                let (p, blocks) = self.inflight.remove(i).expect("index checked");
                self.inflight_blocks -= blocks;
                pdm.finish_write_blocks(p)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Make room for an `incoming`-block submission: opportunistic sweep
    /// first, then FIFO blocking. One submission is always admitted even
    /// when it alone exceeds the budget (progress guarantee).
    fn make_room<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>, incoming: usize) -> Result<()> {
        if self.inflight.is_empty() || self.inflight_blocks + incoming <= self.budget_blocks {
            return Ok(());
        }
        self.retire_ready(pdm)?;
        while !self.inflight.is_empty() && self.inflight_blocks + incoming > self.budget_blocks {
            self.retire_oldest(pdm)?;
        }
        Ok(())
    }

    /// Submit the staged group as one storage batch (each staged step
    /// keeps its own charge).
    fn flush_staged<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        if self.staged_steps.is_empty() {
            return Ok(());
        }
        self.make_room(pdm, self.staged_blocks)?;
        let pending = if self.staged_steps.len() == 1 {
            pdm.start_write_blocks_multi(&self.staged_steps[0], &self.staged_data)?
        } else {
            pdm.start_write_blocks_group(&self.staged_steps, &self.staged_data)?
        };
        self.inflight.push_back((pending, self.staged_blocks));
        self.inflight_blocks += self.staged_blocks;
        self.staged_steps.clear();
        self.staged_data.clear();
        self.staged_blocks = 0;
        Ok(())
    }

    /// Stage one batch, submitting the accumulated group when it reaches
    /// the coalescing grain.
    fn push_step<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        step: Vec<(Region, usize)>,
        data: &[K],
    ) -> Result<()> {
        let blocks = step.len();
        if self.staged_blocks > 0 && self.staged_blocks + blocks > self.group_cap {
            self.flush_staged(pdm)?;
        }
        self.staged_steps.push(step);
        self.staged_data.extend_from_slice(data);
        self.staged_blocks += blocks;
        if self.staged_blocks >= self.group_cap {
            self.flush_staged(pdm)?;
        }
        Ok(())
    }

    /// Write one batch into `region` (see
    /// [`Pdm::write_blocks`](crate::machine::Pdm::write_blocks)).
    pub fn write<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        region: &Region,
        indices: &[usize],
        data: &[K],
    ) -> Result<()> {
        if !self.enabled {
            return pdm.write_blocks(region, indices, data);
        }
        let step: Vec<(Region, usize)> = indices.iter().map(|&i| (*region, i)).collect();
        self.push_step(pdm, step, data)
    }

    /// Write one batch across multiple regions (see
    /// [`Pdm::write_blocks_multi`](crate::machine::Pdm::write_blocks_multi)).
    pub fn write_multi<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        targets: &[(Region, usize)],
        data: &[K],
    ) -> Result<()> {
        if !self.enabled {
            return pdm.write_blocks_multi(targets, data);
        }
        self.push_step(pdm, targets.to_vec(), data)
    }

    /// Submit any staged batches and retire every in-flight submission
    /// without consuming the writer — for writers that live across a
    /// phase boundary and keep emitting after it. Must be called before
    /// the phase ends so the checkpoint boundary sees a settled disk
    /// image.
    pub fn drain<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        self.flush_staged(pdm)?;
        while !self.inflight.is_empty() {
            self.retire_oldest(pdm)?;
        }
        Ok(())
    }

    /// Submit any staged batches and retire every remaining in-flight
    /// submission. Must be called before the phase ends so the checkpoint
    /// boundary sees a settled disk image.
    pub fn finish<S: Storage<K>>(mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        self.drain(pdm)
    }
}

/// Write-behind sequential writer: flushes each full batch asynchronously
/// and only waits for it when the *next* batch is ready (or at `finish`),
/// so block serialization overlaps the producer's computation. One
/// tracked buffer — the payload is copied at issue, so no second staging
/// buffer is needed.
///
/// Retirement is FIFO by construction: at most one batch is ever in
/// flight (the previous flush is awaited before the next is issued), so
/// there is no younger completed batch an opportunistic sweep could
/// harvest — [`WriteBehind`]'s readiness polling would be dead code here.
pub struct FlushBehindWriter<K: PdmKey> {
    region: Region,
    next_block: usize,
    batch_keys: usize,
    filling: TrackedBuf<K>,
    inflight: Option<TrackedWrite>,
    written: usize,
}

impl<K: PdmKey> FlushBehindWriter<K> {
    /// Writer over `region` with `batch_blocks`-block flush units.
    pub fn new<S: Storage<K>>(
        pdm: &mut Pdm<K, S>,
        region: Region,
        batch_blocks: usize,
    ) -> Result<Self> {
        let b = pdm.cfg().block_size;
        let batch_keys = batch_blocks.max(1) * b;
        Ok(Self {
            region,
            next_block: 0,
            batch_keys,
            filling: pdm.alloc_buf(batch_keys)?,
            inflight: None,
            written: 0,
        })
    }

    fn flush_filling<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        if self.filling.is_empty() {
            return Ok(());
        }
        debug_assert_eq!(self.filling.len() % self.region.block_size(), 0);
        // retire the previous in-flight batch before issuing the next
        if let Some(p) = self.inflight.take() {
            pdm.finish_write_blocks(p)?;
        }
        let nblocks = self.filling.len() / self.region.block_size();
        let idx: Vec<usize> = (self.next_block..self.next_block + nblocks).collect();
        let pending = pdm.start_write_blocks(&self.region, &idx, &self.filling)?;
        self.filling.clear();
        self.next_block += nblocks;
        self.inflight = Some(pending);
        Ok(())
    }

    /// Append keys, flushing asynchronously as batches fill.
    pub fn push_slice<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>, ks: &[K]) -> Result<()> {
        for &k in ks {
            self.filling.push(k);
            self.written += 1;
            if self.filling.len() == self.batch_keys {
                self.flush_filling(pdm)?;
            }
        }
        Ok(())
    }

    /// Pad the final block with `K::MAX`, flush everything, wait for
    /// completion, and return the key count written (padding excluded).
    pub fn finish<S: Storage<K>>(mut self, pdm: &mut Pdm<K, S>) -> Result<usize> {
        let b = self.region.block_size();
        let rem = self.filling.len() % b;
        if rem != 0 {
            for _ in rem..b {
                self.filling.push(K::MAX);
            }
        }
        self.flush_filling(pdm)?;
        if let Some(p) = self.inflight.take() {
            pdm.finish_write_blocks(p)?;
        }
        Ok(self.written)
    }
}

/// Double-buffered sequential reader: always keeps the next batch of
/// blocks in flight while the current one is being consumed. Strictly
/// FIFO — the consumer needs the stream in order and the reader owns
/// exactly two buffers, so a deeper or reordered window has nothing to
/// attach to; pipelines that want depth use [`ReadAhead`] instead.
pub struct PrefetchReader<K: PdmKey> {
    region: Region,
    batch_blocks: usize,
    next_block: usize,
    total_keys: usize,
    yielded: usize,
    current: TrackedBuf<K>,
    pos: usize,
    inflight: Option<(TrackedRead<K>, usize)>,
    inflight_buf: TrackedBuf<K>,
}

impl<K: PdmKey> PrefetchReader<K> {
    /// Reader over the first `total_keys` keys of `region`, prefetching
    /// `batch_blocks` blocks ahead. Charges `2 × batch_blocks × B` keys of
    /// internal memory (two buffers — that is the price of overlap).
    pub fn new<S: Storage<K>>(
        pdm: &mut Pdm<K, S>,
        region: Region,
        total_keys: usize,
        batch_blocks: usize,
    ) -> Result<Self> {
        let b = pdm.cfg().block_size;
        let batch_blocks = batch_blocks.max(1);
        let mut rd = Self {
            region,
            batch_blocks,
            next_block: 0,
            total_keys,
            yielded: 0,
            current: pdm.alloc_buf(batch_blocks * b)?,
            pos: 0,
            inflight: None,
            inflight_buf: pdm.alloc_buf(batch_blocks * b)?,
        };
        rd.issue_next(pdm)?;
        Ok(rd)
    }

    fn issue_next<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        debug_assert!(self.inflight.is_none());
        let blocks_left = self.region.len_blocks().saturating_sub(self.next_block);
        let take = self.batch_blocks.min(blocks_left);
        if take == 0 {
            return Ok(());
        }
        let idx: Vec<usize> = (self.next_block..self.next_block + take).collect();
        let pending = pdm.start_read_blocks(&self.region, &idx)?;
        self.next_block += take;
        self.inflight = Some((pending, take));
        Ok(())
    }

    /// Rotate: wait for the in-flight batch, make it current, and issue the
    /// next one. Returns false when the stream is exhausted.
    fn rotate<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<bool> {
        let Some((pending, blocks)) = self.inflight.take() else {
            return Ok(false);
        };
        let b = self.region.block_size();
        {
            let buf = self.inflight_buf.as_vec_mut();
            buf.clear();
            buf.resize(blocks * b, K::MAX);
            pdm.finish_read_blocks(pending, &mut buf[..])?;
        }
        std::mem::swap(&mut self.current, &mut self.inflight_buf);
        self.pos = 0;
        self.issue_next(pdm)?;
        Ok(true)
    }

    /// Keys not yet yielded.
    pub fn remaining(&self) -> usize {
        self.total_keys - self.yielded
    }

    /// Pull up to `n` keys into `out`; returns how many were delivered.
    pub fn take_into<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        n: usize,
        out: &mut Vec<K>,
    ) -> Result<usize> {
        let mut got = 0usize;
        while got < n && self.yielded < self.total_keys {
            if self.pos >= self.current.len() {
                if !self.rotate(pdm)? {
                    break;
                }
                if self.current.is_empty() {
                    break;
                }
            }
            let avail = (self.current.len() - self.pos)
                .min(n - got)
                .min(self.total_keys - self.yielded);
            out.extend_from_slice(&self.current[self.pos..self.pos + avail]);
            self.pos += avail;
            self.yielded += avail;
            got += avail;
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::storage_threaded::ThreadedStorage;
    use std::time::{Duration, Instant};

    #[test]
    fn prefetch_reader_round_trips_on_mem_backend() {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let n = 777usize;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 3 % 1000).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let mut rd = PrefetchReader::new(&mut pdm, r, n, 4).unwrap();
        let mut out = Vec::new();
        while rd.take_into(&mut pdm, 100, &mut out).unwrap() > 0 {}
        assert_eq!(out, data);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn prefetch_accounting_matches_blocking_reads() {
        let n = 512usize;
        let data: Vec<u64> = (0..n as u64).collect();

        let mut pdm1: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let r1 = pdm1.alloc_region_for_keys(n).unwrap();
        pdm1.ingest(&r1, &data).unwrap();
        let mut rd = PrefetchReader::new(&mut pdm1, r1, n, 4).unwrap();
        let mut out = Vec::new();
        while rd.take_into(&mut pdm1, 64, &mut out).unwrap() > 0 {}

        let mut pdm2: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let r2 = pdm2.alloc_region_for_keys(n).unwrap();
        pdm2.ingest(&r2, &data).unwrap();
        let mut rd2 = crate::stream::RunReader::new(&pdm2, r2, n, 4).unwrap();
        let mut out2 = Vec::new();
        rd2.take_into(&mut pdm2, n, &mut out2).unwrap();

        assert_eq!(out, out2);
        assert_eq!(pdm1.stats().blocks_read, pdm2.stats().blocks_read);
        assert_eq!(pdm1.stats().read_steps, pdm2.stats().read_steps);
    }

    #[test]
    fn overlap_hides_disk_latency_on_threaded_backend() {
        // Per-block latency 2ms; 32 blocks in batches of 4 over 4 disks →
        // 8 stripes ≈ 16ms of pure disk time. With ~2ms of compute per
        // stripe, blocking ≈ 32ms; overlapped ≈ max(disk, compute) + ε.
        let (d, b) = (4usize, 16usize);
        let lat = Duration::from_millis(2);
        let n = 32 * b;
        let data: Vec<u64> = (0..n as u64).collect();
        let compute = |chunk: &[u64]| -> u64 {
            // deterministic checksum + 2ms of "compute" per stripe. Slept,
            // not spun: on a single-core host a spinning consumer starves
            // the disk workers' reply sends, which would measure scheduler
            // contention instead of I/O overlap (real disk completion is
            // interrupt-driven and doesn't contend with the CPU this way).
            let mut acc = 0u64;
            for &k in chunk {
                acc = acc.wrapping_add(k).rotate_left(7);
            }
            std::thread::sleep(Duration::from_millis(2));
            acc
        };

        // blocking
        let storage = ThreadedStorage::<u64>::with_latency(d, b, lat);
        let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let t0 = Instant::now();
        let mut rd = crate::stream::RunReader::new(&pdm, r, n, d).unwrap();
        let mut buf = Vec::new();
        let mut acc = 0u64;
        loop {
            buf.clear();
            if rd.take_into(&mut pdm, d * b, &mut buf).unwrap() == 0 {
                break;
            }
            acc ^= compute(&buf);
        }
        let blocking = t0.elapsed();

        // overlapped
        let storage = ThreadedStorage::<u64>::with_latency(d, b, lat);
        let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let t0 = Instant::now();
        let mut rd = PrefetchReader::new(&mut pdm, r, n, d).unwrap();
        let mut buf = Vec::new();
        let mut acc2 = 0u64;
        loop {
            buf.clear();
            if rd.take_into(&mut pdm, d * b, &mut buf).unwrap() == 0 {
                break;
            }
            acc2 ^= compute(&buf);
        }
        let overlapped = t0.elapsed();

        assert_eq!(acc, acc2);
        assert!(
            overlapped.as_secs_f64() < blocking.as_secs_f64() * 0.8,
            "overlap gave no benefit: blocking {blocking:?}, overlapped {overlapped:?}"
        );
    }

    #[test]
    fn flush_behind_writer_round_trips() {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let n = 300usize;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 13 % 997).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        let mut w = FlushBehindWriter::new(&mut pdm, r, 4).unwrap();
        for chunk in data.chunks(37) {
            w.push_slice(&mut pdm, chunk).unwrap();
        }
        assert_eq!(w.finish(&mut pdm).unwrap(), n);
        assert_eq!(pdm.inspect_prefix(&r, n).unwrap(), data);
    }

    #[test]
    fn flush_behind_accounting_matches_run_writer() {
        let n = 512usize;
        let data: Vec<u64> = (0..n as u64).collect();

        let mut pdm1: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let r1 = pdm1.alloc_region_for_keys(n).unwrap();
        let mut w1 = FlushBehindWriter::new(&mut pdm1, r1, 4).unwrap();
        w1.push_slice(&mut pdm1, &data).unwrap();
        w1.finish(&mut pdm1).unwrap();

        let mut pdm2: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let r2 = pdm2.alloc_region_for_keys(n).unwrap();
        let mut w2 = crate::stream::RunWriter::new(&pdm2, r2, 4).unwrap();
        w2.push_slice(&mut pdm2, &data).unwrap();
        w2.finish(&mut pdm2).unwrap();

        assert_eq!(pdm1.inspect(&r1).unwrap(), pdm2.inspect(&r2).unwrap());
        assert_eq!(pdm1.stats().blocks_written, pdm2.stats().blocks_written);
        assert_eq!(pdm1.stats().write_steps, pdm2.stats().write_steps);
    }

    #[test]
    fn write_behind_hides_latency_on_threaded_backend() {
        let (d, b) = (4usize, 16usize);
        let lat = Duration::from_millis(2);
        let n = 32 * b;
        let data: Vec<u64> = (0..n as u64).collect();

        // blocking writes (RunWriter waits out each stripe)
        let storage = ThreadedStorage::<u64>::with_latency(d, b, lat);
        let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        let t0 = Instant::now();
        let mut w = crate::stream::RunWriter::new(&pdm, r, d).unwrap();
        for chunk in data.chunks(d * b) {
            w.push_slice(&mut pdm, chunk).unwrap();
            std::thread::sleep(Duration::from_millis(2)); // producer compute
        }
        w.finish(&mut pdm).unwrap();
        let blocking = t0.elapsed();

        // write-behind
        let storage = ThreadedStorage::<u64>::with_latency(d, b, lat);
        let mut pdm2 = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let r2 = pdm2.alloc_region_for_keys(n).unwrap();
        let t0 = Instant::now();
        let mut w = FlushBehindWriter::new(&mut pdm2, r2, d).unwrap();
        for chunk in data.chunks(d * b) {
            w.push_slice(&mut pdm2, chunk).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        w.finish(&mut pdm2).unwrap();
        let overlapped = t0.elapsed();

        assert_eq!(pdm.inspect_prefix(&r, n).unwrap(), pdm2.inspect_prefix(&r2, n).unwrap());
        assert!(
            overlapped.as_secs_f64() < blocking.as_secs_f64() * 0.8,
            "write-behind gave no benefit: {blocking:?} vs {overlapped:?}"
        );
    }

    #[test]
    fn eager_pending_checks_length() {
        let p = Box::new(EagerPending { data: vec![1u64, 2] });
        let mut small = [0u64; 1];
        assert!(p.wait(&mut small).is_err());
    }

    #[test]
    fn overlap_counters_track_batches_hits_and_stalls() {
        // eager backend: every rotation is a hit, never a stall
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
        let n = 512usize;
        let data: Vec<u64> = (0..n as u64).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let mut rd = PrefetchReader::new(&mut pdm, r, n, 4).unwrap();
        let mut out = Vec::new();
        while rd.take_into(&mut pdm, 64, &mut out).unwrap() > 0 {}
        let ov = pdm.stats().overlap;
        assert_eq!(ov.prefetch_batches, 16, "64 blocks in 4-block batches");
        assert_eq!(ov.prefetch_hits, 16, "every issued batch rotates in once");
        assert_eq!(ov.prefetch_stalls, 0, "eager backend never stalls");

        let r2 = pdm.alloc_region_for_keys(n).unwrap();
        let mut w = FlushBehindWriter::new(&mut pdm, r2, 4).unwrap();
        w.push_slice(&mut pdm, &data).unwrap();
        w.finish(&mut pdm).unwrap();
        let ov = pdm.stats().overlap;
        assert_eq!(ov.flush_batches, 16);
        assert_eq!(ov.flush_hits + ov.flush_stalls, 16, "every issued batch retires");
        assert_eq!(ov.flush_stalls, 0, "eager backend never stalls");
    }

    #[test]
    fn overlap_counters_balance_on_threaded_backend() {
        // hit/stall split is timing-dependent, but every issued batch must
        // retire exactly once
        let (d, b) = (4usize, 8usize);
        let storage = ThreadedStorage::<u64>::new(d, b);
        let mut pdm = Pdm::with_storage(PdmConfig::new(d, b, 8 * d * b), storage).unwrap();
        let n = 16 * b;
        let data: Vec<u64> = (0..n as u64).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let mut rd = PrefetchReader::new(&mut pdm, r, n, d).unwrap();
        let mut out = Vec::new();
        while rd.take_into(&mut pdm, d * b, &mut out).unwrap() > 0 {}
        assert_eq!(out, data);
        let ov = pdm.stats().overlap;
        assert_eq!(ov.prefetch_batches, 4);
        assert_eq!(ov.prefetch_hits + ov.prefetch_stalls, 4);
    }

    #[test]
    fn read_ahead_matches_blocking_path_exactly() {
        let n = 512usize;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 7 % 509).collect();
        let run = |overlap: bool| {
            let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
            pdm.set_overlap(overlap);
            let r = pdm.alloc_region_for_keys(n).unwrap();
            pdm.ingest(&r, &data).unwrap();
            let steps: Vec<Vec<(Region, usize)>> = (0..r.len_blocks())
                .step_by(4)
                .map(|s| (s..(s + 4).min(r.len_blocks())).map(|i| (r, i)).collect())
                .collect();
            let mut ra = ReadAhead::new(&mut pdm, steps).unwrap();
            let mut out = Vec::new();
            while ra.next_into(&mut pdm, &mut out).unwrap() {}
            assert_eq!(pdm.pending_io(), 0, "schedule exhausted → nothing pending");
            (out, pdm)
        };
        let (on, pdm_on) = run(true);
        let (off, pdm_off) = run(false);
        assert_eq!(on, data);
        assert_eq!(on, off);
        // identical accounting with overlap on or off
        assert_eq!(pdm_on.stats().blocks_read, pdm_off.stats().blocks_read);
        assert_eq!(pdm_on.stats().read_steps, pdm_off.stats().read_steps);
        // the overlap leg actually went through the async machinery; the
        // 16 four-block steps coalesce into one 64-block submission under
        // the 128-block default window (group grain = budget / 2)
        let ov = pdm_on.stats().overlap;
        assert_eq!(ov.prefetch_batches, 1);
        assert_eq!(ov.prefetch_hits + ov.prefetch_stalls, 1);
        assert_eq!(pdm_off.stats().overlap.prefetch_batches, 0);
    }

    #[test]
    fn write_behind_matches_blocking_path_exactly() {
        let n = 256usize;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 11 % 251).collect();
        let run = |overlap: bool| {
            let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(4, 8, 256)).unwrap();
            pdm.set_overlap(overlap);
            let r = pdm.alloc_region_for_keys(n).unwrap();
            let mut wb = WriteBehind::new(&pdm);
            for (step, chunk) in data.chunks(4 * 8).enumerate() {
                let idx: Vec<usize> = (step * 4..step * 4 + 4).collect();
                wb.write(&mut pdm, &r, &idx, chunk).unwrap();
            }
            wb.finish(&mut pdm).unwrap();
            assert_eq!(pdm.pending_io(), 0, "finish drains the last batch");
            (pdm.inspect(&r).unwrap(), pdm)
        };
        let (on, pdm_on) = run(true);
        let (off, pdm_off) = run(false);
        assert_eq!(on, off);
        assert_eq!(pdm_on.stats().blocks_written, pdm_off.stats().blocks_written);
        assert_eq!(pdm_on.stats().write_steps, pdm_off.stats().write_steps);
        // the 8 four-block batches coalesce into one 32-block submission
        // under the 128-block default window (group grain = budget / 2)
        let ov = pdm_on.stats().overlap;
        assert_eq!(ov.flush_batches, 1);
        assert_eq!(ov.flush_hits + ov.flush_stalls, 1);
        assert_eq!(pdm_off.stats().overlap.flush_batches, 0);
    }

    #[test]
    fn pending_io_counter_tracks_tokens() {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(2, 4, 64)).unwrap();
        let n = 8usize;
        let data: Vec<u64> = (0..n as u64).collect();
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &data).unwrap();

        let tok = pdm.start_read_blocks(&r, &[0, 1]).unwrap();
        assert_eq!(pdm.pending_io(), 1);
        let mut out = vec![0u64; 8];
        pdm.finish_read_blocks(tok, &mut out).unwrap();
        assert_eq!(pdm.pending_io(), 0);
        assert_eq!(out, data);

        // abandoned tokens (error-path teardown) also release their slot
        let tok = pdm.start_write_blocks(&r, &[0], &[9u64; 4]).unwrap();
        assert_eq!(pdm.pending_io(), 1);
        drop(tok);
        assert_eq!(pdm.pending_io(), 0);
    }
}
