//! File-backed storage: each simulated disk is one file on the host
//! filesystem.
//!
//! This backend exists to demonstrate the algorithms genuinely operating
//! out-of-core (the working set on the host never exceeds the machine's
//! tracked internal memory plus one staged batch) and to let the Criterion
//! benches measure real I/O. Keys are serialized with their fixed-width
//! little-endian [`PdmKey`] encoding.
//!
//! ## Crash consistency
//!
//! The backend is the durable half of checkpoint/resume (see
//! [`crate::checkpoint`]), so its persistence discipline matters:
//!
//! * [`Storage::sync`] fsyncs every disk file with `File::sync_all` — not
//!   `sync_data` — so the file-length metadata from [`Storage::ensure_capacity`]
//!   growth survives a crash too, then atomically rewrites a `meta.pdm`
//!   geometry manifest (temp file + fsync + rename + directory fsync). A
//!   crash at any point leaves either the previous manifest or the new
//!   one, never a torn file.
//! * [`FileStorage::create_readback`] validates a found `meta.pdm` against
//!   the requested geometry and key width and restores the exact per-disk
//!   allocation from it, falling back to deriving allocation from file
//!   lengths when no manifest exists (pre-manifest directories).
//! * With the `block-checksums` feature, every `write_block` also records
//!   an FNV-1a digest of the encoded block in a `disk-<d>.sum` sidecar and
//!   every `read_block` verifies it, failing with [`PdmError::Corrupt`] on
//!   mismatch. A sidecar entry of zero means "never written / unchecked"
//!   (a real block digesting to zero is a 2⁻⁶⁴ event that merely skips
//!   verification for that slot).

#[cfg(feature = "block-checksums")]
use crate::checkpoint::{fnv1a, FNV_OFFSET};
use crate::error::{PdmError, Result};
use crate::file_faults::{BlockFault, FileFaults};
use crate::key::PdmKey;
use crate::storage::Storage;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic first line of the `meta.pdm` geometry manifest.
const META_MAGIC: &str = "pdm-disk-meta-v1";

/// Parse and validate a `meta.pdm` manifest, returning the per-disk
/// allocation it records. Shared by every file-backed backend so they all
/// speak the same manifest format.
pub(crate) fn parse_meta(
    text: &str,
    num_disks: usize,
    block_size: usize,
    key_width: usize,
) -> Result<Vec<usize>> {
    let bad = |msg: String| PdmError::BadConfig(format!("disk meta manifest: {msg}"));
    let mut lines = text.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(bad("missing or wrong magic line".into()));
    }
    let mut disks = None;
    let mut block = None;
    let mut width = None;
    let mut allocated: Option<Vec<usize>> = None;
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| bad("line without '='".into()))?;
        let (k, v) = (k.trim(), v.trim());
        match k {
            "disks" => disks = Some(v.parse::<usize>().map_err(|_| bad("bad disks".into()))?),
            "block" => block = Some(v.parse::<usize>().map_err(|_| bad("bad block".into()))?),
            "width" => width = Some(v.parse::<usize>().map_err(|_| bad("bad width".into()))?),
            "allocated" => {
                let list: std::result::Result<Vec<usize>, _> =
                    v.split_whitespace().map(str::parse).collect();
                allocated = Some(list.map_err(|_| bad("bad allocated list".into()))?);
            }
            _ => return Err(bad(format!("unknown key '{k}'"))),
        }
    }
    let disks = disks.ok_or_else(|| bad("missing disks".into()))?;
    let block = block.ok_or_else(|| bad("missing block".into()))?;
    let width = width.ok_or_else(|| bad("missing width".into()))?;
    let allocated = allocated.ok_or_else(|| bad("missing allocated".into()))?;
    if disks != num_disks || block != block_size || width != key_width {
        return Err(bad(format!(
            "geometry mismatch: manifest has {disks} disks, B = {block}, \
             key width {width}; caller wants {num_disks} disks, B = {block_size}, \
             key width {key_width}"
        )));
    }
    if allocated.len() != disks {
        return Err(bad("allocated list length disagrees with disks".into()));
    }
    Ok(allocated)
}

/// Atomically persist a geometry manifest under `dir`: temp file + fsync +
/// rename + directory fsync. Shared by every file-backed backend.
pub(crate) fn write_meta(
    dir: &Path,
    num_disks: usize,
    block_size: usize,
    key_width: usize,
    allocated: &[usize],
) -> Result<()> {
    let mut text = String::from(META_MAGIC);
    text.push('\n');
    text.push_str(&format!(
        "disks = {num_disks}\nblock = {block_size}\nwidth = {key_width}\n"
    ));
    text.push_str("allocated =");
    for a in allocated {
        text.push_str(&format!(" {a}"));
    }
    text.push('\n');
    let tmp = dir.join("meta.pdm.tmp");
    let fin = dir.join("meta.pdm");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &fin)?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// One file per disk, blocks stored back-to-back.
pub struct FileStorage<K: PdmKey> {
    files: Vec<File>,
    paths: Vec<PathBuf>,
    dir: PathBuf,
    block_size: usize,
    allocated: Vec<usize>,
    byte_buf: Vec<u8>,
    remove_on_drop: bool,
    faults: Option<Arc<FileFaults>>,
    #[cfg(feature = "block-checksums")]
    sums: Vec<File>,
    #[cfg(feature = "block-checksums")]
    sum_paths: Vec<PathBuf>,
    _key: std::marker::PhantomData<K>,
}

impl<K: PdmKey> FileStorage<K> {
    /// Create disk files `disk-0.pdm … disk-{D-1}.pdm` under `dir`
    /// (truncating existing ones).
    pub fn create(dir: impl AsRef<Path>, num_disks: usize, block_size: usize) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut files = Vec::with_capacity(num_disks);
        let mut paths = Vec::with_capacity(num_disks);
        for d in 0..num_disks {
            let path = dir.join(format!("disk-{d}.pdm"));
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            files.push(f);
            paths.push(path);
        }
        #[cfg(feature = "block-checksums")]
        let (sums, sum_paths) = Self::open_sidecars(&dir, num_disks, true)?;
        Ok(Self {
            files,
            paths,
            dir,
            block_size,
            allocated: vec![0; num_disks],
            byte_buf: vec![0; block_size * K::WIDTH],
            remove_on_drop: false,
            faults: None,
            #[cfg(feature = "block-checksums")]
            sums,
            #[cfg(feature = "block-checksums")]
            sum_paths,
            _key: std::marker::PhantomData,
        })
    }

    /// Open existing disk files under `dir` (as written by
    /// [`FileStorage::create`]) without truncating — for reading data back
    /// in a later process or via a fresh handle. When the directory holds a
    /// `meta.pdm` manifest (written by [`Storage::sync`]), its geometry and
    /// key width are validated against the request and the exact per-disk
    /// allocation is restored from it.
    pub fn create_readback(
        dir: impl AsRef<Path>,
        num_disks: usize,
        block_size: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let meta_allocated = match std::fs::read_to_string(dir.join("meta.pdm")) {
            Ok(text) => Some(parse_meta(&text, num_disks, block_size, K::WIDTH)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let mut files = Vec::with_capacity(num_disks);
        let mut paths = Vec::with_capacity(num_disks);
        let mut allocated = Vec::with_capacity(num_disks);
        let block_bytes = (block_size * K::WIDTH) as u64;
        for d in 0..num_disks {
            let path = dir.join(format!("disk-{d}.pdm"));
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            match &meta_allocated {
                Some(a) => allocated.push(a[d]),
                None => {
                    let len = f.metadata()?.len();
                    allocated.push((len / block_bytes) as usize);
                }
            }
            files.push(f);
            paths.push(path);
        }
        #[cfg(feature = "block-checksums")]
        let (sums, sum_paths) = {
            let (mut sums, sum_paths) = Self::open_sidecars(&dir, num_disks, false)?;
            // A pre-checksum directory has short or empty sidecars: grow
            // them (zero-filled = unchecked) so reads never hit EOF.
            for (f, &a) in sums.iter_mut().zip(&allocated) {
                let want = a as u64 * 8;
                if f.metadata()?.len() < want {
                    f.set_len(want)?;
                }
            }
            (sums, sum_paths)
        };
        Ok(Self {
            files,
            paths,
            dir,
            block_size,
            allocated,
            byte_buf: vec![0; block_size * K::WIDTH],
            remove_on_drop: false,
            faults: None,
            #[cfg(feature = "block-checksums")]
            sums,
            #[cfg(feature = "block-checksums")]
            sum_paths,
            _key: std::marker::PhantomData,
        })
    }

    /// Create under a fresh unique directory in the OS temp dir; the files
    /// are removed when the storage is dropped.
    pub fn create_temp(num_disks: usize, block_size: usize) -> Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "pdm-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = std::env::temp_dir().join(unique);
        let mut s = Self::create(dir, num_disks, block_size)?;
        s.remove_on_drop = true;
        Ok(s)
    }

    /// Paths of the disk files.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Arm real-file fault injection: subsequent `read_block` /
    /// `write_block` / `sync` calls consult `faults` and can surface
    /// injected EIO, short transfers, torn writes, and fsync failures.
    /// [`crate::storage_builder::StorageBuilder::inject_file`] calls this
    /// right after construction, before any I/O.
    pub fn set_file_faults(&mut self, faults: Arc<FileFaults>) {
        self.faults = Some(faults);
    }

    #[cfg(feature = "block-checksums")]
    fn open_sidecars(
        dir: &Path,
        num_disks: usize,
        truncate: bool,
    ) -> Result<(Vec<File>, Vec<PathBuf>)> {
        let mut sums = Vec::with_capacity(num_disks);
        let mut sum_paths = Vec::with_capacity(num_disks);
        for d in 0..num_disks {
            let path = dir.join(format!("disk-{d}.sum"));
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(truncate)
                .open(&path)?;
            sums.push(f);
            sum_paths.push(path);
        }
        Ok((sums, sum_paths))
    }

    fn check(&self, disk: usize, slot: usize) -> Result<()> {
        if disk >= self.files.len() {
            return Err(PdmError::BadDisk {
                disk,
                num_disks: self.files.len(),
            });
        }
        if slot >= self.allocated[disk] {
            return Err(PdmError::BadSlot {
                disk,
                slot,
                allocated: self.allocated[disk],
            });
        }
        Ok(())
    }

    fn block_bytes(&self) -> u64 {
        (self.block_size * K::WIDTH) as u64
    }
}

impl<K: PdmKey> Storage<K> for FileStorage<K> {
    fn num_disks(&self) -> usize {
        self.files.len()
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        if disk >= self.files.len() {
            return Err(PdmError::BadDisk {
                disk,
                num_disks: self.files.len(),
            });
        }
        if slots > self.allocated[disk] {
            let want_bytes = slots as u64 * self.block_bytes();
            self.files[disk].set_len(want_bytes)?;
            #[cfg(feature = "block-checksums")]
            self.sums[disk].set_len(slots as u64 * 8)?;
            self.allocated[disk] = slots;
        }
        Ok(())
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        self.check(disk, slot)?;
        if out.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.block_size,
            });
        }
        match self
            .faults
            .as_ref()
            .map_or(BlockFault::None, |f| f.block_fault(false))
        {
            BlockFault::ShortTransfer => {
                return Err(FileFaults::short_transfer_error(false).into())
            }
            BlockFault::Eio => return Err(FileFaults::eio_error().into()),
            BlockFault::None | BlockFault::Torn => {}
        }
        let off = slot as u64 * self.block_bytes();
        self.files[disk].seek(SeekFrom::Start(off))?;
        self.files[disk].read_exact(&mut self.byte_buf)?;
        #[cfg(feature = "block-checksums")]
        {
            let computed = fnv1a(FNV_OFFSET, &self.byte_buf);
            let mut sum_bytes = [0u8; 8];
            self.sums[disk].seek(SeekFrom::Start(slot as u64 * 8))?;
            self.sums[disk].read_exact(&mut sum_bytes)?;
            let stored = u64::from_le_bytes(sum_bytes);
            if stored != 0 && stored != computed {
                return Err(PdmError::Corrupt {
                    disk,
                    slot,
                    detail: format!(
                        "block checksum mismatch: stored {stored:016x}, computed {computed:016x}"
                    ),
                });
            }
        }
        for (i, k) in out.iter_mut().enumerate() {
            *k = K::read_bytes(&self.byte_buf[i * K::WIDTH..]);
        }
        Ok(())
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        self.check(disk, slot)?;
        if data.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: self.block_size,
            });
        }
        for (i, k) in data.iter().enumerate() {
            k.write_bytes(&mut self.byte_buf[i * K::WIDTH..]);
        }
        let fault = self
            .faults
            .as_ref()
            .map_or(BlockFault::None, |f| f.block_fault(true));
        match fault {
            BlockFault::ShortTransfer => return Err(FileFaults::short_transfer_error(true).into()),
            BlockFault::Eio => return Err(FileFaults::eio_error().into()),
            BlockFault::None | BlockFault::Torn => {}
        }
        let off = slot as u64 * self.block_bytes();
        self.files[disk].seek(SeekFrom::Start(off))?;
        // A torn write persists only half the block yet reports success;
        // the sidecar below still records the digest of the *intended*
        // bytes, so the next read of this slot surfaces `Corrupt` instead
        // of silently returning a half-stale block.
        let persist = if fault == BlockFault::Torn {
            &self.byte_buf[..self.byte_buf.len() / 2]
        } else {
            &self.byte_buf[..]
        };
        self.files[disk].write_all(persist)?;
        #[cfg(feature = "block-checksums")]
        {
            let sum = fnv1a(FNV_OFFSET, &self.byte_buf);
            self.sums[disk].seek(SeekFrom::Start(slot as u64 * 8))?;
            self.sums[disk].write_all(&sum.to_le_bytes())?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if let Some(faults) = &self.faults {
            faults.sync_fault()?;
        }
        for f in &mut self.files {
            f.flush()?;
            // sync_all, not sync_data: ensure_capacity growth changes the
            // file length, which sync_data may not persist.
            f.sync_all()?;
        }
        #[cfg(feature = "block-checksums")]
        for f in &mut self.sums {
            f.flush()?;
            f.sync_all()?;
        }
        write_meta(
            &self.dir,
            self.files.len(),
            self.block_size,
            K::WIDTH,
            &self.allocated,
        )
    }

    /// Synchronous file I/O: no overlap, no pool — but checksums when the
    /// `block-checksums` feature is compiled in.
    fn caps(&self) -> crate::storage::StorageCaps {
        crate::storage::StorageCaps {
            checksums: cfg!(feature = "block-checksums"),
            ..Default::default()
        }
    }
}

impl<K: PdmKey> Drop for FileStorage<K> {
    fn drop(&mut self) {
        if self.remove_on_drop {
            for p in &self.paths {
                let _ = std::fs::remove_file(p);
            }
            #[cfg(feature = "block-checksums")]
            for p in &self.sum_paths {
                let _ = std::fs::remove_file(p);
            }
            let _ = std::fs::remove_file(self.dir.join("meta.pdm"));
            let _ = std::fs::remove_file(self.dir.join("meta.pdm.tmp"));
            let _ = std::fs::remove_dir(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::key::Tagged;
    use crate::machine::Pdm;

    fn scratch_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pdm-file-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trip_u64_blocks() {
        let mut s: FileStorage<u64> = FileStorage::create_temp(2, 4).unwrap();
        s.ensure_capacity(0, 2).unwrap();
        s.ensure_capacity(1, 2).unwrap();
        s.write_block(0, 1, &[9, 8, 7, 6]).unwrap();
        s.write_block(1, 0, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u64; 4];
        s.read_block(0, 1, &mut out).unwrap();
        assert_eq!(out, [9, 8, 7, 6]);
        s.read_block(1, 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn round_trip_tagged_records() {
        let mut s: FileStorage<Tagged> = FileStorage::create_temp(1, 2).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        let blk = [Tagged::new(3, 30), Tagged::new(1, 10)];
        s.write_block(0, 0, &blk).unwrap();
        let mut out = [Tagged::new(0, 0); 2];
        s.read_block(0, 0, &mut out).unwrap();
        assert_eq!(out, blk);
    }

    #[test]
    fn bounds_checked_like_mem_storage() {
        let mut s: FileStorage<u64> = FileStorage::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        let mut out = [0u64; 4];
        assert!(s.read_block(3, 0, &mut out).is_err());
        assert!(s.read_block(0, 5, &mut out).is_err());
        let mut bad = [0u64; 2];
        assert!(s.read_block(0, 0, &mut bad).is_err());
    }

    #[test]
    fn works_as_machine_backend() {
        let cfg = PdmConfig::new(2, 8, 64);
        let storage = FileStorage::<u64>::create_temp(2, 8).unwrap();
        let mut pdm = Pdm::with_storage(cfg, storage).unwrap();
        let r = pdm.alloc_region_for_keys(48).unwrap();
        let data: Vec<u64> = (0..48).rev().collect();
        pdm.ingest(&r, &data).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(pdm.stats().blocks_read, 6);
        pdm.sync().unwrap();
    }

    #[test]
    fn temp_files_are_removed_on_drop() {
        let paths;
        {
            let s: FileStorage<u64> = FileStorage::create_temp(2, 4).unwrap();
            paths = s.paths().to_vec();
            assert!(paths.iter().all(|p| p.exists()));
        }
        assert!(paths.iter().all(|p| !p.exists()));
    }

    #[test]
    fn sync_persists_geometry_manifest_for_readback() {
        let dir = scratch_dir("meta");
        {
            let mut s: FileStorage<u64> = FileStorage::create(&dir, 2, 4).unwrap();
            s.ensure_capacity(0, 3).unwrap();
            s.ensure_capacity(1, 2).unwrap();
            s.write_block(0, 2, &[5, 5, 5, 5]).unwrap();
            s.sync().unwrap();
        }
        assert!(dir.join("meta.pdm").is_file());
        assert!(!dir.join("meta.pdm.tmp").exists(), "temp file renamed away");
        // Exact allocation is restored from the manifest.
        let mut s: FileStorage<u64> = FileStorage::create_readback(&dir, 2, 4).unwrap();
        let mut out = [0u64; 4];
        s.read_block(0, 2, &mut out).unwrap();
        assert_eq!(out, [5, 5, 5, 5]);
        assert!(
            matches!(s.read_block(0, 3, &mut out), Err(PdmError::BadSlot { .. })),
            "allocation boundary survives reopen"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn readback_refuses_mismatched_geometry() {
        let dir = scratch_dir("meta-mismatch");
        {
            let mut s: FileStorage<u64> = FileStorage::create(&dir, 2, 4).unwrap();
            s.ensure_capacity(0, 1).unwrap();
            s.sync().unwrap();
        }
        let wrong_block = FileStorage::<u64>::create_readback(&dir, 2, 8);
        assert!(matches!(wrong_block, Err(PdmError::BadConfig(_))));
        let wrong_disks = FileStorage::<u64>::create_readback(&dir, 4, 4);
        assert!(matches!(wrong_disks, Err(PdmError::BadConfig(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn readback_without_manifest_derives_allocation_from_lengths() {
        let dir = scratch_dir("no-meta");
        {
            let mut s: FileStorage<u64> = FileStorage::create(&dir, 1, 4).unwrap();
            s.ensure_capacity(0, 2).unwrap();
            s.write_block(0, 1, &[1, 2, 3, 4]).unwrap();
            // No sync: no meta.pdm is ever written.
        }
        assert!(!dir.join("meta.pdm").exists());
        let mut s: FileStorage<u64> = FileStorage::create_readback(&dir, 1, 4).unwrap();
        let mut out = [0u64; 4];
        s.read_block(0, 1, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "block-checksums")]
    #[test]
    fn bit_rot_is_detected_and_rewrites_heal() {
        let mut s: FileStorage<u64> = FileStorage::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 2).unwrap();
        s.write_block(0, 0, &[1, 2, 3, 4]).unwrap();
        s.write_block(0, 1, &[5, 6, 7, 8]).unwrap();
        s.sync().unwrap();
        // Flip a byte of slot 1 behind the backend's back.
        {
            let mut f = OpenOptions::new().write(true).open(&s.paths()[0]).unwrap();
            f.seek(SeekFrom::Start(4 * 8 + 3)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let mut out = [0u64; 4];
        s.read_block(0, 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4], "untouched block still verifies");
        let err = s.read_block(0, 1, &mut out).unwrap_err();
        assert!(
            matches!(err, PdmError::Corrupt { disk: 0, slot: 1, .. }),
            "got: {err}"
        );
        assert!(!err.is_transient(), "corruption must not be retried");
        // Rewriting the block refreshes the checksum.
        s.write_block(0, 1, &[5, 6, 7, 8]).unwrap();
        s.read_block(0, 1, &mut out).unwrap();
        assert_eq!(out, [5, 6, 7, 8]);
    }

    #[cfg(feature = "block-checksums")]
    #[test]
    fn never_written_slots_are_unchecked_not_corrupt() {
        let mut s: FileStorage<u64> = FileStorage::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 2).unwrap();
        let mut out = [0u64; 4];
        // Slot 0 was allocated (zero-filled) but never written: readable,
        // sidecar entry is the zero sentinel.
        s.read_block(0, 0, &mut out).unwrap();
        assert_eq!(out, [0, 0, 0, 0]);
    }

    #[test]
    fn injected_eio_fires_once_then_heals() {
        use crate::file_faults::{FileFaultMode, FileFaults};
        let mut s: FileStorage<u64> = FileStorage::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        s.write_block(0, 0, &[1, 2, 3, 4]).unwrap();
        let faults = Arc::new(FileFaults::new(FileFaultMode::Eio(1)));
        s.set_file_faults(Arc::clone(&faults));
        let mut out = [0u64; 4];
        s.read_block(0, 0, &mut out).unwrap();
        let err = s.read_block(0, 0, &mut out).unwrap_err();
        assert!(!err.is_transient(), "EIO is permanent: {err}");
        assert_eq!(faults.injected(), 1);
        // The op index advanced past the scheduled fault: retries succeed.
        s.read_block(0, 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn injected_short_write_is_transient() {
        use crate::file_faults::{FileFaultMode, FileFaults};
        let mut s: FileStorage<u64> = FileStorage::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        // rate_ppm = 1_000_000: every draw injects a short transfer.
        s.set_file_faults(Arc::new(FileFaults::new(FileFaultMode::ShortRate {
            seed: 1,
            rate_ppm: 1_000_000,
        })));
        let err = s.write_block(0, 0, &[1, 2, 3, 4]).unwrap_err();
        assert!(err.is_transient(), "short transfers retry: {err}");
    }

    #[test]
    fn injected_fsync_failure_surfaces_and_heals() {
        use crate::file_faults::{FileFaultMode, FileFaults};
        let mut s: FileStorage<u64> = FileStorage::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        s.set_file_faults(Arc::new(FileFaults::new(FileFaultMode::FsyncFail(0))));
        let err = s.sync().unwrap_err();
        assert!(err.is_transient(), "injected fsync failure: {err}");
        s.sync().unwrap();
    }

    #[cfg(feature = "block-checksums")]
    #[test]
    fn torn_write_reports_success_but_read_detects_corruption() {
        use crate::file_faults::{FileFaultMode, FileFaults};
        let mut s: FileStorage<u64> = FileStorage::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        s.write_block(0, 0, &[1, 2, 3, 4]).unwrap();
        s.set_file_faults(Arc::new(FileFaults::new(FileFaultMode::TornWrite(0))));
        // The torn write itself reports success — that is the failure model.
        s.write_block(0, 0, &[9, 9, 9, 9]).unwrap();
        let mut out = [0u64; 4];
        let err = s.read_block(0, 0, &mut out).unwrap_err();
        assert!(
            matches!(err, PdmError::Corrupt { disk: 0, slot: 0, .. }),
            "got: {err}"
        );
        // Rewriting (no fault scheduled at this index) heals the slot.
        s.write_block(0, 0, &[9, 9, 9, 9]).unwrap();
        s.read_block(0, 0, &mut out).unwrap();
        assert_eq!(out, [9, 9, 9, 9]);
    }
}
