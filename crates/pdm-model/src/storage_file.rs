//! File-backed storage: each simulated disk is one file on the host
//! filesystem.
//!
//! This backend exists to demonstrate the algorithms genuinely operating
//! out-of-core (the working set on the host never exceeds the machine's
//! tracked internal memory plus one staged batch) and to let the Criterion
//! benches measure real I/O. Keys are serialized with their fixed-width
//! little-endian [`PdmKey`] encoding.

use crate::error::{PdmError, Result};
use crate::key::PdmKey;
use crate::storage::Storage;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One file per disk, blocks stored back-to-back.
pub struct FileStorage<K: PdmKey> {
    files: Vec<File>,
    paths: Vec<PathBuf>,
    block_size: usize,
    allocated: Vec<usize>,
    byte_buf: Vec<u8>,
    remove_on_drop: bool,
    _key: std::marker::PhantomData<K>,
}

impl<K: PdmKey> FileStorage<K> {
    /// Create disk files `disk-0.pdm … disk-{D-1}.pdm` under `dir`
    /// (truncating existing ones).
    pub fn create(dir: impl AsRef<Path>, num_disks: usize, block_size: usize) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(num_disks);
        let mut paths = Vec::with_capacity(num_disks);
        for d in 0..num_disks {
            let path = dir.join(format!("disk-{d}.pdm"));
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            files.push(f);
            paths.push(path);
        }
        Ok(Self {
            files,
            paths,
            block_size,
            allocated: vec![0; num_disks],
            byte_buf: vec![0; block_size * K::WIDTH],
            remove_on_drop: false,
            _key: std::marker::PhantomData,
        })
    }

    /// Open existing disk files under `dir` (as written by
    /// [`FileStorage::create`]) without truncating — for reading data back
    /// in a later process or via a fresh handle.
    pub fn create_readback(
        dir: impl AsRef<Path>,
        num_disks: usize,
        block_size: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        let mut files = Vec::with_capacity(num_disks);
        let mut paths = Vec::with_capacity(num_disks);
        let mut allocated = Vec::with_capacity(num_disks);
        let block_bytes = (block_size * K::WIDTH) as u64;
        for d in 0..num_disks {
            let path = dir.join(format!("disk-{d}.pdm"));
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            let len = f.metadata()?.len();
            allocated.push((len / block_bytes) as usize);
            files.push(f);
            paths.push(path);
        }
        Ok(Self {
            files,
            paths,
            block_size,
            allocated,
            byte_buf: vec![0; block_size * K::WIDTH],
            remove_on_drop: false,
            _key: std::marker::PhantomData,
        })
    }

    /// Create under a fresh unique directory in the OS temp dir; the files
    /// are removed when the storage is dropped.
    pub fn create_temp(num_disks: usize, block_size: usize) -> Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "pdm-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = std::env::temp_dir().join(unique);
        let mut s = Self::create(dir, num_disks, block_size)?;
        s.remove_on_drop = true;
        Ok(s)
    }

    /// Paths of the disk files.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    fn check(&self, disk: usize, slot: usize) -> Result<()> {
        if disk >= self.files.len() {
            return Err(PdmError::BadDisk {
                disk,
                num_disks: self.files.len(),
            });
        }
        if slot >= self.allocated[disk] {
            return Err(PdmError::BadSlot {
                disk,
                slot,
                allocated: self.allocated[disk],
            });
        }
        Ok(())
    }

    fn block_bytes(&self) -> u64 {
        (self.block_size * K::WIDTH) as u64
    }
}

impl<K: PdmKey> Storage<K> for FileStorage<K> {
    fn num_disks(&self) -> usize {
        self.files.len()
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        if disk >= self.files.len() {
            return Err(PdmError::BadDisk {
                disk,
                num_disks: self.files.len(),
            });
        }
        if slots > self.allocated[disk] {
            let want_bytes = slots as u64 * self.block_bytes();
            self.files[disk].set_len(want_bytes)?;
            self.allocated[disk] = slots;
        }
        Ok(())
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        self.check(disk, slot)?;
        if out.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.block_size,
            });
        }
        let off = slot as u64 * self.block_bytes();
        self.files[disk].seek(SeekFrom::Start(off))?;
        self.files[disk].read_exact(&mut self.byte_buf)?;
        for (i, k) in out.iter_mut().enumerate() {
            *k = K::read_bytes(&self.byte_buf[i * K::WIDTH..]);
        }
        Ok(())
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        self.check(disk, slot)?;
        if data.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: self.block_size,
            });
        }
        for (i, k) in data.iter().enumerate() {
            k.write_bytes(&mut self.byte_buf[i * K::WIDTH..]);
        }
        let off = slot as u64 * self.block_bytes();
        self.files[disk].seek(SeekFrom::Start(off))?;
        self.files[disk].write_all(&self.byte_buf)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        for f in &mut self.files {
            f.flush()?;
            f.sync_data()?;
        }
        Ok(())
    }
}

impl<K: PdmKey> Drop for FileStorage<K> {
    fn drop(&mut self) {
        if self.remove_on_drop {
            for p in &self.paths {
                let _ = std::fs::remove_file(p);
            }
            if let Some(dir) = self.paths.first().and_then(|p| p.parent()) {
                let _ = std::fs::remove_dir(dir);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::key::Tagged;
    use crate::machine::Pdm;

    #[test]
    fn round_trip_u64_blocks() {
        let mut s: FileStorage<u64> = FileStorage::create_temp(2, 4).unwrap();
        s.ensure_capacity(0, 2).unwrap();
        s.ensure_capacity(1, 2).unwrap();
        s.write_block(0, 1, &[9, 8, 7, 6]).unwrap();
        s.write_block(1, 0, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u64; 4];
        s.read_block(0, 1, &mut out).unwrap();
        assert_eq!(out, [9, 8, 7, 6]);
        s.read_block(1, 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn round_trip_tagged_records() {
        let mut s: FileStorage<Tagged> = FileStorage::create_temp(1, 2).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        let blk = [Tagged::new(3, 30), Tagged::new(1, 10)];
        s.write_block(0, 0, &blk).unwrap();
        let mut out = [Tagged::new(0, 0); 2];
        s.read_block(0, 0, &mut out).unwrap();
        assert_eq!(out, blk);
    }

    #[test]
    fn bounds_checked_like_mem_storage() {
        let mut s: FileStorage<u64> = FileStorage::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        let mut out = [0u64; 4];
        assert!(s.read_block(3, 0, &mut out).is_err());
        assert!(s.read_block(0, 5, &mut out).is_err());
        let mut bad = [0u64; 2];
        assert!(s.read_block(0, 0, &mut bad).is_err());
    }

    #[test]
    fn works_as_machine_backend() {
        let cfg = PdmConfig::new(2, 8, 64);
        let storage = FileStorage::<u64>::create_temp(2, 8).unwrap();
        let mut pdm = Pdm::with_storage(cfg, storage).unwrap();
        let r = pdm.alloc_region_for_keys(48).unwrap();
        let data: Vec<u64> = (0..48).rev().collect();
        pdm.ingest(&r, &data).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(pdm.stats().blocks_read, 6);
        pdm.sync().unwrap();
    }

    #[test]
    fn temp_files_are_removed_on_drop() {
        let paths;
        {
            let s: FileStorage<u64> = FileStorage::create_temp(2, 4).unwrap();
            paths = s.paths().to_vec();
            assert!(paths.iter().all(|p| p.exists()));
        }
        assert!(paths.iter().all(|p| !p.exists()));
    }
}
