//! Genuinely asynchronous real-disk storage: one host file per disk,
//! serviced by duplex worker threads that submit whole batches to the
//! kernel — through io_uring when the `uring` feature is enabled and the
//! kernel allows it, through plain positioned I/O otherwise.
//!
//! This backend closes the gap between [`crate::storage_file::FileStorage`]
//! (real files, but synchronous: every block op stalls the caller) and
//! [`crate::storage_threaded::ThreadedStorage`] (asynchronous, but RAM-backed
//! emulation). Here the machine's `--overlap` pipelines hide *real* disk
//! latency: `start_read_batch`/`start_write_batch` return immediately and
//! the per-disk workers drain their queues while the caller merges.
//!
//! ## Engine selection and alignment
//!
//! Each worker owns its own file handle (private cursor — no shared-seek
//! races) and, with the `uring` feature on Linux, its own submission ring.
//! Ring setup failing (pre-5.6 kernel, seccomp-filtered container) silently
//! degrades that worker to synchronous positioned I/O; behavior is
//! identical either way, only the submission mechanism differs.
//!
//! Files are opened with `O_DIRECT` when the block payload is a multiple
//! of 4096 bytes, so the benches measure the device rather than the page
//! cache; filesystems that refuse it (tmpfs) fall back to buffered opens
//! at creation time. Worker staging buffers are over-allocated and sliced
//! at a 4096-byte boundary so the buffer-address alignment `O_DIRECT`
//! demands holds without any unsafe code; file offsets are `slot ·
//! block_bytes` and therefore aligned whenever the payload is.
//! [`Storage::caps`] reports the outcome in `direct_io`.
//!
//! ## Consistency
//!
//! The duplex split makes read-overtakes-write possible, so dispatch
//! tracks in-flight write slots and refuses to read a slot whose write has
//! not retired ([`PdmError::ReadDuringFlush`]) — the same hazard gate as
//! the threaded backend. [`Storage::sync`] queues a barrier request behind
//! every write queue (FIFO order ⇒ all prior writes are committed), fsyncs
//! each disk file, then atomically rewrites the shared `meta.pdm` geometry
//! manifest, giving this backend the same crash-consistency contract as
//! [`crate::storage_file::FileStorage`].

#[cfg(feature = "block-checksums")]
use crate::checkpoint::{fnv1a, FNV_OFFSET};
use crate::error::{PdmError, Result};
use crate::file_faults::{BlockFault, FileFaults};
use crate::key::PdmKey;
use crate::pool::{BlockPool, PoolStats};
use crate::stats::{DiskWallRec, SpanSink, StorageWallSnapshot, UringWall};
use crate::storage::{Storage, StorageCaps};
use crate::storage_file::{parse_meta, write_meta};
use crate::storage_retry::{RetryCounters, RetryPolicy};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Buffer-address / file-offset / transfer-length alignment `O_DIRECT`
/// requires (the logical block size is at most this on any disk we care
/// about; 4096 also covers 4Kn drives).
const DIRECT_ALIGN: usize = 4096;

/// `O_DIRECT` open flag value (asm-generic; aarch64 deviates).
const O_DIRECT_FLAG: i32 = if cfg!(target_arch = "aarch64") {
    0x10000
} else {
    0x4000
};

/// Default max batch one worker submits in a single kernel round-trip;
/// also the default ring size requested with the `uring` feature. The
/// per-storage value is tunable via [`AsyncFileOptions::queue_depth`].
const QUEUE_DEPTH: usize = 32;

/// Per-disk submission tuning for [`AsyncFileStorage`]; the plain
/// constructors use [`AsyncFileOptions::default`], the `*_with` variants
/// take an explicit value (the `StorageBuilder` surfaces these as
/// `queue_depth` / `uring_sqpoll` / `uring_register_buffers`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncFileOptions {
    /// Max blocks per kernel submission per worker, and the io_uring ring
    /// size requested with the `uring` feature — each worker sizes its
    /// submit chunks to its ring's actual capacity, so a deeper queue
    /// means fewer, larger kernel round-trips.
    pub queue_depth: usize,
    /// Ask each worker ring for `IORING_SETUP_SQPOLL` (kernel-side
    /// submission polling). Falls back to a plain ring when the kernel
    /// refuses (pre-5.11, missing privileges) — behavior is identical,
    /// only the submission mechanism differs.
    pub sqpoll: bool,
    /// Register each worker's staging buffer with
    /// `IORING_REGISTER_BUFFERS` so batch transfers ride the fixed-buffer
    /// opcodes (no per-op page pinning). Registration failing (memlock
    /// rlimit, old kernel) silently degrades to unregistered ops.
    pub register_buffers: bool,
}

impl Default for AsyncFileOptions {
    fn default() -> Self {
        Self {
            queue_depth: QUEUE_DEPTH,
            sqpoll: false,
            register_buffers: false,
        }
    }
}

/// One request carries a whole per-disk share of a caller batch (not a
/// single block): one channel allocation, one send, and one worker
/// wake-up per disk per batch. At page-cache speeds the per-block
/// rendezvous cost is what decides whether overlap pays, so the protocol
/// keeps it off the per-block path.
enum Request<K> {
    Read {
        slots: Vec<usize>,
        reply: Sender<Vec<Result<Vec<K>>>>,
    },
    Write {
        /// `(slot, payload)` pairs; payloads are pooled buffers the worker
        /// returns to the pool after committing.
        batch: Vec<(usize, Vec<K>)>,
        reply: Sender<Vec<Result<()>>>,
    },
    /// Fsync barrier: FIFO queue order means every write queued before it
    /// is committed when the reply arrives.
    Sync { reply: Sender<Result<()>> },
    Shutdown,
}

/// A byte staging area whose blocks start at a `DIRECT_ALIGN` boundary:
/// the backing `Vec` is over-allocated by one alignment unit and sliced
/// from the first aligned address, so no unsafe allocation tricks are
/// needed. The offset is recomputed per use — growth may reallocate.
struct AlignedBuf {
    raw: Vec<u8>,
    block_bytes: usize,
    align: usize,
}

impl AlignedBuf {
    fn new(block_bytes: usize, align: usize) -> Self {
        Self {
            raw: Vec::new(),
            block_bytes,
            align: align.max(1),
        }
    }

    /// Grow to hold at least `count` blocks (plus alignment slack).
    fn ensure(&mut self, count: usize) {
        let want = count * self.block_bytes + self.align;
        if self.raw.len() < want {
            self.raw.resize(want, 0);
        }
    }

    /// Byte index of the first aligned address in `raw`.
    fn offset(&self) -> usize {
        (self.align - (self.raw.as_ptr() as usize % self.align)) % self.align
    }
}

enum Engine {
    /// Batches go to the kernel in one `io_uring_enter`.
    #[cfg(all(feature = "uring", target_os = "linux"))]
    Uring(pdm_uring::Ring),
    /// Positioned read/write per block on the worker's private handle.
    Sync,
}

/// Cumulative io_uring submit/reap batching counters, summed over every
/// worker ring of the storage (wall-clock telemetry; plain atomics so
/// workers fold their per-ring deltas in without coordination).
#[derive(Default)]
struct UringShared {
    submit_calls: AtomicU64,
    submitted_sqes: AtomicU64,
    reap_rounds: AtomicU64,
    reaped_cqes: AtomicU64,
    fixed_sqes: AtomicU64,
}

impl UringShared {
    fn snapshot(&self) -> UringWall {
        UringWall {
            submit_calls: self.submit_calls.load(Ordering::Relaxed),
            submitted_sqes: self.submitted_sqes.load(Ordering::Relaxed),
            reap_rounds: self.reap_rounds.load(Ordering::Relaxed),
            reaped_cqes: self.reaped_cqes.load(Ordering::Relaxed),
            fixed_sqes: self.fixed_sqes.load(Ordering::Relaxed),
        }
    }
}

struct DiskWorker<K: PdmKey> {
    file: File,
    block_size: usize,
    /// Max blocks per kernel submission — the ring's actual capacity when
    /// a ring was set up, the configured queue depth otherwise.
    depth: usize,
    rx: Receiver<Request<K>>,
    /// Shared with the owning storage: read replies are drawn from here,
    /// retired write payloads go back here.
    pool: Arc<BlockPool<K>>,
    /// In-flight write slots for this disk; the write worker retires an
    /// entry *after* committing, before replying.
    pending_writes: Arc<Mutex<HashMap<usize, usize>>>,
    staging: AlignedBuf,
    engine: Engine,
    /// Wall-clock recorder shared with this disk's other worker and the
    /// owning storage (latency histograms + queue gauge).
    wall: Arc<DiskWallRec>,
    /// Trace sink, attached after spawn (lock-free to poll once set).
    sink: Arc<OnceLock<Arc<SpanSink>>>,
    /// Trace track for this worker's kernel-round spans.
    track: u32,
    uring: Arc<UringShared>,
    /// Physical-file fault schedule, armed before any I/O is dispatched
    /// (empty in production). Consulted per block transfer and per fsync.
    faults: Arc<OnceLock<Arc<FileFaults>>>,
    /// Completion-time retry config, armed by the builder when a retry
    /// policy wraps this backend. Transient per-block failures are
    /// reissued right here on the worker — after the async I/O completed,
    /// off the caller's critical path — and folded into the same counters
    /// as the issue-time retry layer's.
    retry: Arc<OnceLock<(RetryPolicy, RetryCounters)>>,
    /// This disk's live checksum table (slot → FNV-1a, 0 = unchecked),
    /// shared between both of the disk's workers and the owning storage.
    #[cfg(feature = "block-checksums")]
    sums: Arc<Mutex<Vec<u64>>>,
}

impl<K: PdmKey> DiskWorker<K> {
    fn run(mut self) {
        while let Ok(req) = self.rx.recv() {
            match req {
                Request::Shutdown => return,
                Request::Sync { reply } => {
                    let res = match self.faults.get().map_or(Ok(()), |f| f.sync_fault()) {
                        Ok(()) => self.file.sync_all(),
                        Err(e) => Err(e),
                    };
                    let _ = reply.send(res.map_err(PdmError::Io));
                }
                Request::Read { slots, reply } => {
                    let results = self.serve_reads(&slots);
                    let _ = reply.send(results);
                }
                Request::Write { batch, reply } => {
                    let results = self.serve_writes(batch);
                    let _ = reply.send(results);
                }
            }
        }
    }

    /// Transfer `slots.len()` staged blocks to/from disk, one result per
    /// slot. The staging buffer holds the payloads (writes) or receives
    /// them (reads).
    ///
    /// When a fault schedule is armed, one verdict is drawn per block up
    /// front (both engines share the schedule): faulted blocks never reach
    /// the kernel — short transfers and EIO fail immediately, torn writes
    /// submit only the first half of the block and report success.
    fn transfer(&mut self, slots: &[usize], write: bool) -> Vec<std::io::Result<()>> {
        let verdicts: Option<Vec<BlockFault>> = self
            .faults
            .get()
            .map(|f| slots.iter().map(|_| f.block_fault(write)).collect());
        let verdict = |i: usize| verdicts.as_ref().map_or(BlockFault::None, |v| v[i]);
        let bb = self.staging.block_bytes;
        let off = self.staging.offset();
        let staged = &mut self.staging.raw[off..];
        let file = &mut self.file;
        match &mut self.engine {
            #[cfg(all(feature = "uring", target_os = "linux"))]
            Engine::Uring(ring) => {
                use std::os::fd::AsRawFd;
                let fd = file.as_raw_fd();
                let mut ops: Vec<pdm_uring::Op<'_>> = Vec::with_capacity(slots.len());
                if write {
                    for (i, (chunk, &slot)) in staged.chunks(bb).zip(slots).enumerate() {
                        let buf = match verdict(i) {
                            BlockFault::None => chunk,
                            BlockFault::Torn => &chunk[..bb / 2],
                            _ => continue,
                        };
                        ops.push(pdm_uring::Op::Write {
                            fd,
                            buf,
                            offset: slot as u64 * bb as u64,
                        });
                    }
                } else {
                    for (i, (chunk, &slot)) in staged.chunks_mut(bb).zip(slots).enumerate() {
                        if verdict(i) != BlockFault::None {
                            continue;
                        }
                        ops.push(pdm_uring::Op::Read {
                            fd,
                            buf: chunk,
                            offset: slot as u64 * bb as u64,
                        });
                    }
                }
                let before = ring.stats();
                let results = ring.run(&mut ops);
                let delta = |a: u64, b: u64| a.wrapping_sub(b);
                let after = ring.stats();
                self.uring
                    .submit_calls
                    .fetch_add(delta(after.submit_calls, before.submit_calls), Ordering::Relaxed);
                self.uring.submitted_sqes.fetch_add(
                    delta(after.submitted_sqes, before.submitted_sqes),
                    Ordering::Relaxed,
                );
                self.uring
                    .reap_rounds
                    .fetch_add(delta(after.reap_rounds, before.reap_rounds), Ordering::Relaxed);
                self.uring
                    .reaped_cqes
                    .fetch_add(delta(after.reaped_cqes, before.reaped_cqes), Ordering::Relaxed);
                self.uring
                    .fixed_sqes
                    .fetch_add(delta(after.fixed_sqes, before.fixed_sqes), Ordering::Relaxed);
                // Scatter ring completions back over the slots that were
                // actually submitted; faulted slots get their injected
                // error in place.
                let mut ring_results = results.into_iter();
                (0..slots.len())
                    .map(|i| match verdict(i) {
                        BlockFault::ShortTransfer => {
                            Err(FileFaults::short_transfer_error(write))
                        }
                        BlockFault::Eio => Err(FileFaults::eio_error()),
                        BlockFault::None | BlockFault::Torn => ring_results
                            .next()
                            .unwrap_or_else(|| Err(std::io::Error::other("lost ring completion"))),
                    })
                    .collect()
            }
            Engine::Sync => staged
                .chunks_mut(bb)
                .zip(slots)
                .enumerate()
                .map(|(i, (chunk, &slot))| {
                    let len = match verdict(i) {
                        BlockFault::None => chunk.len(),
                        BlockFault::Torn => bb / 2,
                        BlockFault::ShortTransfer => {
                            return Err(FileFaults::short_transfer_error(write))
                        }
                        BlockFault::Eio => return Err(FileFaults::eio_error()),
                    };
                    file.seek(SeekFrom::Start(slot as u64 * bb as u64))?;
                    if write {
                        file.write_all(&chunk[..len])
                    } else {
                        file.read_exact(chunk)
                    }
                })
                .collect(),
        }
    }

    /// One kernel round over `slots`, timed: its wall-clock service time
    /// goes to this disk's latency histogram (one sample per round, not
    /// per block), to the trace sink when one is attached, and the round's
    /// blocks retire from the queue-depth gauge.
    fn timed_transfer(&mut self, slots: &[usize], write: bool) -> Vec<std::io::Result<()>> {
        let t0 = Instant::now();
        let results = self.transfer(slots, write);
        let t1 = Instant::now();
        let ns = t1.saturating_duration_since(t0).as_nanos() as u64;
        if write {
            self.wall.write.record(ns);
        } else {
            self.wall.read.record(ns);
        }
        if let Some(sink) = self.sink.get() {
            sink.record(self.track, if write { "write" } else { "read" }, t0, t1);
        }
        self.wall.queue_sub(slots.len() as u64);
        results
    }

    /// The disk this worker serves (tracks are `2·disk + direction`).
    fn disk(&self) -> usize {
        (self.track / 2) as usize
    }

    /// Completion-time retry: given one block's transfer result, reissue
    /// it while it keeps failing transiently, up to the armed policy's
    /// attempt budget. Runs on the worker — the async I/O already
    /// completed, so the caller's pipeline keeps draining other blocks
    /// while this one is re-driven. Mirrors the issue-time layer's
    /// accounting exactly: retry `k` charges `k · backoff_steps`, each
    /// reissue lands on this disk's per-disk counter, and a spent budget
    /// records one exhaustion.
    fn complete_with_retry(
        &mut self,
        i: usize,
        slot: usize,
        write: bool,
        first: std::io::Result<()>,
    ) -> std::io::Result<()> {
        let mut err = match first {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        let Some((policy, counters)) = self.retry.get().cloned() else {
            return Err(err);
        };
        let attempts = policy.max_attempts.max(1);
        let mut attempt: u32 = 0;
        loop {
            if !crate::error::io_error_transient(&err) {
                return Err(err);
            }
            attempt += 1;
            if attempt >= attempts {
                counters.record_exhausted();
                return Err(err);
            }
            counters.record_completion_retry(write, self.disk(), u64::from(attempt), &policy);
            match self.reissue(i, slot, write) {
                Ok(()) => return Ok(()),
                Err(e) => err = e,
            }
        }
    }

    /// Reissue one block at staging position `i` with plain positioned
    /// I/O. Retries are rare, so they skip the batch engine; the fault
    /// schedule still advances per attempt, which is what lets injected
    /// transient faults heal on reissue.
    fn reissue(&mut self, i: usize, slot: usize, write: bool) -> std::io::Result<()> {
        let bb = self.staging.block_bytes;
        let off = self.staging.offset();
        let verdict = self
            .faults
            .get()
            .map_or(BlockFault::None, |f| f.block_fault(write));
        let chunk = &mut self.staging.raw[off + i * bb..off + (i + 1) * bb];
        let len = match verdict {
            BlockFault::None => bb,
            BlockFault::Torn => bb / 2,
            BlockFault::ShortTransfer => return Err(FileFaults::short_transfer_error(write)),
            BlockFault::Eio => return Err(FileFaults::eio_error()),
        };
        self.file.seek(SeekFrom::Start(slot as u64 * bb as u64))?;
        if write {
            self.file.write_all(&chunk[..len])
        } else {
            self.file.read_exact(chunk)
        }
    }

    /// Serve one read request's slots, at most `self.depth` (the ring's
    /// actual capacity) per kernel submission; one decoded pooled buffer
    /// (or error) per slot, in request order. Transient per-block
    /// failures are reissued here
    /// (completion-time retry); with `block-checksums`, surviving reads
    /// are verified against this disk's checksum table before decode —
    /// off the caller's critical path — and mismatches surface as
    /// [`PdmError::Corrupt`].
    fn serve_reads(&mut self, slots: &[usize]) -> Vec<Result<Vec<K>>> {
        let mut out = Vec::with_capacity(slots.len());
        for chunk in slots.chunks(self.depth) {
            self.staging.ensure(chunk.len());
            let results = self.timed_transfer(chunk, false);
            for (i, res) in results.into_iter().enumerate() {
                let slot = chunk[i];
                let item = match self.complete_with_retry(i, slot, false, res) {
                    Ok(()) => self.decode_block(i, slot),
                    Err(e) => Err(PdmError::Io(e)),
                };
                out.push(item);
            }
        }
        out
    }

    /// Decode the staged block at position `i` into a pooled buffer,
    /// verifying its checksum first when the feature is on.
    fn decode_block(&self, i: usize, slot: usize) -> Result<Vec<K>> {
        let bb = self.staging.block_bytes;
        let off = self.staging.offset();
        let bytes = &self.staging.raw[off + i * bb..off + (i + 1) * bb];
        #[cfg(feature = "block-checksums")]
        self.verify_checksum(slot, bytes)?;
        #[cfg(not(feature = "block-checksums"))]
        let _ = slot;
        let mut buf = self.pool.get(self.block_size);
        for j in 0..self.block_size {
            buf.push(K::read_bytes(&bytes[j * K::WIDTH..]));
        }
        Ok(buf)
    }

    /// Compare one read block's bytes against the disk's checksum table.
    /// A zero entry (or a slot beyond the table) was never written under
    /// checksumming and stays unchecked; a nonzero mismatch is corruption.
    #[cfg(feature = "block-checksums")]
    fn verify_checksum(&self, slot: usize, bytes: &[u8]) -> Result<()> {
        let stored = self
            .sums
            .lock()
            .unwrap()
            .get(slot)
            .copied()
            .unwrap_or(0);
        if stored == 0 {
            return Ok(());
        }
        let computed = fnv1a(FNV_OFFSET, bytes);
        if stored != computed {
            return Err(PdmError::Corrupt {
                disk: self.disk(),
                slot,
                detail: format!(
                    "block checksum mismatch: stored {stored:016x}, computed {computed:016x}"
                ),
            });
        }
        self.wall.add_verified(1);
        Ok(())
    }

    /// Serve one write request's blocks in chunks of at most `self.depth`
    /// (the ring's actual capacity). Two writes to one slot must not share
    /// a kernel submission (the kernel may reorder within a batch), so a
    /// chunk is also cut when the next block would duplicate a slot
    /// already staged in it.
    fn serve_writes(&mut self, batch: Vec<(usize, Vec<K>)>) -> Vec<Result<()>> {
        let mut out = Vec::with_capacity(batch.len());
        let mut iter = batch.into_iter().peekable();
        let mut chunk: Vec<(usize, Vec<K>)> = Vec::with_capacity(self.depth);
        while let Some(next) = iter.next() {
            chunk.push(next);
            let cut = chunk.len() == self.depth
                || match iter.peek() {
                    Some((slot, _)) => chunk.iter().any(|(s, _)| s == slot),
                    None => true,
                };
            if cut {
                self.commit_write_chunk(&mut chunk, &mut out);
            }
        }
        out
    }

    /// Stage, submit, and retire one same-slot-free chunk of writes.
    fn commit_write_chunk(&mut self, chunk: &mut Vec<(usize, Vec<K>)>, out: &mut Vec<Result<()>>) {
        self.staging.ensure(chunk.len());
        let bb = self.staging.block_bytes;
        let off = self.staging.offset();
        for (i, (_, data)) in chunk.iter().enumerate() {
            let bytes = &mut self.staging.raw[off + i * bb..off + (i + 1) * bb];
            for (j, k) in data.iter().enumerate() {
                k.write_bytes(&mut bytes[j * K::WIDTH..]);
            }
        }
        let slots: Vec<usize> = chunk.iter().map(|(s, _)| *s).collect();
        let results = self.timed_transfer(&slots, true);
        // Completion-time retry happens before checksums are recorded and
        // hazards retire: the worker still holds the staged payload, so a
        // failed write can be re-driven without any caller involvement.
        let results: Vec<std::io::Result<()>> = results
            .into_iter()
            .enumerate()
            .map(|(i, res)| self.complete_with_retry(i, slots[i], true, res))
            .collect();
        // Record the checksum of the *intended* bytes for every write that
        // reported success. A torn write reports success too — that is the
        // point: its sidecar entry won't match the half-written block, so
        // the next read surfaces Corrupt instead of wrong data.
        #[cfg(feature = "block-checksums")]
        {
            let mut sums = self.sums.lock().unwrap();
            for (i, res) in results.iter().enumerate() {
                if res.is_ok() {
                    let slot = slots[i];
                    let bytes = &self.staging.raw[off + i * bb..off + (i + 1) * bb];
                    if sums.len() <= slot {
                        sums.resize(slot + 1, 0);
                    }
                    sums[slot] = fnv1a(FNV_OFFSET, bytes);
                }
            }
        }
        for ((slot, data), res) in chunk.drain(..).zip(results) {
            self.pool.put(data);
            // Retire the hazard only once the bytes are committed, so a
            // racing read check can never pass while stale data is still
            // on disk.
            let mut pending = self.pending_writes.lock().unwrap();
            if let Some(count) = pending.get_mut(&slot) {
                *count -= 1;
                if *count == 0 {
                    pending.remove(&slot);
                }
            }
            drop(pending);
            out.push(res.map_err(PdmError::Io));
        }
    }
}

/// Completion token for a grouped async read batch: one receiver per
/// touched disk, each carrying that disk's share of the results along with
/// the original request indices they scatter back to.
struct GroupedPending<K: PdmKey> {
    parts: Vec<(Vec<usize>, Receiver<Vec<Result<Vec<K>>>>)>,
    block_size: usize,
    pool: Arc<BlockPool<K>>,
}

impl<K: PdmKey> crate::overlap::PendingRead<K> for GroupedPending<K> {
    /// Every receiver is drained and every delivered buffer goes back to
    /// the pool even when a block failed: an early return on the first
    /// error would abandon the remaining disks' pooled buffers inside
    /// their reply channels (the PR 3 leak invariant, which used to be
    /// audited only on issue-time paths). The first error — in request
    /// order across disks — is reported after the drain.
    fn wait(self: Box<Self>, out: &mut [K]) -> Result<()> {
        let Self {
            parts,
            block_size: b,
            pool,
        } = *self;
        let mut first_err = None;
        for (idx, rx) in parts {
            match rx.recv() {
                Ok(results) => {
                    for (i, res) in idx.into_iter().zip(results) {
                        match res {
                            Ok(data) => {
                                if first_err.is_none() {
                                    out[i * b..(i + 1) * b].copy_from_slice(&data);
                                }
                                pool.put(data);
                            }
                            Err(e) => {
                                if first_err.is_none() {
                                    first_err = Some(e);
                                }
                            }
                        }
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(PdmError::BadConfig("disk worker hung up".into()));
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn is_ready(&self) -> bool {
        self.parts.iter().all(|(_, rx)| !rx.is_empty())
    }
}

/// Completion token for a grouped async write batch.
struct GroupedWritePending {
    parts: Vec<Receiver<Vec<Result<()>>>>,
}

impl crate::overlap::PendingWrite for GroupedWritePending {
    /// Drains every receiver before reporting the first error, so no
    /// disk's completion is abandoned mid-batch (write payloads are
    /// pool-returned worker-side, but an undrained receiver would leave
    /// hazard retirement unobserved by the caller's error handling).
    fn wait(self: Box<Self>) -> Result<()> {
        let mut first_err = None;
        for rx in self.parts {
            match rx.recv() {
                Ok(results) => {
                    for res in results {
                        if let Err(e) = res {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(PdmError::BadConfig("disk worker hung up".into()));
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn is_ready(&self) -> bool {
        self.parts.iter().all(|rx| !rx.is_empty())
    }
}

/// Open one disk file; when `direct` is requested, try `O_DIRECT` first
/// and fall back to a buffered open where the filesystem refuses it
/// (tmpfs). Returns the handle and whether direct I/O is actually on.
fn open_disk(path: &Path, truncate: bool, direct: bool) -> Result<(File, bool)> {
    #[cfg(unix)]
    if direct {
        use std::os::unix::fs::OpenOptionsExt;
        let attempt = OpenOptions::new()
            .read(true)
            .write(true)
            .create(truncate)
            .truncate(truncate)
            .custom_flags(O_DIRECT_FLAG)
            .open(path);
        if let Ok(f) = attempt {
            return Ok((f, true));
        }
    }
    #[cfg(not(unix))]
    let _ = direct;
    let f = OpenOptions::new()
        .read(true)
        .write(true)
        .create(truncate)
        .truncate(truncate)
        .open(path)?;
    Ok((f, false))
}

/// Load one disk's checksum sidecar: slot-indexed little-endian u64 words
/// in the synchronous file backend's `disk-<d>.sum` format. A missing
/// file means nothing was ever checksummed (empty table); short files
/// simply leave later slots unchecked.
#[cfg(feature = "block-checksums")]
fn load_sums(dir: &Path, disk: usize) -> Result<Vec<u64>> {
    match std::fs::read(dir.join(format!("disk-{disk}.sum"))) {
        Ok(bytes) => Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

/// Persist one disk's checksum table to its sidecar, fsynced: sums must
/// be durable before the geometry manifest commits, or a crash could
/// leave fresh data guarded by stale checksums (false corruption on
/// resume).
#[cfg(feature = "block-checksums")]
fn store_sums(dir: &Path, disk: usize, table: &[u64]) -> Result<()> {
    let mut bytes = Vec::with_capacity(table.len() * 8);
    for s in table {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    let mut f = File::create(dir.join(format!("disk-{disk}.sum")))?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Asynchronous file-backed storage: real disk files, duplex per-disk
/// worker threads, batched kernel submission (io_uring with the `uring`
/// feature), `O_DIRECT` where the geometry and filesystem allow.
pub struct AsyncFileStorage<K: PdmKey> {
    /// Main-thread handles, used for `ensure_capacity` growth only.
    files: Vec<File>,
    paths: Vec<PathBuf>,
    dir: PathBuf,
    block_size: usize,
    allocated: Vec<usize>,
    read_senders: Vec<Sender<Request<K>>>,
    write_senders: Vec<Sender<Request<K>>>,
    handles: Vec<JoinHandle<()>>,
    pool: Arc<BlockPool<K>>,
    /// Per-disk in-flight write slots, shared with that disk's write
    /// worker. Reads consult this before dispatch (see module docs).
    pending_writes: Vec<Arc<Mutex<HashMap<usize, usize>>>>,
    /// Per-disk wall-clock recorders, shared with both of that disk's
    /// workers (telemetry only — never consulted for correctness).
    wall: Vec<Arc<DiskWallRec>>,
    sink: Arc<OnceLock<Arc<SpanSink>>>,
    uring: Arc<UringShared>,
    direct_io: bool,
    remove_on_drop: bool,
    /// Physical-file fault schedule, armed via
    /// [`AsyncFileStorage::set_file_faults`] before any I/O (testing only).
    faults: Arc<OnceLock<Arc<FileFaults>>>,
    /// Completion-time retry config, armed via
    /// [`AsyncFileStorage::set_completion_retry`].
    retry: Arc<OnceLock<(RetryPolicy, RetryCounters)>>,
    /// Per-disk live checksum tables (slot → FNV-1a, 0 = unchecked),
    /// shared with the disk's workers; persisted to `disk-<d>.sum`
    /// sidecars at sync in the synchronous file backend's format.
    #[cfg(feature = "block-checksums")]
    sums: Vec<Arc<Mutex<Vec<u64>>>>,
}

impl<K: PdmKey> AsyncFileStorage<K> {
    /// Create disk files `disk-0.pdm … disk-{D-1}.pdm` under `dir`
    /// (truncating existing ones) and spawn the worker threads.
    pub fn create(dir: impl AsRef<Path>, num_disks: usize, block_size: usize) -> Result<Self> {
        Self::create_with(dir, num_disks, block_size, AsyncFileOptions::default())
    }

    /// [`AsyncFileStorage::create`] with explicit submission tuning.
    pub fn create_with(
        dir: impl AsRef<Path>,
        num_disks: usize,
        block_size: usize,
        opts: AsyncFileOptions,
    ) -> Result<Self> {
        Self::open_dir(dir.as_ref(), num_disks, block_size, true, opts)
    }

    /// Open existing disk files under `dir` without truncating. A
    /// `meta.pdm` manifest (same format as the synchronous file backend's)
    /// is validated against the requested geometry and restores the exact
    /// per-disk allocation; without one, allocation derives from file
    /// lengths.
    pub fn create_readback(
        dir: impl AsRef<Path>,
        num_disks: usize,
        block_size: usize,
    ) -> Result<Self> {
        Self::create_readback_with(dir, num_disks, block_size, AsyncFileOptions::default())
    }

    /// [`AsyncFileStorage::create_readback`] with explicit submission
    /// tuning.
    pub fn create_readback_with(
        dir: impl AsRef<Path>,
        num_disks: usize,
        block_size: usize,
        opts: AsyncFileOptions,
    ) -> Result<Self> {
        Self::open_dir(dir.as_ref(), num_disks, block_size, false, opts)
    }

    /// Create under a fresh unique directory in the OS temp dir; the files
    /// are removed when the storage is dropped.
    pub fn create_temp(num_disks: usize, block_size: usize) -> Result<Self> {
        Self::create_temp_with(num_disks, block_size, AsyncFileOptions::default())
    }

    /// [`AsyncFileStorage::create_temp`] with explicit submission tuning.
    pub fn create_temp_with(
        num_disks: usize,
        block_size: usize,
        opts: AsyncFileOptions,
    ) -> Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "pdm-async-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = std::env::temp_dir().join(unique);
        let mut s = Self::create_with(dir, num_disks, block_size, opts)?;
        s.remove_on_drop = true;
        Ok(s)
    }

    fn open_dir(
        dir: &Path,
        num_disks: usize,
        block_size: usize,
        truncate: bool,
        opts: AsyncFileOptions,
    ) -> Result<Self> {
        let opts = AsyncFileOptions {
            queue_depth: opts.queue_depth.max(1),
            ..opts
        };
        let dir = dir.to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let block_bytes = block_size * K::WIDTH;
        let meta_allocated = if truncate {
            None
        } else {
            match std::fs::read_to_string(dir.join("meta.pdm")) {
                Ok(text) => Some(parse_meta(&text, num_disks, block_size, K::WIDTH)?),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
                Err(e) => return Err(e.into()),
            }
        };
        // O_DIRECT is only attempted when every transfer (length and file
        // offset alike) would be aligned; otherwise the kernel would
        // reject each op with EINVAL.
        let want_direct = cfg!(unix) && block_bytes % DIRECT_ALIGN == 0;
        let mut files = Vec::with_capacity(num_disks);
        let mut paths = Vec::with_capacity(num_disks);
        let mut allocated = Vec::with_capacity(num_disks);
        let mut read_senders = Vec::with_capacity(num_disks);
        let mut write_senders = Vec::with_capacity(num_disks);
        let mut handles = Vec::with_capacity(2 * num_disks);
        let mut pending_writes = Vec::with_capacity(num_disks);
        // Same retention reasoning as the threaded backend: ~2 buffers per
        // disk in flight at steady state, 4×D slack for overlap
        // double-buffering, grown per dispatch via reserve_retained.
        let pool = Arc::new(BlockPool::for_blocks(4 * num_disks.max(1), block_size));
        let mut direct_io = num_disks > 0;
        let mut wall = Vec::with_capacity(num_disks);
        let sink: Arc<OnceLock<Arc<SpanSink>>> = Arc::new(OnceLock::new());
        let uring = Arc::new(UringShared::default());
        let faults: Arc<OnceLock<Arc<FileFaults>>> = Arc::new(OnceLock::new());
        let retry: Arc<OnceLock<(RetryPolicy, RetryCounters)>> = Arc::new(OnceLock::new());
        #[cfg(feature = "block-checksums")]
        let mut sums: Vec<Arc<Mutex<Vec<u64>>>> = Vec::with_capacity(num_disks);
        for d in 0..num_disks {
            let path = dir.join(format!("disk-{d}.pdm"));
            // The first open probes O_DIRECT support; worker handles reuse
            // the verdict so all three handles agree.
            let (main, direct) = open_disk(&path, truncate, want_direct)?;
            direct_io &= direct;
            match &meta_allocated {
                Some(a) => allocated.push(a[d]),
                None if truncate => allocated.push(0),
                None => allocated.push((main.metadata()?.len() / block_bytes as u64) as usize),
            }
            // A readback restores each disk's persisted checksum table; a
            // fresh create starts unchecked (all-zero).
            #[cfg(feature = "block-checksums")]
            {
                let table = if truncate {
                    Vec::new()
                } else {
                    load_sums(&dir, d)?
                };
                sums.push(Arc::new(Mutex::new(table)));
            }
            let pending = Arc::new(Mutex::new(HashMap::new()));
            let rec = Arc::new(DiskWallRec::new());
            for (kind, senders) in [("r", &mut read_senders), ("w", &mut write_senders)] {
                let (file, _) = open_disk(&path, false, direct)?;
                let (tx, rx) = unbounded();
                let align = if direct { DIRECT_ALIGN } else { 1 };
                #[cfg_attr(
                    not(all(feature = "uring", target_os = "linux")),
                    allow(unused_mut)
                )]
                let mut staging = AlignedBuf::new(block_bytes, align);
                #[cfg(all(feature = "uring", target_os = "linux"))]
                let engine = {
                    use std::sync::atomic::AtomicBool;
                    // ENOSYS/seccomp verdicts are process-wide facts: once
                    // one worker classifies setup as permanently
                    // unavailable, later workers skip the doomed syscall.
                    static URING_UNAVAILABLE: AtomicBool = AtomicBool::new(false);
                    if URING_UNAVAILABLE.load(Ordering::Relaxed) {
                        Engine::Sync
                    } else {
                        // SQPOLL is best-effort: kernels/configurations
                        // that refuse it usually still grant a plain ring.
                        let setup = pdm_uring::Ring::with_config(pdm_uring::RingConfig {
                            entries: opts.queue_depth as u32,
                            sqpoll: opts.sqpoll,
                            ..pdm_uring::RingConfig::default()
                        })
                        .or_else(|e| {
                            if opts.sqpoll && !pdm_uring::ring_unavailable(&e) {
                                pdm_uring::Ring::new(opts.queue_depth as u32)
                            } else {
                                Err(e)
                            }
                        });
                        match setup {
                            Ok(mut ring) => {
                                if opts.register_buffers {
                                    // Size the staging buffer to the full
                                    // submit depth BEFORE registering: the
                                    // serve paths never stage more than
                                    // `depth` blocks per round, so the
                                    // allocation can never grow (and thus
                                    // never move) while registered.
                                    staging.ensure(ring.capacity());
                                    // Registration failing (memlock
                                    // rlimit, pre-5.1 kernel) is a
                                    // perf-only downgrade: ops simply stay
                                    // on the unregistered opcodes.
                                    let _ = ring.register_buffer(&mut staging.raw);
                                }
                                Engine::Uring(ring)
                            }
                            // No io_uring here: positioned I/O gives
                            // identical behavior, just per-block syscalls.
                            // Transient setup failures (e.g. ENOMEM) only
                            // downgrade this worker; permanent ones (old
                            // kernel, seccomp) downgrade the process.
                            Err(e) => {
                                if pdm_uring::ring_unavailable(&e) {
                                    URING_UNAVAILABLE.store(true, Ordering::Relaxed);
                                }
                                Engine::Sync
                            }
                        }
                    }
                };
                #[cfg(not(all(feature = "uring", target_os = "linux")))]
                let engine = Engine::Sync;
                // Submit chunks are sized to the ring's *actual* capacity
                // (the kernel rounds entries up to a power of two), so a
                // submission never has to queue inside the ring driver.
                let depth = match &engine {
                    #[cfg(all(feature = "uring", target_os = "linux"))]
                    Engine::Uring(ring) => ring.capacity().max(1),
                    Engine::Sync => opts.queue_depth,
                };
                let worker = DiskWorker::<K> {
                    file,
                    block_size,
                    depth,
                    rx,
                    pool: Arc::clone(&pool),
                    pending_writes: Arc::clone(&pending),
                    staging,
                    engine,
                    wall: Arc::clone(&rec),
                    sink: Arc::clone(&sink),
                    track: (2 * d + usize::from(kind == "w")) as u32,
                    uring: Arc::clone(&uring),
                    faults: Arc::clone(&faults),
                    retry: Arc::clone(&retry),
                    #[cfg(feature = "block-checksums")]
                    sums: Arc::clone(&sums[d]),
                };
                let h = std::thread::Builder::new()
                    .name(format!("pdm-adisk-{d}{kind}"))
                    .spawn(move || worker.run())
                    .expect("spawn async disk worker");
                senders.push(tx);
                handles.push(h);
            }
            files.push(main);
            paths.push(path);
            pending_writes.push(pending);
            wall.push(rec);
        }
        Ok(Self {
            files,
            paths,
            dir,
            block_size,
            allocated,
            read_senders,
            write_senders,
            handles,
            pool,
            pending_writes,
            wall,
            sink,
            uring,
            direct_io,
            remove_on_drop: false,
            faults,
            retry,
            #[cfg(feature = "block-checksums")]
            sums,
        })
    }

    /// Arm the physical-file fault schedule. Must be called before any
    /// I/O is dispatched (the builder does this right after construction);
    /// a second call is ignored.
    pub fn set_file_faults(&mut self, faults: Arc<FileFaults>) {
        let _ = self.faults.set(faults);
    }

    /// Arm completion-time retry: the per-disk workers will classify
    /// failed blocks of asynchronously issued batches at completion and
    /// reissue the transient ones under `policy`, recording into
    /// `counters` — share the counter set with the issue-time
    /// [`crate::storage_retry::RetryingStorage`] wrapper so
    /// `IoStats.retry` sees one unified stream. Must be called before any
    /// I/O is dispatched; a second call is ignored.
    pub fn set_completion_retry(&mut self, policy: RetryPolicy, counters: RetryCounters) {
        let _ = self.retry.set((policy, counters));
    }

    /// Paths of the disk files.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Whether every disk file is actually open with `O_DIRECT` (also
    /// surfaced as [`Storage::caps`]`.direct_io`).
    pub fn direct_io(&self) -> bool {
        self.direct_io
    }

    /// Shared handle to the block-buffer pool (the overlap layer returns
    /// read buffers through this).
    pub(crate) fn pool_handle(&self) -> Arc<BlockPool<K>> {
        Arc::clone(&self.pool)
    }

    fn block_bytes(&self) -> u64 {
        (self.block_size * K::WIDTH) as u64
    }

    fn check(&self, disk: usize, slot: usize) -> Result<()> {
        if disk >= self.files.len() {
            return Err(PdmError::BadDisk {
                disk,
                num_disks: self.files.len(),
            });
        }
        if slot >= self.allocated[disk] {
            return Err(PdmError::BadSlot {
                disk,
                slot,
                allocated: self.allocated[disk],
            });
        }
        Ok(())
    }

    /// The read/write hazard gate (see module docs). `check` must have
    /// passed already.
    fn check_no_write_in_flight(&self, disk: usize, slot: usize) -> Result<()> {
        if self.pending_writes[disk].lock().unwrap().contains_key(&slot) {
            return Err(PdmError::ReadDuringFlush { disk, slot });
        }
        Ok(())
    }

    /// Dispatch a batch of reads without waiting. Requests are grouped by
    /// disk and each group goes to its worker as ONE message — the per-disk
    /// reply carries that disk's results alongside the original request
    /// indices, so callers can scatter them back into request order.
    pub(crate) fn dispatch_reads(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Vec<(Vec<usize>, Receiver<Vec<Result<Vec<K>>>>)>> {
        self.pool
            .reserve_retained(2 * reqs.len() + self.read_senders.len());
        for &(disk, slot) in reqs {
            self.check(disk, slot)?;
            self.check_no_write_in_flight(disk, slot)?;
        }
        let mut groups: Vec<(Vec<usize>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.read_senders.len()];
        for (i, &(disk, slot)) in reqs.iter().enumerate() {
            groups[disk].0.push(i);
            groups[disk].1.push(slot);
        }
        let mut parts = Vec::new();
        for (disk, (idx, slots)) in groups.into_iter().enumerate() {
            if idx.is_empty() {
                continue;
            }
            // Gauge up before send: the worker retires each kernel round's
            // blocks, so submitted-not-completed is exactly the difference.
            self.wall[disk].queue_add(slots.len() as u64);
            let (tx, rx) = unbounded();
            self.read_senders[disk]
                .send(Request::Read { slots, reply: tx })
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
            parts.push((idx, rx));
        }
        Ok(parts)
    }

    /// Dispatch a batch of writes without waiting: `data` holds one block
    /// per request, copied into pooled buffers at issue time (the workers
    /// return them after committing). Grouped per disk like reads; each
    /// group's reply lists results in that group's request order.
    pub(crate) fn dispatch_writes(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Vec<Receiver<Vec<Result<()>>>>> {
        let b = self.block_size;
        debug_assert_eq!(data.len(), reqs.len() * b);
        self.pool
            .reserve_retained(2 * reqs.len() + self.read_senders.len());
        for &(disk, slot) in reqs {
            self.check(disk, slot)?;
        }
        let mut groups: Vec<Vec<(usize, Vec<K>)>> = vec![Vec::new(); self.write_senders.len()];
        for (i, &(disk, slot)) in reqs.iter().enumerate() {
            let mut block = self.pool.get(b);
            block.extend_from_slice(&data[i * b..(i + 1) * b]);
            // Register the hazard before the worker can possibly see the
            // request; the write worker retires it after commit.
            *self.pending_writes[disk]
                .lock()
                .unwrap()
                .entry(slot)
                .or_insert(0) += 1;
            groups[disk].push((slot, block));
        }
        let mut parts = Vec::new();
        for (disk, batch) in groups.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.wall[disk].queue_add(batch.len() as u64);
            let (tx, rx) = unbounded();
            self.write_senders[disk]
                .send(Request::Write { batch, reply: tx })
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
            parts.push(rx);
        }
        Ok(parts)
    }
}

impl<K: PdmKey> Storage<K> for AsyncFileStorage<K> {
    fn num_disks(&self) -> usize {
        self.files.len()
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        if disk >= self.files.len() {
            return Err(PdmError::BadDisk {
                disk,
                num_disks: self.files.len(),
            });
        }
        if slots > self.allocated[disk] {
            self.files[disk].set_len(slots as u64 * self.block_bytes())?;
            self.allocated[disk] = slots;
        }
        Ok(())
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        if out.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.block_size,
            });
        }
        let parts = self.dispatch_reads(&[(disk, slot)])?;
        let mut results = parts[0]
            .1
            .recv()
            .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
        let data = results.remove(0)?;
        out.copy_from_slice(&data);
        self.pool.put(data);
        Ok(())
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        if data.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: self.block_size,
            });
        }
        let parts = self.dispatch_writes(&[(disk, slot)], data)?;
        let mut results = parts[0]
            .recv()
            .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
        results.remove(0)
    }

    /// Dispatch every disk's share as one message first, then collect the
    /// per-disk replies — different disks drain concurrently, and each
    /// worker submits its share in kernel batches of up to its configured
    /// queue depth (the ring's actual capacity on the uring path).
    fn read_batch(&mut self, reqs: &[(usize, usize)], out: &mut [K]) -> Result<()> {
        let b = self.block_size;
        debug_assert_eq!(out.len(), reqs.len() * b);
        // Same drain-everything discipline as GroupedPending::wait: every
        // delivered buffer returns to the pool before the first error (in
        // cross-disk request order) propagates.
        let mut first_err = None;
        for (idx, rx) in self.dispatch_reads(reqs)? {
            match rx.recv() {
                Ok(results) => {
                    for (i, res) in idx.into_iter().zip(results) {
                        match res {
                            Ok(data) => {
                                if first_err.is_none() {
                                    out[i * b..(i + 1) * b].copy_from_slice(&data);
                                }
                                self.pool.put(data);
                            }
                            Err(e) => {
                                if first_err.is_none() {
                                    first_err = Some(e);
                                }
                            }
                        }
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(PdmError::BadConfig("disk worker hung up".into()));
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn write_batch(&mut self, reqs: &[(usize, usize)], data: &[K]) -> Result<()> {
        debug_assert_eq!(data.len(), reqs.len() * self.block_size);
        let mut first_err = None;
        for rx in self.dispatch_writes(reqs, data)? {
            match rx.recv() {
                Ok(results) => {
                    for res in results {
                        if let Err(e) = res {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(PdmError::BadConfig("disk worker hung up".into()));
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn sync(&mut self) -> Result<()> {
        // One barrier per write queue: when all replies are in, every
        // previously queued write is committed and fsynced.
        let mut replies = Vec::with_capacity(self.write_senders.len());
        for tx in &self.write_senders {
            let (reply, rx) = unbounded();
            tx.send(Request::Sync { reply })
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))?;
            replies.push(rx);
        }
        for rx in replies {
            rx.recv()
                .map_err(|_| PdmError::BadConfig("disk worker hung up".into()))??;
        }
        // Checksum sidecars go durable before the manifest: a resume must
        // never see new data guarded by older checksums.
        #[cfg(feature = "block-checksums")]
        for (d, table) in self.sums.iter().enumerate() {
            store_sums(&self.dir, d, &table.lock().unwrap())?;
        }
        write_meta(
            &self.dir,
            self.files.len(),
            self.block_size,
            K::WIDTH,
            &self.allocated,
        )
    }

    fn pool_stats(&self) -> Option<PoolStats> {
        Some(self.pool.stats())
    }

    fn wall_snapshot(&self) -> Option<StorageWallSnapshot> {
        Some(StorageWallSnapshot {
            disks: self.wall.iter().map(|w| w.snapshot()).collect(),
            uring: self.uring.snapshot(),
        })
    }

    fn attach_span_sink(&mut self, sink: Arc<SpanSink>) {
        for d in 0..self.files.len() {
            sink.register_track(2 * d as u32, &format!("disk{d} read"));
            sink.register_track(2 * d as u32 + 1, &format!("disk{d} write"));
        }
        let _ = self.sink.set(sink);
    }

    /// Worker threads service real file I/O while the caller computes, so
    /// overlap genuinely hides disk latency; reads and writes of one disk
    /// drain in parallel (duplex); `direct_io` reports the actual open
    /// outcome probed at creation; `checksums` follows the
    /// `block-checksums` feature — read completions verify against the
    /// per-disk FNV-1a tables on the workers, off the critical path.
    fn caps(&self) -> StorageCaps {
        StorageCaps {
            overlap: true,
            duplex: true,
            direct_io: self.direct_io,
            checksums: cfg!(feature = "block-checksums"),
            pooled: true,
        }
    }

    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn crate::overlap::PendingRead<K> + Send>> {
        let parts = self.dispatch_reads(reqs)?;
        Ok(Box::new(GroupedPending {
            parts,
            block_size: self.block_size,
            pool: self.pool_handle(),
        }))
    }

    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn crate::overlap::PendingWrite + Send>> {
        // dispatch_writes copies `data` into pooled buffers before
        // returning, honoring the copy-at-issue contract.
        let parts = self.dispatch_writes(reqs, data)?;
        Ok(Box::new(GroupedWritePending { parts }))
    }
}

impl<K: PdmKey> Drop for AsyncFileStorage<K> {
    fn drop(&mut self) {
        for tx in self.read_senders.iter().chain(&self.write_senders) {
            let _ = tx.send(Request::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if self.remove_on_drop {
            for (d, p) in self.paths.iter().enumerate() {
                let _ = std::fs::remove_file(p);
                let _ = std::fs::remove_file(self.dir.join(format!("disk-{d}.sum")));
            }
            let _ = std::fs::remove_file(self.dir.join("meta.pdm"));
            let _ = std::fs::remove_file(self.dir.join("meta.pdm.tmp"));
            let _ = std::fs::remove_dir(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::machine::Pdm;

    #[test]
    fn aligned_buf_blocks_start_on_the_alignment_boundary() {
        let mut b = AlignedBuf::new(4096, DIRECT_ALIGN);
        for count in [1, 3, 17] {
            b.ensure(count);
            let off = b.offset();
            assert_eq!((b.raw.as_ptr() as usize + off) % DIRECT_ALIGN, 0);
            assert!(b.raw.len() - off >= count * 4096, "room for {count} blocks");
        }
    }

    #[test]
    fn round_trip_via_machine() {
        let cfg = PdmConfig::new(4, 8, 64);
        let storage = AsyncFileStorage::<u64>::create_temp(4, 8).unwrap();
        let mut pdm = Pdm::with_storage(cfg, storage).unwrap();
        let r = pdm.alloc_region_for_keys(64).unwrap();
        let data: Vec<u64> = (0..64).map(|i| i * 7 % 64).collect();
        pdm.ingest(&r, &data).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn batched_io_round_trips_many_blocks_per_disk() {
        let d = 2;
        let b = 8;
        let mut s = AsyncFileStorage::<u64>::create_temp(d, b).unwrap();
        for disk in 0..d {
            s.ensure_capacity(disk, 64).unwrap();
        }
        // 64 slots per disk against QUEUE_DEPTH=32 exercises the
        // chunked-submission loop more than once per worker.
        let reqs: Vec<(usize, usize)> = (0..128).map(|i| (i % d, i / d)).collect();
        let data: Vec<u64> = (0..reqs.len() * b).map(|i| i as u64 * 31).collect();
        s.write_batch(&reqs, &data).unwrap();
        let mut out = vec![0u64; data.len()];
        s.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn misaligned_geometry_falls_back_to_buffered_io() {
        // 4 keys × 8 bytes = 32-byte blocks: O_DIRECT must not even be
        // attempted, and everything still round-trips.
        let mut s = AsyncFileStorage::<u64>::create_temp(1, 4).unwrap();
        assert!(!s.direct_io(), "32-byte blocks cannot be O_DIRECT");
        assert!(!s.caps().direct_io);
        s.ensure_capacity(0, 2).unwrap();
        s.write_block(0, 1, &[9, 8, 7, 6]).unwrap();
        let mut out = [0u64; 4];
        s.read_block(0, 1, &mut out).unwrap();
        assert_eq!(out, [9, 8, 7, 6]);
    }

    #[test]
    fn aligned_geometry_round_trips_with_or_without_o_direct() {
        // 512 keys × 8 bytes = 4096-byte blocks: O_DIRECT is attempted;
        // whether it sticks depends on the filesystem (tmpfs refuses), and
        // behavior must be identical either way.
        let b = 512;
        let mut s = AsyncFileStorage::<u64>::create_temp(2, b).unwrap();
        assert_eq!(s.caps().direct_io, s.direct_io());
        for disk in 0..2 {
            s.ensure_capacity(disk, 4).unwrap();
        }
        let reqs: Vec<(usize, usize)> = (0..8).map(|i| (i % 2, i / 2)).collect();
        let data: Vec<u64> = (0..reqs.len() * b).map(|i| i as u64).collect();
        s.write_batch(&reqs, &data).unwrap();
        let mut out = vec![0u64; data.len()];
        s.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn bounds_checked_like_other_backends() {
        let mut s = AsyncFileStorage::<u64>::create_temp(2, 4).unwrap();
        s.ensure_capacity(0, 1).unwrap();
        let mut out = [0u64; 4];
        assert!(matches!(
            s.read_block(3, 0, &mut out),
            Err(PdmError::BadDisk { .. })
        ));
        assert!(matches!(
            s.read_block(0, 5, &mut out),
            Err(PdmError::BadSlot { disk: 0, slot: 5, .. })
        ));
        let mut bad = [0u64; 2];
        assert!(matches!(
            s.read_block(0, 0, &mut bad),
            Err(PdmError::BadBlockLen { .. })
        ));
        assert!(matches!(
            s.write_block(0, 0, &[1, 2]),
            Err(PdmError::BadBlockLen { .. })
        ));
    }

    #[test]
    fn overlap_tokens_complete_and_round_trip() {
        let mut s = AsyncFileStorage::<u64>::create_temp(1, 4).unwrap();
        s.ensure_capacity(0, 2).unwrap();
        let payload = vec![5u64, 6, 7, 8];
        let w = s.start_write_batch(&[(0, 1)], &payload).unwrap();
        w.wait().unwrap();
        let r = s.start_read_batch(&[(0, 1)]).unwrap();
        let mut out = vec![0u64; 4];
        r.wait(&mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn sync_persists_manifest_for_readback() {
        let dir = std::env::temp_dir().join(format!("pdm-async-meta-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = AsyncFileStorage::<u64>::create(&dir, 2, 4).unwrap();
            s.ensure_capacity(0, 3).unwrap();
            s.ensure_capacity(1, 2).unwrap();
            s.write_block(0, 2, &[5, 5, 5, 5]).unwrap();
            s.sync().unwrap();
        }
        assert!(dir.join("meta.pdm").is_file());
        // The synchronous file backend reads the same manifest and data.
        let mut back = crate::storage_file::FileStorage::<u64>::create_readback(&dir, 2, 4).unwrap();
        let mut out = [0u64; 4];
        back.read_block(0, 2, &mut out).unwrap();
        assert_eq!(out, [5, 5, 5, 5]);
        drop(back);
        // And so does a fresh async handle.
        let mut s = AsyncFileStorage::<u64>::create_readback(&dir, 2, 4).unwrap();
        s.read_block(0, 2, &mut out).unwrap();
        assert_eq!(out, [5, 5, 5, 5]);
        assert!(matches!(
            s.read_block(0, 3, &mut out),
            Err(PdmError::BadSlot { .. })
        ));
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_files_are_removed_on_drop() {
        let paths;
        {
            let s = AsyncFileStorage::<u64>::create_temp(2, 4).unwrap();
            paths = s.paths().to_vec();
            assert!(paths.iter().all(|p| p.exists()));
        }
        assert!(paths.iter().all(|p| !p.exists()));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let s = AsyncFileStorage::<u64>::create_temp(8, 16).unwrap();
        drop(s); // must not hang or panic
    }

    #[test]
    fn tuned_queue_depth_round_trips_with_registered_buffers() {
        // Depth 4 against 32 slots per disk forces many kernel rounds;
        // registered buffers must be invisible to the data path (they only
        // change the opcode), and fixed SQEs can never exceed submissions.
        let opts = AsyncFileOptions {
            queue_depth: 4,
            sqpoll: false,
            register_buffers: true,
        };
        let d = 2;
        let b = 8;
        let mut s = AsyncFileStorage::<u64>::create_temp_with(d, b, opts).unwrap();
        for disk in 0..d {
            s.ensure_capacity(disk, 32).unwrap();
        }
        let reqs: Vec<(usize, usize)> = (0..64).map(|i| (i % d, i / d)).collect();
        let data: Vec<u64> = (0..reqs.len() * b).map(|i| i as u64 * 13).collect();
        s.write_batch(&reqs, &data).unwrap();
        let mut out = vec![0u64; data.len()];
        s.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(out, data);
        let w = s.wall_snapshot().unwrap();
        assert!(w.uring.fixed_sqes <= w.uring.submitted_sqes);
        // When a ring serviced the batches AND registration stuck, every
        // SQE stages through the registered buffer, so all of them ride
        // the fixed opcodes.
        if w.uring.submitted_sqes > 0 && w.uring.fixed_sqes > 0 {
            assert_eq!(w.uring.fixed_sqes, w.uring.submitted_sqes);
        }
    }

    #[test]
    fn sqpoll_option_round_trips_or_falls_back() {
        // SQPOLL may be refused (old kernel, privileges) — the storage
        // must degrade to a plain ring or sync I/O, never fail outright.
        let opts = AsyncFileOptions {
            queue_depth: 8,
            sqpoll: true,
            register_buffers: false,
        };
        let mut s = AsyncFileStorage::<u64>::create_temp_with(1, 4, opts).unwrap();
        s.ensure_capacity(0, 4).unwrap();
        let reqs: Vec<(usize, usize)> = (0..4).map(|i| (0, i)).collect();
        let data: Vec<u64> = (0..16).map(|i| i * 3).collect();
        s.write_batch(&reqs, &data).unwrap();
        let mut out = vec![0u64; 16];
        s.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn wall_telemetry_samples_per_kernel_round() {
        let d = 2;
        let b = 4;
        let mut s = AsyncFileStorage::<u64>::create_temp(d, b).unwrap();
        let sink = Arc::new(SpanSink::new(1 << 16));
        s.attach_span_sink(Arc::clone(&sink));
        for disk in 0..d {
            s.ensure_capacity(disk, 4).unwrap();
        }
        // 4 distinct slots per disk, well under QUEUE_DEPTH: exactly one
        // kernel round (= one histogram sample, one span) per disk per
        // direction.
        let reqs: Vec<(usize, usize)> = (0..8).map(|i| (i % d, i / d)).collect();
        let data: Vec<u64> = (0..reqs.len() * b).map(|i| i as u64).collect();
        s.write_batch(&reqs, &data).unwrap();
        let mut out = vec![0u64; data.len()];
        s.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(out, data);
        let w = s.wall_snapshot().unwrap();
        assert_eq!(w.disks.len(), d);
        for dw in &w.disks {
            assert_eq!(dw.read.count, 1, "one round per disk per direction");
            assert_eq!(dw.write.count, 1);
            assert!(dw.queue_high_water >= 4, "4 blocks dispatched at once");
        }
        let tracks = sink.tracks();
        assert_eq!(tracks.len(), 2 * d);
        assert!(tracks.iter().any(|(tid, n)| *tid == 1 && n == "disk0 write"));
        let spans = sink.spans();
        assert_eq!(spans.len(), 2 * d);
        assert_eq!(spans.iter().filter(|s| s.name == "read").count(), d);
        // uring counters only move when a ring actually serviced the
        // batch; when they do, submissions balance completions.
        assert_eq!(w.uring.submitted_sqes, w.uring.reaped_cqes);
    }
}
