//! Shared backend assembly: one place that knows how to stack a storage
//! from a base backend plus the optional wrapper layers.
//!
//! The CLI, the bench harness, and the fault-matrix tests all need the
//! same ladder — base backend (mem / file / threaded / async-file), then
//! fault injection, then transient-fault retry, each layer optional and
//! erased to `Box<dyn Storage>` — and each used to hand-roll its own copy.
//! [`StorageBuilder`] is that ladder, written once:
//!
//! ```
//! use pdm_model::prelude::*;
//!
//! let built = StorageBuilder::new(BackendKind::Mem, 2, 8)
//!     .inject(FailMode::EveryNth(64))
//!     .retry(RetryPolicy::default())
//!     .build::<u64>()
//!     .unwrap();
//! let mut pdm = Pdm::with_storage(PdmConfig::square(2, 8), built.storage).unwrap();
//! pdm.set_overlap(built.caps.overlap);
//! if let Some(c) = built.retry_counters {
//!     pdm.attach_retry_counters(c);
//! }
//! ```
//!
//! Overlap is deliberately *not* a builder layer: it is a machine setting,
//! resolved by the caller from the assembled stack's [`StorageCaps`]
//! (surfaced in [`BuiltStorage::caps`]). Wrappers pass `overlap` through:
//! fault injection draws its schedule and retry classifies failures at
//! *issue* time, and the async-file backend finishes the job at
//! *completion* time — the builder arms it with the same shared retry
//! counters it hands the issue-time layer, so `--overlap on --retry N`
//! keeps latency hiding and fault tolerance together.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{PdmError, Result};
use crate::file_faults::{FileFaultMode, FileFaults};
use crate::key::PdmKey;
use crate::storage::{MemStorage, Storage, StorageCaps};
use crate::storage_async_file::{AsyncFileOptions, AsyncFileStorage};
use crate::storage_file::FileStorage;
use crate::storage_flaky::{FailMode, FlakyStorage};
use crate::storage_retry::{RetryCounters, RetryPolicy, RetryingStorage};
use crate::storage_threaded::ThreadedStorage;

/// Which base backend anchors the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// RAM-backed [`MemStorage`]: the reference cost-model backend.
    Mem,
    /// Synchronous one-file-per-disk [`FileStorage`].
    File,
    /// Thread-per-disk RAM emulation [`ThreadedStorage`] (duplex workers,
    /// optional emulated latency).
    Threaded,
    /// Asynchronous real-disk [`AsyncFileStorage`] (duplex workers over
    /// real files; io_uring with the `uring` feature).
    AsyncFile,
}

impl BackendKind {
    /// Whether this backend persists to a host directory (and therefore
    /// accepts [`StorageBuilder::dir`] / readback).
    pub fn is_file_backed(self) -> bool {
        matches!(self, BackendKind::File | BackendKind::AsyncFile)
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "mem" => Ok(BackendKind::Mem),
            "file" => Ok(BackendKind::File),
            "threaded" => Ok(BackendKind::Threaded),
            "async-file" => Ok(BackendKind::AsyncFile),
            _ => Err(format!(
                "unknown storage backend '{s}' (mem | file | threaded | async-file)"
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Mem => "mem",
            BackendKind::File => "file",
            BackendKind::Threaded => "threaded",
            BackendKind::AsyncFile => "async-file",
        })
    }
}

/// The assembled stack plus the handles callers need from its layers.
pub struct BuiltStorage<K: PdmKey> {
    /// The full stack, outermost layer first, type-erased.
    pub storage: Box<dyn Storage<K>>,
    /// Capabilities of the assembled stack (wrappers already folded in);
    /// callers resolve machine overlap from `caps.overlap`.
    pub caps: StorageCaps,
    /// Live counter handle of the retry layer, when one was stacked.
    pub retry_counters: Option<RetryCounters>,
}

impl<K: PdmKey> std::fmt::Debug for BuiltStorage<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltStorage")
            .field("caps", &self.caps)
            .field("retry", &self.retry_counters.is_some())
            .finish_non_exhaustive()
    }
}

/// Builder for the standard storage ladder: base backend → fault
/// injection → retry. See the module docs for the rationale and an
/// example.
#[derive(Debug, Clone)]
pub struct StorageBuilder {
    kind: BackendKind,
    num_disks: usize,
    block_size: usize,
    dir: Option<PathBuf>,
    readback: bool,
    inject: Option<FailMode>,
    inject_file: Option<FileFaultMode>,
    retry: Option<RetryPolicy>,
    async_opts: AsyncFileOptions,
}

impl StorageBuilder {
    /// Start a stack over `kind` with the given geometry.
    pub fn new(kind: BackendKind, num_disks: usize, block_size: usize) -> Self {
        Self {
            kind,
            num_disks,
            block_size,
            dir: None,
            readback: false,
            inject: None,
            inject_file: None,
            retry: None,
            async_opts: AsyncFileOptions::default(),
        }
    }

    /// Per-disk submission queue depth for the async-file backend: max
    /// blocks per kernel round per worker, and the io_uring ring size with
    /// the `uring` feature. Ignored by the other backends.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.async_opts.queue_depth = depth.max(1);
        self
    }

    /// Ask the async-file backend's worker rings for kernel-side
    /// submission polling (`IORING_SETUP_SQPOLL`); silently falls back to
    /// plain rings where refused. Ignored by the other backends.
    pub fn uring_sqpoll(mut self) -> Self {
        self.async_opts.sqpoll = true;
        self
    }

    /// Register the async-file workers' staging buffers with
    /// `IORING_REGISTER_BUFFERS` so transfers ride the fixed-buffer
    /// opcodes; silently degrades where the kernel refuses. Ignored by
    /// the other backends.
    pub fn uring_register_buffers(mut self) -> Self {
        self.async_opts.register_buffers = true;
        self
    }

    /// Put the disk files under `dir` instead of a self-cleaning temp
    /// directory. Only meaningful for file-backed kinds; [`Self::build`]
    /// rejects it otherwise.
    pub fn dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Open existing disk files (validated against a `meta.pdm` manifest
    /// when present) instead of truncating. Requires [`Self::dir`].
    pub fn readback(mut self, readback: bool) -> Self {
        self.readback = readback;
        self
    }

    /// Stack a [`FlakyStorage`] fault-injection layer over the base.
    pub fn inject(mut self, mode: FailMode) -> Self {
        self.inject = Some(mode);
        self
    }

    /// Arm *real-file* fault injection inside the base backend itself:
    /// EIO, short transfers, torn writes, and fsync failures surface from
    /// the actual `read`/`write`/`fsync` calls rather than from a wrapper.
    /// Only meaningful for file-backed kinds; [`Self::build`] rejects it
    /// otherwise.
    pub fn inject_file(mut self, mode: FileFaultMode) -> Self {
        self.inject_file = Some(mode);
        self
    }

    /// Stack a [`RetryingStorage`] transient-fault retry layer (outermost).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Assemble the stack.
    pub fn build<K: PdmKey>(self) -> Result<BuiltStorage<K>> {
        let (d, b) = (self.num_disks, self.block_size);
        if !self.kind.is_file_backed() {
            if self.dir.is_some() {
                return Err(PdmError::BadConfig(format!(
                    "the '{}' backend is not file-backed and takes no scratch directory",
                    self.kind
                )));
            }
            if self.readback {
                return Err(PdmError::BadConfig(format!(
                    "the '{}' backend is not file-backed and cannot read back",
                    self.kind
                )));
            }
        }
        if self.readback && self.dir.is_none() {
            return Err(PdmError::BadConfig(
                "readback needs a directory to read back from".into(),
            ));
        }
        if self.inject_file.is_some() && !self.kind.is_file_backed() {
            return Err(PdmError::BadConfig(format!(
                "the '{}' backend is not file-backed and cannot inject file faults",
                self.kind
            )));
        }
        // One counter set shared by the issue-time retry layer and (on the
        // async-file backend) the completion-time retry in the workers, so
        // `IoStats.retry` folds both together.
        let counters = RetryCounters::new();
        let mut storage: Box<dyn Storage<K>> = match self.kind {
            BackendKind::Mem => Box::new(MemStorage::new(d, b)),
            BackendKind::Threaded => Box::new(ThreadedStorage::new(d, b)),
            BackendKind::File => {
                let mut s = match (&self.dir, self.readback) {
                    (Some(dir), true) => FileStorage::create_readback(dir, d, b)?,
                    (Some(dir), false) => FileStorage::create(dir, d, b)?,
                    (None, _) => FileStorage::create_temp(d, b)?,
                };
                if let Some(mode) = self.inject_file {
                    s.set_file_faults(Arc::new(FileFaults::new(mode)));
                }
                Box::new(s)
            }
            BackendKind::AsyncFile => {
                let opts = self.async_opts;
                let mut s = match (&self.dir, self.readback) {
                    (Some(dir), true) => AsyncFileStorage::create_readback_with(dir, d, b, opts)?,
                    (Some(dir), false) => AsyncFileStorage::create_with(dir, d, b, opts)?,
                    (None, _) => AsyncFileStorage::create_temp_with(d, b, opts)?,
                };
                if let Some(mode) = self.inject_file {
                    s.set_file_faults(Arc::new(FileFaults::new(mode)));
                }
                if let Some(policy) = self.retry {
                    s.set_completion_retry(policy, counters.clone());
                }
                Box::new(s)
            }
        };
        if let Some(mode) = self.inject {
            storage = Box::new(FlakyStorage::new(storage, mode));
        }
        let mut retry_counters = None;
        if let Some(policy) = self.retry {
            retry_counters = Some(counters.clone());
            storage = Box::new(RetryingStorage::with_counters(storage, policy, counters));
        }
        let caps = storage.caps();
        Ok(BuiltStorage {
            storage,
            caps,
            retry_counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::machine::Pdm;

    fn round_trip(built: BuiltStorage<u64>) {
        let mut pdm = Pdm::with_storage(PdmConfig::square(2, 8), built.storage).unwrap();
        let r = pdm.alloc_region_for_keys(128).unwrap();
        let data: Vec<u64> = (0..128).rev().collect();
        pdm.ingest(&r, &data).unwrap();
        let mut out = Vec::new();
        pdm.read_region(&r, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn every_backend_kind_builds_and_round_trips() {
        for kind in [
            BackendKind::Mem,
            BackendKind::File,
            BackendKind::Threaded,
            BackendKind::AsyncFile,
        ] {
            round_trip(StorageBuilder::new(kind, 2, 8).build().unwrap());
        }
    }

    #[test]
    fn caps_reflect_the_assembled_stack() {
        let bare = StorageBuilder::new(BackendKind::Threaded, 2, 8)
            .build::<u64>()
            .unwrap();
        assert!(bare.caps.overlap, "threaded backend natively overlaps");
        // Wrappers pass overlap through: fault/retry policy is applied at
        // issue time inside start_*_batch, so latency hiding survives.
        let wrapped = StorageBuilder::new(BackendKind::Threaded, 2, 8)
            .retry(RetryPolicy::default())
            .build::<u64>()
            .unwrap();
        assert!(wrapped.caps.overlap, "retry layer must not disable overlap");
        assert!(wrapped.caps.pooled, "inner facts still shine through");
        assert!(wrapped.retry_counters.is_some());
        assert!(bare.retry_counters.is_none());
    }

    #[test]
    fn uring_tuning_knobs_build_and_round_trip() {
        // The knobs are perf-only: whatever the kernel grants (SQPOLL,
        // registered buffers, neither), data-path behavior is identical.
        round_trip(
            StorageBuilder::new(BackendKind::AsyncFile, 2, 8)
                .queue_depth(4)
                .uring_sqpoll()
                .uring_register_buffers()
                .build()
                .unwrap(),
        );
        // Non-async kinds just ignore them.
        round_trip(
            StorageBuilder::new(BackendKind::Mem, 2, 8)
                .queue_depth(7)
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn non_file_kinds_reject_file_fault_injection() {
        for kind in [BackendKind::Mem, BackendKind::Threaded] {
            let e = StorageBuilder::new(kind, 2, 8)
                .inject_file(FileFaultMode::Eio(0))
                .build::<u64>()
                .unwrap_err();
            assert!(matches!(e, PdmError::BadConfig(_)), "{kind}: {e}");
        }
    }

    #[test]
    fn file_faults_heal_under_the_stacked_retry_layer() {
        for kind in [BackendKind::File, BackendKind::AsyncFile] {
            let built = StorageBuilder::new(kind, 2, 8)
                .inject_file(FileFaultMode::ShortRate {
                    seed: 7,
                    rate_ppm: 100_000,
                })
                .retry(RetryPolicy {
                    max_attempts: 10,
                    backoff_steps: 1,
                })
                .build::<u64>()
                .unwrap();
            let counters = built.retry_counters.clone().unwrap();
            round_trip(built);
            let snap = counters.snapshot();
            assert_eq!(snap.exhausted, 0, "{kind}: retries must heal the faults");
        }
    }

    #[test]
    fn faults_heal_under_the_stacked_retry_layer() {
        let built = StorageBuilder::new(BackendKind::Mem, 2, 8)
            .inject(FailMode::EveryNth(2))
            .retry(RetryPolicy::default())
            .build::<u64>()
            .unwrap();
        let counters = built.retry_counters.clone().unwrap();
        round_trip(built);
        let snap = counters.snapshot();
        assert!(snap.total_retries() > 0, "EveryNth(2) must have fired");
        assert_eq!(snap.exhausted, 0);
    }

    #[test]
    fn non_file_kinds_reject_dir_and_readback() {
        for kind in [BackendKind::Mem, BackendKind::Threaded] {
            let e = StorageBuilder::new(kind, 2, 8)
                .dir("/tmp/nope")
                .build::<u64>()
                .unwrap_err();
            assert!(matches!(e, PdmError::BadConfig(_)), "{kind}: {e}");
            let e = StorageBuilder::new(kind, 2, 8)
                .readback(true)
                .build::<u64>()
                .unwrap_err();
            assert!(matches!(e, PdmError::BadConfig(_)), "{kind}: {e}");
        }
        let e = StorageBuilder::new(BackendKind::File, 2, 8)
            .readback(true)
            .build::<u64>()
            .unwrap_err();
        assert!(matches!(e, PdmError::BadConfig(_)), "readback without dir");
    }

    #[test]
    fn dir_backed_stacks_persist_across_builds() {
        let dir = std::env::temp_dir().join(format!("pdm-builder-rb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let built = StorageBuilder::new(BackendKind::File, 2, 8)
                .dir(&dir)
                .build::<u64>()
                .unwrap();
            let mut s = built.storage;
            s.ensure_capacity(0, 1).unwrap();
            s.write_block(0, 0, &[7; 8]).unwrap();
            s.sync().unwrap();
        }
        // Read the same directory back through the *async* backend: the
        // manifest format is shared.
        let built = StorageBuilder::new(BackendKind::AsyncFile, 2, 8)
            .dir(&dir)
            .readback(true)
            .build::<u64>()
            .unwrap();
        let mut s = built.storage;
        let mut out = [0u64; 8];
        s.read_block(0, 0, &mut out).unwrap();
        assert_eq!(out, [7; 8]);
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backend_kind_parses_and_displays() {
        for (text, kind) in [
            ("mem", BackendKind::Mem),
            ("file", BackendKind::File),
            ("threaded", BackendKind::Threaded),
            ("async-file", BackendKind::AsyncFile),
        ] {
            assert_eq!(text.parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), text);
        }
        assert!("floppy".parse::<BackendKind>().is_err());
    }
}
