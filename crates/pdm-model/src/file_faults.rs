//! Deterministic fault injection at the *physical file* layer.
//!
//! [`crate::storage_flaky::FlakyStorage`] injects faults at the logical
//! block-operation layer, above any backend — good for exercising retry and
//! checkpoint logic, but blind to the failure modes only real files have:
//! a write that tears halfway through a block when power is lost, an fsync
//! the kernel refuses, a short `read(2)`. [`FileFaults`] models those at the
//! point where [`crate::storage_file::FileStorage`] and
//! [`crate::storage_async_file::AsyncFileStorage`] actually touch the file:
//!
//! * **short transfer** — a pseudo-random fraction of block transfers fails
//!   with [`std::io::ErrorKind::Interrupted`] *before* touching the file.
//!   Transient: a retry draws a fresh schedule index and (almost always)
//!   heals, exactly like `FlakyStorage::TransientRate`.
//! * **EIO** — the nth block transfer fails permanently with raw OS error 5.
//! * **torn write** — the nth block *write* persists only the first half of
//!   the block and reports success, simulating a crash mid-write. With the
//!   `block-checksums` feature on, the sidecar still records the checksum of
//!   the *intended* bytes, so the next read of that slot surfaces
//!   [`crate::PdmError::Corrupt`]; without checksums this is silent
//!   corruption, which is precisely the failure the feature exists to catch.
//! * **fsync failure** — the nth sync fails with a transient error, healed
//!   by the retry layer's reissue of `sync`.
//!
//! The schedule is a pure function of the shared operation counter: the
//! *set* of operation indices that fault is fixed by the mode (and seed).
//! Under the single-threaded `FileStorage` the mapping from logical
//! operation to index is therefore fully deterministic; under
//! `AsyncFileStorage` the per-disk workers share the counter, so which
//! worker lands on a faulting index depends on thread interleaving — the
//! fault *count* for nth-op modes is still exactly one, and rate modes
//! still converge to the configured rate.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::storage_flaky::splitmix64;

/// Which physical-file fault to inject, and when. Counters are 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFaultMode {
    /// Fail `rate_ppm` parts-per-million of block transfers (reads and
    /// writes combined) with a transient short-transfer error. The draw for
    /// operation `i` is `splitmix64(seed ^ i) % 1_000_000 < rate_ppm`, so a
    /// reissued operation draws a fresh index and heals.
    ShortRate {
        /// Seed mixed into every draw.
        seed: u64,
        /// Failure rate in parts per million.
        rate_ppm: u32,
    },
    /// The `n`th block transfer (reads and writes combined) fails
    /// permanently with EIO (raw OS error 5).
    Eio(u64),
    /// The `n`th block *write* persists only the first half of the block
    /// and reports success — a torn write across a simulated crash.
    TornWrite(u64),
    /// The `n`th fsync fails with a transient error.
    FsyncFail(u64),
    /// Inject nothing (useful to keep the shim in place with faults off).
    Never,
}

/// Verdict for one physical block transfer, drawn from the shared schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockFault {
    /// Perform the transfer normally.
    None,
    /// Fail with a transient short-transfer error; nothing touches the file.
    ShortTransfer,
    /// Fail permanently with EIO; nothing touches the file.
    Eio,
    /// Writes only: persist the first half of the block, report success.
    Torn,
}

/// Shared, seeded fault schedule consulted by file-backed storage at every
/// physical block transfer and fsync. One instance is shared (via `Arc`)
/// between a backend handle and its worker threads.
#[derive(Debug)]
pub struct FileFaults {
    mode: FileFaultMode,
    /// Block transfers drawn so far (reads + writes).
    ops: AtomicU64,
    /// Block writes drawn so far (torn-write schedule).
    writes: AtomicU64,
    /// Fsyncs drawn so far.
    syncs: AtomicU64,
    /// Faults actually injected.
    injected: AtomicU64,
}

impl FileFaults {
    /// New schedule in the given mode; counters start at zero.
    pub fn new(mode: FileFaultMode) -> Self {
        Self {
            mode,
            ops: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The configured mode.
    pub fn mode(&self) -> FileFaultMode {
        self.mode
    }

    /// Draw the verdict for the next physical block transfer. Advances the
    /// operation counter (and the write counter when `write`), so every
    /// attempt — including a retry of a failed one — consumes an index.
    pub(crate) fn block_fault(&self, write: bool) -> BlockFault {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let wr = if write {
            self.writes.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        let verdict = match self.mode {
            FileFaultMode::ShortRate { seed, rate_ppm } => {
                if splitmix64(seed ^ op) % 1_000_000 < u64::from(rate_ppm) {
                    BlockFault::ShortTransfer
                } else {
                    BlockFault::None
                }
            }
            FileFaultMode::Eio(n) if op == n => BlockFault::Eio,
            FileFaultMode::TornWrite(n) if write && wr == n => BlockFault::Torn,
            _ => BlockFault::None,
        };
        if verdict != BlockFault::None {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Draw the verdict for the next fsync: `Err` if it should fail.
    /// Advances the sync counter, so a retried sync draws afresh.
    pub(crate) fn sync_fault(&self) -> std::io::Result<()> {
        let s = self.syncs.fetch_add(1, Ordering::Relaxed);
        if matches!(self.mode, FileFaultMode::FsyncFail(n) if s == n) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected fsync failure",
            ));
        }
        Ok(())
    }

    /// The transient error a [`BlockFault::ShortTransfer`] verdict turns into.
    pub(crate) fn short_transfer_error(write: bool) -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            if write {
                "injected short write"
            } else {
                "injected short read"
            },
        )
    }

    /// The permanent error a [`BlockFault::Eio`] verdict turns into.
    pub(crate) fn eio_error() -> std::io::Error {
        std::io::Error::from_raw_os_error(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_mode_injects_nothing() {
        let f = FileFaults::new(FileFaultMode::Never);
        for i in 0..100 {
            assert_eq!(f.block_fault(i % 2 == 0), BlockFault::None);
        }
        assert!(f.sync_fault().is_ok());
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn eio_fires_exactly_once_on_the_nth_op() {
        let f = FileFaults::new(FileFaultMode::Eio(3));
        let verdicts: Vec<_> = (0..8).map(|_| f.block_fault(false)).collect();
        assert_eq!(
            verdicts.iter().filter(|v| **v == BlockFault::Eio).count(),
            1
        );
        assert_eq!(verdicts[3], BlockFault::Eio);
        assert_eq!(f.injected(), 1);
        let e = FileFaults::eio_error();
        assert_eq!(e.raw_os_error(), Some(5));
    }

    #[test]
    fn torn_write_counts_writes_only() {
        let f = FileFaults::new(FileFaultMode::TornWrite(1));
        assert_eq!(f.block_fault(false), BlockFault::None); // read
        assert_eq!(f.block_fault(true), BlockFault::None); // write 0
        assert_eq!(f.block_fault(false), BlockFault::None); // read
        assert_eq!(f.block_fault(true), BlockFault::Torn); // write 1
        assert_eq!(f.block_fault(true), BlockFault::None); // write 2
        assert_eq!(f.injected(), 1);
    }

    #[test]
    fn short_rate_is_deterministic_and_roughly_calibrated() {
        let a = FileFaults::new(FileFaultMode::ShortRate {
            seed: 42,
            rate_ppm: 100_000,
        });
        let b = FileFaults::new(FileFaultMode::ShortRate {
            seed: 42,
            rate_ppm: 100_000,
        });
        let va: Vec<_> = (0..10_000).map(|_| a.block_fault(false)).collect();
        let vb: Vec<_> = (0..10_000).map(|_| b.block_fault(false)).collect();
        assert_eq!(va, vb, "same seed, same schedule");
        let faults = va
            .iter()
            .filter(|v| **v == BlockFault::ShortTransfer)
            .count();
        // 10% +- generous slack over 10k draws.
        assert!((500..2000).contains(&faults), "got {faults} faults");
        assert!(FileFaults::short_transfer_error(false).kind() == std::io::ErrorKind::Interrupted);
    }

    #[test]
    fn fsync_fault_fires_on_the_nth_sync_and_is_transient() {
        let f = FileFaults::new(FileFaultMode::FsyncFail(1));
        assert!(f.sync_fault().is_ok());
        let e = f.sync_fault().unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
        assert!(f.sync_fault().is_ok(), "retried sync heals");
        assert_eq!(f.injected(), 1);
    }
}
