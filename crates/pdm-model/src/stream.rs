//! Sequential block streams over striped regions.
//!
//! [`RunReader`] and [`RunWriter`] turn a striped [`Region`] into a
//! key-granular sequential stream while doing block-granular, stripe-aligned
//! I/O underneath (default batch: one full stripe of `D` blocks per parallel
//! step). Their staging buffers are registered against the machine's
//! internal memory, so holding `l` open readers costs `l · D · B` tracked
//! keys — exactly the memory a real multiway merge would pin.
//!
//! [`kway_merge`] is the workhorse used by every merge phase in the paper's
//! algorithms.

use crate::error::Result;
use crate::key::PdmKey;
use crate::layout::Region;
use crate::machine::Pdm;
use crate::mem::TrackedBuf;
use crate::storage::Storage;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Buffered sequential writer into a region.
pub struct RunWriter<K: PdmKey> {
    region: Region,
    next_block: usize,
    buf: TrackedBuf<K>,
    batch_keys: usize,
    written: usize,
}

impl<K: PdmKey> RunWriter<K> {
    /// Writer over `region` staging `batch_blocks` blocks (default: pass
    /// `pdm.cfg().num_disks` for one-stripe batches).
    pub fn new<S: Storage<K>>(pdm: &Pdm<K, S>, region: Region, batch_blocks: usize) -> Result<Self> {
        let b = pdm.cfg().block_size;
        let batch_keys = batch_blocks.max(1) * b;
        Ok(Self {
            region,
            next_block: 0,
            buf: pdm.alloc_buf(batch_keys)?,
            batch_keys,
            written: 0,
        })
    }

    /// Writer with the default one-stripe batch.
    pub fn striped<S: Storage<K>>(pdm: &Pdm<K, S>, region: Region) -> Result<Self> {
        let d = pdm.cfg().num_disks;
        Self::new(pdm, region, d)
    }

    /// Keys pushed so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// The region being written.
    pub fn region(&self) -> &Region {
        &self.region
    }

    fn flush_full_blocks<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        let b = self.region.block_size();
        let full = self.buf.len() / b;
        if full == 0 {
            return Ok(());
        }
        let idx: Vec<usize> = (self.next_block..self.next_block + full).collect();
        pdm.write_blocks(&self.region, &idx, &self.buf[..full * b])?;
        self.next_block += full;
        let rem = self.buf.len() - full * b;
        // move the ragged tail to the front
        let tail: Vec<K> = self.buf[full * b..].to_vec();
        self.buf.clear();
        self.buf.extend_from_slice(&tail);
        debug_assert_eq!(self.buf.len(), rem);
        Ok(())
    }

    /// Append one key, flushing staged full blocks when the batch fills.
    pub fn push<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>, k: K) -> Result<()> {
        self.buf.push(k);
        self.written += 1;
        if self.buf.len() >= self.batch_keys {
            self.flush_full_blocks(pdm)?;
        }
        Ok(())
    }

    /// Append a slice of keys.
    pub fn push_slice<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>, ks: &[K]) -> Result<()> {
        for chunk in ks.chunks(self.batch_keys) {
            self.buf.extend_from_slice(chunk);
            self.written += chunk.len();
            if self.buf.len() >= self.batch_keys {
                self.flush_full_blocks(pdm)?;
            }
        }
        Ok(())
    }

    /// Flush remaining keys, padding the final partial block with `K::MAX`,
    /// and return the number of *keys* written (padding excluded).
    pub fn finish<S: Storage<K>>(mut self, pdm: &mut Pdm<K, S>) -> Result<usize> {
        let b = self.region.block_size();
        let rem = self.buf.len() % b;
        if rem != 0 {
            for _ in rem..b {
                self.buf.push(K::MAX);
            }
        }
        self.flush_full_blocks(pdm)?;
        Ok(self.written)
    }
}

/// Buffered sequential reader over the first `total_keys` keys of a region.
pub struct RunReader<K: PdmKey> {
    region: Region,
    next_block: usize,
    buf: TrackedBuf<K>,
    pos: usize,
    batch_blocks: usize,
    remaining: usize,
}

impl<K: PdmKey> RunReader<K> {
    /// Reader over the first `total_keys` keys of `region`, staging
    /// `batch_blocks` blocks per refill.
    pub fn new<S: Storage<K>>(
        pdm: &Pdm<K, S>,
        region: Region,
        total_keys: usize,
        batch_blocks: usize,
    ) -> Result<Self> {
        let b = pdm.cfg().block_size;
        let batch_blocks = batch_blocks.max(1);
        Ok(Self {
            region,
            next_block: 0,
            buf: pdm.alloc_buf(batch_blocks * b)?,
            pos: 0,
            batch_blocks,
            remaining: total_keys,
        })
    }

    /// Reader with the default one-stripe batch over the whole region.
    pub fn striped<S: Storage<K>>(pdm: &Pdm<K, S>, region: Region) -> Result<Self> {
        let d = pdm.cfg().num_disks;
        let keys = region.len_keys();
        Self::new(pdm, region, keys, d)
    }

    /// Keys not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether the stream is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0
    }

    fn refill<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        debug_assert!(self.pos >= self.buf.len());
        let blocks_left = self.region.len_blocks() - self.next_block;
        let take = self.batch_blocks.min(blocks_left);
        self.buf.clear();
        self.pos = 0;
        if take == 0 {
            return Ok(());
        }
        let idx: Vec<usize> = (self.next_block..self.next_block + take).collect();
        let v = self.buf.as_vec_mut();
        pdm.read_blocks(&self.region, &idx, v)?;
        self.next_block += take;
        Ok(())
    }

    /// The next key without consuming it.
    pub fn peek<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<Option<K>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.pos >= self.buf.len() {
            self.refill(pdm)?;
            if self.buf.is_empty() {
                self.remaining = 0;
                return Ok(None);
            }
        }
        Ok(Some(self.buf[self.pos]))
    }

    /// Consume and return the next key.
    pub fn next_key<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<Option<K>> {
        let k = self.peek(pdm)?;
        if k.is_some() {
            self.pos += 1;
            self.remaining -= 1;
        }
        Ok(k)
    }

    /// Consume up to `n` keys, appending them to `out`.
    pub fn take_into<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        n: usize,
        out: &mut Vec<K>,
    ) -> Result<usize> {
        let mut taken = 0;
        while taken < n {
            if self.remaining == 0 {
                break;
            }
            if self.pos >= self.buf.len() {
                self.refill(pdm)?;
                if self.buf.is_empty() {
                    self.remaining = 0;
                    break;
                }
            }
            let avail = (self.buf.len() - self.pos).min(n - taken).min(self.remaining);
            out.extend_from_slice(&self.buf[self.pos..self.pos + avail]);
            self.pos += avail;
            self.remaining -= avail;
            taken += avail;
        }
        Ok(taken)
    }
}

/// Merge `readers` (each individually sorted) into `writer`.
///
/// Memory held: each reader's staging buffer plus the `l`-entry heap. This is
/// the merge kernel for the `(l, m)`-merge phases; with `l` readers batching
/// one block each, it matches the paper's "merge `l` sequences using memory
/// `l·B`" discipline.
pub fn kway_merge<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    mut readers: Vec<RunReader<K>>,
    writer: &mut RunWriter<K>,
) -> Result<()> {
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::with_capacity(readers.len());
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(k) = r.next_key(pdm)? {
            heap.push(Reverse((k, i)));
        }
    }
    while let Some(Reverse((k, i))) = heap.pop() {
        writer.push(pdm, k)?;
        if let Some(nk) = readers[i].next_key(pdm)? {
            heap.push(Reverse((nk, i)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;

    fn machine() -> Pdm<u64> {
        Pdm::new(PdmConfig::new(4, 8, 256)).unwrap()
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut pdm = machine();
        let r = pdm.alloc_region_for_keys(100).unwrap();
        let mut w = RunWriter::striped(&pdm, r).unwrap();
        for i in 0..100u64 {
            w.push(&mut pdm, i).unwrap();
        }
        assert_eq!(w.finish(&mut pdm).unwrap(), 100);

        let mut rd = RunReader::new(&pdm, r, 100, 4).unwrap();
        let mut got = Vec::new();
        while let Some(k) = rd.next_key(&mut pdm).unwrap() {
            got.push(k);
        }
        assert_eq!(got, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn push_slice_matches_push() {
        let mut pdm = machine();
        let data: Vec<u64> = (0..75).rev().collect();
        let r1 = pdm.alloc_region_for_keys(75).unwrap();
        let r2 = pdm.alloc_region_for_keys(75).unwrap();
        let mut w1 = RunWriter::striped(&pdm, r1).unwrap();
        let mut w2 = RunWriter::striped(&pdm, r2).unwrap();
        for &k in &data {
            w1.push(&mut pdm, k).unwrap();
        }
        w2.push_slice(&mut pdm, &data).unwrap();
        w1.finish(&mut pdm).unwrap();
        w2.finish(&mut pdm).unwrap();
        assert_eq!(pdm.inspect(&r1).unwrap(), pdm.inspect(&r2).unwrap());
    }

    #[test]
    fn writer_pads_with_max() {
        let mut pdm = machine();
        let r = pdm.alloc_region_for_keys(10).unwrap();
        let mut w = RunWriter::striped(&pdm, r).unwrap();
        w.push_slice(&mut pdm, &[1u64; 10]).unwrap();
        w.finish(&mut pdm).unwrap();
        let all = pdm.inspect(&r).unwrap();
        assert!(all[10..].iter().all(|&k| k == u64::MAX));
    }

    #[test]
    fn reader_take_into_bulk() {
        let mut pdm = machine();
        let r = pdm.alloc_region_for_keys(64).unwrap();
        pdm.ingest(&r, &(0..64).collect::<Vec<u64>>()).unwrap();
        let mut rd = RunReader::new(&pdm, r, 64, 2).unwrap();
        let mut out = Vec::new();
        assert_eq!(rd.take_into(&mut pdm, 40, &mut out).unwrap(), 40);
        assert_eq!(rd.remaining(), 24);
        assert_eq!(rd.take_into(&mut pdm, 100, &mut out).unwrap(), 24);
        assert!(rd.is_exhausted());
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn reader_respects_total_keys_not_region_padding() {
        let mut pdm = machine();
        let r = pdm.alloc_region_for_keys(10).unwrap(); // 2 blocks = 16 slots
        pdm.ingest(&r, &(0..10).collect::<Vec<u64>>()).unwrap();
        let mut rd = RunReader::new(&pdm, r, 10, 4).unwrap();
        let mut got = Vec::new();
        while let Some(k) = rd.next_key(&mut pdm).unwrap() {
            got.push(k);
        }
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut pdm = machine();
        let r = pdm.alloc_region_for_keys(8).unwrap();
        pdm.ingest(&r, &[3u64, 1, 4, 1, 5, 9, 2, 6]).unwrap();
        let mut rd = RunReader::striped(&pdm, r).unwrap();
        assert_eq!(rd.peek(&mut pdm).unwrap(), Some(3));
        assert_eq!(rd.peek(&mut pdm).unwrap(), Some(3));
        assert_eq!(rd.next_key(&mut pdm).unwrap(), Some(3));
        assert_eq!(rd.peek(&mut pdm).unwrap(), Some(1));
    }

    #[test]
    fn kway_merge_produces_sorted_output() {
        let mut pdm = machine();
        let runs: Vec<Vec<u64>> = vec![
            (0..32).map(|i| i * 3).collect(),
            (0..32).map(|i| i * 3 + 1).collect(),
            (0..32).map(|i| i * 3 + 2).collect(),
        ];
        let mut readers = Vec::new();
        for run in &runs {
            let reg = pdm.alloc_region_for_keys(run.len()).unwrap();
            pdm.ingest(&reg, run).unwrap();
            readers.push(RunReader::new(&pdm, reg, run.len(), 1).unwrap());
        }
        let out_reg = pdm.alloc_region_for_keys(96).unwrap();
        let mut w = RunWriter::striped(&pdm, out_reg).unwrap();
        kway_merge(&mut pdm, readers, &mut w).unwrap();
        assert_eq!(w.finish(&mut pdm).unwrap(), 96);
        let got = pdm.inspect_prefix(&out_reg, 96).unwrap();
        assert_eq!(got, (0..96).collect::<Vec<u64>>());
    }

    #[test]
    fn kway_merge_handles_unequal_and_empty_runs() {
        let mut pdm = machine();
        let runs: Vec<Vec<u64>> = vec![vec![5, 10, 15], vec![], vec![1], vec![2, 3, 4, 6, 7]];
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let mut readers = Vec::new();
        for run in &runs {
            let reg = pdm.alloc_region_for_keys(run.len().max(1)).unwrap();
            pdm.ingest(&reg, run).unwrap();
            readers.push(RunReader::new(&pdm, reg, run.len(), 1).unwrap());
        }
        let out_reg = pdm.alloc_region_for_keys(total).unwrap();
        let mut w = RunWriter::striped(&pdm, out_reg).unwrap();
        kway_merge(&mut pdm, readers, &mut w).unwrap();
        w.finish(&mut pdm).unwrap();
        let got = pdm.inspect_prefix(&out_reg, total).unwrap();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 10, 15]);
    }

    #[test]
    fn streams_account_memory() {
        let pdm = machine();
        // B = 8, batch 4 blocks → 32 keys per stream buffer
        let before = pdm.mem().current();
        {
            let r = Region::new(0, 0, 4, 4, 8);
            let _rd = RunReader::new(&pdm, r, 32, 4).unwrap();
            assert_eq!(pdm.mem().current(), before + 32);
        }
        assert_eq!(pdm.mem().current(), before);
    }

    #[test]
    fn sequential_stream_achieves_full_parallelism() {
        let mut pdm = machine();
        let n = 256;
        let r = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&r, &(0..n as u64).collect::<Vec<u64>>()).unwrap();
        let mut rd = RunReader::striped(&pdm, r).unwrap();
        let mut out = Vec::new();
        rd.take_into(&mut pdm, n, &mut out).unwrap();
        assert!((pdm.stats().read_parallel_efficiency(4) - 1.0).abs() < 1e-9);
    }
}
