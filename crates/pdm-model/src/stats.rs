//! I/O accounting: block counts, parallel-step counts, and passes.
//!
//! The PDM cost model charges one unit per *parallel I/O step*, during which
//! each of the `D` disks may transfer at most one block. The paper measures
//! algorithms in *passes*: one pass over `N` keys is `N/(D·B)` parallel read
//! steps plus the same number of write steps.
//!
//! [`IoStats`] tracks, per disk and in total, block reads/writes and the
//! parallel steps actually consumed (a batch touching one disk `k` times
//! costs `k` steps — lost parallelism is visible, not hidden).

use serde::{Deserialize, Serialize};

/// Cumulative I/O counters for a PDM machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Total blocks read.
    pub blocks_read: u64,
    /// Total blocks written.
    pub blocks_written: u64,
    /// Parallel read steps consumed.
    pub read_steps: u64,
    /// Parallel write steps consumed.
    pub write_steps: u64,
    /// Per-disk block read counts (length `D`).
    pub per_disk_reads: Vec<u64>,
    /// Per-disk block write counts (length `D`).
    pub per_disk_writes: Vec<u64>,
    /// Completed named phases, in order.
    pub phases: Vec<PhaseStats>,
    open_phase: Option<(String, Snapshot)>,
    /// Open I/O group accumulators (reads, writes), when grouping.
    group: Option<(Vec<u64>, Vec<u64>)>,
    /// Per-batch trace, when enabled (capped; see [`IoStats::enable_trace`]).
    pub trace: Option<Vec<BatchTrace>>,
}

/// One recorded I/O batch (trace mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchTrace {
    /// Whether this batch wrote (vs read).
    pub write: bool,
    /// Blocks moved.
    pub blocks: u32,
    /// Parallel steps charged (`max` per-disk multiplicity).
    pub steps: u32,
}

impl BatchTrace {
    /// Stripe efficiency of the batch: `blocks / (steps · D)`.
    pub fn efficiency(&self, num_disks: usize) -> f64 {
        if self.steps == 0 {
            return 1.0;
        }
        self.blocks as f64 / (self.steps as f64 * num_disks as f64)
    }
}

/// Counter deltas attributed to one named algorithm phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase label supplied by the algorithm.
    pub name: String,
    /// Blocks read during the phase.
    pub blocks_read: u64,
    /// Blocks written during the phase.
    pub blocks_written: u64,
    /// Parallel read steps during the phase.
    pub read_steps: u64,
    /// Parallel write steps during the phase.
    pub write_steps: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Snapshot {
    blocks_read: u64,
    blocks_written: u64,
    read_steps: u64,
    write_steps: u64,
}

impl IoStats {
    /// Fresh counters for a machine with `num_disks` disks.
    pub fn new(num_disks: usize) -> Self {
        Self {
            blocks_read: 0,
            blocks_written: 0,
            read_steps: 0,
            write_steps: 0,
            per_disk_reads: vec![0; num_disks],
            per_disk_writes: vec![0; num_disks],
            phases: Vec::new(),
            open_phase: None,
            group: None,
            trace: None,
        }
    }

    /// Record every subsequent batch into `trace` (up to `cap` entries, to
    /// bound memory; older entries are retained, new ones dropped past the
    /// cap). Intended for visualization and debugging, not for hot paths.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Vec::with_capacity(cap.min(1 << 20)));
    }

    fn push_trace(&mut self, write: bool, blocks: u64, steps: u64) {
        if let Some(t) = &mut self.trace {
            if t.len() < t.capacity() {
                t.push(BatchTrace {
                    write,
                    blocks: blocks as u32,
                    steps: steps as u32,
                });
            }
        }
    }

    /// Render the trace as an ASCII efficiency sparkline (one char per
    /// batch: `█` full stripes … `.` ≤ 12.5 %), chunked to `width` columns.
    pub fn trace_sparkline(&self, num_disks: usize, width: usize) -> String {
        let Some(trace) = &self.trace else {
            return String::new();
        };
        const LEVELS: [char; 8] = ['.', '▁', '▂', '▃', '▄', '▅', '▆', '█'];
        let mut out = String::new();
        for (i, b) in trace.iter().enumerate() {
            if i > 0 && i % width.max(1) == 0 {
                out.push('\n');
            }
            let eff = b.efficiency(num_disks);
            let lvl = ((eff * 8.0).ceil() as usize).clamp(1, 8) - 1;
            out.push(LEVELS[lvl]);
        }
        out
    }

    /// Open an *I/O group*: until [`IoStats::end_group`], batches accumulate
    /// into one scheduling window and the parallel-step cost is charged once
    /// at close as `max(per-disk blocks)` — modeling a controller with a
    /// deep command queue that schedules all queued blocks disk-parallel
    /// ("as few parallel write steps as possible", paper §7). Block and
    /// per-disk counters still update per batch. Groups do not nest.
    pub fn begin_group(&mut self) {
        assert!(self.group.is_none(), "I/O groups do not nest");
        let d = self.per_disk_reads.len();
        self.group = Some((vec![0; d], vec![0; d]));
    }

    /// Close the open I/O group, charging its deferred step cost.
    pub fn end_group(&mut self) {
        if let Some((reads, writes)) = self.group.take() {
            self.read_steps += reads.iter().copied().max().unwrap_or(0);
            self.write_steps += writes.iter().copied().max().unwrap_or(0);
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            blocks_read: self.blocks_read,
            blocks_written: self.blocks_written,
            read_steps: self.read_steps,
            write_steps: self.write_steps,
        }
    }

    /// Record a batch of block reads whose per-disk multiplicities are given
    /// in `disk_counts`; the batch costs `max(disk_counts)` parallel steps
    /// (deferred to [`IoStats::end_group`] while a group is open).
    pub fn record_read_batch(&mut self, disk_counts: &[u64]) {
        let mut total = 0;
        let mut max = 0;
        for (d, &c) in disk_counts.iter().enumerate() {
            self.per_disk_reads[d] += c;
            total += c;
            max = max.max(c);
        }
        self.blocks_read += total;
        self.push_trace(false, total, max);
        if let Some((reads, _)) = &mut self.group {
            for (g, &c) in reads.iter_mut().zip(disk_counts) {
                *g += c;
            }
        } else {
            self.read_steps += max;
        }
    }

    /// Record a batch of block writes (see [`IoStats::record_read_batch`]).
    pub fn record_write_batch(&mut self, disk_counts: &[u64]) {
        let mut total = 0;
        let mut max = 0;
        for (d, &c) in disk_counts.iter().enumerate() {
            self.per_disk_writes[d] += c;
            total += c;
            max = max.max(c);
        }
        self.blocks_written += total;
        self.push_trace(true, total, max);
        if let Some((_, writes)) = &mut self.group {
            for (g, &c) in writes.iter_mut().zip(disk_counts) {
                *g += c;
            }
        } else {
            self.write_steps += max;
        }
    }

    /// Open a named phase; counter deltas until [`IoStats::end_phase`] are
    /// attributed to it. Phases may not nest; opening a new phase closes the
    /// previous one.
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        self.end_phase();
        self.open_phase = Some((name.into(), self.snapshot()));
    }

    /// Close the open phase, if any, pushing its deltas onto `phases`.
    pub fn end_phase(&mut self) {
        if let Some((name, snap)) = self.open_phase.take() {
            self.phases.push(PhaseStats {
                name,
                blocks_read: self.blocks_read - snap.blocks_read,
                blocks_written: self.blocks_written - snap.blocks_written,
                read_steps: self.read_steps - snap.read_steps,
                write_steps: self.write_steps - snap.write_steps,
            });
        }
    }

    /// Read passes over `n` keys: `read_steps / (n / (D·B))`.
    ///
    /// This is the paper's pass metric; an algorithm achieving full disk
    /// parallelism and reading the data `p` times reports exactly `p`.
    pub fn read_passes(&self, n: usize, num_disks: usize, block_size: usize) -> f64 {
        let steps_per_pass = (n as f64) / (num_disks as f64 * block_size as f64);
        self.read_steps as f64 / steps_per_pass
    }

    /// Write passes over `n` keys (see [`IoStats::read_passes`]).
    pub fn write_passes(&self, n: usize, num_disks: usize, block_size: usize) -> f64 {
        let steps_per_pass = (n as f64) / (num_disks as f64 * block_size as f64);
        self.write_steps as f64 / steps_per_pass
    }

    /// Pass count by the *block volume* metric: `blocks_read·B / n`. Equal to
    /// [`IoStats::read_passes`] when every step keeps all `D` disks busy;
    /// smaller when parallelism is lost.
    pub fn read_volume_passes(&self, n: usize, block_size: usize) -> f64 {
        self.blocks_read as f64 * block_size as f64 / n as f64
    }

    /// Fraction of read-step disk capacity actually used:
    /// `blocks_read / (read_steps · D)`. 1.0 means full striping parallelism.
    pub fn read_parallel_efficiency(&self, num_disks: usize) -> f64 {
        if self.read_steps == 0 {
            return 1.0;
        }
        self.blocks_read as f64 / (self.read_steps as f64 * num_disks as f64)
    }

    /// Fraction of write-step disk capacity actually used.
    pub fn write_parallel_efficiency(&self, num_disks: usize) -> f64 {
        if self.write_steps == 0 {
            return 1.0;
        }
        self.blocks_written as f64 / (self.write_steps as f64 * num_disks as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_step_cost_is_max_per_disk() {
        let mut s = IoStats::new(4);
        // 4 blocks spread one per disk: one step.
        s.record_read_batch(&[1, 1, 1, 1]);
        assert_eq!(s.read_steps, 1);
        assert_eq!(s.blocks_read, 4);
        // 4 blocks all on disk 0: four steps.
        s.record_read_batch(&[4, 0, 0, 0]);
        assert_eq!(s.read_steps, 5);
        assert_eq!(s.blocks_read, 8);
        assert_eq!(s.per_disk_reads, vec![5, 1, 1, 1]);
    }

    #[test]
    fn passes_metric_matches_definition() {
        let mut s = IoStats::new(2);
        // N = 64 keys, D = 2, B = 8 → one pass = 4 steps.
        for _ in 0..4 {
            s.record_read_batch(&[1, 1]);
        }
        assert!((s.read_passes(64, 2, 8) - 1.0).abs() < 1e-12);
        assert!((s.read_volume_passes(64, 8) - 1.0).abs() < 1e-12);
        assert!((s.read_parallel_efficiency(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lost_parallelism_inflates_step_passes_only() {
        let mut s = IoStats::new(2);
        // 8 blocks, all on disk 0: 8 steps instead of 4.
        s.record_read_batch(&[8, 0]);
        assert!((s.read_passes(64, 2, 8) - 2.0).abs() < 1e-12);
        assert!((s.read_volume_passes(64, 8) - 1.0).abs() < 1e-12);
        assert!((s.read_parallel_efficiency(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phases_record_deltas() {
        let mut s = IoStats::new(2);
        s.begin_phase("a");
        s.record_read_batch(&[1, 1]);
        s.begin_phase("b"); // implicitly closes "a"
        s.record_write_batch(&[2, 2]);
        s.end_phase();
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[0].name, "a");
        assert_eq!(s.phases[0].blocks_read, 2);
        assert_eq!(s.phases[0].blocks_written, 0);
        assert_eq!(s.phases[1].name, "b");
        assert_eq!(s.phases[1].blocks_written, 4);
        assert_eq!(s.phases[1].write_steps, 2);
    }

    #[test]
    fn trace_records_batches_and_caps() {
        let mut s = IoStats::new(4);
        s.enable_trace(3);
        s.record_read_batch(&[1, 1, 1, 1]);
        s.record_write_batch(&[2, 0, 0, 0]);
        s.record_read_batch(&[1, 0, 0, 0]);
        s.record_read_batch(&[1, 0, 0, 0]); // beyond cap: dropped
        let t = s.trace.as_ref().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], BatchTrace { write: false, blocks: 4, steps: 1 });
        assert!((t[0].efficiency(4) - 1.0).abs() < 1e-12);
        assert_eq!(t[1], BatchTrace { write: true, blocks: 2, steps: 2 });
        assert!((t[1].efficiency(4) - 0.25).abs() < 1e-12);
        let spark = s.trace_sparkline(4, 2);
        assert_eq!(spark.chars().filter(|&c| c != '\n').count(), 3);
        assert!(spark.contains('█'));
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut s = IoStats::new(2);
        s.record_read_batch(&[1, 1]);
        assert!(s.trace.is_none());
        assert_eq!(s.trace_sparkline(2, 10), "");
    }

    #[test]
    fn io_group_defers_and_merges_step_cost() {
        let mut s = IoStats::new(4);
        s.begin_group();
        // three separate single-block batches on distinct disks: without a
        // group they'd cost 3 steps; grouped they cost 1.
        s.record_write_batch(&[1, 0, 0, 0]);
        s.record_write_batch(&[0, 1, 0, 0]);
        s.record_write_batch(&[0, 0, 1, 0]);
        assert_eq!(s.write_steps, 0, "steps deferred while group open");
        s.end_group();
        assert_eq!(s.write_steps, 1);
        assert_eq!(s.blocks_written, 3);
        // imbalance inside a group is still charged
        s.begin_group();
        s.record_read_batch(&[3, 1, 0, 0]);
        s.record_read_batch(&[2, 0, 0, 0]);
        s.end_group();
        assert_eq!(s.read_steps, 5);
    }

    #[test]
    fn empty_group_is_free() {
        let mut s = IoStats::new(2);
        s.begin_group();
        s.end_group();
        assert_eq!(s.read_steps + s.write_steps, 0);
        s.end_group(); // double close is a no-op
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn groups_do_not_nest() {
        let mut s = IoStats::new(2);
        s.begin_group();
        s.begin_group();
    }

    #[test]
    fn end_phase_without_open_is_noop() {
        let mut s = IoStats::new(1);
        s.end_phase();
        assert!(s.phases.is_empty());
    }

    #[test]
    fn efficiency_with_no_io_is_one() {
        let s = IoStats::new(3);
        assert_eq!(s.read_parallel_efficiency(3), 1.0);
        assert_eq!(s.write_parallel_efficiency(3), 1.0);
    }
}
