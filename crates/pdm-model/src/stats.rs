//! I/O accounting: block counts, parallel-step counts, and passes.
//!
//! The PDM cost model charges one unit per *parallel I/O step*, during which
//! each of the `D` disks may transfer at most one block. The paper measures
//! algorithms in *passes*: one pass over `N` keys is `N/(D·B)` parallel read
//! steps plus the same number of write steps.
//!
//! [`IoStats`] tracks, per disk and in total, block reads/writes and the
//! parallel steps actually consumed (a batch touching one disk `k` times
//! costs `k` steps — lost parallelism is visible, not hidden).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::hist::HistSnapshot;
use crate::probe::Probe;

/// Cumulative I/O counters for a PDM machine.
///
/// Equality deliberately ignores [`IoStats::wall`]: the step-clocked
/// counters must compare identical across backends and with telemetry on
/// or off, while wall-clock telemetry is timing-dependent by nature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IoStats {
    /// Total blocks read.
    pub blocks_read: u64,
    /// Total blocks written.
    pub blocks_written: u64,
    /// Parallel read steps consumed.
    pub read_steps: u64,
    /// Parallel write steps consumed.
    pub write_steps: u64,
    /// Per-disk block read counts (length `D`).
    pub per_disk_reads: Vec<u64>,
    /// Per-disk block write counts (length `D`).
    pub per_disk_writes: Vec<u64>,
    /// Completed named phases, in order.
    pub phases: Vec<PhaseStats>,
    open_phase: Option<(String, Snapshot)>,
    /// Open I/O group accumulators (reads, writes), when grouping.
    group: Option<(Vec<u64>, Vec<u64>)>,
    /// Per-batch trace, when enabled (capped; see [`IoStats::enable_trace`]).
    pub trace: Option<Vec<BatchTrace>>,
    /// Batches not traced because the trace cap was reached.
    #[serde(default)]
    pub trace_dropped: u64,
    #[serde(default)]
    trace_cap: usize,
    /// Overlap-layer counters (prefetch / flush-behind), updated centrally
    /// by the machine's overlap issue/retire paths
    /// ([`crate::machine::Pdm::start_read_blocks`] and friends).
    #[serde(default)]
    pub overlap: OverlapCounters,
    /// Next overlap token id (pairs `OverlapIssue`/`OverlapComplete` probe
    /// events). Not serialized: artifacts carry the counters, not the ids.
    #[serde(skip)]
    next_overlap_id: u64,
    /// Retry-layer counters, refreshed from an attached
    /// [`crate::storage_retry::RetryCounters`] at phase boundaries and
    /// sync points. Simulated backoff steps are kept here, *outside*
    /// `read_steps`/`write_steps`, so pass counts stay comparable with
    /// and without faults; the report adds them as a separate line.
    #[serde(default)]
    pub retry: RetrySnapshot,
    /// Structured event probe, when enabled (see [`IoStats::enable_probe`]).
    #[serde(skip)]
    probe: Option<Box<Probe>>,
    /// Wall-clock telemetry harvested from the storage backend at phase
    /// boundaries and sync points (see [`WallStats`]). Timing-dependent by
    /// nature, so — like [`OverlapCounters`] hit/stall splits — it lives
    /// entirely outside the probe's deterministic event stream and is
    /// ignored by [`crate::probe::replay`].
    #[serde(default)]
    pub wall: WallStats,
}

impl PartialEq for IoStats {
    fn eq(&self, other: &Self) -> bool {
        self.blocks_read == other.blocks_read
            && self.blocks_written == other.blocks_written
            && self.read_steps == other.read_steps
            && self.write_steps == other.write_steps
            && self.per_disk_reads == other.per_disk_reads
            && self.per_disk_writes == other.per_disk_writes
            && self.phases == other.phases
            && self.open_phase == other.open_phase
            && self.group == other.group
            && self.trace == other.trace
            && self.trace_dropped == other.trace_dropped
            && self.trace_cap == other.trace_cap
            && self.overlap == other.overlap
            && self.next_overlap_id == other.next_overlap_id
            && self.retry == other.retry
            && self.probe == other.probe
    }
}

impl Eq for IoStats {}

/// Wall-clock telemetry for one run: per-disk service-latency histograms,
/// queue-depth high-water marks, io_uring batching counters, and wall time
/// spent blocked in overlap waits. Everything here measures *when* I/O
/// happened on the host, not *how much* — the step-clocked counters above
/// are byte-identical whether or not any of this is recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallStats {
    /// Per-disk latency histograms and queue gauges (length `D` once
    /// harvested from a backend that records them; empty otherwise).
    #[serde(default)]
    pub disks: Vec<DiskWall>,
    /// io_uring submit/reap batching counters (all zero unless the
    /// async-file backend ran with a live ring).
    #[serde(default)]
    pub uring: UringWall,
    /// Wall nanoseconds the consuming thread spent blocked waiting for an
    /// overlapped *read* that had not completed when needed.
    #[serde(default)]
    pub read_stall_nanos: u64,
    /// Wall nanoseconds blocked waiting for an overlapped *write*.
    #[serde(default)]
    pub write_stall_nanos: u64,
    /// Stall time attributed to the phase that was open when the wait
    /// happened, in phase-open order.
    #[serde(default)]
    pub phase_stalls: Vec<PhaseStall>,
    /// Total wall nanoseconds of the run, stamped by the driver (CLI or
    /// bench) after the sort returns; zero when nobody stamped it. Enables
    /// stall-share computation in reports.
    #[serde(default)]
    pub run_nanos: u64,
}

impl WallStats {
    /// Whether any disk recorded at least one latency sample.
    pub fn has_samples(&self) -> bool {
        self.disks.iter().any(|d| !d.read.is_empty() || !d.write.is_empty())
    }

    /// Total wall nanoseconds blocked in overlap waits (read + write).
    pub fn total_stall_nanos(&self) -> u64 {
        self.read_stall_nanos + self.write_stall_nanos
    }

    /// Fraction of the stamped run wall time spent blocked in overlap
    /// waits; 0.0 when [`WallStats::run_nanos`] was never stamped.
    pub fn stall_share(&self) -> f64 {
        if self.run_nanos == 0 {
            return 0.0;
        }
        self.total_stall_nanos() as f64 / self.run_nanos as f64
    }
}

/// Wall-clock telemetry for one disk: service-time histograms split by
/// direction plus the deepest submitted-not-completed queue observed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskWall {
    /// Read service-time histogram (nanoseconds per service unit; see the
    /// recording backend for what one sample covers).
    pub read: HistSnapshot,
    /// Write service-time histogram.
    pub write: HistSnapshot,
    /// High-water mark of blocks submitted to this disk's workers but not
    /// yet completed.
    #[serde(default)]
    pub queue_high_water: u64,
    /// Block reads whose FNV-1a checksum was verified against the sidecar
    /// on completion (only nonzero with the `block-checksums` feature on a
    /// checksumming backend; a slot never written is unchecked, not
    /// verified).
    #[serde(default)]
    pub checksums_verified: u64,
}

/// io_uring batching counters, summed across all disk workers. The
/// interesting ratios are ops-per-submit (how well submissions batch) and
/// ops-per-reap (how bursty completions are).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UringWall {
    /// `io_uring_enter` calls that submitted at least one SQE.
    pub submit_calls: u64,
    /// SQEs submitted in total.
    pub submitted_sqes: u64,
    /// Completion-drain rounds that reaped at least one CQE.
    pub reap_rounds: u64,
    /// CQEs reaped in total.
    pub reaped_cqes: u64,
    /// SQEs that rode `READ_FIXED`/`WRITE_FIXED` against a registered
    /// staging buffer (zero unless registered buffers were requested and
    /// the kernel accepted the registration).
    #[serde(default)]
    pub fixed_sqes: u64,
}

/// Overlap stall wall time attributed to one named phase.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStall {
    /// Phase label (matches the [`PhaseStats`] entry of the same name).
    pub name: String,
    /// Nanoseconds blocked waiting on overlapped reads during the phase.
    pub read_nanos: u64,
    /// Nanoseconds blocked waiting on overlapped writes during the phase.
    pub write_nanos: u64,
}

/// Live, thread-shared wall recorder for one disk: the mutable counterpart
/// of [`DiskWall`]. A backend allocates one per disk, hands clones of the
/// `Arc` to that disk's workers, and snapshots it on demand. All counters
/// are relaxed atomics — this sits on the I/O service path.
#[derive(Debug, Default)]
pub struct DiskWallRec {
    /// Read service-time histogram (nanoseconds).
    pub read: crate::hist::LatencyHist,
    /// Write service-time histogram (nanoseconds).
    pub write: crate::hist::LatencyHist,
    queue: AtomicU64,
    queue_high: AtomicU64,
    verified: AtomicU64,
}

impl DiskWallRec {
    /// Fresh recorder with empty histograms and a zero queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note `n` blocks submitted to this disk's workers (dispatch side).
    pub fn queue_add(&self, n: u64) {
        let cur = self.queue.fetch_add(n, Ordering::Relaxed) + n;
        self.queue_high.fetch_max(cur, Ordering::Relaxed);
    }

    /// Note `n` blocks completed by this disk's workers (service side).
    pub fn queue_sub(&self, n: u64) {
        self.queue.fetch_sub(n, Ordering::Relaxed);
    }

    /// Deepest submitted-not-completed queue observed so far.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high.load(Ordering::Relaxed)
    }

    /// Note `n` block reads checksum-verified against the sidecar.
    pub fn add_verified(&self, n: u64) {
        self.verified.fetch_add(n, Ordering::Relaxed);
    }

    /// Block reads checksum-verified so far.
    pub fn checksums_verified(&self) -> u64 {
        self.verified.load(Ordering::Relaxed)
    }

    /// Point-in-time serializable copy.
    pub fn snapshot(&self) -> DiskWall {
        DiskWall {
            read: self.read.snapshot(),
            write: self.write.snapshot(),
            queue_high_water: self.queue_high_water(),
            checksums_verified: self.checksums_verified(),
        }
    }
}

/// Storage-side wall-clock snapshot, harvested by the machine into
/// [`WallStats`] at phase boundaries and sync points (cumulative: each
/// harvest overwrites the previous one, mirroring how retry counters fold).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageWallSnapshot {
    /// Per-disk histograms and gauges, indexed by disk.
    pub disks: Vec<DiskWall>,
    /// io_uring batching counters summed over workers (zero when the
    /// backend has no ring).
    pub uring: UringWall,
}

/// One completed wall-clock span destined for a trace track (Chrome
/// trace-event `B`/`E` pair). Times are nanoseconds since the owning
/// [`SpanSink`]'s epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Track id: disk `d`'s read worker is `2d`, its write worker `2d + 1`;
    /// higher layers use [`SpanSink::PHASE_TRACK`] and up.
    pub tid: u32,
    /// Span label (e.g. `"read 32"` for a 32-block service chunk).
    pub name: String,
    /// Start, nanoseconds since the sink's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Shared collector for wall-clock spans, attached (optionally) to storage
/// workers and the machine via `attach_span_sink`. Thread-safe and bounded:
/// spans past the cap are dropped and counted rather than growing without
/// limit. Purely observational — nothing in the deterministic step
/// accounting reads it.
#[derive(Debug)]
pub struct SpanSink {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    tracks: Mutex<Vec<(u32, String)>>,
    cap: usize,
    dropped: AtomicU64,
}

impl SpanSink {
    /// Track id used for algorithm phase spans (disk workers use `2d` /
    /// `2d + 1`, far below this).
    pub const PHASE_TRACK: u32 = 1_000_000;

    /// New sink retaining at most `cap` spans.
    pub fn new(cap: usize) -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            tracks: Mutex::new(Vec::new()),
            cap: cap.min(1 << 22),
            dropped: AtomicU64::new(0),
        }
    }

    /// Name a track so the trace writer can emit thread-name metadata.
    /// Idempotent per tid (first registration wins).
    pub fn register_track(&self, tid: u32, name: &str) {
        let mut t = self.tracks.lock().unwrap();
        if !t.iter().any(|(id, _)| *id == tid) {
            t.push((tid, name.to_string()));
        }
    }

    /// Record a span that ran from `start` to `end` on track `tid`.
    pub fn record(&self, tid: u32, name: &str, start: Instant, end: Instant) {
        let start_ns = start.saturating_duration_since(self.epoch).as_nanos() as u64;
        let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
        let mut s = self.spans.lock().unwrap();
        if s.len() < self.cap {
            s.push(Span { tid, name: name.to_string(), start_ns, dur_ns });
        } else {
            drop(s);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All registered `(tid, name)` tracks, in registration order.
    pub fn tracks(&self) -> Vec<(u32, String)> {
        self.tracks.lock().unwrap().clone()
    }

    /// Copy out all recorded spans (recording may continue afterwards).
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().unwrap().clone()
    }

    /// Spans dropped because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Counters for the asynchronous-overlap layer: how often the double
/// buffering actually hid latency. `hits` count rotations where the
/// in-flight I/O had already completed when needed; `stalls` count
/// rotations that had to wait. On the eager (memory / file) backends
/// every rotation is a hit; on the threaded backend the split is
/// timing-dependent, which is why these live outside the probe's
/// deterministic event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapCounters {
    /// Read batches issued asynchronously by a prefetch reader.
    pub prefetch_batches: u64,
    /// Prefetch rotations where the data was already resident.
    pub prefetch_hits: u64,
    /// Prefetch rotations that blocked on the in-flight read.
    pub prefetch_stalls: u64,
    /// Write batches issued asynchronously by a flush-behind writer.
    pub flush_batches: u64,
    /// Flush rotations where the previous write had already retired.
    pub flush_hits: u64,
    /// Flush rotations that blocked on the in-flight write.
    pub flush_stalls: u64,
}

/// Point-in-time copy of a retry layer's counters (see
/// [`crate::storage_retry::RetryCounters::snapshot`]). All zeros when no
/// retry layer is attached.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrySnapshot {
    /// Block reads reissued at *issue time* after a transient failure
    /// (the retry wrapper re-calls the inner backend synchronously).
    pub reads_retried: u64,
    /// Block writes reissued at issue time after a transient failure.
    pub writes_retried: u64,
    /// Operations that kept failing until the attempt budget ran out.
    pub exhausted: u64,
    /// Simulated backoff parallel steps accumulated across all retries.
    pub backoff_steps: u64,
    /// Reissued operations charged to the disk that originated them,
    /// indexed by disk (issue-time and completion-time retries alike;
    /// issue-time retries of a failed batch *start* have no single disk
    /// and are not attributed). Empty when nothing was retried (the
    /// vector grows on demand).
    #[serde(default)]
    pub per_disk_retries: Vec<u64>,
    /// Block reads reissued at *completion time*: the async backend's disk
    /// workers classified a grouped-batch failure after the I/O had been
    /// issued asynchronously and re-ran just the failed block, off the
    /// caller's critical path.
    #[serde(default)]
    pub completion_reads_retried: u64,
    /// Block writes reissued at completion time by the async backend's
    /// disk workers.
    #[serde(default)]
    pub completion_writes_retried: u64,
}

impl RetrySnapshot {
    /// Total reissued operations (reads + writes, issue- and
    /// completion-time).
    pub fn total_retries(&self) -> u64 {
        self.reads_retried
            + self.writes_retried
            + self.completion_reads_retried
            + self.completion_writes_retried
    }

    /// Reissued operations classified at completion time (async path).
    pub fn completion_retries(&self) -> u64 {
        self.completion_reads_retried + self.completion_writes_retried
    }

    /// Reissued operations classified at issue time (blocking path).
    pub fn issue_retries(&self) -> u64 {
        self.reads_retried + self.writes_retried
    }
}

/// One recorded I/O batch (trace mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchTrace {
    /// Whether this batch wrote (vs read).
    pub write: bool,
    /// Blocks moved.
    pub blocks: u32,
    /// Parallel steps charged (`max` per-disk multiplicity).
    pub steps: u32,
}

impl BatchTrace {
    /// Stripe efficiency of the batch: `blocks / (steps · D)`.
    pub fn efficiency(&self, num_disks: usize) -> f64 {
        if self.steps == 0 {
            return 1.0;
        }
        self.blocks as f64 / (self.steps as f64 * num_disks as f64)
    }
}

/// Counter deltas attributed to one named algorithm phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase label supplied by the algorithm.
    pub name: String,
    /// Blocks read during the phase.
    pub blocks_read: u64,
    /// Blocks written during the phase.
    pub blocks_written: u64,
    /// Parallel read steps during the phase.
    pub read_steps: u64,
    /// Parallel write steps during the phase.
    pub write_steps: u64,
    /// Tracked internal-memory residency (keys) when the phase opened.
    /// Zero unless the phase was opened through a gauge-sampling caller
    /// such as [`crate::machine::Pdm::begin_phase`].
    #[serde(default)]
    pub mem_begin: usize,
    /// Tracked residency (keys) when the phase closed.
    #[serde(default)]
    pub mem_end: usize,
    /// High-water residency (keys) observed by the phase close — the
    /// machine-lifetime peak so far, sampled at the boundary.
    #[serde(default)]
    pub mem_peak: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Snapshot {
    blocks_read: u64,
    blocks_written: u64,
    read_steps: u64,
    write_steps: u64,
    mem_begin: usize,
}

impl IoStats {
    /// Fresh counters for a machine with `num_disks` disks.
    pub fn new(num_disks: usize) -> Self {
        Self {
            blocks_read: 0,
            blocks_written: 0,
            read_steps: 0,
            write_steps: 0,
            per_disk_reads: vec![0; num_disks],
            per_disk_writes: vec![0; num_disks],
            phases: Vec::new(),
            open_phase: None,
            group: None,
            trace: None,
            trace_dropped: 0,
            trace_cap: 0,
            overlap: OverlapCounters::default(),
            next_overlap_id: 0,
            retry: RetrySnapshot::default(),
            probe: None,
            wall: WallStats::default(),
        }
    }

    /// Add wall time spent blocked waiting for an overlapped batch (read
    /// when `write` is false) to the stall totals, attributing it to the
    /// currently open phase if any. Wall-clock only: no probe event, no
    /// step-counter effect.
    pub(crate) fn record_overlap_stall(&mut self, write: bool, nanos: u64) {
        if write {
            self.wall.write_stall_nanos += nanos;
        } else {
            self.wall.read_stall_nanos += nanos;
        }
        if let Some((name, _)) = &self.open_phase {
            let entry = match self.wall.phase_stalls.last_mut() {
                Some(e) if e.name == *name => e,
                _ => {
                    self.wall.phase_stalls.push(PhaseStall {
                        name: name.clone(),
                        read_nanos: 0,
                        write_nanos: 0,
                    });
                    self.wall.phase_stalls.last_mut().unwrap()
                }
            };
            if write {
                entry.write_nanos += nanos;
            } else {
                entry.read_nanos += nanos;
            }
        }
    }

    /// Record an overlapped batch issue (read when `write` is false),
    /// returning the token id that pairs it with its completion. Bumps the
    /// issued-batch overlap counter and emits an `OverlapIssue` probe
    /// event; the batch's block/step accounting is recorded separately by
    /// `record_read_batch`/`record_write_batch` at the same instant.
    pub(crate) fn overlap_issue(&mut self, write: bool, blocks: u64) -> u64 {
        let id = self.next_overlap_id;
        self.next_overlap_id += 1;
        if write {
            self.overlap.flush_batches += 1;
        } else {
            self.overlap.prefetch_batches += 1;
        }
        if let Some(p) = &mut self.probe {
            p.on_overlap_issue(write, blocks, id);
        }
        id
    }

    /// Record an overlapped batch retiring: a hit when the I/O had already
    /// completed, a stall when the consumer had to wait. Emits the paired
    /// `OverlapComplete` probe event.
    pub(crate) fn overlap_complete(&mut self, write: bool, id: u64, stalled: bool) {
        let c = &mut self.overlap;
        match (write, stalled) {
            (false, false) => c.prefetch_hits += 1,
            (false, true) => c.prefetch_stalls += 1,
            (true, false) => c.flush_hits += 1,
            (true, true) => c.flush_stalls += 1,
        }
        if let Some(p) = &mut self.probe {
            p.on_overlap_complete(write, id, stalled);
        }
    }

    /// Record every subsequent batch into `trace` (up to `cap` entries, to
    /// bound memory; older entries are retained, new ones dropped past the
    /// cap and counted in [`IoStats::trace_dropped`]). Intended for
    /// visualization and debugging, not for hot paths.
    pub fn enable_trace(&mut self, cap: usize) {
        // `Vec::with_capacity` may over-allocate, so the cap is stored
        // explicitly rather than inferred from `capacity()`.
        self.trace_cap = cap.min(1 << 20);
        self.trace = Some(Vec::with_capacity(self.trace_cap));
        self.trace_dropped = 0;
    }

    /// The trace cap, if tracing is enabled (for re-arming after a reset).
    pub fn trace_capacity(&self) -> Option<usize> {
        self.trace.as_ref().map(|_| self.trace_cap)
    }

    fn push_trace(&mut self, write: bool, blocks: u64, steps: u64) {
        if let Some(t) = &mut self.trace {
            if t.len() < self.trace_cap {
                t.push(BatchTrace {
                    write,
                    blocks: blocks as u32,
                    steps: steps as u32,
                });
            } else {
                self.trace_dropped += 1;
            }
        }
    }

    /// Attach a structured event probe retaining at most `cap` events; every
    /// subsequent batch, phase boundary, group boundary, and gauge sample is
    /// recorded as a [`crate::probe::ProbeEvent`]. Default-off: when no probe
    /// is attached the accounting hot path pays one `Option` check.
    pub fn enable_probe(&mut self, cap: usize) {
        self.probe = Some(Box::new(Probe::new(cap)));
    }

    /// The attached probe, if any.
    pub fn probe(&self) -> Option<&Probe> {
        self.probe.as_deref()
    }

    /// The probe's event cap, if a probe is attached.
    pub fn probe_capacity(&self) -> Option<usize> {
        self.probe.as_ref().map(|p| p.cap())
    }

    /// Detach and return the probe (e.g. to serialize its events).
    pub fn take_probe(&mut self) -> Option<Box<Probe>> {
        self.probe.take()
    }

    /// Record a named scalar gauge into the probe (no-op when disabled).
    /// Used by higher layers for algorithm-specific telemetry such as
    /// cleanup carry occupancy or boundary-check margins.
    pub fn probe_gauge(&mut self, name: &str, value: i64) {
        if let Some(p) = &mut self.probe {
            p.on_gauge(name, value);
        }
    }

    /// Render the trace as an ASCII efficiency sparkline (one char per
    /// batch: `█` full stripes … `.` ≤ 12.5 %), chunked to `width` columns.
    pub fn trace_sparkline(&self, num_disks: usize, width: usize) -> String {
        let Some(trace) = &self.trace else {
            return String::new();
        };
        const LEVELS: [char; 8] = ['.', '▁', '▂', '▃', '▄', '▅', '▆', '█'];
        let mut out = String::new();
        for (i, b) in trace.iter().enumerate() {
            if i > 0 && i % width.max(1) == 0 {
                out.push('\n');
            }
            let eff = b.efficiency(num_disks);
            let lvl = ((eff * 8.0).ceil() as usize).clamp(1, 8) - 1;
            out.push(LEVELS[lvl]);
        }
        out
    }

    /// Open an *I/O group*: until [`IoStats::end_group`], batches accumulate
    /// into one scheduling window and the parallel-step cost is charged once
    /// at close as `max(per-disk blocks)` — modeling a controller with a
    /// deep command queue that schedules all queued blocks disk-parallel
    /// ("as few parallel write steps as possible", paper §7). Block and
    /// per-disk counters still update per batch. Groups do not nest.
    pub fn begin_group(&mut self) {
        assert!(self.group.is_none(), "I/O groups do not nest");
        let d = self.per_disk_reads.len();
        self.group = Some((vec![0; d], vec![0; d]));
        if let Some(p) = &mut self.probe {
            p.on_group_begin();
        }
    }

    /// Close the open I/O group, charging its deferred step cost.
    pub fn end_group(&mut self) {
        if let Some((reads, writes)) = self.group.take() {
            let r = reads.iter().copied().max().unwrap_or(0);
            let w = writes.iter().copied().max().unwrap_or(0);
            self.read_steps += r;
            self.write_steps += w;
            if let Some(p) = &mut self.probe {
                p.on_group_settle(r, w, false);
            }
        }
    }

    /// Charge the open group's accumulated cost *now*, without closing the
    /// group: the accumulators reset and keep collecting. Called from
    /// [`IoStats::end_phase`] so that steps deferred inside a group are
    /// attributed to the phase that issued them rather than silently leaking
    /// into whichever phase happens to call `end_group` later.
    fn settle_open_group(&mut self) {
        if let Some((reads, writes)) = &mut self.group {
            let r = reads.iter().copied().max().unwrap_or(0);
            let w = writes.iter().copied().max().unwrap_or(0);
            reads.iter_mut().for_each(|c| *c = 0);
            writes.iter_mut().for_each(|c| *c = 0);
            self.read_steps += r;
            self.write_steps += w;
            if let Some(p) = &mut self.probe {
                p.on_group_settle(r, w, true);
            }
        }
    }

    fn snapshot(&self, mem_begin: usize) -> Snapshot {
        Snapshot {
            blocks_read: self.blocks_read,
            blocks_written: self.blocks_written,
            read_steps: self.read_steps,
            write_steps: self.write_steps,
            mem_begin,
        }
    }

    /// Record a batch of block reads whose per-disk multiplicities are given
    /// in `disk_counts`; the batch costs `max(disk_counts)` parallel steps
    /// (deferred to [`IoStats::end_group`] while a group is open).
    pub fn record_read_batch(&mut self, disk_counts: &[u64]) {
        let mut total = 0;
        let mut max = 0;
        for (d, &c) in disk_counts.iter().enumerate() {
            self.per_disk_reads[d] += c;
            total += c;
            max = max.max(c);
        }
        self.blocks_read += total;
        self.push_trace(false, total, max);
        let grouped = if let Some((reads, _)) = &mut self.group {
            for (g, &c) in reads.iter_mut().zip(disk_counts) {
                *g += c;
            }
            true
        } else {
            self.read_steps += max;
            false
        };
        if let Some(p) = &mut self.probe {
            p.on_batch(false, total, if grouped { 0 } else { max }, disk_counts);
        }
    }

    /// Record a batch of block writes (see [`IoStats::record_read_batch`]).
    pub fn record_write_batch(&mut self, disk_counts: &[u64]) {
        let mut total = 0;
        let mut max = 0;
        for (d, &c) in disk_counts.iter().enumerate() {
            self.per_disk_writes[d] += c;
            total += c;
            max = max.max(c);
        }
        self.blocks_written += total;
        self.push_trace(true, total, max);
        let grouped = if let Some((_, writes)) = &mut self.group {
            for (g, &c) in writes.iter_mut().zip(disk_counts) {
                *g += c;
            }
            true
        } else {
            self.write_steps += max;
            false
        };
        if let Some(p) = &mut self.probe {
            p.on_batch(true, total, if grouped { 0 } else { max }, disk_counts);
        }
    }

    /// Open a named phase; counter deltas until [`IoStats::end_phase`] are
    /// attributed to it. Phases may not nest; opening a new phase closes the
    /// previous one. Memory gauges record as zero — use
    /// [`crate::machine::Pdm::begin_phase`] (or
    /// [`IoStats::begin_phase_gauged`]) to sample real residency.
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        self.begin_phase_gauged(name, 0, 0);
    }

    /// [`IoStats::begin_phase`] with memory gauges sampled by the caller:
    /// `mem_current`/`mem_peak` are tracked residency and high-water (keys)
    /// at the boundary, typically from [`crate::mem::MemTracker`].
    pub fn begin_phase_gauged(&mut self, name: impl Into<String>, mem_current: usize, mem_peak: usize) {
        self.end_phase_gauged(mem_current, mem_peak);
        let name = name.into();
        if let Some(p) = &mut self.probe {
            p.on_phase_begin(&name, mem_current as u64, mem_peak as u64);
        }
        self.open_phase = Some((name, self.snapshot(mem_current)));
    }

    /// Close the open phase, if any, pushing its deltas onto `phases`.
    ///
    /// If an I/O group is still open, its deferred steps are charged here
    /// (and the group keeps collecting), so the phase that issued grouped
    /// batches is the phase billed for them.
    pub fn end_phase(&mut self) {
        self.end_phase_gauged(0, 0);
    }

    /// [`IoStats::end_phase`] with caller-sampled memory gauges.
    pub fn end_phase_gauged(&mut self, mem_current: usize, mem_peak: usize) {
        if self.open_phase.is_some() {
            self.settle_open_group();
        }
        if let Some((name, snap)) = self.open_phase.take() {
            if let Some(p) = &mut self.probe {
                p.on_phase_end(mem_current as u64, mem_peak as u64);
            }
            self.phases.push(PhaseStats {
                name,
                blocks_read: self.blocks_read - snap.blocks_read,
                blocks_written: self.blocks_written - snap.blocks_written,
                read_steps: self.read_steps - snap.read_steps,
                write_steps: self.write_steps - snap.write_steps,
                mem_begin: snap.mem_begin,
                mem_end: mem_current,
                mem_peak,
            });
        }
    }

    /// Read passes over `n` keys: `read_steps / (n / (D·B))`.
    ///
    /// This is the paper's pass metric; an algorithm achieving full disk
    /// parallelism and reading the data `p` times reports exactly `p`.
    pub fn read_passes(&self, n: usize, num_disks: usize, block_size: usize) -> f64 {
        let steps_per_pass = (n as f64) / (num_disks as f64 * block_size as f64);
        self.read_steps as f64 / steps_per_pass
    }

    /// Write passes over `n` keys (see [`IoStats::read_passes`]).
    pub fn write_passes(&self, n: usize, num_disks: usize, block_size: usize) -> f64 {
        let steps_per_pass = (n as f64) / (num_disks as f64 * block_size as f64);
        self.write_steps as f64 / steps_per_pass
    }

    /// Pass count by the *block volume* metric: `blocks_read·B / n`. Equal to
    /// [`IoStats::read_passes`] when every step keeps all `D` disks busy;
    /// smaller when parallelism is lost.
    pub fn read_volume_passes(&self, n: usize, block_size: usize) -> f64 {
        self.blocks_read as f64 * block_size as f64 / n as f64
    }

    /// Fraction of read-step disk capacity actually used:
    /// `blocks_read / (read_steps · D)`. 1.0 means full striping parallelism.
    pub fn read_parallel_efficiency(&self, num_disks: usize) -> f64 {
        if self.read_steps == 0 {
            return 1.0;
        }
        self.blocks_read as f64 / (self.read_steps as f64 * num_disks as f64)
    }

    /// Fraction of write-step disk capacity actually used.
    pub fn write_parallel_efficiency(&self, num_disks: usize) -> f64 {
        if self.write_steps == 0 {
            return 1.0;
        }
        self.blocks_written as f64 / (self.write_steps as f64 * num_disks as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_step_cost_is_max_per_disk() {
        let mut s = IoStats::new(4);
        // 4 blocks spread one per disk: one step.
        s.record_read_batch(&[1, 1, 1, 1]);
        assert_eq!(s.read_steps, 1);
        assert_eq!(s.blocks_read, 4);
        // 4 blocks all on disk 0: four steps.
        s.record_read_batch(&[4, 0, 0, 0]);
        assert_eq!(s.read_steps, 5);
        assert_eq!(s.blocks_read, 8);
        assert_eq!(s.per_disk_reads, vec![5, 1, 1, 1]);
    }

    #[test]
    fn passes_metric_matches_definition() {
        let mut s = IoStats::new(2);
        // N = 64 keys, D = 2, B = 8 → one pass = 4 steps.
        for _ in 0..4 {
            s.record_read_batch(&[1, 1]);
        }
        assert!((s.read_passes(64, 2, 8) - 1.0).abs() < 1e-12);
        assert!((s.read_volume_passes(64, 8) - 1.0).abs() < 1e-12);
        assert!((s.read_parallel_efficiency(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lost_parallelism_inflates_step_passes_only() {
        let mut s = IoStats::new(2);
        // 8 blocks, all on disk 0: 8 steps instead of 4.
        s.record_read_batch(&[8, 0]);
        assert!((s.read_passes(64, 2, 8) - 2.0).abs() < 1e-12);
        assert!((s.read_volume_passes(64, 8) - 1.0).abs() < 1e-12);
        assert!((s.read_parallel_efficiency(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phases_record_deltas() {
        let mut s = IoStats::new(2);
        s.begin_phase("a");
        s.record_read_batch(&[1, 1]);
        s.begin_phase("b"); // implicitly closes "a"
        s.record_write_batch(&[2, 2]);
        s.end_phase();
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[0].name, "a");
        assert_eq!(s.phases[0].blocks_read, 2);
        assert_eq!(s.phases[0].blocks_written, 0);
        assert_eq!(s.phases[1].name, "b");
        assert_eq!(s.phases[1].blocks_written, 4);
        assert_eq!(s.phases[1].write_steps, 2);
    }

    #[test]
    fn trace_records_batches_and_caps() {
        let mut s = IoStats::new(4);
        s.enable_trace(3);
        s.record_read_batch(&[1, 1, 1, 1]);
        s.record_write_batch(&[2, 0, 0, 0]);
        s.record_read_batch(&[1, 0, 0, 0]);
        s.record_read_batch(&[1, 0, 0, 0]); // beyond cap: dropped
        let t = s.trace.as_ref().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], BatchTrace { write: false, blocks: 4, steps: 1 });
        assert!((t[0].efficiency(4) - 1.0).abs() < 1e-12);
        assert_eq!(t[1], BatchTrace { write: true, blocks: 2, steps: 2 });
        assert!((t[1].efficiency(4) - 0.25).abs() < 1e-12);
        let spark = s.trace_sparkline(4, 2);
        assert_eq!(spark.chars().filter(|&c| c != '\n').count(), 3);
        assert!(spark.contains('█'));
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut s = IoStats::new(2);
        s.record_read_batch(&[1, 1]);
        assert!(s.trace.is_none());
        assert_eq!(s.trace_sparkline(2, 10), "");
    }

    #[test]
    fn io_group_defers_and_merges_step_cost() {
        let mut s = IoStats::new(4);
        s.begin_group();
        // three separate single-block batches on distinct disks: without a
        // group they'd cost 3 steps; grouped they cost 1.
        s.record_write_batch(&[1, 0, 0, 0]);
        s.record_write_batch(&[0, 1, 0, 0]);
        s.record_write_batch(&[0, 0, 1, 0]);
        assert_eq!(s.write_steps, 0, "steps deferred while group open");
        s.end_group();
        assert_eq!(s.write_steps, 1);
        assert_eq!(s.blocks_written, 3);
        // imbalance inside a group is still charged
        s.begin_group();
        s.record_read_batch(&[3, 1, 0, 0]);
        s.record_read_batch(&[2, 0, 0, 0]);
        s.end_group();
        assert_eq!(s.read_steps, 5);
    }

    #[test]
    fn empty_group_is_free() {
        let mut s = IoStats::new(2);
        s.begin_group();
        s.end_group();
        assert_eq!(s.read_steps + s.write_steps, 0);
        s.end_group(); // double close is a no-op
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn groups_do_not_nest() {
        let mut s = IoStats::new(2);
        s.begin_group();
        s.begin_group();
    }

    #[test]
    fn end_phase_without_open_is_noop() {
        let mut s = IoStats::new(1);
        s.end_phase();
        assert!(s.phases.is_empty());
    }

    #[test]
    fn trace_cap_is_exact_and_drops_are_counted() {
        // regression: push_trace used to gate on Vec::capacity(), which
        // with_capacity may over-allocate — the cap must be the one asked for
        let mut s = IoStats::new(2);
        s.enable_trace(5);
        for _ in 0..9 {
            s.record_read_batch(&[1, 1]);
        }
        assert_eq!(s.trace.as_ref().unwrap().len(), 5);
        assert_eq!(s.trace_dropped, 4);
    }

    #[test]
    fn phase_closed_over_open_group_keeps_its_deferred_steps() {
        // regression: steps deferred in an open I/O group used to be charged
        // only at end_group, so a phase boundary inside the group lost them
        let mut s = IoStats::new(4);
        s.begin_phase("early");
        s.begin_group();
        s.record_write_batch(&[1, 0, 0, 0]);
        s.record_write_batch(&[0, 1, 0, 0]);
        s.begin_phase("late"); // closes "early" while the group is open
        s.record_write_batch(&[0, 0, 1, 0]);
        s.end_group();
        s.end_phase();
        assert_eq!(s.phases[0].name, "early");
        assert_eq!(s.phases[0].write_steps, 1, "early phase keeps its grouped step");
        assert_eq!(s.phases[1].name, "late");
        assert_eq!(s.phases[1].write_steps, 1);
        assert_eq!(s.write_steps, 2);
        assert_eq!(s.blocks_written, 3);
    }

    #[test]
    fn phase_group_split_does_not_change_ungrouped_totals() {
        // a group wholly inside one phase is charged identically with and
        // without the settlement path
        let mut s = IoStats::new(4);
        s.begin_phase("p");
        s.begin_group();
        s.record_write_batch(&[1, 0, 0, 0]);
        s.record_write_batch(&[0, 1, 0, 0]);
        s.end_group();
        s.end_phase();
        assert_eq!(s.write_steps, 1);
        assert_eq!(s.phases[0].write_steps, 1);
    }

    #[test]
    fn probe_stream_replays_to_aggregate_counters() {
        let mut s = IoStats::new(4);
        s.enable_probe(1 << 12);
        s.begin_phase("a");
        s.record_read_batch(&[1, 1, 1, 1]);
        s.record_write_batch(&[3, 0, 1, 0]);
        s.begin_phase("b");
        s.begin_group();
        s.record_write_batch(&[1, 0, 0, 0]);
        s.record_write_batch(&[0, 1, 0, 0]);
        s.end_group();
        s.record_read_batch(&[2, 2, 2, 2]);
        s.end_phase();
        let p = s.probe().unwrap();
        let r = crate::probe::replay(p.events(), 4);
        assert_eq!(r.blocks_read, s.blocks_read);
        assert_eq!(r.blocks_written, s.blocks_written);
        assert_eq!(r.read_steps, s.read_steps);
        assert_eq!(r.write_steps, s.write_steps);
        assert_eq!(r.per_disk_reads, s.per_disk_reads);
        assert_eq!(r.per_disk_writes, s.per_disk_writes);
        assert_eq!(r.phases.len(), s.phases.len());
        for (rp, sp) in r.phases.iter().zip(&s.phases) {
            assert_eq!(rp.name, sp.name);
            assert_eq!(rp.blocks_read, sp.blocks_read);
            assert_eq!(rp.blocks_written, sp.blocks_written);
            assert_eq!(rp.read_steps, sp.read_steps);
            assert_eq!(rp.write_steps, sp.write_steps);
        }
    }

    #[test]
    fn probe_replays_phase_split_groups_exactly() {
        // the settlement path must also round-trip through replay
        let mut s = IoStats::new(2);
        s.enable_probe(1 << 10);
        s.begin_phase("early");
        s.begin_group();
        s.record_write_batch(&[1, 0]);
        s.begin_phase("late");
        s.record_write_batch(&[0, 1]);
        s.end_group();
        s.end_phase();
        let r = crate::probe::replay(s.probe().unwrap().events(), 2);
        assert_eq!(r.write_steps, s.write_steps);
        assert_eq!(r.phases[0].write_steps, s.phases[0].write_steps);
        assert_eq!(r.phases[1].write_steps, s.phases[1].write_steps);
    }

    #[test]
    fn phase_memory_gauges_record_boundary_samples() {
        let mut s = IoStats::new(2);
        s.begin_phase_gauged("a", 128, 256);
        s.record_read_batch(&[1, 1]);
        s.end_phase_gauged(64, 300);
        assert_eq!(s.phases[0].mem_begin, 128);
        assert_eq!(s.phases[0].mem_end, 64);
        assert_eq!(s.phases[0].mem_peak, 300);
    }

    #[test]
    fn probe_gauge_is_noop_when_disabled() {
        let mut s = IoStats::new(2);
        s.probe_gauge("cleaner.carry", 7);
        assert!(s.probe().is_none());
        s.enable_probe(8);
        s.probe_gauge("cleaner.carry", 7);
        assert_eq!(s.probe().unwrap().events().len(), 1);
    }

    #[test]
    fn efficiency_with_no_io_is_one() {
        let s = IoStats::new(3);
        assert_eq!(s.read_parallel_efficiency(3), 1.0);
        assert_eq!(s.write_parallel_efficiency(3), 1.0);
    }

    #[test]
    fn overlap_stalls_attribute_to_open_phase() {
        let mut s = IoStats::new(2);
        s.record_overlap_stall(false, 100); // no phase open: totals only
        s.begin_phase("a");
        s.record_overlap_stall(false, 10);
        s.record_overlap_stall(true, 20);
        s.begin_phase("b");
        s.record_overlap_stall(true, 5);
        s.end_phase();
        assert_eq!(s.wall.read_stall_nanos, 110);
        assert_eq!(s.wall.write_stall_nanos, 25);
        assert_eq!(s.wall.total_stall_nanos(), 135);
        assert_eq!(s.wall.phase_stalls.len(), 2);
        assert_eq!(s.wall.phase_stalls[0].name, "a");
        assert_eq!(s.wall.phase_stalls[0].read_nanos, 10);
        assert_eq!(s.wall.phase_stalls[0].write_nanos, 20);
        assert_eq!(s.wall.phase_stalls[1].name, "b");
        assert_eq!(s.wall.phase_stalls[1].write_nanos, 5);
    }

    #[test]
    fn stall_share_requires_a_stamped_run_time() {
        let mut s = IoStats::new(1);
        s.record_overlap_stall(false, 500);
        assert_eq!(s.wall.stall_share(), 0.0, "unstamped run divides safely");
        s.wall.run_nanos = 1000;
        assert!((s.wall.stall_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_without_wall_field_parse_json_to_default() {
        // artifacts serialized before wall-clock telemetry existed must
        // keep parsing: every WallStats field defaults, so the empty
        // object (what a missing `wall` key decays to) parses cleanly
        let w: WallStats = serde_json::from_str("{}").unwrap();
        assert_eq!(w, WallStats::default());
        // and today's IoStats carries the field for future readers
        let s = IoStats::new(2);
        assert!(serde_json::to_string(&s).unwrap().contains("\"wall\""));
    }

    #[test]
    fn span_sink_records_caps_and_names_tracks() {
        let sink = SpanSink::new(2);
        sink.register_track(0, "disk0.read");
        sink.register_track(0, "ignored-duplicate");
        sink.register_track(SpanSink::PHASE_TRACK, "phases");
        let t0 = Instant::now();
        sink.record(0, "read 4", t0, t0 + std::time::Duration::from_micros(5));
        sink.record(0, "read 2", t0, t0);
        sink.record(0, "read 1", t0, t0); // past cap: dropped
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "read 4");
        assert!(spans[0].dur_ns >= 5_000);
        assert_eq!(sink.dropped(), 1);
        assert_eq!(
            sink.tracks(),
            vec![(0, "disk0.read".to_string()), (SpanSink::PHASE_TRACK, "phases".to_string())]
        );
    }
}
