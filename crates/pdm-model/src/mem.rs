//! Tracked internal memory.
//!
//! Out-of-core algorithms are only honest if the "internal memory of `M`
//! keys" is actually enforced. [`MemTracker`] is a capacity-limited arena:
//! every working buffer an algorithm holds is registered against it, the
//! peak residency is recorded, and exceeding the configured limit is an
//! error — so an algorithm claiming to sort `M√M` keys with memory `M`
//! demonstrably never holds more than (a constant times) `M` keys.

use crate::error::{PdmError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared, thread-safe accountant for internal-memory residency (in keys).
#[derive(Debug)]
pub struct MemTracker {
    limit: usize,
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemTracker {
    /// A tracker enforcing `limit` resident keys.
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(Self {
            limit,
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        })
    }

    /// The enforced limit in keys.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Keys currently registered as resident.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of resident keys.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark to the current residency (not to zero, so
    /// live allocations keep counting).
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Register `n` resident keys; fails if the limit would be exceeded.
    pub fn acquire(self: &Arc<Self>, n: usize) -> Result<MemGuard> {
        let prev = self.current.fetch_add(n, Ordering::Relaxed);
        let now = prev + n;
        if now > self.limit {
            self.current.fetch_sub(n, Ordering::Relaxed);
            return Err(PdmError::MemoryExceeded {
                requested: now,
                limit: self.limit,
            });
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        Ok(MemGuard {
            tracker: Arc::clone(self),
            n,
        })
    }
}

/// RAII registration of `n` resident keys; releases on drop.
#[derive(Debug)]
pub struct MemGuard {
    tracker: Arc<MemTracker>,
    n: usize,
}

impl MemGuard {
    /// Number of keys this guard accounts for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the guard covers zero keys.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Shrink the registration to `new_n ≤ n` keys (e.g. after flushing part
    /// of a buffer to disk).
    pub fn shrink_to(&mut self, new_n: usize) {
        assert!(new_n <= self.n, "MemGuard::shrink_to may only shrink");
        self.tracker
            .current
            .fetch_sub(self.n - new_n, Ordering::Relaxed);
        self.n = new_n;
    }
}

impl Drop for MemGuard {
    fn drop(&mut self) {
        self.tracker.current.fetch_sub(self.n, Ordering::Relaxed);
    }
}

/// A `Vec<K>` working buffer bundled with its memory registration.
///
/// This is the standard shape for algorithm working sets: the buffer's
/// capacity is what counts against the machine's internal memory.
#[derive(Debug)]
pub struct TrackedBuf<K> {
    buf: Vec<K>,
    _guard: MemGuard,
}

impl<K> TrackedBuf<K> {
    /// Allocate a buffer of capacity `cap` keys registered against `tracker`.
    pub fn with_capacity(tracker: &Arc<MemTracker>, cap: usize) -> Result<Self> {
        let guard = tracker.acquire(cap)?;
        Ok(Self {
            buf: Vec::with_capacity(cap),
            _guard: guard,
        })
    }

    /// The underlying vector.
    pub fn as_vec(&self) -> &Vec<K> {
        &self.buf
    }

    /// The underlying vector, mutably. Growing it beyond the registered
    /// capacity is a logic error in the calling algorithm; debug builds
    /// assert against it on [`TrackedBuf::check`].
    pub fn as_vec_mut(&mut self) -> &mut Vec<K> {
        &mut self.buf
    }

    /// Assert the buffer has not outgrown its registration.
    pub fn check(&self) {
        debug_assert!(
            self.buf.len() <= self._guard.len(),
            "TrackedBuf outgrew its memory registration: {} > {}",
            self.buf.len(),
            self._guard.len()
        );
    }
}

impl<K> std::ops::Deref for TrackedBuf<K> {
    type Target = Vec<K>;
    fn deref(&self) -> &Vec<K> {
        &self.buf
    }
}

impl<K> std::ops::DerefMut for TrackedBuf<K> {
    fn deref_mut(&mut self) -> &mut Vec<K> {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_and_release_track_residency() {
        let t = MemTracker::new(100);
        let g1 = t.acquire(40).unwrap();
        assert_eq!(t.current(), 40);
        let g2 = t.acquire(60).unwrap();
        assert_eq!(t.current(), 100);
        assert_eq!(t.peak(), 100);
        drop(g1);
        assert_eq!(t.current(), 60);
        assert_eq!(t.peak(), 100);
        drop(g2);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn over_limit_fails_and_rolls_back() {
        let t = MemTracker::new(10);
        let _g = t.acquire(8).unwrap();
        let e = t.acquire(3).unwrap_err();
        assert!(matches!(e, PdmError::MemoryExceeded { requested: 11, limit: 10 }));
        // the failed acquire must not leak residency
        assert_eq!(t.current(), 8);
        let _g2 = t.acquire(2).unwrap();
    }

    #[test]
    fn shrink_releases_partially() {
        let t = MemTracker::new(10);
        let mut g = t.acquire(10).unwrap();
        g.shrink_to(4);
        assert_eq!(t.current(), 4);
        let _g2 = t.acquire(6).unwrap();
        assert_eq!(t.current(), 10);
    }

    #[test]
    #[should_panic(expected = "only shrink")]
    fn shrink_cannot_grow() {
        let t = MemTracker::new(10);
        let mut g = t.acquire(2).unwrap();
        g.shrink_to(5);
    }

    #[test]
    fn reset_peak_keeps_live_allocations() {
        let t = MemTracker::new(100);
        {
            let _g = t.acquire(80).unwrap();
        }
        assert_eq!(t.peak(), 80);
        let _g = t.acquire(30).unwrap();
        t.reset_peak();
        assert_eq!(t.peak(), 30);
    }

    #[test]
    fn tracked_buf_registers_capacity() {
        let t = MemTracker::new(16);
        let mut b: TrackedBuf<u64> = TrackedBuf::with_capacity(&t, 16).unwrap();
        assert_eq!(t.current(), 16);
        b.push(1);
        b.check();
        assert!(TrackedBuf::<u64>::with_capacity(&t, 1).is_err());
        drop(b);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn concurrent_acquires_respect_limit() {
        use std::sync::atomic::AtomicUsize;
        let t = MemTracker::new(1000);
        let successes = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if let Ok(g) = t.acquire(10) {
                            successes.fetch_add(1, Ordering::Relaxed);
                            std::hint::black_box(&g);
                        }
                    }
                });
            }
        });
        assert_eq!(t.current(), 0);
        assert!(t.peak() <= 1000);
        assert!(successes.load(Ordering::Relaxed) > 0);
    }
}
