//! Disk-block addressing and striped regions.
//!
//! A [`Region`] is a logical array of blocks laid out round-robin ("striped")
//! across the `D` disks: logical block `i` lives on disk
//! `(start_disk + i) mod D`. Reading or writing `D` consecutive logical
//! blocks therefore touches every disk exactly once — one parallel I/O step —
//! which is how the paper's algorithms achieve full parallelism.

use crate::error::{PdmError, Result};
use serde::{Deserialize, Serialize};

/// Physical address of one block: disk index and slot on that disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Disk index in `0..D`.
    pub disk: usize,
    /// Slot index on that disk.
    pub slot: usize,
}

/// A logical sequence of blocks striped round-robin over the disks.
///
/// Regions are allocated in *levels*: the machine keeps every disk's
/// allocation frontier in lockstep, so a region of `n` blocks occupies slots
/// `base .. base + ceil(n/D)` on each disk, with logical block `i` at disk
/// `(start_disk + i) mod D`, slot `base + (offset + i) / D` where `offset`
/// accounts for sub-regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    base_slot: usize,
    start_disk: usize,
    /// Offset (in blocks) of this region's block 0 within its allocation.
    block_off: usize,
    num_blocks: usize,
    num_disks: usize,
    block_size: usize,
}

impl Region {
    /// Construct a region rooted at allocation level `base_slot`. Intended
    /// for the machine's allocator; algorithms obtain regions from
    /// [`crate::machine::Pdm::alloc_region`].
    pub fn new(
        base_slot: usize,
        start_disk: usize,
        num_blocks: usize,
        num_disks: usize,
        block_size: usize,
    ) -> Self {
        Self {
            base_slot,
            start_disk,
            block_off: 0,
            num_blocks,
            num_disks,
            block_size,
        }
    }

    /// Length in blocks.
    pub fn len_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Length in keys.
    pub fn len_keys(&self) -> usize {
        self.num_blocks * self.block_size
    }

    /// Block size in keys.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of disks the region is striped over.
    pub fn num_disks(&self) -> usize {
        self.num_disks
    }

    /// Highest slot index used on any disk (for capacity pre-allocation).
    pub fn max_slot(&self) -> usize {
        if self.num_blocks == 0 {
            return self.base_slot;
        }
        let last = self.block_off + self.num_blocks - 1;
        self.base_slot + last / self.num_disks
    }

    /// Physical address of logical block `i`.
    pub fn addr(&self, i: usize) -> Result<BlockAddr> {
        if i >= self.num_blocks {
            return Err(PdmError::RegionOutOfBounds {
                index: i,
                len: self.num_blocks,
            });
        }
        let abs = self.block_off + i;
        Ok(BlockAddr {
            disk: (self.start_disk + abs) % self.num_disks,
            slot: self.base_slot + abs / self.num_disks,
        })
    }

    /// Contiguous sub-region of `len` blocks starting at logical block
    /// `start` — shares the parent's physical layout.
    pub fn sub(&self, start: usize, len: usize) -> Result<Region> {
        if start + len > self.num_blocks {
            return Err(PdmError::RegionOutOfBounds {
                index: start + len,
                len: self.num_blocks,
            });
        }
        Ok(Region {
            base_slot: self.base_slot,
            start_disk: self.start_disk,
            block_off: self.block_off + start,
            num_blocks: len,
            num_disks: self.num_disks,
            block_size: self.block_size,
        })
    }

    /// Split the region into `parts` equal sub-regions (errors if the block
    /// count is not divisible).
    pub fn split(&self, parts: usize) -> Result<Vec<Region>> {
        if parts == 0 || self.num_blocks % parts != 0 {
            return Err(PdmError::BadConfig(format!(
                "cannot split {} blocks into {} equal parts",
                self.num_blocks, parts
            )));
        }
        let each = self.num_blocks / parts;
        (0..parts).map(|p| self.sub(p * each, each)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_is_round_robin() {
        let r = Region::new(10, 1, 8, 4, 16);
        // block 0 → disk 1, slot 10; block 3 → disk 0 (wrap), slot 10
        assert_eq!(r.addr(0).unwrap(), BlockAddr { disk: 1, slot: 10 });
        assert_eq!(r.addr(1).unwrap(), BlockAddr { disk: 2, slot: 10 });
        assert_eq!(r.addr(3).unwrap(), BlockAddr { disk: 0, slot: 10 });
        assert_eq!(r.addr(4).unwrap(), BlockAddr { disk: 1, slot: 11 });
        assert_eq!(r.addr(7).unwrap(), BlockAddr { disk: 0, slot: 11 });
        assert!(r.addr(8).is_err());
    }

    #[test]
    fn consecutive_stripe_hits_all_disks_once() {
        let d = 4;
        let r = Region::new(0, 0, 16, d, 8);
        for stripe in 0..4 {
            let mut disks: Vec<usize> = (0..d)
                .map(|i| r.addr(stripe * d + i).unwrap().disk)
                .collect();
            disks.sort_unstable();
            assert_eq!(disks, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn sub_region_preserves_physical_addresses() {
        let r = Region::new(5, 2, 12, 3, 4);
        let s = r.sub(4, 6).unwrap();
        for i in 0..6 {
            assert_eq!(s.addr(i).unwrap(), r.addr(4 + i).unwrap());
        }
        assert!(r.sub(8, 5).is_err());
    }

    #[test]
    fn nested_sub_regions_compose() {
        let r = Region::new(0, 0, 24, 4, 2);
        let s = r.sub(6, 12).unwrap();
        let t = s.sub(3, 4).unwrap();
        for i in 0..4 {
            assert_eq!(t.addr(i).unwrap(), r.addr(9 + i).unwrap());
        }
    }

    #[test]
    fn split_into_equal_parts() {
        let r = Region::new(0, 0, 12, 4, 2);
        let parts = r.split(3).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1].addr(0).unwrap(), r.addr(4).unwrap());
        assert!(r.split(5).is_err());
        assert!(r.split(0).is_err());
    }

    #[test]
    fn max_slot_covers_region() {
        let r = Region::new(3, 0, 9, 4, 2);
        // blocks 0..9, last abs block 8 → slot 3 + 8/4 = 5
        assert_eq!(r.max_slot(), 5);
        let empty = Region::new(3, 0, 0, 4, 2);
        assert_eq!(empty.max_slot(), 3);
    }

    #[test]
    fn len_keys_is_blocks_times_b() {
        let r = Region::new(0, 0, 7, 2, 16);
        assert_eq!(r.len_keys(), 112);
        assert_eq!(r.len_blocks(), 7);
    }
}
