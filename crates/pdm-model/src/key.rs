//! The key (record) trait stored on simulated disks.
//!
//! PDM algorithms are comparison-based (except the integer sorts, which
//! additionally need a bounded integer *rank*), so the trait is mostly
//! `Ord + Copy`. File-backed storage needs a fixed-width byte encoding.

use std::fmt::Debug;

/// A fixed-width, totally ordered record usable on a simulated PDM disk.
///
/// `MIN`/`MAX` act as padding sentinels for non-full blocks: algorithms pad
/// with `MAX` so padding sorts to the end (or `MIN` for the reverse).
pub trait PdmKey: Copy + Ord + Send + Sync + Debug + 'static {
    /// Encoded width in bytes (used by the file-backed storage).
    const WIDTH: usize;
    /// Smallest value of the type.
    const MIN: Self;
    /// Largest value of the type (used to pad non-full blocks).
    const MAX: Self;

    /// Serialize into exactly `WIDTH` bytes (little-endian convention).
    fn write_bytes(&self, out: &mut [u8]);
    /// Deserialize from exactly `WIDTH` bytes.
    fn read_bytes(bytes: &[u8]) -> Self;

    /// Signed distance gauge `self − other` for telemetry: positive when
    /// `self > other`, saturating at `±i64::MAX`. Purely observational —
    /// algorithms must never branch on it. The default (always 0) is
    /// correct for key types with no meaningful numeric distance.
    fn gauge_distance(&self, _other: &Self) -> i64 {
        0
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl PdmKey for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;

            fn write_bytes(&self, out: &mut [u8]) {
                out[..Self::WIDTH].copy_from_slice(&self.to_le_bytes());
            }

            fn read_bytes(bytes: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(&bytes[..Self::WIDTH]);
                <$t>::from_le_bytes(buf)
            }

            fn gauge_distance(&self, other: &Self) -> i64 {
                // abs_diff works uniformly for signed and unsigned widths
                // (including 128-bit, where `as` casts would wrap)
                let mag = i64::try_from(self.abs_diff(*other)).unwrap_or(i64::MAX);
                if *self >= *other { mag } else { -mag }
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

/// A key–payload record: ordered by `key` alone, carrying an opaque 64-bit
/// payload (e.g. a pointer into a record store). This is the usual shape for
/// out-of-core sorting benchmarks where full records are sorted indirectly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tagged {
    /// Sort key.
    pub key: u64,
    /// Carried payload, ignored by comparisons.
    pub payload: u64,
}

impl Tagged {
    /// Construct a record.
    pub fn new(key: u64, payload: u64) -> Self {
        Self { key, payload }
    }
}

impl PartialOrd for Tagged {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tagged {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Payload participates only as a tiebreaker so that `Ord` stays
        // consistent with `Eq` (a requirement for sound sorting).
        (self.key, self.payload).cmp(&(other.key, other.payload))
    }
}

impl PdmKey for Tagged {
    const WIDTH: usize = 16;
    const MIN: Self = Tagged { key: 0, payload: 0 };
    const MAX: Self = Tagged {
        key: u64::MAX,
        payload: u64::MAX,
    };

    fn write_bytes(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..16].copy_from_slice(&self.payload.to_le_bytes());
    }

    fn read_bytes(bytes: &[u8]) -> Self {
        let mut k = [0u8; 8];
        let mut p = [0u8; 8];
        k.copy_from_slice(&bytes[..8]);
        p.copy_from_slice(&bytes[8..16]);
        Tagged {
            key: u64::from_le_bytes(k),
            payload: u64::from_le_bytes(p),
        }
    }

    fn gauge_distance(&self, other: &Self) -> i64 {
        self.key.gauge_distance(&other.key)
    }
}

/// A fixed-width string key: `W` bytes compared as an unsigned byte array
/// (memcmp order). Shorter strings are padded with `0x00`, which sorts before
/// every printable byte, so prefix order matches lexicographic order on the
/// original strings. There is no meaningful numeric distance between string
/// keys, so `gauge_distance` keeps the trait's zero default.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StrN<const W: usize> {
    /// Raw key bytes; compared left to right as unsigned bytes.
    pub bytes: [u8; W],
}

impl<const W: usize> StrN<W> {
    /// Build a key from a string, truncating to `W` bytes and padding the
    /// remainder with `0x00`.
    pub fn from_str_padded(s: &str) -> Self {
        let mut bytes = [0u8; W];
        let take = s.len().min(W);
        bytes[..take].copy_from_slice(&s.as_bytes()[..take]);
        Self { bytes }
    }

    /// The key as a string slice with trailing NUL padding stripped, or
    /// `None` if the payload bytes are not valid UTF-8.
    pub fn as_str(&self) -> Option<&str> {
        let end = self
            .bytes
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        std::str::from_utf8(&self.bytes[..end]).ok()
    }
}

impl<const W: usize> Debug for StrN<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.as_str() {
            Some(s) => write!(f, "StrN<{W}>({s:?})"),
            None => write!(f, "StrN<{W}>({:02x?})", self.bytes),
        }
    }
}

impl<const W: usize> PdmKey for StrN<W> {
    const WIDTH: usize = W;
    const MIN: Self = StrN { bytes: [0x00; W] };
    const MAX: Self = StrN { bytes: [0xff; W] };

    fn write_bytes(&self, out: &mut [u8]) {
        out[..W].copy_from_slice(&self.bytes);
    }

    fn read_bytes(bytes: &[u8]) -> Self {
        let mut buf = [0u8; W];
        buf.copy_from_slice(&bytes[..W]);
        StrN { bytes: buf }
    }
}

/// An integer key whose *rank* in a bounded range is known — required by the
/// paper's `IntegerSort`/`RadixSort` (§7), which bucket keys by value.
pub trait RankedKey: PdmKey {
    /// The key as an unsigned integer rank.
    fn rank(&self) -> u64;
    /// Extract `bits` bits starting `shift` bits from the least-significant
    /// end — used by forward radix sort on MSB digit groups.
    fn digit(&self, shift: u32, bits: u32) -> u64 {
        if bits == 0 {
            return 0;
        }
        let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        (self.rank() >> shift) & mask
    }
    /// Total number of significant bits in the key domain.
    fn domain_bits() -> u32;
}

macro_rules! impl_ranked {
    ($($t:ty => $bits:expr),*) => {$(
        impl RankedKey for $t {
            fn rank(&self) -> u64 {
                *self as u64
            }
            fn domain_bits() -> u32 {
                $bits
            }
        }
    )*};
}

impl_ranked!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);

/// Signed integers rank by an order-preserving bias (flip the sign bit):
/// `i::MIN → 0`, `-1 → 2^{w-1}-1`, `0 → 2^{w-1}`, `i::MAX → 2^w - 1` —
/// so radix/bucket sorting by rank sorts signed keys correctly.
macro_rules! impl_ranked_signed {
    ($($t:ty : $u:ty => $bits:expr),*) => {$(
        impl RankedKey for $t {
            fn rank(&self) -> u64 {
                ((*self as $u) ^ (1 << ($bits - 1))) as u64
            }
            fn domain_bits() -> u32 {
                $bits
            }
        }
    )*};
}

impl_ranked_signed!(i8 : u8 => 8, i16 : u16 => 16, i32 : u32 => 32, i64 : u64 => 64);

impl RankedKey for Tagged {
    fn rank(&self) -> u64 {
        self.key
    }
    fn domain_bits() -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let mut buf = [0u8; 16];
        for v in [0u64, 1, 42, u64::MAX] {
            v.write_bytes(&mut buf);
            assert_eq!(u64::read_bytes(&buf), v);
        }
        for v in [i32::MIN, -1, 0, 7, i32::MAX] {
            v.write_bytes(&mut buf);
            assert_eq!(i32::read_bytes(&buf), v);
        }
    }

    #[test]
    fn tagged_orders_by_key_then_payload() {
        let a = Tagged::new(1, 99);
        let b = Tagged::new(2, 0);
        let c = Tagged::new(1, 100);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn tagged_round_trip() {
        let mut buf = [0u8; 16];
        let t = Tagged::new(0xdead_beef, 0x1234_5678_9abc_def0);
        t.write_bytes(&mut buf);
        assert_eq!(Tagged::read_bytes(&buf), t);
    }

    #[test]
    fn sentinels_bound_the_domain() {
        assert!(u32::MIN <= 7u32 && 7u32 <= <u32 as PdmKey>::MAX);
        let t = Tagged::new(5, 5);
        assert!(<Tagged as PdmKey>::MIN <= t && t <= <Tagged as PdmKey>::MAX);
    }

    #[test]
    fn digit_extraction() {
        let k = 0b1011_0110u8;
        assert_eq!(k.digit(0, 4), 0b0110);
        assert_eq!(k.digit(4, 4), 0b1011);
        assert_eq!(k.digit(0, 8), 0b1011_0110);
        assert_eq!(k.digit(0, 0), 0);
        let big = u64::MAX;
        assert_eq!(big.digit(0, 64), u64::MAX);
    }

    #[test]
    fn signed_ranks_preserve_order() {
        let samples = [i64::MIN, -1_000_000, -1, 0, 1, 7, i64::MAX];
        for w in samples.windows(2) {
            assert!(w[0].rank() < w[1].rank(), "{} !< {}", w[0], w[1]);
        }
        assert_eq!(i64::MIN.rank(), 0);
        assert_eq!(i64::MAX.rank(), u64::MAX);
        assert_eq!(0i64.rank(), 1u64 << 63);
        // and for narrow types
        assert_eq!(i8::MIN.rank(), 0);
        assert_eq!(i8::MAX.rank(), 255);
        assert!((-5i16).rank() < 5i16.rank());
    }

    #[test]
    fn gauge_distance_is_signed_and_saturating() {
        assert_eq!(10u64.gauge_distance(&3), 7);
        assert_eq!(3u64.gauge_distance(&10), -7);
        assert_eq!(5u32.gauge_distance(&5), 0);
        assert_eq!((-4i64).gauge_distance(&4), -8);
        assert_eq!(u64::MAX.gauge_distance(&0), i64::MAX, "saturates");
        assert_eq!(u128::MAX.gauge_distance(&0), i64::MAX);
        assert_eq!(i128::MIN.gauge_distance(&i128::MAX), i64::MIN + 1);
        assert_eq!(Tagged::new(9, 0).gauge_distance(&Tagged::new(2, 7)), 7);
    }

    #[test]
    fn strn_orders_like_memcmp_and_round_trips() {
        type S = StrN<24>;
        let a = S::from_str_padded("apple");
        let b = S::from_str_padded("applesauce");
        let c = S::from_str_padded("banana");
        assert!(a < b, "prefix sorts first under NUL padding");
        assert!(b < c);
        assert!(<S as PdmKey>::MIN <= a && c <= <S as PdmKey>::MAX);
        assert_eq!(<S as PdmKey>::WIDTH, 24);

        let mut buf = [0u8; 24];
        b.write_bytes(&mut buf);
        assert_eq!(S::read_bytes(&buf), b);
        assert_eq!(b.as_str(), Some("applesauce"));
        assert_eq!(format!("{a:?}"), "StrN<24>(\"apple\")");
        // gauge_distance keeps the trait's zero default for strings
        assert_eq!(c.gauge_distance(&a), 0);
    }

    #[test]
    fn strn_truncates_at_width() {
        type S = StrN<4>;
        let long = S::from_str_padded("abcdefgh");
        assert_eq!(long.bytes, *b"abcd");
        assert_eq!(<S as PdmKey>::MAX.as_str(), None, "0xff is not UTF-8");
    }

    #[test]
    fn domain_bits_match_types() {
        assert_eq!(<u8 as RankedKey>::domain_bits(), 8);
        assert_eq!(<u64 as RankedKey>::domain_bits(), 64);
        assert_eq!(<Tagged as RankedKey>::domain_bits(), 64);
    }
}
