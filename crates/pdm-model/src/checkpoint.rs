//! Pass-level checkpoint and resume.
//!
//! The paper's algorithms are *pass-structured*: after every pass the whole
//! dataset is settled on disk, and the machine brackets passes with
//! [`crate::machine::Pdm::begin_phase`] / `end_phase`. That makes phase
//! boundaries natural checkpoints — the on-disk region state between
//! phases is the recovery unit (the run-persistence discipline of external
//! sorters). This module supplies:
//!
//! * [`Manifest`] — what a completed-pass checkpoint records: machine
//!   geometry, the input digest and length, the completed-pass index, the
//!   allocation frontier ("region layout" — regions are carved from a
//!   monotone slot frontier, so the frontier plus the algorithm's
//!   deterministic allocation order reproduces every region), and the
//!   completed phase names.
//! * [`CheckpointStore`] — atomic manifest persistence: write to a temp
//!   file, fsync, rename over `latest.ckpt`, fsync the directory. A crash
//!   at any point leaves either the old or the new manifest, never a torn
//!   one.
//! * [`Checkpoint`] — the trait [`crate::machine::Pdm`] implements:
//!   attach a store (optionally resuming from a manifest) and the machine
//!   emits a manifest at every `end_phase` and *replays* already-completed
//!   phases without touching storage.
//!
//! Manifests use a deliberately tiny line-based text format (`key = value`,
//! one per line, `phase =` repeated) rather than JSON: it is stable,
//! greppable, and needs no serializer. See ARCHITECTURE.md §7.
//!
//! ## Resume model and its limits
//!
//! Resume replays the algorithm from the start with storage I/O and stats
//! elided for the first `completed` phases; reads during replay return
//! `K::MAX` filler. This is only sound for algorithms whose *control flow
//! and allocation order do not depend on the data read* — the
//! deterministic oblivious sorts (three-pass, seven-pass, columnsort,
//! mergesort over fixed runs). Algorithms that branch on key values
//! (integer/radix bucket counts, the expected sorts' abort check) are not
//! resumable and must be gated off by the caller; the CLI does so.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::config::PdmConfig;
use crate::error::{PdmError, Result};

/// Magic first line of a manifest file; bump the suffix on format changes.
const MAGIC: &str = "pdm-checkpoint-v1";

/// Everything a resumed run needs to know about a prior partial run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Algorithm label (the CLI's `--algo` value); a resume under a
    /// different algorithm is refused.
    pub algo: String,
    /// Disks `D` of the machine that wrote the checkpoint.
    pub num_disks: usize,
    /// Block size `B` in keys.
    pub block_size: usize,
    /// Internal memory `M` in keys.
    pub mem_capacity: usize,
    /// Input length in keys.
    pub num_keys: usize,
    /// FNV-1a digest of the raw input bytes (see [`fnv1a`]).
    pub digest: u64,
    /// Number of phases fully completed (and settled on disk).
    pub completed: usize,
    /// The machine's allocation frontier (`next_slot`) when the last
    /// completed phase closed — verified against the replayed frontier at
    /// the skip→live transition to catch allocation drift.
    pub frontier: usize,
    /// Names of the completed phases, in order.
    pub phases: Vec<String>,
}

impl Manifest {
    /// Serialize to the line-based manifest text.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(MAGIC);
        s.push('\n');
        s.push_str(&format!("algo = {}\n", self.algo));
        s.push_str(&format!("disks = {}\n", self.num_disks));
        s.push_str(&format!("block = {}\n", self.block_size));
        s.push_str(&format!("mem = {}\n", self.mem_capacity));
        s.push_str(&format!("keys = {}\n", self.num_keys));
        s.push_str(&format!("digest = {:016x}\n", self.digest));
        s.push_str(&format!("completed = {}\n", self.completed));
        s.push_str(&format!("frontier = {}\n", self.frontier));
        for p in &self.phases {
            s.push_str(&format!("phase = {p}\n"));
        }
        s
    }

    /// Parse manifest text (strict: unknown or missing keys are errors,
    /// so a truncated manifest never half-loads).
    pub fn from_text(text: &str) -> Result<Self> {
        let bad = |msg: &str| PdmError::BadConfig(format!("checkpoint manifest: {msg}"));
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(bad("missing or wrong magic line"));
        }
        let mut algo = None;
        const KEYS: [&str; 6] = ["disks", "block", "mem", "keys", "completed", "frontier"];
        let mut nums: [Option<usize>; 6] = [None; 6];
        let mut phases = Vec::new();
        let mut digest = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| bad("line without '='"))?;
            let (k, v) = (k.trim(), v.trim());
            match k {
                "algo" => algo = Some(v.to_string()),
                "phase" => phases.push(v.to_string()),
                "digest" => {
                    digest = Some(
                        u64::from_str_radix(v, 16).map_err(|_| bad("digest not hex"))?,
                    );
                }
                _ => {
                    let i = KEYS
                        .iter()
                        .position(|&n| n == k)
                        .ok_or_else(|| bad("unknown key"))?;
                    nums[i] = Some(v.parse::<usize>().map_err(|_| bad("value not a number"))?);
                }
            }
        }
        let take = |i: usize| nums[i].ok_or_else(|| bad("missing required key"));
        let m = Manifest {
            algo: algo.ok_or_else(|| bad("missing algo"))?,
            num_disks: take(0)?,
            block_size: take(1)?,
            mem_capacity: take(2)?,
            num_keys: take(3)?,
            digest: digest.ok_or_else(|| bad("missing digest"))?,
            completed: take(4)?,
            frontier: take(5)?,
            phases,
        };
        if m.phases.len() != m.completed {
            return Err(bad("phase list length disagrees with completed count"));
        }
        Ok(m)
    }

    /// Refuse to resume against a machine or input that differs from the
    /// one that wrote the checkpoint.
    pub fn check_compatible(
        &self,
        algo: &str,
        cfg: &PdmConfig,
        num_keys: usize,
        digest: u64,
    ) -> Result<()> {
        let mismatch = |what: &str| {
            PdmError::BadConfig(format!(
                "checkpoint does not match this run: {what} differs"
            ))
        };
        if self.algo != algo {
            return Err(mismatch("algorithm"));
        }
        if self.num_disks != cfg.num_disks
            || self.block_size != cfg.block_size
            || self.mem_capacity != cfg.mem_capacity
        {
            return Err(mismatch("machine geometry"));
        }
        if self.num_keys != num_keys {
            return Err(mismatch("input length"));
        }
        if self.digest != digest {
            return Err(mismatch("input digest"));
        }
        Ok(())
    }
}

/// FNV-1a over raw bytes; feed chunks in order via fold. Used to fingerprint
/// the input so a checkpoint is never resumed against different data.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The FNV-1a offset basis: the initial `state` for [`fnv1a`].
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Atomic manifest persistence in a directory.
///
/// The store keeps one `latest.ckpt` (the resume point) plus a
/// `pass-<k>.ckpt` history. Writes go through a temp file + fsync +
/// rename + directory fsync, so a crash mid-checkpoint leaves the
/// previous manifest intact.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn create(dir: impl AsRef<Path>) -> Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_atomic(&self, name: &str, text: &str) -> Result<()> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(name);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &fin)?;
        // Persist the rename itself: fsync the directory entry.
        fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// Persist `m` as both `pass-<completed>.ckpt` and `latest.ckpt`,
    /// atomically.
    pub fn save(&self, m: &Manifest) -> Result<()> {
        let text = m.to_text();
        self.write_atomic(&format!("pass-{}.ckpt", m.completed), &text)?;
        self.write_atomic("latest.ckpt", &text)
    }

    /// Load the most recent manifest, or `None` if the directory holds no
    /// checkpoint yet.
    pub fn load_latest(&self) -> Result<Option<Manifest>> {
        let path = self.dir.join("latest.ckpt");
        match fs::read_to_string(&path) {
            Ok(text) => Manifest::from_text(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// Checkpoint/resume surface of a PDM machine (implemented by
/// [`crate::machine::Pdm`]).
pub trait Checkpoint {
    /// Attach a checkpoint store driven by `manifest`. With
    /// `manifest.completed == 0` (a fresh identity manifest) the machine
    /// starts from scratch and emits a manifest at every phase close.
    /// With `completed > 0` (a manifest loaded from a store, after
    /// [`Manifest::check_compatible`]) the machine additionally *replays*
    /// that many phases without performing storage I/O or charging stats,
    /// then goes live — the caller must have reopened the storage that
    /// holds the completed passes' on-disk state. Replay returns `K::MAX`
    /// filler from reads, so it is only sound for algorithms whose
    /// control flow, phase structure, and allocation order are
    /// data-independent. Overlap I/O composes: replayed phases hand out
    /// filler tokens, and live phases must drain every pending
    /// read/write before the phase ends or the boundary defers
    /// [`PdmError::PendingIo`] instead of persisting a stale manifest.
    fn attach_checkpoint(&mut self, store: CheckpointStore, manifest: Manifest);

    /// A checkpoint failure deferred from an infallible phase boundary
    /// (manifest write error, frontier drift detected at the skip→live
    /// transition, or overlap I/O still pending at the boundary —
    /// [`PdmError::PendingIo`]). Sorting is unaffected; callers decide
    /// whether a failed checkpoint is fatal. Clears on read.
    fn take_checkpoint_error(&mut self) -> Option<PdmError>;

    /// Phases completed so far in checkpoint terms: replayed phases plus
    /// live phases closed since.
    fn completed_phases(&self) -> usize;

    /// Phases that were replayed (skipped) rather than executed.
    fn skipped_phases(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest {
            algo: "threepass2".into(),
            num_disks: 4,
            block_size: 16,
            mem_capacity: 256,
            num_keys: 4096,
            digest: 0xDEAD_BEEF_1234_5678,
            completed: 2,
            frontier: 192,
            phases: vec!["runs+unshuffle".into(), "column-merge".into()],
        }
    }

    #[test]
    fn manifest_round_trips_through_text() {
        let m = manifest();
        let back = Manifest::from_text(&m.to_text()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn truncated_or_corrupt_manifests_are_rejected() {
        let m = manifest();
        let text = m.to_text();
        // magic torn off
        assert!(Manifest::from_text(&text[5..]).is_err());
        // manifest torn off mid-write
        let torn = &text[..text.len() / 3];
        assert!(Manifest::from_text(torn).is_err());
        // a torn-off phase line disagrees with the completed count
        let no_phase = text.replace("phase = column-merge\n", "");
        assert!(Manifest::from_text(&no_phase).is_err());
        // unknown key
        let mut junk = text.clone();
        junk.push_str("surprise = 1\n");
        assert!(Manifest::from_text(&junk).is_err());
    }

    #[test]
    fn compatibility_check_catches_each_mismatch() {
        let m = manifest();
        let cfg = PdmConfig::new(4, 16, 256);
        assert!(m.check_compatible("threepass2", &cfg, 4096, m.digest).is_ok());
        assert!(m.check_compatible("sevenpass", &cfg, 4096, m.digest).is_err());
        assert!(m
            .check_compatible("threepass2", &PdmConfig::new(2, 16, 256), 4096, m.digest)
            .is_err());
        assert!(m.check_compatible("threepass2", &cfg, 4097, m.digest).is_err());
        assert!(m.check_compatible("threepass2", &cfg, 4096, 1).is_err());
    }

    #[test]
    fn store_saves_and_reloads_latest() {
        let dir = std::env::temp_dir().join(format!("pdm-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::create(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        let mut m = manifest();
        store.save(&m).unwrap();
        m.completed = 3;
        m.phases.push("cleanup".into());
        store.save(&m).unwrap();
        let latest = store.load_latest().unwrap().unwrap();
        assert_eq!(latest.completed, 3);
        // per-pass history retained
        assert!(dir.join("pass-2.ckpt").exists());
        assert!(dir.join("pass-3.ckpt").exists());
        // no temp litter left behind
        assert!(!dir.join("latest.ckpt.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a_is_order_sensitive_and_chunk_invariant() {
        let whole = fnv1a(FNV_OFFSET, b"hello world");
        let split = fnv1a(fnv1a(FNV_OFFSET, b"hello "), b"world");
        assert_eq!(whole, split);
        assert_ne!(whole, fnv1a(FNV_OFFSET, b"world hello"));
    }
}
