//! Storage backends: where simulated disk blocks actually live.
//!
//! The trait is deliberately synchronous and block-granular — all policy
//! (batching, step accounting, memory enforcement) lives in the machine
//! layer. Backends only move bytes.

use crate::error::{PdmError, Result};
use crate::key::PdmKey;

/// What a storage backend can actually do, beyond moving blocks.
///
/// A single boolean (`supports_overlap`) could not describe the real-disk
/// backends: a backend may overlap I/O without duplex queues, use direct
/// I/O on some mounts but not others, or verify checksums only when the
/// feature is compiled in. Capabilities are *runtime* facts — e.g.
/// [`StorageCaps::direct_io`] reflects whether `O_DIRECT` actually opened,
/// not whether it was requested — so callers can branch on what the stack
/// in front of them really provides.
///
/// Wrapper backends (fault injection, retry) report their inner backend's
/// capabilities unchanged: they forward `start_*_batch` after applying
/// their per-block policy at issue time, so `overlap`/`duplex` survive
/// the full assembled stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageCaps {
    /// `start_read_batch` / `start_write_batch` return genuinely
    /// asynchronous tokens — I/O proceeds while the caller computes.
    pub overlap: bool,
    /// Reads and writes are serviced by independent per-disk queues, so a
    /// flush-behind write never queues behind a prefetch read.
    pub duplex: bool,
    /// Block transfers bypass the page cache (`O_DIRECT` open succeeded on
    /// every disk file).
    pub direct_io: bool,
    /// Blocks carry persisted checksums verified on read-back.
    pub checksums: bool,
    /// The backend recycles block buffers through a [`crate::pool::BlockPool`]
    /// (and therefore reports [`Storage::pool_stats`]).
    pub pooled: bool,
}

/// A physical store of `D` disks, each an array of block slots of `B` keys.
pub trait Storage<K: PdmKey>: Send {
    /// Number of disks.
    fn num_disks(&self) -> usize;

    /// Block size in keys.
    fn block_size(&self) -> usize;

    /// Grow disk `disk` to at least `slots` block slots (zero/`MAX`-filled).
    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()>;

    /// Read block `(disk, slot)` into `out` (`out.len() == B`).
    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()>;

    /// Write `data` (`data.len() == B`) to block `(disk, slot)`.
    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()>;

    /// Read a batch of blocks; `reqs[i]` is `(disk, slot)` and fills
    /// `out[i*B..(i+1)*B]`. Backends with real per-disk parallelism override
    /// this to service different disks concurrently.
    fn read_batch(&mut self, reqs: &[(usize, usize)], out: &mut [K]) -> Result<()> {
        let b = self.block_size();
        debug_assert_eq!(out.len(), reqs.len() * b);
        for (i, &(disk, slot)) in reqs.iter().enumerate() {
            self.read_block(disk, slot, &mut out[i * b..(i + 1) * b])?;
        }
        Ok(())
    }

    /// Write a batch of blocks; `reqs[i]` is `(disk, slot)` taking
    /// `data[i*B..(i+1)*B]`.
    fn write_batch(&mut self, reqs: &[(usize, usize)], data: &[K]) -> Result<()> {
        let b = self.block_size();
        debug_assert_eq!(data.len(), reqs.len() * b);
        for (i, &(disk, slot)) in reqs.iter().enumerate() {
            self.write_block(disk, slot, &data[i * b..(i + 1) * b])?;
        }
        Ok(())
    }

    /// Flush any buffered state to the underlying medium.
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    /// Block-buffer pool counters, for backends that recycle block buffers
    /// (currently the threaded backend). `None` means the backend has no
    /// pool — not that the pool is idle.
    fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        None
    }

    /// What this backend can do (see [`StorageCaps`]).
    ///
    /// The all-false default means [`Storage::start_read_batch`] /
    /// [`Storage::start_write_batch`] fall back to the eager (blocking)
    /// paths — correct but with no latency hiding. The threaded and
    /// async-file backends override this; wrapper layers (fault injection,
    /// retry) forward their inner backend's caps unchanged — they apply
    /// their per-block policies inside forwarded `start_*_batch` calls
    /// (and, on the async-file backend, again at completion time).
    fn caps(&self) -> StorageCaps {
        StorageCaps::default()
    }

    /// Cumulative wall-clock telemetry recorded by this backend's workers
    /// (per-disk latency histograms, queue high-water marks, uring
    /// counters), or `None` for backends that do not time their I/O. The
    /// machine harvests this into [`crate::stats::WallStats`] at phase
    /// boundaries and sync points. Purely observational: nothing in the
    /// step accounting depends on it.
    fn wall_snapshot(&self) -> Option<crate::stats::StorageWallSnapshot> {
        None
    }

    /// Attach a shared span sink; backends that time their I/O record one
    /// span per service operation into it (for Chrome trace export).
    /// Default: ignored. Attach before issuing I/O that should be traced —
    /// spans are timestamped against the sink's epoch.
    fn attach_span_sink(&mut self, _sink: std::sync::Arc<crate::stats::SpanSink>) {}

    /// Begin an asynchronous batch read; the returned token is redeemed
    /// with [`crate::overlap::PendingRead::wait`]. The default performs the
    /// read eagerly via [`Storage::read_batch`]. Wrapper backends (retry,
    /// fault injection) override this to apply their per-operation policy
    /// at issue time and then *forward* to the inner backend, so overlap
    /// survives the wrappers; failures that only materialise at `wait`
    /// time are healed by the async-file backend's completion-time retry.
    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn crate::overlap::PendingRead<K> + Send>> {
        let b = self.block_size();
        let mut data = vec![K::MAX; reqs.len() * b];
        self.read_batch(reqs, &mut data)?;
        Ok(Box::new(crate::overlap::EagerPending::new(data)))
    }

    /// Begin an asynchronous batch write of `data` (`reqs.len() * B` keys).
    ///
    /// Contract: the borrow of `data` ends when this returns, so every
    /// implementation must have copied (or written) the payload by then —
    /// the caller's buffer is immediately reusable. The default writes
    /// eagerly via [`Storage::write_batch`].
    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn crate::overlap::PendingWrite + Send>> {
        self.write_batch(reqs, data)?;
        Ok(Box::new(crate::overlap::EagerWriteDone))
    }
}

/// Boxed backends delegate, so a machine can be built over
/// `Box<dyn Storage<K>>` when the backend stack is chosen at runtime
/// (e.g. the CLI layering retry and fault injection over a file store).
impl<K: PdmKey, S: Storage<K> + ?Sized> Storage<K> for Box<S> {
    fn num_disks(&self) -> usize {
        (**self).num_disks()
    }

    fn block_size(&self) -> usize {
        (**self).block_size()
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        (**self).ensure_capacity(disk, slots)
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        (**self).read_block(disk, slot, out)
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        (**self).write_block(disk, slot, data)
    }

    fn read_batch(&mut self, reqs: &[(usize, usize)], out: &mut [K]) -> Result<()> {
        (**self).read_batch(reqs, out)
    }

    fn write_batch(&mut self, reqs: &[(usize, usize)], data: &[K]) -> Result<()> {
        (**self).write_batch(reqs, data)
    }

    fn sync(&mut self) -> Result<()> {
        (**self).sync()
    }

    fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        (**self).pool_stats()
    }

    fn caps(&self) -> StorageCaps {
        (**self).caps()
    }

    fn wall_snapshot(&self) -> Option<crate::stats::StorageWallSnapshot> {
        (**self).wall_snapshot()
    }

    fn attach_span_sink(&mut self, sink: std::sync::Arc<crate::stats::SpanSink>) {
        (**self).attach_span_sink(sink)
    }

    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn crate::overlap::PendingRead<K> + Send>> {
        (**self).start_read_batch(reqs)
    }

    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn crate::overlap::PendingWrite + Send>> {
        (**self).start_write_batch(reqs, data)
    }
}

/// In-memory backend: each disk is a flat `Vec<K>` of block slots.
///
/// This is the default backend for experiments — it is exact with respect to
/// the PDM *cost model* (the machine layer counts steps identically for all
/// backends) while being fast enough for large parameter sweeps.
#[derive(Debug)]
pub struct MemStorage<K: PdmKey> {
    disks: Vec<Vec<K>>,
    block_size: usize,
}

impl<K: PdmKey> MemStorage<K> {
    /// An empty store of `num_disks` disks with block size `block_size`.
    pub fn new(num_disks: usize, block_size: usize) -> Self {
        Self {
            disks: vec![Vec::new(); num_disks],
            block_size,
        }
    }

    fn check_disk(&self, disk: usize) -> Result<()> {
        if disk >= self.disks.len() {
            return Err(PdmError::BadDisk {
                disk,
                num_disks: self.disks.len(),
            });
        }
        Ok(())
    }

    fn check_slot(&self, disk: usize, slot: usize) -> Result<()> {
        let allocated = self.disks[disk].len() / self.block_size;
        if slot >= allocated {
            return Err(PdmError::BadSlot {
                disk,
                slot,
                allocated,
            });
        }
        Ok(())
    }
}

impl<K: PdmKey> Storage<K> for MemStorage<K> {
    fn num_disks(&self) -> usize {
        self.disks.len()
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        self.check_disk(disk)?;
        let want = slots * self.block_size;
        if self.disks[disk].len() < want {
            self.disks[disk].resize(want, K::MAX);
        }
        Ok(())
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        self.check_disk(disk)?;
        self.check_slot(disk, slot)?;
        if out.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: out.len(),
                expected: self.block_size,
            });
        }
        let off = slot * self.block_size;
        out.copy_from_slice(&self.disks[disk][off..off + self.block_size]);
        Ok(())
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        self.check_disk(disk)?;
        self.check_slot(disk, slot)?;
        if data.len() != self.block_size {
            return Err(PdmError::BadBlockLen {
                got: data.len(),
                expected: self.block_size,
            });
        }
        let off = slot * self.block_size;
        self.disks[disk][off..off + self.block_size].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_block() {
        let mut s: MemStorage<u64> = MemStorage::new(2, 4);
        s.ensure_capacity(1, 3).unwrap();
        s.write_block(1, 2, &[5, 6, 7, 8]).unwrap();
        let mut out = [0u64; 4];
        s.read_block(1, 2, &mut out).unwrap();
        assert_eq!(out, [5, 6, 7, 8]);
    }

    #[test]
    fn fresh_blocks_read_as_max_padding() {
        let mut s: MemStorage<u32> = MemStorage::new(1, 2);
        s.ensure_capacity(0, 1).unwrap();
        let mut out = [0u32; 2];
        s.read_block(0, 0, &mut out).unwrap();
        assert_eq!(out, [u32::MAX, u32::MAX]);
    }

    #[test]
    fn bad_addresses_are_rejected() {
        let mut s: MemStorage<u64> = MemStorage::new(2, 4);
        s.ensure_capacity(0, 1).unwrap();
        let mut out = [0u64; 4];
        assert!(matches!(
            s.read_block(5, 0, &mut out),
            Err(PdmError::BadDisk { .. })
        ));
        assert!(matches!(
            s.read_block(0, 9, &mut out),
            Err(PdmError::BadSlot { .. })
        ));
        let mut small = [0u64; 3];
        assert!(matches!(
            s.read_block(0, 0, &mut small),
            Err(PdmError::BadBlockLen { .. })
        ));
        assert!(matches!(
            s.write_block(0, 0, &[1, 2, 3]),
            Err(PdmError::BadBlockLen { .. })
        ));
    }

    #[test]
    fn batch_default_impl_round_trips() {
        let mut s: MemStorage<u64> = MemStorage::new(3, 2);
        for d in 0..3 {
            s.ensure_capacity(d, 2).unwrap();
        }
        let reqs = [(0, 0), (1, 0), (2, 1)];
        let data = [10u64, 11, 20, 21, 30, 31];
        s.write_batch(&reqs, &data).unwrap();
        let mut out = [0u64; 6];
        s.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn ensure_capacity_is_monotone() {
        let mut s: MemStorage<u64> = MemStorage::new(1, 4);
        s.ensure_capacity(0, 2).unwrap();
        s.write_block(0, 1, &[1, 2, 3, 4]).unwrap();
        // shrinking request must not lose data
        s.ensure_capacity(0, 1).unwrap();
        let mut out = [0u64; 4];
        s.read_block(0, 1, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }
}
