//! Zero-dependency log-bucketed latency histograms for the wall-clock
//! telemetry layer (see `ARCHITECTURE` §11).
//!
//! The step-clocked probe counts the quantities the paper argues about —
//! passes, parallel steps — and is deterministic by construction. Real
//! disks additionally live in *wall-clock*: per-operation service times,
//! queue depths, stall durations. Those are timing-dependent, so they are
//! collected **beside** the probe, never inside it, and excluded from
//! `replay()` equivalence.
//!
//! [`LatencyHist`] is the live recorder: a fixed array of atomic bucket
//! counters shared (`Arc`) between the per-disk worker threads and the
//! harvesting machine, so recording is a single relaxed `fetch_add` with
//! no locks on the I/O path. [`HistSnapshot`] is the frozen, serializable
//! form stored in [`crate::stats::WallStats`]: sparse (only non-empty
//! buckets), mergeable, and queryable for p50/p95/p99/max.
//!
//! Bucketing is HdrHistogram-style: values below [`SUB_COUNT`] get exact
//! unit buckets; above that, each power-of-two octave is split into
//! [`SUB_COUNT`] linear sub-buckets, bounding the relative quantile error
//! at `1/SUB_COUNT` ≈ 1.6% — about two significant digits — across the
//! full `u64` nanosecond range with a few thousand buckets.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the per-octave sub-bucket count.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per power-of-two octave (quantile error ≤ 1/64).
pub const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` range.
pub const NUM_BUCKETS: usize = (SUB_COUNT as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index of a value (total order preserved between buckets).
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let mantissa = ((v >> (exp - SUB_BITS)) - SUB_COUNT) as usize;
    ((exp - SUB_BITS + 1) as usize) << SUB_BITS | mantissa
}

/// Upper edge of a bucket: the largest value mapping into it. Quantiles
/// report this edge, so `value_at_quantile(q)` is an upper bound on the
/// true q-quantile with ≤ 1/[`SUB_COUNT`] relative error.
fn bucket_upper(idx: usize) -> u64 {
    let oct = (idx >> SUB_BITS) as u32;
    let mantissa = (idx as u64) & (SUB_COUNT - 1);
    if oct == 0 {
        return mantissa;
    }
    // widen: the topmost bucket's edge is 2^64, which saturates
    let edge = (u128::from(SUB_COUNT + mantissa + 1) << (oct - 1)) - 1;
    u64::try_from(edge).unwrap_or(u64::MAX)
}

/// Live, thread-shared latency recorder. All counters are relaxed
/// atomics: the histogram answers "what did the service-time distribution
/// look like", not "what happened before what", so no ordering is needed.
#[derive(Debug)]
pub struct LatencyHist {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Exact sum of recorded values — kept beside the buckets so derived
    /// totals (e.g. per-disk cumulative service nanos) stay exact even
    /// though individual samples are bucketed.
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (typically nanoseconds).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freeze the current contents into a sparse snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram: sparse `(bucket index, count)` pairs plus exact
/// count/sum/max. Serializable (rides inside the `--stats` artifact),
/// mergeable across disks, and queryable for quantiles.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples (not reconstructed from buckets).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistSnapshot {
    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot into this one (e.g. merging per-disk
    /// histograms into a device-wide view).
    pub fn merge(&mut self, other: &HistSnapshot) {
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`) with
    /// ≤ 1/[`SUB_COUNT`] relative error; 0 when empty. `q = 1.0` returns
    /// the exact recorded max.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // never report past the exact max (the top bucket's upper
                // edge can overshoot it)
                return bucket_upper(idx as usize).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.value_at_quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_inverse() {
        let mut vals: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 3] {
                vals.push((1u64 << shift).saturating_add(off << shift.saturating_sub(7)));
            }
        }
        vals.sort_unstable();
        vals.dedup();
        let mut last = 0usize;
        for v in vals {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            last = idx;
            assert!(bucket_upper(idx) >= v, "upper edge below value at {v}");
            assert!(idx < NUM_BUCKETS);
        }
        // exact unit buckets below SUB_COUNT
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1 << 20, 987_654_321, u64::MAX / 3] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_COUNT as f64 + 1e-12, "err {err} at {v}");
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = LatencyHist::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in 1µs steps
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.sum, (1..=1000u64).map(|v| v * 1000).sum::<u64>());
        let tol = 1.0 + 1.0 / SUB_COUNT as f64;
        for (q, want) in [(0.5, 500_000.0), (0.95, 950_000.0), (0.99, 990_000.0)] {
            let got = s.value_at_quantile(q) as f64;
            assert!(got >= want && got <= want * tol, "q{q}: got {got}, want ~{want}");
        }
        assert_eq!(s.value_at_quantile(1.0), 1_000_000);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99() && s.p99() <= s.max);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = LatencyHist::new();
        let b = LatencyHist::new();
        let both = LatencyHist::new();
        for v in [5u64, 70, 3000, 5, 123_456] {
            a.record(v);
            both.record(v);
        }
        for v in [70u64, 999_999, 7] {
            b.record(v);
            both.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, both.snapshot());
    }

    #[test]
    fn empty_and_edge_cases() {
        let s = HistSnapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
        let h = LatencyHist::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.value_at_quantile(1.0), u64::MAX);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let h = LatencyHist::new();
        for v in [10u64, 10, 500, 1 << 30] {
            h.record(v);
        }
        let s = h.snapshot();
        let js = serde_json::to_string(&s).unwrap();
        let back: HistSnapshot = serde_json::from_str(&js).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHist::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4000);
    }
}
