//! # pdm-model — a Parallel Disk Model simulator
//!
//! Substrate for reproducing *Rajasekaran & Sen, "PDM Sorting Algorithms
//! That Take A Small Number Of Passes" (IPPS 2005)*.
//!
//! The **Parallel Disk Model** (Vitter–Shriver) has a computer with internal
//! memory of `M` keys attached to `D` independent disks; one parallel I/O
//! step transfers at most one block of `B` keys per disk. Algorithm cost is
//! the number of parallel I/O steps; the paper's unit is the *pass* —
//! `N/(D·B)` read steps plus the same number of write steps.
//!
//! This crate simulates such a machine faithfully at the cost-model level:
//!
//! * [`machine::Pdm`] — the machine: striped regions, batch block I/O with
//!   exact step accounting, and a capacity-enforced internal memory.
//! * [`storage`] — pluggable backends: in-memory ([`storage::MemStorage`]),
//!   file-backed ([`storage_file::FileStorage`], one host file per disk),
//!   thread-per-disk ([`storage_threaded::ThreadedStorage`]) for real
//!   wall-clock disk parallelism, and asynchronous real-disk
//!   ([`storage_async_file::AsyncFileStorage`], io_uring behind the `uring`
//!   feature). Each backend advertises what it can do through
//!   [`storage::StorageCaps`]; [`storage_builder::StorageBuilder`] stacks
//!   base backends with the checksum/fault/retry wrappers.
//! * [`stream`] — stripe-aligned sequential readers/writers and the k-way
//!   merge kernel, all charging their staging buffers to internal memory.
//! * [`stats::IoStats`] — per-disk and total block/step counters, phase
//!   bracketing, and the pass metrics used in every experiment.
//!
//! ## Example
//!
//! ```
//! use pdm_model::prelude::*;
//!
//! // A machine with D = 4 disks, B = √M = 16, M = 256 keys.
//! let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, 16)).unwrap();
//!
//! // The input resides on disk (ingest is not charged I/O).
//! let input: Vec<u64> = (0..1024).rev().collect();
//! let region = pdm.alloc_region_for_keys(input.len()).unwrap();
//! pdm.ingest(&region, &input).unwrap();
//!
//! // Stream it back in one pass: 64 blocks over 4 disks = 16 steps.
//! let mut reader = RunReader::striped(&pdm, region).unwrap();
//! let mut buf = Vec::new();
//! reader.take_into(&mut pdm, 1024, &mut buf).unwrap();
//! assert_eq!(pdm.stats().read_steps, 16);
//! assert_eq!(pdm.stats().read_passes(1024, 4, 16), 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod file_faults;
pub mod hist;
pub mod key;
pub mod layout;
pub mod machine;
pub mod mem;
pub mod overlap;
pub mod pool;
pub mod probe;
pub mod stats;
pub mod storage;
pub mod storage_async_file;
pub mod storage_builder;
pub mod storage_file;
pub mod storage_flaky;
pub mod storage_retry;
pub mod storage_threaded;
pub mod stream;

/// Convenient re-exports of the types nearly every consumer needs.
pub mod prelude {
    pub use crate::checkpoint::{fnv1a, Checkpoint, CheckpointStore, Manifest, FNV_OFFSET};
    pub use crate::config::PdmConfig;
    pub use crate::error::{PdmError, Result};
    pub use crate::file_faults::{FileFaultMode, FileFaults};
    pub use crate::hist::{HistSnapshot, LatencyHist};
    pub use crate::key::{PdmKey, RankedKey, StrN, Tagged};
    pub use crate::layout::{BlockAddr, Region};
    pub use crate::machine::Pdm;
    pub use crate::mem::{MemGuard, MemTracker, TrackedBuf};
    pub use crate::pool::{BlockPool, PoolStats};
    pub use crate::probe::{replay, Probe, ProbeEvent, ReplayedPhase, ReplayedStats};
    pub use crate::stats::{
        DiskWall, IoStats, OverlapCounters, PhaseStall, PhaseStats, RetrySnapshot, Span, SpanSink,
        UringWall, WallStats,
    };
    pub use crate::storage::{MemStorage, Storage, StorageCaps};
    pub use crate::storage_async_file::{AsyncFileOptions, AsyncFileStorage};
    pub use crate::storage_builder::{BackendKind, StorageBuilder};
    pub use crate::storage_file::FileStorage;
    pub use crate::storage_flaky::{FailMode, FlakyStorage};
    pub use crate::storage_retry::{RetryCounters, RetryPolicy, RetryingStorage};
    pub use crate::storage_threaded::ThreadedStorage;
    pub use crate::overlap::{
        FlushBehindWriter, PendingRead, PendingWrite, PrefetchReader, ReadAhead, TrackedRead,
        TrackedWrite, WriteBehind, DEFAULT_QUEUE_DEPTH,
    };
    pub use crate::stream::{kway_merge, RunReader, RunWriter};
}

pub use prelude::*;
