//! Transient-fault retry layer over any storage backend.
//!
//! [`RetryingStorage`] wraps a backend and reissues block operations that
//! fail with a *transient* error ([`PdmError::is_transient`]): interrupted
//! syscalls, timeouts, injected [`crate::storage_flaky::FailMode`]
//! transient faults. Permanent errors (bad addresses, dead disks,
//! [`PdmError::Corrupt`]) propagate immediately — retrying them would
//! return the same failure and hide the bug.
//!
//! Retries are charged *deterministic simulated backoff*: retry `k` of an
//! operation costs `k · backoff_steps` parallel steps, accumulated in a
//! [`RetryCounters`] handle that the machine folds into
//! [`crate::stats::IoStats::retry`] at phase boundaries. Backoff steps
//! live beside — not inside — the read/write step counters, so a run's
//! pass counts stay directly comparable with and without fault injection
//! while the retry cost remains visible in reports and probe gauges.
//!
//! The counters are shared through an [`std::sync::Arc`] of atomics:
//! cloning the handle before moving the storage into a machine keeps a
//! live view from outside, exactly like [`crate::mem::MemTracker`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::Result;
use crate::key::PdmKey;
use crate::stats::RetrySnapshot;
use crate::storage::Storage;

/// How many attempts a block operation gets and what each retry costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). `1` disables
    /// retrying; `0` is treated as `1`.
    pub max_attempts: u32,
    /// Simulated parallel steps charged for the `k`-th retry of an
    /// operation: `k · backoff_steps` (linear backoff). Purely an
    /// accounting figure — no wall-clock sleeping happens.
    pub backoff_steps: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_steps: 1,
        }
    }
}

#[derive(Debug, Default)]
struct RetryInner {
    reads_retried: AtomicU64,
    writes_retried: AtomicU64,
    completion_reads: AtomicU64,
    completion_writes: AtomicU64,
    exhausted: AtomicU64,
    backoff_steps: AtomicU64,
    /// Retries charged to the disk that originated the operation,
    /// grown on demand (sync retries carry no disk and are not charged).
    per_disk: Mutex<Vec<u64>>,
}

/// Shared live counters of a [`RetryingStorage`]. Clone the handle to
/// observe retries from outside the machine that owns the storage.
#[derive(Debug, Clone, Default)]
pub struct RetryCounters(Arc<RetryInner>);

impl RetryCounters {
    /// A fresh all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> RetrySnapshot {
        RetrySnapshot {
            reads_retried: self.0.reads_retried.load(Ordering::Relaxed),
            writes_retried: self.0.writes_retried.load(Ordering::Relaxed),
            exhausted: self.0.exhausted.load(Ordering::Relaxed),
            backoff_steps: self.0.backoff_steps.load(Ordering::Relaxed),
            per_disk_retries: self.0.per_disk.lock().unwrap().clone(),
            completion_reads_retried: self.0.completion_reads.load(Ordering::Relaxed),
            completion_writes_retried: self.0.completion_writes.load(Ordering::Relaxed),
        }
    }

    fn record_retry(&self, write: bool, disk: Option<usize>, attempt: u64, policy: &RetryPolicy) {
        let ctr = if write {
            &self.0.writes_retried
        } else {
            &self.0.reads_retried
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        self.charge(disk, attempt, policy);
    }

    /// Record one *completion-time* reissue: an async disk worker classified
    /// a grouped-batch failure after the I/O completed and re-ran just the
    /// failed block. Backoff and per-disk attribution are charged exactly
    /// like issue-time retries; only the read/write counter differs, so
    /// reports can split the two.
    pub(crate) fn record_completion_retry(
        &self,
        write: bool,
        disk: usize,
        attempt: u64,
        policy: &RetryPolicy,
    ) {
        let ctr = if write {
            &self.0.completion_writes
        } else {
            &self.0.completion_reads
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        self.charge(Some(disk), attempt, policy);
    }

    fn charge(&self, disk: Option<usize>, attempt: u64, policy: &RetryPolicy) {
        self.0
            .backoff_steps
            .fetch_add(attempt * policy.backoff_steps, Ordering::Relaxed);
        if let Some(d) = disk {
            let mut per_disk = self.0.per_disk.lock().unwrap();
            if per_disk.len() <= d {
                per_disk.resize(d + 1, 0);
            }
            per_disk[d] += 1;
        }
    }

    pub(crate) fn record_exhausted(&self) {
        self.0.exhausted.fetch_add(1, Ordering::Relaxed);
    }
}

/// A storage wrapper that retries transient block-operation failures.
///
/// Batch operations deliberately use the trait's block-by-block default
/// so each block gets its own retry budget; a single bad block in a batch
/// costs one reissue, not a whole-batch replay.
pub struct RetryingStorage<S> {
    inner: S,
    policy: RetryPolicy,
    counters: RetryCounters,
}

impl<S> RetryingStorage<S> {
    /// Wrap `inner` with the given retry policy.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self::with_counters(inner, policy, RetryCounters::new())
    }

    /// Wrap `inner`, folding retries into an externally created counter
    /// set. [`crate::storage_builder::StorageBuilder`] uses this to share
    /// one counter set between this issue-time layer and a backend's
    /// completion-time retry (the async path), so `IoStats.retry` sees a
    /// single unified stream.
    pub fn with_counters(inner: S, policy: RetryPolicy, counters: RetryCounters) -> Self {
        Self {
            inner,
            policy,
            counters,
        }
    }

    /// A live handle to this layer's retry counters.
    pub fn counters(&self) -> RetryCounters {
        self.counters.clone()
    }

    /// The active policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The wrapped backend.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn with_retry<T>(
        &mut self,
        write: bool,
        disk: Option<usize>,
        mut op: impl FnMut(&mut S) -> Result<T>,
    ) -> Result<T> {
        let attempts = self.policy.max_attempts.max(1);
        let mut attempt: u32 = 0;
        loop {
            match op(&mut self.inner) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => {
                    attempt += 1;
                    if attempt >= attempts {
                        self.counters.record_exhausted();
                        return Err(e);
                    }
                    self.counters
                        .record_retry(write, disk, u64::from(attempt), &self.policy);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl<K: PdmKey, S: Storage<K>> Storage<K> for RetryingStorage<S> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
        self.with_retry(true, Some(disk), |s| s.ensure_capacity(disk, slots))
    }

    fn read_block(&mut self, disk: usize, slot: usize, out: &mut [K]) -> Result<()> {
        self.with_retry(false, Some(disk), |s| s.read_block(disk, slot, out))
    }

    fn write_block(&mut self, disk: usize, slot: usize, data: &[K]) -> Result<()> {
        self.with_retry(true, Some(disk), |s| s.write_block(disk, slot, data))
    }

    fn sync(&mut self) -> Result<()> {
        self.with_retry(true, None, |s| s.sync())
    }

    fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        self.inner.pool_stats()
    }

    fn wall_snapshot(&self) -> Option<crate::stats::StorageWallSnapshot> {
        self.inner.wall_snapshot()
    }

    fn attach_span_sink(&mut self, sink: std::sync::Arc<crate::stats::SpanSink>) {
        self.inner.attach_span_sink(sink)
    }

    /// Inner caps, unchanged. Overlap survives the retry layer: an
    /// issue-time failure of a `start_*_batch` call degrades that one
    /// batch to the blocking per-block path (see `start_read_batch`), and
    /// backends that advertise `overlap` handle per-block *completion*
    /// failures themselves (the async backend's workers reissue failed
    /// blocks and fold them into the same shared [`RetryCounters`]).
    fn caps(&self) -> crate::storage::StorageCaps {
        self.inner.caps()
    }

    /// Forwarded to the inner backend so overlap stays live. A transient
    /// failure of the *start* call itself (an injected issue-time fault)
    /// fails the whole batch before anything was issued, so retrying the
    /// start would re-draw *every* block's fault schedule per attempt —
    /// the effective failure rate scales with the batch size and a budget
    /// that is bulletproof per block can exhaust per batch. Instead the
    /// one faulted batch degrades to the blocking per-block path (the
    /// batch default decomposes through `read_block`, giving each block
    /// its own budget) behind an eager completion token; only that batch
    /// loses latency hiding. The degradation itself is recorded as one
    /// unattributed retry so healing stays visible in the counters.
    fn start_read_batch(
        &mut self,
        reqs: &[(usize, usize)],
    ) -> Result<Box<dyn crate::overlap::PendingRead<K> + Send>> {
        match self.inner.start_read_batch(reqs) {
            Ok(pending) => Ok(pending),
            Err(e) if e.is_transient() => {
                self.counters.record_retry(false, None, 1, &self.policy);
                let b = self.block_size();
                let mut data = vec![K::MAX; reqs.len() * b];
                self.read_batch(reqs, &mut data)?;
                Ok(Box::new(crate::overlap::EagerPending::new(data)))
            }
            Err(e) => Err(e),
        }
    }

    /// See [`RetryingStorage`]'s `start_read_batch`; same protocol for
    /// writes. Safe to re-drive because a failed start issued nothing.
    fn start_write_batch(
        &mut self,
        reqs: &[(usize, usize)],
        data: &[K],
    ) -> Result<Box<dyn crate::overlap::PendingWrite + Send>> {
        match self.inner.start_write_batch(reqs, data) {
            Ok(pending) => Ok(pending),
            Err(e) if e.is_transient() => {
                self.counters.record_retry(true, None, 1, &self.policy);
                self.write_batch(reqs, data)?;
                Ok(Box::new(crate::overlap::EagerWriteDone))
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::storage_flaky::{FailMode, FlakyStorage};

    fn store(mode: FailMode, policy: RetryPolicy) -> RetryingStorage<FlakyStorage<MemStorage<u64>>> {
        let mut inner = MemStorage::new(1, 4);
        inner.ensure_capacity(0, 8).unwrap();
        RetryingStorage::new(FlakyStorage::new(inner, mode), policy)
    }

    #[test]
    fn transient_faults_heal_within_budget() {
        // EveryNth(2) fails ops 0, 2, 4, …; one retry always lands on an
        // odd index and succeeds.
        let mut s = store(FailMode::EveryNth(2), RetryPolicy::default());
        let mut out = [0u64; 4];
        for i in 0..10 {
            s.read_block(0, i % 8, &mut out).unwrap();
        }
        let snap = s.counters().snapshot();
        assert!(snap.reads_retried >= 1);
        assert_eq!(snap.exhausted, 0);
        assert_eq!(snap.backoff_steps, snap.reads_retried, "first retries cost 1 step each");
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        let mut s = store(FailMode::NthRead(0), RetryPolicy::default());
        let mut out = [0u64; 4];
        assert!(s.read_block(0, 0, &mut out).is_err());
        let snap = s.counters().snapshot();
        assert_eq!(snap.total_retries(), 0);
        assert_eq!(snap.exhausted, 0, "permanent failure is not an exhausted retry");
        // the schedule fired once; the very next attempt (op 1) succeeds
        assert!(s.read_block(0, 0, &mut out).is_ok());
    }

    #[test]
    fn exhaustion_is_counted_and_propagates_transient_error() {
        // EveryNth(1) fails every attempt: the budget must run out.
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_steps: 2,
        };
        let mut s = store(FailMode::EveryNth(1), policy);
        let mut out = [0u64; 4];
        let e = s.read_block(0, 0, &mut out).unwrap_err();
        assert!(e.is_transient());
        let snap = s.counters().snapshot();
        assert_eq!(snap.reads_retried, 2, "3 attempts = 2 retries");
        assert_eq!(snap.exhausted, 1);
        // linear backoff: retry 1 costs 2 steps, retry 2 costs 4
        assert_eq!(snap.backoff_steps, 6);
    }

    #[test]
    fn writes_count_separately_from_reads() {
        let mut s = store(FailMode::EveryNth(2), RetryPolicy::default());
        s.write_block(0, 0, &[1, 2, 3, 4]).unwrap();
        let snap = s.counters().snapshot();
        assert_eq!(snap.writes_retried, 1);
        assert_eq!(snap.reads_retried, 0);
    }

    #[test]
    fn batch_retries_are_charged_to_the_originating_disk() {
        // Two disks; the fault schedule is shared, so retried blocks come
        // from whichever disk the failing op targeted. Every reissue must
        // land on that disk's per-disk counter — re-issued async batches
        // used to lose this attribution entirely.
        let mut inner = MemStorage::<u64>::new(2, 4);
        inner.ensure_capacity(0, 8).unwrap();
        inner.ensure_capacity(1, 8).unwrap();
        let mut s = RetryingStorage::new(
            FlakyStorage::new(inner, FailMode::EveryNth(2)),
            RetryPolicy::default(),
        );
        // A cross-disk write batch followed by a read batch; the retry
        // layer reissues batches block by block, so each retry knows its
        // originating disk.
        let reqs = [(0, 0), (1, 0), (0, 1), (1, 1)];
        let data: Vec<u64> = (0..16).collect();
        s.write_batch(&reqs, &data).unwrap();
        let mut out = vec![0u64; 16];
        s.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(out, data);
        let snap = s.counters().snapshot();
        assert!(snap.total_retries() > 0, "EveryNth(2) must have fired");
        let attributed: u64 = snap.per_disk_retries.iter().sum();
        assert_eq!(
            attributed,
            snap.total_retries(),
            "every block retry must be charged to exactly one disk"
        );
        assert!(snap.per_disk_retries.len() <= 2);
    }

    #[test]
    fn sync_retries_carry_no_disk_attribution() {
        // Sync is a whole-storage barrier; its retries are counted but
        // charged to no disk. FlakyStorage does not inject into sync, so
        // use a stub whose first sync fails transiently.
        struct FlakySync {
            inner: MemStorage<u64>,
            failed_once: bool,
        }
        impl Storage<u64> for FlakySync {
            fn num_disks(&self) -> usize {
                self.inner.num_disks()
            }
            fn block_size(&self) -> usize {
                self.inner.block_size()
            }
            fn ensure_capacity(&mut self, disk: usize, slots: usize) -> Result<()> {
                self.inner.ensure_capacity(disk, slots)
            }
            fn read_block(&mut self, disk: usize, slot: usize, out: &mut [u64]) -> Result<()> {
                self.inner.read_block(disk, slot, out)
            }
            fn write_block(&mut self, disk: usize, slot: usize, data: &[u64]) -> Result<()> {
                self.inner.write_block(disk, slot, data)
            }
            fn sync(&mut self) -> Result<()> {
                if !self.failed_once {
                    self.failed_once = true;
                    return Err(crate::error::PdmError::Io(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "sync interrupted",
                    )));
                }
                self.inner.sync()
            }
        }
        let mut s = RetryingStorage::new(
            FlakySync {
                inner: MemStorage::new(2, 4),
                failed_once: false,
            },
            RetryPolicy::default(),
        );
        s.sync().unwrap();
        let snap = s.counters().snapshot();
        assert_eq!(snap.writes_retried, 1);
        assert_eq!(snap.per_disk_retries.iter().sum::<u64>(), 0);
    }

    #[test]
    fn max_attempts_zero_still_attempts_once() {
        let policy = RetryPolicy {
            max_attempts: 0,
            backoff_steps: 1,
        };
        let mut s = store(FailMode::Never, policy);
        let mut out = [0u64; 4];
        assert!(s.read_block(0, 0, &mut out).is_ok());
    }
}
