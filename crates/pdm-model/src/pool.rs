//! Recyclable block-buffer pool for the threaded backend.
//!
//! Every read reply and write request on [`crate::storage_threaded::ThreadedStorage`]
//! used to allocate a fresh `Vec<K>` per block, putting the allocator on the
//! hot path of every I/O step. A [`BlockPool`] is shared between the storage
//! handle and its disk workers: buffers travel inside channel messages and
//! come back to the free list when the recipient is done, so a steady-state
//! sort recycles the same handful of allocations for millions of blocks.
//!
//! The pool is deliberately simple — a mutexed free list plus atomic
//! counters — because contention is bounded by `D` workers and the critical
//! section is a `Vec` push/pop.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Occupancy and traffic counters for a [`BlockPool`], snapshot atomically
/// enough for telemetry (individual counters are exact; cross-counter skew
/// is possible while workers are in flight).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from the free list.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
    /// Buffers returned via `put` (retained or dropped).
    pub returns: u64,
    /// Buffers currently sitting in the free list.
    pub free: usize,
}

impl PoolStats {
    /// Fraction of `get` calls served without allocating; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A free list of `Vec<K>` block buffers shared by reference-counted clones.
#[derive(Debug)]
pub struct BlockPool<K> {
    free: Mutex<Vec<Vec<K>>>,
    /// Buffers beyond this many are dropped on `put` instead of retained,
    /// bounding idle memory at `max_retained × B` keys. Grows monotonically
    /// via [`BlockPool::reserve_retained`] as callers observe how many
    /// buffers a dispatch actually keeps in flight.
    max_retained: AtomicUsize,
    /// The one buffer capacity this pool recycles; 0 until the first `get`
    /// pins it (or [`BlockPool::for_blocks`] sets it up front). A `put` of a
    /// buffer with any other capacity drops it instead of retaining it, so
    /// two machines with different block sizes sharing a process can never
    /// hand each other mis-sized blocks or over-retain memory.
    expected: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
}

impl<K> BlockPool<K> {
    /// Pool retaining at most `max_retained` idle buffers. The recycled
    /// capacity is pinned by the first `get`.
    pub fn new(max_retained: usize) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            max_retained: AtomicUsize::new(max_retained),
            expected: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
        }
    }

    /// Pool retaining at most `max_retained` idle buffers, all of exactly
    /// `block_capacity` keys. Mis-sized buffers are dropped on `put`.
    pub fn for_blocks(max_retained: usize, block_capacity: usize) -> Self {
        let pool = Self::new(max_retained);
        pool.expected.store(block_capacity, Ordering::Relaxed);
        pool
    }

    /// Grow the retention cap to at least `n` buffers (never shrinks).
    ///
    /// A fixed cap sized for single-block traffic silently degrades batch
    /// dispatch: a batch larger than the cap drops its excess buffers on
    /// `put` and re-allocates them on the next batch, every batch. Callers
    /// that know their in-flight count announce it here instead.
    pub fn reserve_retained(&self, n: usize) {
        self.max_retained.fetch_max(n, Ordering::Relaxed);
    }

    /// Take an empty buffer with at least `capacity` reserved. Served from
    /// the free list when possible; the returned buffer always has len 0.
    pub fn get(&self, capacity: usize) -> Vec<K> {
        // First caller pins the recycled capacity for the pool's lifetime.
        let _ = self
            .expected
            .compare_exchange(0, capacity, Ordering::Relaxed, Ordering::Relaxed);
        let recycled = self.free.lock().expect("pool lock").pop();
        match recycled {
            Some(mut v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                if v.capacity() < capacity {
                    v.reserve_exact(capacity - v.len());
                }
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Return a buffer to the free list (cleared), or drop it if the list
    /// is already at `max_retained` or the buffer's capacity doesn't match
    /// the pool's pinned block capacity (a foreign-geometry buffer).
    pub fn put(&self, mut v: Vec<K>) {
        self.returns.fetch_add(1, Ordering::Relaxed);
        v.clear();
        let exp = self.expected.load(Ordering::Relaxed);
        if exp != 0 && v.capacity() != exp {
            return;
        }
        let mut free = self.free.lock().expect("pool lock");
        if free.len() < self.max_retained.load(Ordering::Relaxed) {
            free.push(v);
        }
    }

    /// Snapshot the traffic counters and current free-list depth.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            free: self.free.lock().expect("pool lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_recycles_allocations() {
        let pool = BlockPool::<u64>::new(8);
        let a = pool.get(16);
        let cap = a.capacity();
        assert!(cap >= 16);
        pool.put(a);
        let b = pool.get(16);
        assert_eq!(b.capacity(), cap, "second get must reuse the first buffer");
        let st = pool.stats();
        assert_eq!((st.hits, st.misses, st.returns), (1, 1, 1));
        assert!((st.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn retention_cap_bounds_idle_memory() {
        let pool = BlockPool::<u64>::new(2);
        let bufs: Vec<_> = (0..4).map(|_| pool.get(8)).collect();
        for b in bufs {
            pool.put(b);
        }
        let st = pool.stats();
        assert_eq!(st.free, 2, "free list capped at max_retained");
        assert_eq!(st.returns, 4, "all returns counted, retained or not");
    }

    #[test]
    fn reserve_retained_grows_but_never_shrinks() {
        let pool = BlockPool::<u64>::new(1);
        pool.reserve_retained(3);
        pool.reserve_retained(2); // no-op: cap only grows
        let bufs: Vec<_> = (0..5).map(|_| pool.get(8)).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.stats().free, 3, "cap grew to 3 and stayed there");
    }

    #[test]
    fn foreign_geometry_buffers_are_dropped_on_put() {
        // A pool pinned to 64-key blocks must not retain a buffer from a
        // machine with a different B: recycling it would hand an oversized
        // (or undersized) block to the next get and over-retain memory.
        let pool = BlockPool::<u64>::for_blocks(8, 64);
        let native = pool.get(64);
        assert_eq!(native.capacity(), 64);
        pool.put(native);
        assert_eq!(pool.stats().free, 1);

        let foreign = Vec::with_capacity(128);
        pool.put(foreign);
        let st = pool.stats();
        assert_eq!(st.free, 1, "mis-sized buffer must be dropped, not retained");
        assert_eq!(st.returns, 2, "drops still count as returns");

        // And the surviving buffer keeps its exact pinned capacity.
        assert_eq!(pool.get(64).capacity(), 64);
    }

    #[test]
    fn legacy_pool_pins_capacity_on_first_get() {
        let pool = BlockPool::<u64>::new(4);
        let a = pool.get(16);
        assert_eq!(a.capacity(), 16);
        pool.put(a);
        assert_eq!(pool.stats().free, 1);
        // A later, differently-sized buffer is rejected.
        pool.put(Vec::with_capacity(32));
        assert_eq!(pool.stats().free, 1);
    }

    #[test]
    fn buffers_come_back_empty() {
        let pool = BlockPool::<u64>::new(4);
        let mut v = pool.get(4);
        v.extend_from_slice(&[1, 2, 3]);
        pool.put(v);
        assert!(pool.get(4).is_empty());
    }
}
