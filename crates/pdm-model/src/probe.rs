//! The structured probe: a step-clocked event stream for observability.
//!
//! Every claim the paper makes is a *counted* quantity — passes, parallel
//! steps, peak residency, fallback probability — and the aggregate
//! [`crate::stats::IoStats`] totals compress all of it into a handful of
//! numbers. The probe keeps the uncompressed story: one [`ProbeEvent`] per
//! I/O batch (with per-disk multiplicities, phase membership, and group
//! membership), phase boundaries with memory gauges sampled from
//! [`crate::mem::MemTracker`], I/O-group open/close with the deferred step
//! charge, and named scalar gauges (cleanup carry occupancy, boundary
//! margins, …) emitted by higher layers.
//!
//! The stream is **replayable**: [`replay`] folds the events back into the
//! aggregate counters, and the two must agree exactly — that equivalence is
//! asserted in the backend tests, so the probe can never drift from the
//! cost model it observes.
//!
//! The probe is default-off and costs one `Option` branch per recorded
//! batch when disabled. Events serialize with serde (the CLI dumps them as
//! JSONL); phase labels are interned — `Io` events carry a phase *index*,
//! defined by the order of `PhaseBegin` events in the stream, so a dumped
//! stream is self-describing without repeating strings per batch.

use serde::{Deserialize, Serialize};

/// One structured observation. `step` is the running parallel-step clock
/// (read + write steps charged so far) *after* the event took effect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "ev", rename_all = "snake_case")]
pub enum ProbeEvent {
    /// One I/O batch. `steps` is what the batch was charged at record time —
    /// zero while an I/O group is open (the group settles the cost later).
    Io {
        /// Step clock after this batch.
        step: u64,
        /// Write batch (vs read).
        write: bool,
        /// Blocks moved.
        blocks: u64,
        /// Parallel steps charged now (0 if deferred into a group).
        steps: u64,
        /// Per-disk block multiplicities (length `D`).
        per_disk: Vec<u64>,
        /// Index of the open phase (k-th `PhaseBegin` in the stream).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        phase: Option<u32>,
        /// Id of the open I/O group, if any.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        group: Option<u64>,
    },
    /// A named phase opened; defines phase index `id`.
    PhaseBegin {
        /// Step clock at open.
        step: u64,
        /// Phase index (dense, in stream order).
        id: u32,
        /// Phase label.
        name: String,
        /// Internal-memory residency (keys) sampled at the boundary.
        mem_current: u64,
        /// Running high-water residency at the boundary.
        mem_peak: u64,
    },
    /// The open phase closed.
    PhaseEnd {
        /// Step clock at close (after any group settlement).
        step: u64,
        /// Phase index being closed.
        id: u32,
        /// Residency sampled at close.
        mem_current: u64,
        /// Running high-water residency at close.
        mem_peak: u64,
    },
    /// An I/O scheduling group opened; batches defer their step cost.
    GroupBegin {
        /// Step clock at open.
        step: u64,
        /// Group id (monotone per machine).
        id: u64,
    },
    /// A group charged its deferred cost: `max(per-disk blocks)` each way.
    /// Emitted both at `end_group` and when a phase boundary settles an
    /// open group early (the group then continues under a fresh id).
    GroupEnd {
        /// Step clock after the charge.
        step: u64,
        /// Group id being settled.
        id: u64,
        /// Deferred read steps charged.
        read_steps: u64,
        /// Deferred write steps charged.
        write_steps: u64,
    },
    /// An overlapped (asynchronous) I/O batch was issued. The matching
    /// accounting lives in the `Io` event recorded at the same step —
    /// overlap charges step costs at issue time — so this pair only adds
    /// the *identity* needed to measure latency hiding: a completion with
    /// the same `id` follows when the batch is retired.
    OverlapIssue {
        /// Step clock at issue (after the batch's charge).
        step: u64,
        /// Write batch (vs read).
        write: bool,
        /// Blocks in flight.
        blocks: u64,
        /// Token id pairing this issue with its completion.
        id: u64,
    },
    /// An overlapped batch retired. `stalled` records whether the consumer
    /// had to wait (the data was not yet resident) — the per-event form of
    /// the [`crate::stats::OverlapCounters`] hit/stall split.
    OverlapComplete {
        /// Step clock at retirement (overlap completion charges no steps).
        step: u64,
        /// Write batch (vs read).
        write: bool,
        /// Token id pairing this completion with its issue.
        id: u64,
        /// Whether retiring the batch had to block.
        stalled: bool,
    },
    /// A named scalar gauge from a higher layer (e.g. `cleaner.margin`).
    Gauge {
        /// Step clock when sampled.
        step: u64,
        /// Gauge name.
        name: String,
        /// Sampled value (signed: margins may go negative).
        value: i64,
        /// Phase open when sampled.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        phase: Option<u32>,
    },
}

/// The event recorder embedded in [`crate::stats::IoStats`] when enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Probe {
    events: Vec<ProbeEvent>,
    cap: usize,
    /// Events discarded after the cap was reached.
    pub dropped: u64,
    step: u64,
    phase_names: Vec<String>,
    current_phase: Option<u32>,
    open_group: Option<u64>,
    next_group: u64,
}

impl Probe {
    /// A probe retaining at most `cap` events (further events are counted
    /// in [`Probe::dropped`] but not stored).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            ..Self::default()
        }
    }

    /// Recorded events, in order.
    pub fn events(&self) -> &[ProbeEvent] {
        &self.events
    }

    /// Phase labels, indexed by the `phase` field of [`ProbeEvent::Io`].
    pub fn phase_names(&self) -> &[String] {
        &self.phase_names
    }

    /// The running parallel-step clock.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The configured event cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn push(&mut self, ev: ProbeEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    pub(crate) fn on_batch(&mut self, write: bool, blocks: u64, steps: u64, per_disk: &[u64]) {
        self.step += steps;
        let ev = ProbeEvent::Io {
            step: self.step,
            write,
            blocks,
            steps,
            per_disk: per_disk.to_vec(),
            phase: self.current_phase,
            group: self.open_group,
        };
        self.push(ev);
    }

    pub(crate) fn on_phase_begin(&mut self, name: &str, mem_current: u64, mem_peak: u64) {
        let id = self.phase_names.len() as u32;
        self.phase_names.push(name.to_string());
        self.current_phase = Some(id);
        let ev = ProbeEvent::PhaseBegin {
            step: self.step,
            id,
            name: name.to_string(),
            mem_current,
            mem_peak,
        };
        self.push(ev);
    }

    pub(crate) fn on_phase_end(&mut self, mem_current: u64, mem_peak: u64) {
        if let Some(id) = self.current_phase.take() {
            let ev = ProbeEvent::PhaseEnd {
                step: self.step,
                id,
                mem_current,
                mem_peak,
            };
            self.push(ev);
        }
    }

    pub(crate) fn on_group_begin(&mut self) {
        let id = self.next_group;
        self.next_group += 1;
        self.open_group = Some(id);
        let ev = ProbeEvent::GroupBegin { step: self.step, id };
        self.push(ev);
    }

    /// Settle the open group's deferred charge. When `reopen` is true the
    /// group logically continues (a phase boundary split it), so a fresh
    /// `GroupBegin` follows immediately.
    pub(crate) fn on_group_settle(&mut self, read_steps: u64, write_steps: u64, reopen: bool) {
        let Some(id) = self.open_group.take() else {
            return;
        };
        self.step += read_steps + write_steps;
        let ev = ProbeEvent::GroupEnd {
            step: self.step,
            id,
            read_steps,
            write_steps,
        };
        self.push(ev);
        if reopen {
            self.on_group_begin();
        }
    }

    pub(crate) fn on_overlap_issue(&mut self, write: bool, blocks: u64, id: u64) {
        let ev = ProbeEvent::OverlapIssue {
            step: self.step,
            write,
            blocks,
            id,
        };
        self.push(ev);
    }

    pub(crate) fn on_overlap_complete(&mut self, write: bool, id: u64, stalled: bool) {
        let ev = ProbeEvent::OverlapComplete {
            step: self.step,
            write,
            id,
            stalled,
        };
        self.push(ev);
    }

    pub(crate) fn on_gauge(&mut self, name: &str, value: i64) {
        let ev = ProbeEvent::Gauge {
            step: self.step,
            name: name.to_string(),
            value,
            phase: self.current_phase,
        };
        self.push(ev);
    }
}

/// Per-phase counters reconstructed by [`replay`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplayedPhase {
    /// Phase label (from its `PhaseBegin`).
    pub name: String,
    /// Blocks read while the phase was open.
    pub blocks_read: u64,
    /// Blocks written while the phase was open.
    pub blocks_written: u64,
    /// Read steps charged while the phase was open.
    pub read_steps: u64,
    /// Write steps charged while the phase was open.
    pub write_steps: u64,
}

/// Aggregate counters reconstructed from an event stream by [`replay`].
///
/// If no events were dropped, these must equal the [`crate::stats::IoStats`]
/// totals of the run that produced the stream — the probe is a lossless
/// refinement of the aggregate accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplayedStats {
    /// Total blocks read.
    pub blocks_read: u64,
    /// Total blocks written.
    pub blocks_written: u64,
    /// Total parallel read steps.
    pub read_steps: u64,
    /// Total parallel write steps.
    pub write_steps: u64,
    /// Per-disk read counts.
    pub per_disk_reads: Vec<u64>,
    /// Per-disk write counts.
    pub per_disk_writes: Vec<u64>,
    /// Completed phases, in order.
    pub phases: Vec<ReplayedPhase>,
}

/// Fold an event stream back into aggregate counters.
///
/// Group settlements (`GroupEnd`) are attributed to the phase open at the
/// settlement point — exactly the attribution rule the live accounting
/// uses, so a replayed stream reproduces `IoStats` phase-for-phase.
pub fn replay(events: &[ProbeEvent], num_disks: usize) -> ReplayedStats {
    let mut out = ReplayedStats {
        per_disk_reads: vec![0; num_disks],
        per_disk_writes: vec![0; num_disks],
        ..ReplayedStats::default()
    };
    // phases currently open (at most one) + completed, keyed by id
    let mut open: Option<(u32, ReplayedPhase)> = None;
    for ev in events {
        match ev {
            ProbeEvent::Io {
                write,
                blocks,
                steps,
                per_disk,
                ..
            } => {
                type PhaseField = fn(&mut ReplayedPhase) -> &mut u64;
                let (total, per, steps_total, phase_blocks, phase_steps): (
                    &mut u64,
                    &mut Vec<u64>,
                    &mut u64,
                    PhaseField,
                    PhaseField,
                ) = if *write {
                    (
                        &mut out.blocks_written,
                        &mut out.per_disk_writes,
                        &mut out.write_steps,
                        |p| &mut p.blocks_written,
                        |p| &mut p.write_steps,
                    )
                } else {
                    (
                        &mut out.blocks_read,
                        &mut out.per_disk_reads,
                        &mut out.read_steps,
                        |p| &mut p.blocks_read,
                        |p| &mut p.read_steps,
                    )
                };
                *total += blocks;
                *steps_total += steps;
                for (acc, c) in per.iter_mut().zip(per_disk) {
                    *acc += c;
                }
                if let Some((_, p)) = &mut open {
                    *phase_blocks(p) += blocks;
                    *phase_steps(p) += steps;
                }
            }
            ProbeEvent::PhaseBegin { id, name, .. } => {
                if let Some((_, p)) = open.take() {
                    out.phases.push(p);
                }
                open = Some((
                    *id,
                    ReplayedPhase {
                        name: name.clone(),
                        ..ReplayedPhase::default()
                    },
                ));
            }
            ProbeEvent::PhaseEnd { id, .. } => {
                if let Some((open_id, p)) = open.take() {
                    debug_assert_eq!(open_id, *id, "phase end out of order");
                    out.phases.push(p);
                }
            }
            ProbeEvent::GroupEnd {
                read_steps,
                write_steps,
                ..
            } => {
                out.read_steps += read_steps;
                out.write_steps += write_steps;
                if let Some((_, p)) = &mut open {
                    p.read_steps += read_steps;
                    p.write_steps += write_steps;
                }
            }
            // Overlap issue/completion pairs are pure identity events: the
            // step charge of an overlapped batch is carried by its `Io`
            // event, so replay ignores them like gauges.
            ProbeEvent::GroupBegin { .. }
            | ProbeEvent::Gauge { .. }
            | ProbeEvent::OverlapIssue { .. }
            | ProbeEvent::OverlapComplete { .. } => {}
        }
    }
    if let Some((_, p)) = open.take() {
        out.phases.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_caps_and_counts_drops() {
        let mut p = Probe::new(2);
        p.on_batch(false, 4, 1, &[1, 1, 1, 1]);
        p.on_batch(false, 4, 1, &[1, 1, 1, 1]);
        p.on_batch(true, 4, 1, &[1, 1, 1, 1]);
        assert_eq!(p.events().len(), 2);
        assert_eq!(p.dropped, 1);
        // the step clock keeps advancing even past the cap
        assert_eq!(p.step(), 3);
    }

    #[test]
    fn events_serialize_as_tagged_json() {
        let mut p = Probe::new(16);
        p.on_phase_begin("demo", 10, 20);
        p.on_batch(false, 2, 1, &[1, 1]);
        let line = serde_json::to_string(&p.events()[1]).unwrap();
        assert!(line.contains("\"ev\":\"io\""), "{line}");
        assert!(line.contains("\"per_disk\":[1,1]"), "{line}");
        let back: ProbeEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, p.events()[1]);
    }

    #[test]
    fn replay_reconstructs_totals_and_phases() {
        let mut p = Probe::new(64);
        p.on_phase_begin("a", 0, 0);
        p.on_batch(false, 4, 1, &[1, 1, 1, 1]);
        p.on_batch(true, 2, 2, &[2, 0, 0, 0]);
        p.on_phase_end(0, 0);
        p.on_phase_begin("b", 0, 0);
        p.on_group_begin();
        p.on_batch(true, 1, 0, &[1, 0, 0, 0]); // deferred
        p.on_batch(true, 1, 0, &[0, 1, 0, 0]); // deferred
        p.on_group_settle(0, 1, false);
        p.on_phase_end(0, 0);
        let r = replay(p.events(), 4);
        assert_eq!(r.blocks_read, 4);
        assert_eq!(r.blocks_written, 4);
        assert_eq!(r.read_steps, 1);
        assert_eq!(r.write_steps, 3);
        assert_eq!(r.per_disk_writes, vec![3, 1, 0, 0]);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "a");
        assert_eq!(r.phases[0].write_steps, 2);
        assert_eq!(r.phases[1].name, "b");
        assert_eq!(r.phases[1].blocks_written, 2);
        assert_eq!(r.phases[1].write_steps, 1, "group charge lands in phase b");
    }

    #[test]
    fn phase_split_group_reopens_under_new_id() {
        let mut p = Probe::new(64);
        p.on_group_begin();
        p.on_batch(true, 1, 0, &[1, 0]);
        p.on_group_settle(0, 1, true); // phase boundary forces settlement
        assert!(matches!(p.events()[2], ProbeEvent::GroupEnd { id: 0, .. }));
        assert!(matches!(p.events()[3], ProbeEvent::GroupBegin { id: 1, .. }));
        p.on_group_settle(0, 0, false);
        assert!(matches!(p.events()[4], ProbeEvent::GroupEnd { id: 1, .. }));
    }
}
