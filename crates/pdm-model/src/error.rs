//! Error type for PDM simulator operations.

use std::fmt;

/// Errors raised by the PDM machine and its storage backends.
#[derive(Debug)]
pub enum PdmError {
    /// An algorithm attempted to hold more keys in internal memory than the
    /// machine allows (`workspace_factor * mem_capacity`).
    MemoryExceeded {
        /// Keys requested to be resident after the failing allocation.
        requested: usize,
        /// The enforced limit in keys.
        limit: usize,
    },
    /// A block address referenced a disk outside `0..num_disks`.
    BadDisk {
        /// The offending disk index.
        disk: usize,
        /// Number of disks in the machine.
        num_disks: usize,
    },
    /// A block address referenced a slot that was never allocated.
    BadSlot {
        /// Disk the slot was addressed on.
        disk: usize,
        /// The offending slot index.
        slot: usize,
        /// Number of allocated slots on that disk.
        allocated: usize,
    },
    /// A buffer passed to a block read/write had the wrong length.
    BadBlockLen {
        /// Length supplied.
        got: usize,
        /// Block size `B` expected.
        expected: usize,
    },
    /// A region operation addressed a logical block outside the region.
    RegionOutOfBounds {
        /// Logical block index requested.
        index: usize,
        /// Region length in blocks.
        len: usize,
    },
    /// The machine configuration is internally inconsistent.
    BadConfig(String),
    /// The input size is not supported by the selected algorithm
    /// (e.g. exceeds its capacity formula or is not properly divisible).
    UnsupportedInput(String),
    /// An underlying file-backed storage operation failed.
    Io(std::io::Error),
    /// Overlapped (asynchronous) I/O was still in flight at a point that
    /// requires a settled disk image — a checkpoint boundary, or a resume
    /// into a phase with an unretired write. The manifest is *not* written
    /// in this state; draining pending reads/writes before the phase ends
    /// clears it.
    PendingIo {
        /// Number of overlap operations still in flight.
        pending: usize,
    },
    /// A read addressed a slot that still has an unretired overlapped
    /// write in flight. The full-duplex threaded backend services reads
    /// and writes on independent workers, so such a read could observe the
    /// pre-write bytes; the pipeline discipline (drain write-behind before
    /// re-reading a region) makes this unreachable in correct code, and
    /// the backend turns a violation into this error instead of silently
    /// returning stale data.
    ReadDuringFlush {
        /// Disk the contended slot lives on.
        disk: usize,
        /// The slot with a write still in flight.
        slot: usize,
    },
    /// A block read back from storage failed its integrity check (torn
    /// write or bit flip). Never transient: the data on the medium is
    /// wrong, so retrying the read returns the same corrupt bytes.
    Corrupt {
        /// Disk the corrupt block lives on.
        disk: usize,
        /// Slot of the corrupt block.
        slot: usize,
        /// What the check observed (expected vs actual checksum).
        detail: String,
    },
}

impl PdmError {
    /// Whether this failure is *transient* — worth retrying, because the
    /// operation may succeed if reissued (interrupted syscall, timeout,
    /// would-block). Everything else is permanent: logic errors
    /// (`BadDisk`, `BadSlot`, …) would fail identically on retry, and
    /// [`PdmError::Corrupt`] means the medium itself holds bad bytes.
    ///
    /// [`crate::storage_retry::RetryingStorage`] consults this to decide
    /// whether a failed block operation is reissued.
    pub fn is_transient(&self) -> bool {
        match self {
            PdmError::Io(e) => io_error_transient(e),
            _ => false,
        }
    }
}

/// Transience classification for a raw `std::io::Error`, shared between
/// [`PdmError::is_transient`] and backend worker threads that must decide
/// whether to reissue an operation *before* wrapping the error.
pub(crate) fn io_error_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

impl fmt::Display for PdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdmError::MemoryExceeded { requested, limit } => write!(
                f,
                "internal memory exceeded: {requested} keys requested, limit {limit}"
            ),
            PdmError::BadDisk { disk, num_disks } => {
                write!(f, "disk index {disk} out of range (D = {num_disks})")
            }
            PdmError::BadSlot {
                disk,
                slot,
                allocated,
            } => write!(
                f,
                "slot {slot} on disk {disk} out of range ({allocated} allocated)"
            ),
            PdmError::BadBlockLen { got, expected } => {
                write!(f, "block buffer length {got}, expected B = {expected}")
            }
            PdmError::RegionOutOfBounds { index, len } => {
                write!(f, "logical block {index} out of region bounds ({len} blocks)")
            }
            PdmError::BadConfig(msg) => write!(f, "bad PDM configuration: {msg}"),
            PdmError::UnsupportedInput(msg) => write!(f, "unsupported input: {msg}"),
            PdmError::Io(e) => write!(f, "I/O error: {e}"),
            PdmError::PendingIo { pending } => write!(
                f,
                "{pending} overlap I/O operation(s) still in flight at a \
                 checkpoint boundary; drain pending reads/writes before the \
                 phase ends"
            ),
            PdmError::ReadDuringFlush { disk, slot } => write!(
                f,
                "read of disk {disk} slot {slot} while a write-behind to the \
                 same slot is still in flight; drain the writer before \
                 re-reading the region"
            ),
            PdmError::Corrupt { disk, slot, detail } => {
                write!(f, "corrupt block at disk {disk} slot {slot}: {detail}")
            }
        }
    }
}

impl std::error::Error for PdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PdmError {
    fn from(e: std::io::Error) -> Self {
        PdmError::Io(e)
    }
}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, PdmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PdmError::MemoryExceeded {
            requested: 100,
            limit: 64,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));

        let e = PdmError::BadDisk { disk: 9, num_disks: 4 };
        assert!(e.to_string().contains("9"));

        let e = PdmError::BadBlockLen { got: 3, expected: 8 };
        assert!(e.to_string().contains("B = 8"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::Other, "boom");
        let e: PdmError = io.into();
        assert!(matches!(e, PdmError::Io(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        use std::error::Error;
        let e = PdmError::BadConfig("x".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn transient_classification_follows_io_kind() {
        let transient = PdmError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "interrupted",
        ));
        assert!(transient.is_transient());
        let timeout =
            PdmError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "timeout"));
        assert!(timeout.is_transient());

        let permanent = PdmError::Io(std::io::Error::other("device gone"));
        assert!(!permanent.is_transient());
        let pending = PdmError::PendingIo { pending: 2 };
        assert!(!pending.is_transient(), "pending I/O is a logic error, not transient");
        assert!(pending.to_string().contains("2 overlap"));
        assert!(!PdmError::BadConfig("x".into()).is_transient());
        let corrupt = PdmError::Corrupt {
            disk: 0,
            slot: 3,
            detail: "checksum mismatch".into(),
        };
        assert!(!corrupt.is_transient());
        assert!(corrupt.to_string().contains("slot 3"));
    }
}
