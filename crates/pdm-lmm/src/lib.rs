//! # pdm-lmm — the `(l, m)`-merge sort framework
//!
//! In-memory reference implementation of Rajasekaran's LMM sort \[23\], the
//! framework the paper specializes into its three- and seven-pass PDM
//! algorithms (§4, §6.1). Provides:
//!
//! * [`lmm::lmm_sort`] / [`lmm::lmm_merge`] — the recursive
//!   unshuffle → merge → shuffle → cleanup scheme;
//! * [`lmm::cleanup_displaced`] — Observation 4.2's windowed local sort for
//!   `d`-displaced sequences (shared with the expected-pass algorithms'
//!   cleanup phases);
//! * [`lmm::dirty_bound`] — the `l·m` dirty-sequence bound;
//! * [`lmm::direct_merge`] — the k-way base-case merge.
//!
//! Batcher's odd-even merge sort is the `l = m = 2` instance, Thompson–Kung
//! `s²-way` merge sort the `l = m = s` instance.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lmm;
pub mod special_cases;

pub use lmm::{cleanup_displaced, direct_merge, dirty_bound, lmm_merge, lmm_sort};
pub use special_cases::{odd_even_merge_sort_lmm, s2_way_merge_sort, three_pass2_reference};
