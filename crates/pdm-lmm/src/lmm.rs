//! The `(l, m)`-merge sort of Rajasekaran \[23\] — in-memory reference
//! implementation.
//!
//! LMM sort partitions the input into `l` subsequences, sorts them
//! recursively, and merges with the `(l, m)`-merge:
//!
//! 1. **Unshuffle** each sorted input `X_i` into `m` parts
//!    `X_i^1 … X_i^m` (`X_i^j` takes positions `j, j+m, j+2m, …`).
//! 2. **Recursively merge** `X_1^j, …, X_l^j` into `L_j`, for each `j`.
//! 3. **Shuffle** (interleave) `L_1, …, L_m` into `Z`.
//! 4. **Cleanup**: every key of `Z` is within `l·m` of its sorted position;
//!    a local windowed sort finishes.
//!
//! Batcher's odd-even merge sort (`l = m = 2`), Thompson–Kung `s²-way`
//! merge sort (`l = m = s`), and columnsort are special cases. The paper's
//! `ThreePass2` and `SevenPass` are its PDM specializations (built in the
//! `pdm-sort` crate on top of this reference).

use pdm_theory::shuffling::{shuffle_parts, unshuffle};

/// The dirty-sequence bound of the `(l, m)`-merge: after shuffling, each
/// key is at distance ≤ `l·m` from its sorted position.
pub fn dirty_bound(l: usize, m: usize) -> usize {
    l * m
}

/// Sort a sequence in which every key is within `d` of its sorted position
/// (Observation 4.2): split into windows of `d`, sort windows, merge
/// odd-aligned neighbor pairs, then even-aligned neighbor pairs.
pub fn cleanup_displaced<K: Ord + Copy>(xs: &mut [K], d: usize) {
    let n = xs.len();
    if n <= 1 {
        return;
    }
    let d = d.clamp(1, n);
    // sort each window of size d
    for w in xs.chunks_mut(d) {
        w.sort_unstable();
    }
    // merge (Z1,Z2), (Z3,Z4), …
    merge_adjacent(xs, d, 0);
    // merge (Z2,Z3), (Z4,Z5), …
    merge_adjacent(xs, d, d);
}

/// Merge consecutive window pairs of width `d` starting at `offset`.
///
/// One scratch buffer (at most `2d` keys) serves every pair, so the pass
/// allocates once instead of once per pair.
fn merge_adjacent<K: Ord + Copy>(xs: &mut [K], d: usize, offset: usize) {
    let n = xs.len();
    let mut scratch: Vec<K> = Vec::with_capacity((2 * d).min(n));
    let mut start = offset;
    while start + d < n {
        let end = (start + 2 * d).min(n);
        // two sorted windows [start, start+d) and [start+d, end)
        scratch.clear();
        {
            let (a, b) = xs[start..end].split_at(d);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i] <= b[j] {
                    scratch.push(a[i]);
                    i += 1;
                } else {
                    scratch.push(b[j]);
                    j += 1;
                }
            }
            scratch.extend_from_slice(&a[i..]);
            scratch.extend_from_slice(&b[j..]);
        }
        xs[start..end].copy_from_slice(&scratch);
        start += 2 * d;
    }
}

/// Direct k-way merge of sorted sequences (the recursion base case).
pub fn direct_merge<K: Ord + Copy>(parts: &[Vec<K>]) -> Vec<K> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(K, usize, usize)>> = parts
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(i, p)| Reverse((p[0], i, 0)))
        .collect();
    while let Some(Reverse((k, i, j))) = heap.pop() {
        out.push(k);
        if j + 1 < parts[i].len() {
            heap.push(Reverse((parts[i][j + 1], i, j + 1)));
        }
    }
    out
}

/// `(l, m)`-merge: merge `l` sorted sequences of equal length. Falls back to
/// [`direct_merge`] when the total fits `base` or the lengths stop dividing
/// evenly by `m`.
pub fn lmm_merge<K: Ord + Copy>(parts: &[Vec<K>], m: usize, base: usize) -> Vec<K> {
    let l = parts.len();
    let total: usize = parts.iter().map(Vec::len).sum();
    if l <= 1 {
        return parts.first().cloned().unwrap_or_default();
    }
    let part_len = parts[0].len();
    let uniform = parts.iter().all(|p| p.len() == part_len);
    if total <= base || m <= 1 || !uniform || part_len % m != 0 || part_len < m {
        return direct_merge(parts);
    }

    // Step 1: unshuffle each X_i into m parts; column j collects X_i^j.
    let mut columns: Vec<Vec<Vec<K>>> = vec![Vec::with_capacity(l); m];
    for p in parts {
        for (j, piece) in unshuffle(p, m).into_iter().enumerate() {
            columns[j].push(piece);
        }
    }

    // Step 2: recursively merge each column into L_j.
    let ls: Vec<Vec<K>> = columns
        .into_iter()
        .map(|col| lmm_merge(&col, m, base))
        .collect();

    // Step 3: shuffle L_1 … L_m.
    let mut z = shuffle_parts(&ls);

    // Step 4: cleanup — keys are within l·m of their sorted position.
    cleanup_displaced(&mut z, dirty_bound(l, m));
    z
}

/// Full `(l, m)`-merge sort: split into `l` runs, sort runs, `(l, m)`-merge.
///
/// # Example
///
/// ```
/// let data: Vec<u32> = (0..1000).rev().collect();
/// let sorted = pdm_lmm::lmm_sort(&data, 4, 4, 64);
/// assert_eq!(sorted, (0..1000).collect::<Vec<u32>>());
/// ```
pub fn lmm_sort<K: Ord + Copy>(xs: &[K], l: usize, m: usize, base: usize) -> Vec<K> {
    if xs.len() <= base || l <= 1 || xs.len() < l {
        let mut v = xs.to_vec();
        v.sort_unstable();
        return v;
    }
    let run = xs.len().div_ceil(l);
    let parts: Vec<Vec<K>> = xs
        .chunks(run)
        .map(|c| lmm_sort(c, l, m, base))
        .collect();
    lmm_merge(&parts, m, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cleanup_fixes_d_displaced_sequences() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            // construct a d-displaced sequence: sorted, then local shuffles
            let n = 256;
            let d = 16;
            let mut xs: Vec<u32> = (0..n).collect();
            for w in xs.chunks_mut(d) {
                w.shuffle(&mut rng);
            }
            // every key moved < d within its window
            cleanup_displaced(&mut xs, d);
            assert_eq!(xs, (0..n).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn cleanup_with_displacement_crossing_windows() {
        // keys may be up to d away across a window boundary
        let d = 4;
        let mut xs = vec![4u32, 5, 6, 7, 0, 1, 2, 3, 8, 9, 10, 11];
        cleanup_displaced(&mut xs, d);
        assert_eq!(xs, (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn cleanup_degenerate_inputs() {
        let mut empty: Vec<u32> = vec![];
        cleanup_displaced(&mut empty, 4);
        let mut one = vec![5u32];
        cleanup_displaced(&mut one, 0);
        assert_eq!(one, vec![5]);
        let mut two = vec![2u32, 1];
        cleanup_displaced(&mut two, 10); // d > n clamps
        assert_eq!(two, vec![1, 2]);
    }

    #[test]
    fn direct_merge_merges() {
        let parts = vec![vec![1u32, 4, 7], vec![2, 5, 8], vec![3, 6, 9]];
        assert_eq!(direct_merge(&parts), (1..=9).collect::<Vec<u32>>());
        assert_eq!(direct_merge::<u32>(&[]), Vec::<u32>::new());
        assert_eq!(direct_merge(&[vec![], vec![1u32]]), vec![1]);
    }

    #[test]
    fn lmm_merge_equals_direct_merge() {
        let mut rng = StdRng::seed_from_u64(5);
        for (l, m, part_len) in [(4usize, 4usize, 64usize), (8, 4, 32), (2, 2, 128), (16, 16, 256)] {
            let mut parts = Vec::new();
            for _ in 0..l {
                let mut p: Vec<u64> = (0..part_len).map(|_| rng.gen_range(0..10_000)).collect();
                p.sort_unstable();
                parts.push(p);
            }
            let got = lmm_merge(&parts, m, m); // tiny base forces recursion
            let want = direct_merge(&parts);
            assert_eq!(got, want, "l={l} m={m}");
        }
    }

    #[test]
    fn lmm_sort_sorts_random_inputs() {
        let mut rng = StdRng::seed_from_u64(17);
        for (n, l, m) in [(1024usize, 4usize, 4usize), (4096, 8, 8), (512, 2, 2)] {
            let xs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
            let mut want = xs.clone();
            want.sort_unstable();
            assert_eq!(lmm_sort(&xs, l, m, 64), want, "n={n} l={l} m={m}");
        }
    }

    #[test]
    fn lmm_sort_with_duplicates_and_sorted_input() {
        let xs = vec![3u32; 500];
        assert_eq!(lmm_sort(&xs, 4, 4, 16), xs);
        let sorted: Vec<u32> = (0..1000).collect();
        assert_eq!(lmm_sort(&sorted, 8, 8, 32), sorted);
        let rev: Vec<u32> = (0..1000).rev().collect();
        assert_eq!(lmm_sort(&rev, 8, 8, 32), (0..1000).collect::<Vec<u32>>());
    }

    #[test]
    fn batcher_is_the_l2_m2_special_case() {
        // l = m = 2 with base 2 is structurally odd-even merge sort; verify
        // it sorts all binary inputs of length 16 (0-1 principle check).
        for bits in 0u32..(1 << 16) {
            let xs: Vec<u8> = (0..16).map(|i| ((bits >> i) & 1) as u8).collect();
            let got = lmm_sort(&xs, 2, 2, 2);
            assert!(got.windows(2).all(|w| w[0] <= w[1]), "bits {bits:#x}");
        }
    }

    #[test]
    fn dirty_bound_after_shuffle_is_respected() {
        // Empirically confirm the l·m displacement bound the cleanup relies
        // on: shuffle of recursively merged columns.
        let mut rng = StdRng::seed_from_u64(23);
        let (l, m, part_len) = (8usize, 8usize, 64usize);
        for _ in 0..20 {
            let mut parts = Vec::new();
            for _ in 0..l {
                let mut p: Vec<u64> = (0..part_len).map(|_| rng.gen_range(0..100_000)).collect();
                p.sort_unstable();
                parts.push(p);
            }
            let mut columns: Vec<Vec<Vec<u64>>> = vec![Vec::new(); m];
            for p in &parts {
                for (j, piece) in unshuffle(p, m).into_iter().enumerate() {
                    columns[j].push(piece);
                }
            }
            let ls: Vec<Vec<u64>> = columns.iter().map(|c| direct_merge(c)).collect();
            let z = shuffle_parts(&ls);
            let disp = pdm_theory::max_displacement(&z);
            assert!(
                disp <= dirty_bound(l, m),
                "displacement {disp} exceeds l*m = {}",
                dirty_bound(l, m)
            );
        }
    }
}
