//! The classical algorithms the paper names as LMM special cases
//! (§4: "Columnsort algorithm, odd-even merge sort, and the s²-way merge
//! sort algorithms are all special cases of LMM sort").
//!
//! Each constructor fixes the `(l, m)` parameters; the tests demonstrate
//! the structural claims — e.g. that `l = m = 2` LMM performs the same
//! merge recursion as Batcher's odd-even merge sort, down to matching the
//! comparator network's output on every input.

use crate::lmm::lmm_sort;

/// Batcher's odd-even merge sort as LMM: `l = m = 2`, recursion to pairs.
pub fn odd_even_merge_sort_lmm<K: Ord + Copy>(xs: &[K]) -> Vec<K> {
    lmm_sort(xs, 2, 2, 2)
}

/// Thompson–Kung `s²-way` merge sort as LMM: `l = m = s`.
pub fn s2_way_merge_sort<K: Ord + Copy>(xs: &[K], s: usize) -> Vec<K> {
    lmm_sort(xs, s.max(2), s.max(2), s.max(2) * s.max(2))
}

/// The paper's PDM specialization parameters (ThreePass2): `l = N/M ≤ √M`,
/// `m = √M`, base = `M` (merges of `M` keys happen in memory). In-memory
/// reference for differential testing against the out-of-core version.
pub fn three_pass2_reference<K: Ord + Copy>(xs: &[K], m_mem: usize) -> Vec<K> {
    let b = (m_mem as f64).sqrt().round() as usize;
    let l = xs.len().div_ceil(m_mem).max(2);
    lmm_sort(xs, l, b.max(2), m_mem.max(4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_theory::odd_even_merge_sort as batcher_network;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn odd_even_lmm_matches_the_batcher_network_exactly() {
        // Not just "both sort": on power-of-two sizes the l=m=2 LMM and the
        // Batcher comparator network compute the same function (identical
        // outputs), because they are the same recursion.
        let mut rng = StdRng::seed_from_u64(1);
        for exp in 2..=7u32 {
            let n = 1usize << exp;
            let net = batcher_network(n);
            for _ in 0..20 {
                let data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..64)).collect();
                let via_lmm = odd_even_merge_sort_lmm(&data);
                let mut via_net = data.clone();
                net.apply(&mut via_net);
                assert_eq!(via_lmm, via_net, "n = {n}");
            }
        }
    }

    #[test]
    fn s2_way_sorts_for_various_s() {
        let mut rng = StdRng::seed_from_u64(2);
        for s in [2usize, 3, 4, 8] {
            for n in [64usize, 256, 1000] {
                let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
                let mut want = data.clone();
                want.sort_unstable();
                assert_eq!(s2_way_merge_sort(&data, s), want, "s = {s}, n = {n}");
            }
        }
    }

    #[test]
    fn three_pass2_reference_sorts() {
        let mut rng = StdRng::seed_from_u64(3);
        for (m, n) in [(64usize, 512usize), (256, 4096), (256, 1000)] {
            let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 40)).collect();
            let mut want = data.clone();
            want.sort_unstable();
            assert_eq!(three_pass2_reference(&data, m), want, "m = {m}, n = {n}");
        }
    }
}
