//! Minimal io_uring driver for batched block I/O — no external crates.
//!
//! This crate exists so `pdm-model`'s `AsyncFileStorage` can submit a whole
//! batch of block reads or writes to the kernel in one `io_uring_enter`
//! and reap the completions, instead of issuing one synchronous
//! `pread`/`pwrite` per block. It deliberately wraps only the sliver of
//! io_uring the sorter needs:
//!
//! * [`Ring::new`] sets up one ring (fails cleanly where io_uring is
//!   unavailable — old kernels, seccomp-filtered containers, non-Linux —
//!   so callers can fall back to synchronous I/O);
//! * [`Ring::run`] drives a batch of [`Op`]s to completion, handling
//!   short reads/writes by resubmitting the remainder, and returns one
//!   `io::Result` per op.
//!
//! All unsafe code in the workspace lives here; `pdm-model` itself stays
//! `#![forbid(unsafe_code)]`. The implementation speaks the raw syscall
//! ABI (`io_uring_setup` = 425, `io_uring_enter` = 426, both from the
//! asm-generic table, plus `mmap` for the shared rings) through the libc
//! symbols the standard library already links.

#![warn(missing_docs)]

use std::io;

/// True when `e` is a *transient* submission errno: EINTR (a signal
/// landed mid-`io_uring_enter`) or EAGAIN (momentary kernel resource
/// shortage). The submission should simply be re-attempted with the same
/// arguments — [`Ring::run`] already does so internally; callers that see
/// one of these escape should treat the op as retryable, not broken.
///
/// The check is by `io::ErrorKind` (`from_raw_os_error` maps EINTR →
/// `Interrupted` and EAGAIN → `WouldBlock`), so it also classifies
/// errors that were rewrapped on their way up.
pub fn submit_errno_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
    )
}

/// True when `e` marks io_uring as *permanently unavailable* in this
/// environment: ENOSYS (pre-5.1 kernel), EPERM/EACCES (seccomp policies
/// that filter the io_uring syscalls, common in container runtimes), or
/// the `Unsupported` kind (the non-Linux stub). Callers should stop
/// attempting ring setup and stay on their synchronous fallback;
/// anything else (e.g. ENOMEM) is worth retrying on a later setup.
pub fn ring_unavailable(e: &io::Error) -> bool {
    const EPERM: i32 = 1;
    const EACCES: i32 = 13;
    const ENOSYS: i32 = 38;
    matches!(e.raw_os_error(), Some(EPERM | EACCES | ENOSYS))
        || e.kind() == io::ErrorKind::Unsupported
}

/// Cumulative submit/reap batching counters of a [`Ring`], for wall-clock
/// telemetry. The interesting ratios are SQEs per submit call (how well
/// submissions batch) and CQEs per reap round (how bursty completions
/// are); both are bounded above by the ring capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// `io_uring_enter` calls that submitted at least one SQE.
    pub submit_calls: u64,
    /// SQEs submitted in total.
    pub submitted_sqes: u64,
    /// Completion-drain rounds that reaped at least one CQE.
    pub reap_rounds: u64,
    /// CQEs reaped in total.
    pub reaped_cqes: u64,
}

/// One block transfer for [`Ring::run`]. Offsets are absolute file byte
/// offsets; buffer length is the transfer size.
pub enum Op<'a> {
    /// Read `buf.len()` bytes at `offset` from `fd` into `buf`.
    Read {
        /// Raw file descriptor (must stay open for the duration of `run`).
        fd: i32,
        /// Destination buffer, filled completely on success.
        buf: &'a mut [u8],
        /// Absolute byte offset in the file.
        offset: u64,
    },
    /// Write all of `buf` at `offset` to `fd`.
    Write {
        /// Raw file descriptor (must stay open for the duration of `run`).
        fd: i32,
        /// Source buffer, written completely on success.
        buf: &'a [u8],
        /// Absolute byte offset in the file.
        offset: u64,
    },
}

#[cfg(target_os = "linux")]
mod linux {
    use super::{Op, RingStats};
    use std::io;
    use std::os::raw::{c_int, c_long, c_uint, c_void};
    use std::sync::atomic::{AtomicU32, Ordering};

    const SYS_IO_URING_SETUP: c_long = 425;
    const SYS_IO_URING_ENTER: c_long = 426;

    const IORING_OP_READ: u8 = 22;
    const IORING_OP_WRITE: u8 = 23;
    const IORING_ENTER_GETEVENTS: c_uint = 1;
    const IORING_FEAT_SINGLE_MMAP: u32 = 1;

    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    const PROT_READ_WRITE: c_int = 0x3;
    const MAP_SHARED_POPULATE: c_int = 0x8001;

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    #[repr(C)]
    #[derive(Default)]
    struct SqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Default)]
    struct CqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Default)]
    struct SetupParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqringOffsets,
        cq_off: CqringOffsets,
    }

    /// Submission queue entry, 64 bytes (the non-union fields this driver
    /// uses; the rest stays zeroed).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        rw_flags: u32,
        user_data: u64,
        pad: [u64; 3],
    }

    /// Completion queue entry, 16 bytes.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr.cast(), self.len);
            }
        }
    }

    /// One io_uring instance: a submission ring, a completion ring, and
    /// the SQE array, all mmap-shared with the kernel.
    pub struct Ring {
        fd: i32,
        // Keep the mappings alive; dropped (munmapped) after use.
        _sq_map: Mapping,
        _cq_map: Option<Mapping>,
        _sqe_map: Mapping,
        sq_head: *const AtomicU32,
        sq_tail: *const AtomicU32,
        sq_mask: u32,
        sq_entries: u32,
        sq_array: *mut u32,
        sqes: *mut Sqe,
        cq_head: *const AtomicU32,
        cq_tail: *const AtomicU32,
        cq_mask: u32,
        cqes: *const Cqe,
        stats: RingStats,
    }

    // The raw pointers all target the two mmap regions owned by this value,
    // which live and die with it; the kernel side is inherently
    // cross-thread. Moving the Ring to another thread is therefore sound
    // (it is not Sync — all methods take &mut self).
    unsafe impl Send for Ring {}

    fn map(fd: i32, len: usize, offset: i64) -> io::Result<Mapping> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ_WRITE,
                MAP_SHARED_POPULATE,
                fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr.cast(),
            len,
        })
    }

    impl Ring {
        /// Set up a ring with (at least) `entries` submission slots.
        ///
        /// Errors instead of panicking when the kernel refuses — ENOSYS on
        /// pre-5.1 kernels, EPERM under seccomp policies that filter the
        /// io_uring syscalls (common in container runtimes) — so callers
        /// can detect unavailability at startup and fall back.
        pub fn new(entries: u32) -> io::Result<Ring> {
            let mut p = SetupParams::default();
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_SETUP,
                    entries as c_long,
                    &mut p as *mut SetupParams,
                )
            };
            if ret < 0 {
                return Err(io::Error::last_os_error());
            }
            let fd = ret as i32;
            // On any setup failure past this point the fd must not leak.
            let build = (|| {
                let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
                let cq_len =
                    p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
                let (sq_map, cq_map) = if p.features & IORING_FEAT_SINGLE_MMAP != 0 {
                    (map(fd, sq_len.max(cq_len), IORING_OFF_SQ_RING)?, None)
                } else {
                    (
                        map(fd, sq_len, IORING_OFF_SQ_RING)?,
                        Some(map(fd, cq_len, IORING_OFF_CQ_RING)?),
                    )
                };
                let sqe_map = map(
                    fd,
                    p.sq_entries as usize * std::mem::size_of::<Sqe>(),
                    IORING_OFF_SQES,
                )?;
                let sq = sq_map.ptr;
                let cq = cq_map.as_ref().map_or(sq_map.ptr, |m| m.ptr);
                // Safety of the pointer arithmetic: every offset in
                // SetupParams is a kernel-provided offset into the ring
                // mapping it belongs to, in bounds by construction.
                let ring = unsafe {
                    Ring {
                        fd,
                        sq_head: sq.add(p.sq_off.head as usize).cast(),
                        sq_tail: sq.add(p.sq_off.tail as usize).cast(),
                        sq_mask: *sq.add(p.sq_off.ring_mask as usize).cast::<u32>(),
                        sq_entries: p.sq_entries,
                        sq_array: sq.add(p.sq_off.array as usize).cast(),
                        sqes: sqe_map.ptr.cast(),
                        cq_head: cq.add(p.cq_off.head as usize).cast(),
                        cq_tail: cq.add(p.cq_off.tail as usize).cast(),
                        cq_mask: *cq.add(p.cq_off.ring_mask as usize).cast::<u32>(),
                        cqes: cq.add(p.cq_off.cqes as usize).cast(),
                        _sq_map: sq_map,
                        _cq_map: cq_map,
                        _sqe_map: sqe_map,
                        stats: RingStats::default(),
                    }
                };
                Ok(ring)
            })();
            match build {
                Ok(ring) => Ok(ring),
                Err(e) => {
                    unsafe {
                        close(fd);
                    }
                    Err(e)
                }
            }
        }

        /// Submission slots in the ring (ops beyond this are queued by
        /// [`Ring::run`] and submitted as slots free up).
        pub fn capacity(&self) -> usize {
            self.sq_entries as usize
        }

        /// Cumulative submit/reap batching counters since setup.
        pub fn stats(&self) -> RingStats {
            self.stats
        }

        fn sq_pending(&self) -> u32 {
            let head = unsafe { (*self.sq_head).load(Ordering::Acquire) };
            let tail = unsafe { (*self.sq_tail).load(Ordering::Relaxed) };
            tail.wrapping_sub(head)
        }

        fn push_sqe(&mut self, sqe: Sqe) -> bool {
            if self.sq_pending() >= self.sq_entries {
                return false;
            }
            let tail = unsafe { (*self.sq_tail).load(Ordering::Relaxed) };
            let idx = tail & self.sq_mask;
            unsafe {
                self.sqes.add(idx as usize).write(sqe);
                self.sq_array.add(idx as usize).write(idx);
                // Publish the SQE before the tail moves, or the kernel may
                // read a stale entry.
                (*self.sq_tail).store(tail.wrapping_add(1), Ordering::Release);
            }
            true
        }

        fn pop_cqe(&mut self) -> Option<Cqe> {
            let head = unsafe { (*self.cq_head).load(Ordering::Relaxed) };
            let tail = unsafe { (*self.cq_tail).load(Ordering::Acquire) };
            if head == tail {
                return None;
            }
            let cqe = unsafe { *self.cqes.add((head & self.cq_mask) as usize) };
            unsafe {
                // Release the slot back to the kernel only after the copy.
                (*self.cq_head).store(head.wrapping_add(1), Ordering::Release);
            }
            Some(cqe)
        }

        fn enter(&mut self, to_submit: u32, min_complete: u32) -> io::Result<()> {
            loop {
                let ret = unsafe {
                    syscall(
                        SYS_IO_URING_ENTER,
                        self.fd as c_long,
                        to_submit as c_long,
                        min_complete as c_long,
                        IORING_ENTER_GETEVENTS as c_long,
                        std::ptr::null::<c_void>(),
                        0usize,
                    )
                };
                if ret >= 0 {
                    return Ok(());
                }
                let err = io::Error::last_os_error();
                if !super::submit_errno_transient(&err) {
                    return Err(err);
                }
                // EAGAIN (unlike EINTR) means the kernel is briefly out of
                // resources — yield instead of spinning hot on the retry.
                if err.kind() == io::ErrorKind::WouldBlock {
                    std::thread::yield_now();
                }
            }
        }

        /// Drive every op to completion. Short transfers are resubmitted
        /// for the remainder; the result vector is index-aligned with
        /// `ops`. A transport-level failure of `io_uring_enter` is
        /// reported on every op still outstanding at that point.
        pub fn run(&mut self, ops: &mut [Op<'_>]) -> Vec<io::Result<()>> {
            struct Track {
                done: usize,
                err: Option<io::Error>,
                in_flight: bool,
            }
            let mut track: Vec<Track> = ops
                .iter()
                .map(|_| Track {
                    done: 0,
                    err: None,
                    in_flight: false,
                })
                .collect();
            let op_len = |op: &Op<'_>| match op {
                Op::Read { buf, .. } => buf.len(),
                Op::Write { buf, .. } => buf.len(),
            };
            loop {
                // Fill the submission ring with every op that still has
                // bytes outstanding and is not already in flight.
                let mut in_flight = 0u32;
                for (i, op) in ops.iter_mut().enumerate() {
                    let t = &mut track[i];
                    if t.in_flight {
                        in_flight += 1;
                        continue;
                    }
                    if t.err.is_some() || t.done >= op_len(op) {
                        continue;
                    }
                    let (opcode, fd, addr, len, off) = match op {
                        Op::Read { fd, buf, offset } => (
                            IORING_OP_READ,
                            *fd,
                            buf[t.done..].as_mut_ptr() as u64,
                            (buf.len() - t.done) as u32,
                            *offset + t.done as u64,
                        ),
                        Op::Write { fd, buf, offset } => (
                            IORING_OP_WRITE,
                            *fd,
                            buf[t.done..].as_ptr() as u64,
                            (buf.len() - t.done) as u32,
                            *offset + t.done as u64,
                        ),
                    };
                    let sqe = Sqe {
                        opcode,
                        flags: 0,
                        ioprio: 0,
                        fd,
                        off,
                        addr,
                        len,
                        rw_flags: 0,
                        user_data: i as u64,
                        pad: [0; 3],
                    };
                    if !self.push_sqe(sqe) {
                        break; // ring full — the rest submits next round
                    }
                    t.in_flight = true;
                    in_flight += 1;
                }
                if in_flight == 0 {
                    break; // everything completed or errored
                }
                let to_submit = self.sq_pending();
                if to_submit > 0 {
                    self.stats.submit_calls += 1;
                    self.stats.submitted_sqes += u64::from(to_submit);
                }
                if let Err(e) = self.enter(to_submit, in_flight) {
                    for (t, op) in track.iter_mut().zip(ops.iter()) {
                        if t.err.is_none() && t.done < op_len(op) {
                            t.err = Some(io::Error::new(e.kind(), e.to_string()));
                        }
                    }
                    break;
                }
                let mut reaped = 0u64;
                while let Some(cqe) = self.pop_cqe() {
                    reaped += 1;
                    let i = cqe.user_data as usize;
                    let t = &mut track[i];
                    t.in_flight = false;
                    if cqe.res < 0 {
                        t.err = Some(io::Error::from_raw_os_error(-cqe.res));
                    } else if cqe.res == 0 && t.done < op_len(&ops[i]) {
                        t.err = Some(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "read past end of file",
                        ));
                    } else {
                        t.done += cqe.res as usize;
                    }
                }
                if reaped > 0 {
                    self.stats.reap_rounds += 1;
                    self.stats.reaped_cqes += reaped;
                }
            }
            track
                .into_iter()
                .map(|t| match t.err {
                    Some(e) => Err(e),
                    None => Ok(()),
                })
                .collect()
        }
    }

    impl Drop for Ring {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }
}

#[cfg(target_os = "linux")]
pub use linux::Ring;

/// Stub ring for non-Linux targets: setup always fails, so callers take
/// their synchronous fallback path.
#[cfg(not(target_os = "linux"))]
pub struct Ring {
    never: std::convert::Infallible,
}

#[cfg(not(target_os = "linux"))]
impl Ring {
    /// io_uring is Linux-only; always errors here.
    pub fn new(_entries: u32) -> io::Result<Ring> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "io_uring is only available on Linux",
        ))
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn capacity(&self) -> usize {
        match self.never {}
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn stats(&self) -> RingStats {
        match self.never {}
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn run(&mut self, _ops: &mut [Op<'_>]) -> Vec<io::Result<()>> {
        match self.never {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn ring_or_skip(entries: u32) -> Option<Ring> {
        match Ring::new(entries) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("skipping: io_uring unavailable here ({e})");
                None
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn raw_fd(f: &std::fs::File) -> i32 {
        use std::os::fd::AsRawFd;
        f.as_raw_fd()
    }

    #[cfg(not(target_os = "linux"))]
    fn raw_fd(_f: &std::fs::File) -> i32 {
        -1
    }

    fn temp_file(tag: &str) -> (std::path::PathBuf, std::fs::File) {
        let path = std::env::temp_dir().join(format!(
            "pdm-uring-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        (path, f)
    }

    #[test]
    fn batch_of_writes_then_reads_round_trips() {
        let Some(mut ring) = ring_or_skip(4) else {
            return;
        };
        let (path, f) = temp_file("rt");
        let fd = raw_fd(&f);
        let blocks: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 512]).collect();
        // 8 ops through a 4-entry ring exercises the queue-as-slots-free path.
        let mut writes: Vec<Op<'_>> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| Op::Write {
                fd,
                buf: b,
                offset: i as u64 * 512,
            })
            .collect();
        for r in ring.run(&mut writes) {
            r.unwrap();
        }
        let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 512]).collect();
        let mut reads: Vec<Op<'_>> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| Op::Read {
                fd,
                buf: b,
                offset: i as u64 * 512,
            })
            .collect();
        for r in ring.run(&mut reads) {
            r.unwrap();
        }
        assert_eq!(bufs, blocks);
        let st = ring.stats();
        assert_eq!(st.submitted_sqes, 16, "8 writes + 8 reads");
        assert_eq!(st.reaped_cqes, 16);
        assert!(st.submit_calls >= 2, "at least one enter per run()");
        assert!(st.submit_calls <= st.submitted_sqes);
        assert!(st.reap_rounds >= 2);
        assert!(st.reap_rounds <= st.reaped_cqes);
        drop(f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn ring_io_is_visible_to_ordinary_file_io_and_vice_versa() {
        let Some(mut ring) = ring_or_skip(8) else {
            return;
        };
        let (path, mut f) = temp_file("mix");
        f.write_all(&[7u8; 256]).unwrap();
        f.flush().unwrap();
        let fd = raw_fd(&f);
        let mut buf = vec![0u8; 256];
        let mut ops = vec![Op::Read {
            fd,
            buf: &mut buf,
            offset: 0,
        }];
        for r in ring.run(&mut ops) {
            r.unwrap();
        }
        assert_eq!(buf, vec![7u8; 256]);
        let payload = vec![9u8; 128];
        let mut ops = vec![Op::Write {
            fd,
            buf: &payload,
            offset: 256,
        }];
        for r in ring.run(&mut ops) {
            r.unwrap();
        }
        let mut back = vec![0u8; 128];
        f.seek(SeekFrom::Start(256)).unwrap();
        f.read_exact(&mut back).unwrap();
        assert_eq!(back, payload);
        drop(f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn per_op_errors_do_not_poison_the_batch() {
        let Some(mut ring) = ring_or_skip(8) else {
            return;
        };
        let (path, f) = temp_file("err");
        let fd = raw_fd(&f);
        let good = vec![3u8; 64];
        let mut bad_buf = vec![0u8; 64];
        let mut ops = vec![
            Op::Write {
                fd,
                buf: &good,
                offset: 0,
            },
            // Reading from a closed descriptor must fail just that op.
            Op::Read {
                fd: -1,
                buf: &mut bad_buf,
                offset: 0,
            },
        ];
        let res = ring.run(&mut ops);
        assert!(res[0].is_ok(), "good write failed: {:?}", res[0]);
        assert!(res[1].is_err(), "bad-fd read unexpectedly succeeded");
        drop(f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn submission_errnos_classify_transient_vs_unavailable() {
        // EINTR and EAGAIN: retry the enter with the same arguments.
        for errno in [1i32, 13, 38] {
            let e = io::Error::from_raw_os_error(errno);
            assert!(ring_unavailable(&e), "errno {errno} is permanent");
            assert!(
                !submit_errno_transient(&e),
                "errno {errno} must not be retried"
            );
        }
        for errno in [4i32, 11] {
            let e = io::Error::from_raw_os_error(errno);
            assert!(submit_errno_transient(&e), "errno {errno} is transient");
            assert!(
                !ring_unavailable(&e),
                "errno {errno} must not disable io_uring"
            );
        }
        // The non-Linux stub's setup error counts as unavailable too.
        let stub = io::Error::new(io::ErrorKind::Unsupported, "no io_uring");
        assert!(ring_unavailable(&stub));
        // EIO: neither — a real, permanent, per-op failure.
        let eio = io::Error::from_raw_os_error(5);
        assert!(!submit_errno_transient(&eio));
        assert!(!ring_unavailable(&eio));
        // Kind-based classification survives rewrapping.
        let rewrapped = io::Error::new(io::ErrorKind::Interrupted, "wrapped EINTR");
        assert!(submit_errno_transient(&rewrapped));
    }

    #[test]
    fn read_past_eof_reports_unexpected_eof() {
        let Some(mut ring) = ring_or_skip(8) else {
            return;
        };
        let (path, f) = temp_file("eof");
        f.set_len(100).unwrap();
        let fd = raw_fd(&f);
        let mut buf = vec![0u8; 256];
        let mut ops = vec![Op::Read {
            fd,
            buf: &mut buf,
            offset: 0,
        }];
        let res = ring.run(&mut ops);
        match &res[0] {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            Ok(()) => panic!("short file read claimed success"),
        }
        drop(f);
        std::fs::remove_file(path).unwrap();
    }
}
