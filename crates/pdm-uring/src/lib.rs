//! Minimal io_uring driver for batched block I/O — no external crates.
//!
//! This crate exists so `pdm-model`'s `AsyncFileStorage` can submit a whole
//! batch of block reads or writes to the kernel in one `io_uring_enter`
//! and reap the completions, instead of issuing one synchronous
//! `pread`/`pwrite` per block. It deliberately wraps only the sliver of
//! io_uring the sorter needs:
//!
//! * [`Ring::new`] sets up one ring (fails cleanly where io_uring is
//!   unavailable — old kernels, seccomp-filtered containers, non-Linux —
//!   so callers can fall back to synchronous I/O);
//! * [`Ring::with_config`] additionally takes a [`RingConfig`] for tuned
//!   submission: kernel-side submission polling (`IORING_SETUP_SQPOLL`,
//!   so a dedicated kernel thread drains the SQ ring without an
//!   `io_uring_enter` per batch) and an idle timeout for that thread;
//! * [`Ring::register_buffer`] pins one staging region with
//!   `IORING_REGISTER_BUFFERS`; ops whose buffers land inside it are
//!   silently upgraded to `READ_FIXED`/`WRITE_FIXED`, skipping the
//!   per-op get_user_pages walk;
//! * [`Ring::run`] drives a batch of [`Op`]s to completion, handling
//!   short reads/writes by resubmitting the remainder, and returns one
//!   `io::Result` per op.
//!
//! All unsafe code in the workspace lives here; `pdm-model` itself stays
//! `#![forbid(unsafe_code)]`. The implementation speaks the raw syscall
//! ABI (`io_uring_setup` = 425, `io_uring_enter` = 426, `io_uring_register`
//! = 427, all from the asm-generic table, plus `mmap` for the shared
//! rings) through the libc symbols the standard library already links.

#![warn(missing_docs)]

use std::io;

/// True when `e` is a *transient* submission errno: EINTR (a signal
/// landed mid-`io_uring_enter`) or EAGAIN (momentary kernel resource
/// shortage). The submission should simply be re-attempted with the same
/// arguments — [`Ring::run`] already does so internally; callers that see
/// one of these escape should treat the op as retryable, not broken.
///
/// The check is by `io::ErrorKind` (`from_raw_os_error` maps EINTR →
/// `Interrupted` and EAGAIN → `WouldBlock`), so it also classifies
/// errors that were rewrapped on their way up.
pub fn submit_errno_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
    )
}

/// True when `e` marks io_uring as *permanently unavailable* in this
/// environment: ENOSYS (pre-5.1 kernel), EPERM/EACCES (seccomp policies
/// that filter the io_uring syscalls, common in container runtimes), or
/// the `Unsupported` kind (the non-Linux stub). Callers should stop
/// attempting ring setup and stay on their synchronous fallback;
/// anything else (e.g. ENOMEM) is worth retrying on a later setup.
pub fn ring_unavailable(e: &io::Error) -> bool {
    const EPERM: i32 = 1;
    const EACCES: i32 = 13;
    const ENOSYS: i32 = 38;
    matches!(e.raw_os_error(), Some(EPERM | EACCES | ENOSYS))
        || e.kind() == io::ErrorKind::Unsupported
}

/// Cumulative submit/reap batching counters of a [`Ring`], for wall-clock
/// telemetry. The interesting ratios are SQEs per submit call (how well
/// submissions batch) and CQEs per reap round (how bursty completions
/// are); both are bounded above by the ring capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// `io_uring_enter` calls that submitted at least one SQE.
    pub submit_calls: u64,
    /// SQEs submitted in total.
    pub submitted_sqes: u64,
    /// Completion-drain rounds that reaped at least one CQE.
    pub reap_rounds: u64,
    /// CQEs reaped in total.
    pub reaped_cqes: u64,
    /// SQEs that went out as `READ_FIXED`/`WRITE_FIXED` against a buffer
    /// registered via [`Ring::register_buffer`]. Zero means every op fell
    /// back to the unregistered path (nothing registered, or buffers
    /// outside the pinned region).
    pub fixed_sqes: u64,
}

/// Tuning knobs for [`Ring::with_config`]. [`Ring::new`] is shorthand for
/// the defaults with a caller-chosen entry count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Submission slots in the ring (rounded up to a power of two by the
    /// kernel). Ops beyond this are queued by [`Ring::run`] and submitted
    /// as slots free up.
    pub entries: u32,
    /// Ask for `IORING_SETUP_SQPOLL`: a kernel thread polls the SQ ring
    /// so steady-state submission needs no `io_uring_enter` syscall.
    /// Needs kernel ≥ 5.11 for unregistered files (CAP_SYS_NICE before
    /// 5.13 in some configs); setup fails cleanly where unsupported, so
    /// callers should retry without it.
    pub sqpoll: bool,
    /// How long (ms) the SQPOLL kernel thread spins idle before it sleeps
    /// and starts requiring `IORING_ENTER_SQ_WAKEUP` again. Only read
    /// when `sqpoll` is set.
    pub sqpoll_idle_ms: u32,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            entries: 32,
            sqpoll: false,
            sqpoll_idle_ms: 100,
        }
    }
}

/// One block transfer for [`Ring::run`]. Offsets are absolute file byte
/// offsets; buffer length is the transfer size.
pub enum Op<'a> {
    /// Read `buf.len()` bytes at `offset` from `fd` into `buf`.
    Read {
        /// Raw file descriptor (must stay open for the duration of `run`).
        fd: i32,
        /// Destination buffer, filled completely on success.
        buf: &'a mut [u8],
        /// Absolute byte offset in the file.
        offset: u64,
    },
    /// Write all of `buf` at `offset` to `fd`.
    Write {
        /// Raw file descriptor (must stay open for the duration of `run`).
        fd: i32,
        /// Source buffer, written completely on success.
        buf: &'a [u8],
        /// Absolute byte offset in the file.
        offset: u64,
    },
}

#[cfg(target_os = "linux")]
mod linux {
    use super::{Op, RingConfig, RingStats};
    use std::io;
    use std::os::raw::{c_int, c_long, c_uint, c_void};
    use std::sync::atomic::{AtomicU32, Ordering};

    const SYS_IO_URING_SETUP: c_long = 425;
    const SYS_IO_URING_ENTER: c_long = 426;
    const SYS_IO_URING_REGISTER: c_long = 427;

    const IORING_OP_READ_FIXED: u8 = 4;
    const IORING_OP_WRITE_FIXED: u8 = 5;
    const IORING_OP_READ: u8 = 22;
    const IORING_OP_WRITE: u8 = 23;
    const IORING_ENTER_GETEVENTS: c_uint = 1;
    const IORING_ENTER_SQ_WAKEUP: c_uint = 2;
    const IORING_SETUP_SQPOLL: u32 = 2;
    const IORING_SQ_NEED_WAKEUP: u32 = 1;
    const IORING_FEAT_SINGLE_MMAP: u32 = 1;
    const IORING_REGISTER_BUFFERS: c_uint = 0;
    const IORING_UNREGISTER_BUFFERS: c_uint = 1;

    /// `struct iovec` from the kernel UAPI, for `IORING_REGISTER_BUFFERS`.
    #[repr(C)]
    struct Iovec {
        iov_base: *mut c_void,
        iov_len: usize,
    }

    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    const PROT_READ_WRITE: c_int = 0x3;
    const MAP_SHARED_POPULATE: c_int = 0x8001;

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    #[repr(C)]
    #[derive(Default)]
    struct SqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Default)]
    struct CqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Default)]
    struct SetupParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqringOffsets,
        cq_off: CqringOffsets,
    }

    /// Submission queue entry, 64 bytes (the non-union fields this driver
    /// uses; the rest stays zeroed). `buf_index` occupies the first u16 of
    /// the trailing union in the kernel layout — it selects which
    /// registered iovec a `READ_FIXED`/`WRITE_FIXED` op targets.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        rw_flags: u32,
        user_data: u64,
        buf_index: u16,
        pad: [u16; 11],
    }

    /// Completion queue entry, 16 bytes.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr.cast(), self.len);
            }
        }
    }

    /// One io_uring instance: a submission ring, a completion ring, and
    /// the SQE array, all mmap-shared with the kernel.
    pub struct Ring {
        fd: i32,
        // Keep the mappings alive; dropped (munmapped) after use.
        _sq_map: Mapping,
        _cq_map: Option<Mapping>,
        _sqe_map: Mapping,
        sq_head: *const AtomicU32,
        sq_tail: *const AtomicU32,
        sq_flags: *const AtomicU32,
        sq_mask: u32,
        sq_entries: u32,
        sq_array: *mut u32,
        sqes: *mut Sqe,
        cq_head: *const AtomicU32,
        cq_tail: *const AtomicU32,
        cq_mask: u32,
        cqes: *const Cqe,
        sqpoll: bool,
        // Registered staging region as (base address, length); ops whose
        // buffers fall inside it are submitted as fixed-buffer ops.
        fixed: Option<(usize, usize)>,
        stats: RingStats,
    }

    // The raw pointers all target the two mmap regions owned by this value,
    // which live and die with it; the kernel side is inherently
    // cross-thread. Moving the Ring to another thread is therefore sound
    // (it is not Sync — all methods take &mut self).
    unsafe impl Send for Ring {}

    fn map(fd: i32, len: usize, offset: i64) -> io::Result<Mapping> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ_WRITE,
                MAP_SHARED_POPULATE,
                fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr.cast(),
            len,
        })
    }

    impl Ring {
        /// Set up a ring with (at least) `entries` submission slots.
        ///
        /// Errors instead of panicking when the kernel refuses — ENOSYS on
        /// pre-5.1 kernels, EPERM under seccomp policies that filter the
        /// io_uring syscalls (common in container runtimes) — so callers
        /// can detect unavailability at startup and fall back.
        pub fn new(entries: u32) -> io::Result<Ring> {
            Ring::with_config(RingConfig {
                entries,
                ..RingConfig::default()
            })
        }

        /// Set up a ring from a full [`RingConfig`]. SQPOLL setup can fail
        /// on kernels/configurations that support plain rings (pre-5.11,
        /// missing privileges) — callers wanting best-effort polling
        /// should retry with `sqpoll: false` on error.
        pub fn with_config(cfg: RingConfig) -> io::Result<Ring> {
            let mut p = SetupParams::default();
            if cfg.sqpoll {
                p.flags = IORING_SETUP_SQPOLL;
                p.sq_thread_idle = cfg.sqpoll_idle_ms;
            }
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_SETUP,
                    cfg.entries as c_long,
                    &mut p as *mut SetupParams,
                )
            };
            if ret < 0 {
                return Err(io::Error::last_os_error());
            }
            let fd = ret as i32;
            // On any setup failure past this point the fd must not leak.
            let build = (|| {
                let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
                let cq_len =
                    p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
                let (sq_map, cq_map) = if p.features & IORING_FEAT_SINGLE_MMAP != 0 {
                    (map(fd, sq_len.max(cq_len), IORING_OFF_SQ_RING)?, None)
                } else {
                    (
                        map(fd, sq_len, IORING_OFF_SQ_RING)?,
                        Some(map(fd, cq_len, IORING_OFF_CQ_RING)?),
                    )
                };
                let sqe_map = map(
                    fd,
                    p.sq_entries as usize * std::mem::size_of::<Sqe>(),
                    IORING_OFF_SQES,
                )?;
                let sq = sq_map.ptr;
                let cq = cq_map.as_ref().map_or(sq_map.ptr, |m| m.ptr);
                // Safety of the pointer arithmetic: every offset in
                // SetupParams is a kernel-provided offset into the ring
                // mapping it belongs to, in bounds by construction.
                let ring = unsafe {
                    Ring {
                        fd,
                        sq_head: sq.add(p.sq_off.head as usize).cast(),
                        sq_tail: sq.add(p.sq_off.tail as usize).cast(),
                        sq_flags: sq.add(p.sq_off.flags as usize).cast(),
                        sq_mask: *sq.add(p.sq_off.ring_mask as usize).cast::<u32>(),
                        sq_entries: p.sq_entries,
                        sq_array: sq.add(p.sq_off.array as usize).cast(),
                        sqes: sqe_map.ptr.cast(),
                        cq_head: cq.add(p.cq_off.head as usize).cast(),
                        cq_tail: cq.add(p.cq_off.tail as usize).cast(),
                        cq_mask: *cq.add(p.cq_off.ring_mask as usize).cast::<u32>(),
                        cqes: cq.add(p.cq_off.cqes as usize).cast(),
                        _sq_map: sq_map,
                        _cq_map: cq_map,
                        _sqe_map: sqe_map,
                        sqpoll: cfg.sqpoll,
                        fixed: None,
                        stats: RingStats::default(),
                    }
                };
                Ok(ring)
            })();
            match build {
                Ok(ring) => Ok(ring),
                Err(e) => {
                    unsafe {
                        close(fd);
                    }
                    Err(e)
                }
            }
        }

        /// Submission slots in the ring (ops beyond this are queued by
        /// [`Ring::run`] and submitted as slots free up).
        pub fn capacity(&self) -> usize {
            self.sq_entries as usize
        }

        /// Cumulative submit/reap batching counters since setup.
        pub fn stats(&self) -> RingStats {
            self.stats
        }

        /// True when the ring was set up with kernel-side submission
        /// polling (`IORING_SETUP_SQPOLL`).
        pub fn sqpoll(&self) -> bool {
            self.sqpoll
        }

        /// True when a staging region is currently registered via
        /// [`Ring::register_buffer`].
        pub fn has_fixed_buffer(&self) -> bool {
            self.fixed.is_some()
        }

        /// Pin `buf` with `IORING_REGISTER_BUFFERS` as the single
        /// registered iovec (index 0). Subsequent ops whose buffers lie
        /// entirely inside this region are submitted as
        /// `READ_FIXED`/`WRITE_FIXED`, skipping the per-op page pin.
        ///
        /// Contract: the caller must keep `buf`'s allocation at this
        /// address for as long as the registration stands (i.e. never let
        /// the backing `Vec` reallocate) — otherwise fixed ops target the
        /// stale pinned pages and transfers silently miss the live buffer.
        /// The storage layer guarantees this by sizing its staging buffer
        /// once, before registration, and never growing it after.
        ///
        /// Fails with EOPNOTSUPP on pre-5.1 kernels, ENOMEM/EFAULT when
        /// the memlock rlimit cannot cover the region; callers should
        /// treat failure as "run unregistered", not fatal.
        pub fn register_buffer(&mut self, buf: &mut [u8]) -> io::Result<()> {
            if self.fixed.is_some() {
                self.unregister_buffers()?;
            }
            let iov = Iovec {
                iov_base: buf.as_mut_ptr().cast(),
                iov_len: buf.len(),
            };
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_REGISTER,
                    self.fd as c_long,
                    IORING_REGISTER_BUFFERS as c_long,
                    &iov as *const Iovec,
                    1 as c_long,
                )
            };
            if ret < 0 {
                return Err(io::Error::last_os_error());
            }
            self.fixed = Some((buf.as_ptr() as usize, buf.len()));
            Ok(())
        }

        /// Drop the buffer registration; ops revert to the unregistered
        /// opcodes. No-op when nothing is registered.
        pub fn unregister_buffers(&mut self) -> io::Result<()> {
            if self.fixed.is_none() {
                return Ok(());
            }
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_REGISTER,
                    self.fd as c_long,
                    IORING_UNREGISTER_BUFFERS as c_long,
                    std::ptr::null::<c_void>(),
                    0 as c_long,
                )
            };
            if ret < 0 {
                return Err(io::Error::last_os_error());
            }
            self.fixed = None;
            Ok(())
        }

        /// True when `[addr, addr+len)` sits inside the registered region.
        fn in_fixed(&self, addr: usize, len: usize) -> bool {
            match self.fixed {
                Some((base, blen)) => addr >= base && addr + len <= base + blen,
                None => false,
            }
        }

        fn sq_pending(&self) -> u32 {
            let head = unsafe { (*self.sq_head).load(Ordering::Acquire) };
            let tail = unsafe { (*self.sq_tail).load(Ordering::Relaxed) };
            tail.wrapping_sub(head)
        }

        fn push_sqe(&mut self, sqe: Sqe) -> bool {
            if self.sq_pending() >= self.sq_entries {
                return false;
            }
            let tail = unsafe { (*self.sq_tail).load(Ordering::Relaxed) };
            let idx = tail & self.sq_mask;
            unsafe {
                self.sqes.add(idx as usize).write(sqe);
                self.sq_array.add(idx as usize).write(idx);
                // Publish the SQE before the tail moves, or the kernel may
                // read a stale entry.
                (*self.sq_tail).store(tail.wrapping_add(1), Ordering::Release);
            }
            true
        }

        fn pop_cqe(&mut self) -> Option<Cqe> {
            let head = unsafe { (*self.cq_head).load(Ordering::Relaxed) };
            let tail = unsafe { (*self.cq_tail).load(Ordering::Acquire) };
            if head == tail {
                return None;
            }
            let cqe = unsafe { *self.cqes.add((head & self.cq_mask) as usize) };
            unsafe {
                // Release the slot back to the kernel only after the copy.
                (*self.cq_head).store(head.wrapping_add(1), Ordering::Release);
            }
            Some(cqe)
        }

        fn enter(&mut self, to_submit: u32, min_complete: u32) -> io::Result<()> {
            loop {
                // With SQPOLL the kernel thread consumes SQEs on its own;
                // enter() is still needed to wait for completions, and must
                // carry SQ_WAKEUP whenever the poll thread has gone idle.
                let mut flags = IORING_ENTER_GETEVENTS;
                if self.sqpoll {
                    let sqf = unsafe { (*self.sq_flags).load(Ordering::Acquire) };
                    if sqf & IORING_SQ_NEED_WAKEUP != 0 {
                        flags |= IORING_ENTER_SQ_WAKEUP;
                    }
                }
                let ret = unsafe {
                    syscall(
                        SYS_IO_URING_ENTER,
                        self.fd as c_long,
                        to_submit as c_long,
                        min_complete as c_long,
                        flags as c_long,
                        std::ptr::null::<c_void>(),
                        0usize,
                    )
                };
                if ret >= 0 {
                    return Ok(());
                }
                let err = io::Error::last_os_error();
                if !super::submit_errno_transient(&err) {
                    return Err(err);
                }
                // EAGAIN (unlike EINTR) means the kernel is briefly out of
                // resources — yield instead of spinning hot on the retry.
                if err.kind() == io::ErrorKind::WouldBlock {
                    std::thread::yield_now();
                }
            }
        }

        /// Drive every op to completion. Short transfers are resubmitted
        /// for the remainder; the result vector is index-aligned with
        /// `ops`. A transport-level failure of `io_uring_enter` is
        /// reported on every op still outstanding at that point.
        pub fn run(&mut self, ops: &mut [Op<'_>]) -> Vec<io::Result<()>> {
            struct Track {
                done: usize,
                err: Option<io::Error>,
                in_flight: bool,
            }
            let mut track: Vec<Track> = ops
                .iter()
                .map(|_| Track {
                    done: 0,
                    err: None,
                    in_flight: false,
                })
                .collect();
            let op_len = |op: &Op<'_>| match op {
                Op::Read { buf, .. } => buf.len(),
                Op::Write { buf, .. } => buf.len(),
            };
            loop {
                // Fill the submission ring with every op that still has
                // bytes outstanding and is not already in flight.
                let mut in_flight = 0u32;
                let mut pushed = 0u64;
                for (i, op) in ops.iter_mut().enumerate() {
                    let t = &mut track[i];
                    if t.in_flight {
                        in_flight += 1;
                        continue;
                    }
                    if t.err.is_some() || t.done >= op_len(op) {
                        continue;
                    }
                    let (read, fd, addr, len, off) = match op {
                        Op::Read { fd, buf, offset } => (
                            true,
                            *fd,
                            buf[t.done..].as_mut_ptr() as u64,
                            (buf.len() - t.done) as u32,
                            *offset + t.done as u64,
                        ),
                        Op::Write { fd, buf, offset } => (
                            false,
                            *fd,
                            buf[t.done..].as_ptr() as u64,
                            (buf.len() - t.done) as u32,
                            *offset + t.done as u64,
                        ),
                    };
                    // Buffers inside the registered region ride the fixed
                    // opcodes (kernel-validated against iovec 0); anything
                    // else takes the ordinary pin-per-op path.
                    let fixed = self.in_fixed(addr as usize, len as usize);
                    let opcode = match (read, fixed) {
                        (true, true) => IORING_OP_READ_FIXED,
                        (true, false) => IORING_OP_READ,
                        (false, true) => IORING_OP_WRITE_FIXED,
                        (false, false) => IORING_OP_WRITE,
                    };
                    let sqe = Sqe {
                        opcode,
                        flags: 0,
                        ioprio: 0,
                        fd,
                        off,
                        addr,
                        len,
                        rw_flags: 0,
                        user_data: i as u64,
                        buf_index: 0,
                        pad: [0; 11],
                    };
                    if !self.push_sqe(sqe) {
                        break; // ring full — the rest submits next round
                    }
                    if fixed {
                        self.stats.fixed_sqes += 1;
                    }
                    pushed += 1;
                    t.in_flight = true;
                    in_flight += 1;
                }
                if in_flight == 0 {
                    break; // everything completed or errored
                }
                let to_submit = self.sq_pending();
                if self.sqpoll {
                    // The poll thread may have drained the SQ already, so
                    // sq_pending() undercounts; credit what we pushed.
                    if pushed > 0 {
                        self.stats.submit_calls += 1;
                        self.stats.submitted_sqes += pushed;
                    }
                } else if to_submit > 0 {
                    self.stats.submit_calls += 1;
                    self.stats.submitted_sqes += u64::from(to_submit);
                }
                if let Err(e) = self.enter(to_submit, in_flight) {
                    for (t, op) in track.iter_mut().zip(ops.iter()) {
                        if t.err.is_none() && t.done < op_len(op) {
                            t.err = Some(io::Error::new(e.kind(), e.to_string()));
                        }
                    }
                    break;
                }
                let mut reaped = 0u64;
                while let Some(cqe) = self.pop_cqe() {
                    reaped += 1;
                    let i = cqe.user_data as usize;
                    let t = &mut track[i];
                    t.in_flight = false;
                    if cqe.res < 0 {
                        t.err = Some(io::Error::from_raw_os_error(-cqe.res));
                    } else if cqe.res == 0 && t.done < op_len(&ops[i]) {
                        t.err = Some(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "read past end of file",
                        ));
                    } else {
                        t.done += cqe.res as usize;
                    }
                }
                if reaped > 0 {
                    self.stats.reap_rounds += 1;
                    self.stats.reaped_cqes += reaped;
                }
            }
            track
                .into_iter()
                .map(|t| match t.err {
                    Some(e) => Err(e),
                    None => Ok(()),
                })
                .collect()
        }
    }

    impl Drop for Ring {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }
}

#[cfg(target_os = "linux")]
pub use linux::Ring;

/// Stub ring for non-Linux targets: setup always fails, so callers take
/// their synchronous fallback path.
#[cfg(not(target_os = "linux"))]
pub struct Ring {
    never: std::convert::Infallible,
}

#[cfg(not(target_os = "linux"))]
impl Ring {
    /// io_uring is Linux-only; always errors here.
    pub fn new(_entries: u32) -> io::Result<Ring> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "io_uring is only available on Linux",
        ))
    }

    /// io_uring is Linux-only; always errors here.
    pub fn with_config(_cfg: RingConfig) -> io::Result<Ring> {
        Ring::new(0)
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn capacity(&self) -> usize {
        match self.never {}
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn sqpoll(&self) -> bool {
        match self.never {}
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn has_fixed_buffer(&self) -> bool {
        match self.never {}
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn register_buffer(&mut self, _buf: &mut [u8]) -> io::Result<()> {
        match self.never {}
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn unregister_buffers(&mut self) -> io::Result<()> {
        match self.never {}
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn stats(&self) -> RingStats {
        match self.never {}
    }

    /// Unreachable (a stub `Ring` cannot be constructed).
    pub fn run(&mut self, _ops: &mut [Op<'_>]) -> Vec<io::Result<()>> {
        match self.never {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn ring_or_skip(entries: u32) -> Option<Ring> {
        match Ring::new(entries) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("skipping: io_uring unavailable here ({e})");
                None
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn raw_fd(f: &std::fs::File) -> i32 {
        use std::os::fd::AsRawFd;
        f.as_raw_fd()
    }

    #[cfg(not(target_os = "linux"))]
    fn raw_fd(_f: &std::fs::File) -> i32 {
        -1
    }

    fn temp_file(tag: &str) -> (std::path::PathBuf, std::fs::File) {
        let path = std::env::temp_dir().join(format!(
            "pdm-uring-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        (path, f)
    }

    #[test]
    fn batch_of_writes_then_reads_round_trips() {
        let Some(mut ring) = ring_or_skip(4) else {
            return;
        };
        let (path, f) = temp_file("rt");
        let fd = raw_fd(&f);
        let blocks: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 512]).collect();
        // 8 ops through a 4-entry ring exercises the queue-as-slots-free path.
        let mut writes: Vec<Op<'_>> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| Op::Write {
                fd,
                buf: b,
                offset: i as u64 * 512,
            })
            .collect();
        for r in ring.run(&mut writes) {
            r.unwrap();
        }
        let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 512]).collect();
        let mut reads: Vec<Op<'_>> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| Op::Read {
                fd,
                buf: b,
                offset: i as u64 * 512,
            })
            .collect();
        for r in ring.run(&mut reads) {
            r.unwrap();
        }
        assert_eq!(bufs, blocks);
        let st = ring.stats();
        assert_eq!(st.submitted_sqes, 16, "8 writes + 8 reads");
        assert_eq!(st.reaped_cqes, 16);
        assert!(st.submit_calls >= 2, "at least one enter per run()");
        assert!(st.submit_calls <= st.submitted_sqes);
        assert!(st.reap_rounds >= 2);
        assert!(st.reap_rounds <= st.reaped_cqes);
        drop(f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn ring_io_is_visible_to_ordinary_file_io_and_vice_versa() {
        let Some(mut ring) = ring_or_skip(8) else {
            return;
        };
        let (path, mut f) = temp_file("mix");
        f.write_all(&[7u8; 256]).unwrap();
        f.flush().unwrap();
        let fd = raw_fd(&f);
        let mut buf = vec![0u8; 256];
        let mut ops = vec![Op::Read {
            fd,
            buf: &mut buf,
            offset: 0,
        }];
        for r in ring.run(&mut ops) {
            r.unwrap();
        }
        assert_eq!(buf, vec![7u8; 256]);
        let payload = vec![9u8; 128];
        let mut ops = vec![Op::Write {
            fd,
            buf: &payload,
            offset: 256,
        }];
        for r in ring.run(&mut ops) {
            r.unwrap();
        }
        let mut back = vec![0u8; 128];
        f.seek(SeekFrom::Start(256)).unwrap();
        f.read_exact(&mut back).unwrap();
        assert_eq!(back, payload);
        drop(f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn per_op_errors_do_not_poison_the_batch() {
        let Some(mut ring) = ring_or_skip(8) else {
            return;
        };
        let (path, f) = temp_file("err");
        let fd = raw_fd(&f);
        let good = vec![3u8; 64];
        let mut bad_buf = vec![0u8; 64];
        let mut ops = vec![
            Op::Write {
                fd,
                buf: &good,
                offset: 0,
            },
            // Reading from a closed descriptor must fail just that op.
            Op::Read {
                fd: -1,
                buf: &mut bad_buf,
                offset: 0,
            },
        ];
        let res = ring.run(&mut ops);
        assert!(res[0].is_ok(), "good write failed: {:?}", res[0]);
        assert!(res[1].is_err(), "bad-fd read unexpectedly succeeded");
        drop(f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn registered_buffer_upgrades_ops_to_fixed() {
        let Some(mut ring) = ring_or_skip(8) else {
            return;
        };
        // One staging allocation, sized once and never grown: the
        // registration contract in a bottle.
        let mut staging = vec![0u8; 4 * 512];
        if let Err(e) = ring.register_buffer(&mut staging) {
            eprintln!("skipping: buffer registration unavailable here ({e})");
            return;
        }
        assert!(ring.has_fixed_buffer());
        let (path, f) = temp_file("fixed");
        let fd = raw_fd(&f);
        for (i, chunk) in staging.chunks_mut(512).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        let mut writes: Vec<Op<'_>> = staging
            .chunks(512)
            .enumerate()
            .map(|(i, b)| Op::Write {
                fd,
                buf: b,
                offset: i as u64 * 512,
            })
            .collect();
        for r in ring.run(&mut writes) {
            r.unwrap();
        }
        // A buffer outside the registered region must still work (the
        // ring silently falls back to the unregistered opcode for it).
        let mut outside = vec![0u8; 512];
        staging.fill(0);
        {
            let mut reads: Vec<Op<'_>> = staging
                .chunks_mut(512)
                .enumerate()
                .map(|(i, b)| Op::Read {
                    fd,
                    buf: b,
                    offset: i as u64 * 512,
                })
                .collect();
            reads.push(Op::Read {
                fd,
                buf: &mut outside,
                offset: 0,
            });
            for r in ring.run(&mut reads) {
                r.unwrap();
            }
        }
        for (i, chunk) in staging.chunks(512).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8 + 1));
        }
        assert!(outside.iter().all(|&b| b == 1));
        let st = ring.stats();
        // 4 fixed writes + 4 fixed reads; the outside read is not fixed.
        assert_eq!(st.fixed_sqes, 8);
        assert_eq!(st.submitted_sqes, 9);
        ring.unregister_buffers().unwrap();
        assert!(!ring.has_fixed_buffer());
        // After unregistration everything takes the ordinary path again.
        let mut reads = vec![Op::Read {
            fd,
            buf: &mut staging[..512],
            offset: 0,
        }];
        for r in ring.run(&mut reads) {
            r.unwrap();
        }
        assert_eq!(ring.stats().fixed_sqes, 8);
        drop(f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn sqpoll_ring_round_trips_or_skips() {
        let ring = Ring::with_config(RingConfig {
            entries: 8,
            sqpoll: true,
            sqpoll_idle_ms: 50,
        });
        let mut ring = match ring {
            Ok(r) => r,
            Err(e) => {
                // Pre-5.11 kernels and unprivileged containers refuse
                // SQPOLL; the storage layer falls back the same way.
                eprintln!("skipping: SQPOLL unavailable here ({e})");
                return;
            }
        };
        assert!(ring.sqpoll());
        let (path, f) = temp_file("sqpoll");
        let fd = raw_fd(&f);
        let payload: Vec<u8> = (0..2048u32).map(|i| i as u8).collect();
        let mut ops = vec![Op::Write {
            fd,
            buf: &payload,
            offset: 0,
        }];
        for r in ring.run(&mut ops) {
            r.unwrap();
        }
        let mut back = vec![0u8; 2048];
        let mut ops = vec![Op::Read {
            fd,
            buf: &mut back,
            offset: 0,
        }];
        for r in ring.run(&mut ops) {
            r.unwrap();
        }
        assert_eq!(back, payload);
        assert_eq!(ring.stats().submitted_sqes, 2);
        drop(f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn submission_errnos_classify_transient_vs_unavailable() {
        // EINTR and EAGAIN: retry the enter with the same arguments.
        for errno in [1i32, 13, 38] {
            let e = io::Error::from_raw_os_error(errno);
            assert!(ring_unavailable(&e), "errno {errno} is permanent");
            assert!(
                !submit_errno_transient(&e),
                "errno {errno} must not be retried"
            );
        }
        for errno in [4i32, 11] {
            let e = io::Error::from_raw_os_error(errno);
            assert!(submit_errno_transient(&e), "errno {errno} is transient");
            assert!(
                !ring_unavailable(&e),
                "errno {errno} must not disable io_uring"
            );
        }
        // The non-Linux stub's setup error counts as unavailable too.
        let stub = io::Error::new(io::ErrorKind::Unsupported, "no io_uring");
        assert!(ring_unavailable(&stub));
        // EIO: neither — a real, permanent, per-op failure.
        let eio = io::Error::from_raw_os_error(5);
        assert!(!submit_errno_transient(&eio));
        assert!(!ring_unavailable(&eio));
        // Kind-based classification survives rewrapping.
        let rewrapped = io::Error::new(io::ErrorKind::Interrupted, "wrapped EINTR");
        assert!(submit_errno_transient(&rewrapped));
    }

    #[test]
    fn read_past_eof_reports_unexpected_eof() {
        let Some(mut ring) = ring_or_skip(8) else {
            return;
        };
        let (path, f) = temp_file("eof");
        f.set_len(100).unwrap();
        let fd = raw_fd(&f);
        let mut buf = vec![0u8; 256];
        let mut ops = vec![Op::Read {
            fd,
            buf: &mut buf,
            offset: 0,
        }];
        let res = ring.run(&mut ops);
        match &res[0] {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            Ok(()) => panic!("short file read claimed success"),
        }
        drop(f);
        std::fs::remove_file(path).unwrap();
    }
}
