//! Wiring crate: hosts the workspace-level integration tests
//! (`/tests/*.rs`) and runnable examples (`/examples/*.rs`). See those
//! directories; this library is intentionally empty.
