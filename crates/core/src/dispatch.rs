//! Front-end dispatcher: pick the cheapest of the paper's algorithms for a
//! given input size, as §8's conclusions suggest.
//!
//! | `N` | Choice | Expected passes |
//! |---|---|---|
//! | `≤ M` | in-memory | 1 |
//! | `≤ cap₂(M, α)` | `ExpectedTwoPass` | 2 |
//! | `≤ M√M` | `ThreePass2` | 3 |
//! | `≤ cap₃ᵉᶠᶠ(M, α)` | `ExpectedThreePass` | 3 |
//! | `≤ cap₆(M, α)` | `ExpectedSixPass` | 6 |
//! | `≤ M²` | `SevenPass` | 7 |
//!
//! Integer keys with a known bounded domain should use
//! [`crate::integer_sort`] / [`crate::radix_sort`] directly — the
//! dispatcher is comparison-based and makes no assumption on key values.

use crate::common::{
    capacity_expected_two_pass, in_memory_sort, require_square_cfg, SortReport,
};
use crate::expected_three_pass::{self, expected_three_pass};
use crate::expected_two_pass::expected_two_pass;
use crate::seven_pass::{self, expected_six_pass, seven_pass};
use crate::three_pass2::three_pass2;
use pdm_model::prelude::*;

/// Default confidence parameter: failure probability `≤ M^{−2}` (the
/// paper's running example uses `α = 2`).
pub const DEFAULT_ALPHA: f64 = 2.0;

/// Which algorithm [`pdm_sort`] would choose for `n` keys (without running
/// anything).
pub fn choose(cfg: &PdmConfig, n: usize, alpha: f64) -> Result<crate::Algorithm> {
    use crate::Algorithm::*;
    let b = require_square_cfg(cfg)?;
    let m = cfg.mem_capacity;
    if n == 0 {
        return Err(PdmError::UnsupportedInput("empty input".into()));
    }
    Ok(if n <= m {
        InMemory
    } else if n <= capacity_expected_two_pass(m, alpha) {
        ExpectedTwoPass
    } else if n <= m * b {
        ThreePass2
    } else if n <= expected_three_pass::effective_capacity(m, alpha) {
        ExpectedThreePass
    } else if n <= seven_pass::capacity_six(m, alpha) {
        ExpectedSixPass
    } else if n <= m * m {
        SevenPass
    } else {
        return Err(PdmError::UnsupportedInput(format!(
            "N = {n} exceeds M² = {}; the paper targets N ≤ M²",
            m * m
        )));
    })
}

/// Sort `n` keys with the cheapest applicable algorithm (α = 2).
pub fn pdm_sort<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
) -> Result<SortReport> {
    pdm_sort_with_alpha(pdm, input, n, DEFAULT_ALPHA)
}

/// [`pdm_sort`] with an explicit confidence parameter `α`.
pub fn pdm_sort_with_alpha<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    alpha: f64,
) -> Result<SortReport> {
    use crate::Algorithm::*;
    match choose(pdm.cfg(), n, alpha)? {
        InMemory => in_memory_sort(pdm, input, n),
        ExpectedTwoPass => expected_two_pass(pdm, input, n),
        ThreePass2 => three_pass2(pdm, input, n),
        ExpectedThreePass => expected_three_pass(pdm, input, n, alpha),
        ExpectedSixPass => expected_six_pass(pdm, input, n, alpha),
        SevenPass => seven_pass(pdm, input, n),
        other => unreachable!("dispatcher never picks {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn choose_ladder_is_monotone() {
        let cfg = PdmConfig::square(4, 64); // M = 4096
        let m = 4096usize;
        assert_eq!(choose(&cfg, 100, 2.0).unwrap(), Algorithm::InMemory);
        assert_eq!(choose(&cfg, m, 2.0).unwrap(), Algorithm::InMemory);
        assert_eq!(choose(&cfg, m + 1, 2.0).unwrap(), Algorithm::ExpectedTwoPass);
        let cap2 = capacity_expected_two_pass(m, 2.0);
        assert_eq!(choose(&cfg, cap2, 2.0).unwrap(), Algorithm::ExpectedTwoPass);
        assert_eq!(choose(&cfg, cap2 + 1, 2.0).unwrap(), Algorithm::ThreePass2);
        assert_eq!(choose(&cfg, m * 64, 2.0).unwrap(), Algorithm::ThreePass2);
        // at M = 4096 the effective three-pass capacity sits below M√M, so
        // the next tier up is the expected six-pass algorithm (the theorem
        // capacity only overtakes M^1.5 for M ≳ 2^20)
        let next = choose(&cfg, m * 64 + 1, 2.0).unwrap();
        assert!(
            next == Algorithm::ExpectedThreePass || next == Algorithm::ExpectedSixPass,
            "unexpected tier {next}"
        );
        assert_eq!(choose(&cfg, m * m, 2.0).unwrap(), Algorithm::SevenPass);
        assert!(choose(&cfg, m * m + 1, 2.0).is_err());
        assert!(choose(&cfg, 0, 2.0).is_err());
    }

    #[test]
    fn alpha_moves_the_expected_tier_boundaries() {
        let cfg = PdmConfig::square(4, 64);
        let m = 4096usize;
        // higher α shrinks the expected-two-pass capacity, so a mid-band N
        // dispatches differently under α = 1 vs α = 4
        let n = capacity_expected_two_pass(m, 1.0);
        assert_eq!(choose(&cfg, n, 1.0).unwrap(), Algorithm::ExpectedTwoPass);
        assert_eq!(choose(&cfg, n, 4.0).unwrap(), Algorithm::ThreePass2);
    }

    #[test]
    fn dispatched_sorts_are_correct_at_each_tier() {
        let mut rng = StdRng::seed_from_u64(101);
        // M = 256: tiers at 256, ~830, 4096, …
        for n in [200usize, 500, 2000, 4096, 6000] {
            let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, 16)).unwrap();
            let mut data: Vec<u64> = (0..n as u64).collect();
            data.shuffle(&mut rng);
            let input = pdm.alloc_region_for_keys(n).unwrap();
            pdm.ingest(&input, &data).unwrap();
            let rep = pdm_sort(&mut pdm, &input, n).unwrap();
            let got = pdm.inspect_prefix(&rep.output, n).unwrap();
            let mut want = data.clone();
            want.sort_unstable();
            assert_eq!(got, want, "n = {n} via {}", rep.algorithm);
            assert_eq!(rep.algorithm, choose(pdm.cfg(), n, 2.0).unwrap());
        }
    }

    #[test]
    fn bigger_inputs_cost_more_passes() {
        let mut rng = StdRng::seed_from_u64(102);
        let mut last_passes = 0.0f64;
        for n in [256usize, 800, 4000, 16384] {
            let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, 16)).unwrap();
            let mut data: Vec<u64> = (0..n as u64).collect();
            data.shuffle(&mut rng);
            let input = pdm.alloc_region_for_keys(n).unwrap();
            pdm.ingest(&input, &data).unwrap();
            pdm.reset_stats();
            let rep = pdm_sort(&mut pdm, &input, n).unwrap();
            if !rep.fell_back {
                assert!(
                    rep.read_passes + 1e-9 >= last_passes,
                    "passes regressed at n = {n}: {} < {last_passes}",
                    rep.read_passes
                );
                last_passes = rep.read_passes;
            }
        }
    }
}
