//! In-memory kernels shared by every algorithm's run-formation and
//! distribution steps, with optional rayon parallelism.
//!
//! Built with the `parallel` cargo feature AND enabled at runtime (CLI
//! `--threads`, [`configure_threads`]), [`sort_keys`] switches to
//! `par_sort_unstable` and [`classify`] to a parallel map. Both are
//! **byte-identical** to the sequential kernels: every `PdmKey` is totally
//! ordered (ties in `Tagged` break on the payload), so an unstable sort
//! has exactly one correct output, and classification is a pure per-key
//! map. Parallelism therefore never changes a single I/O step — the
//! golden pass-count gate runs with the feature both off and on.

use std::sync::atomic::{AtomicBool, Ordering};

/// Whether this build carries the parallel kernels at all.
pub const PARALLEL_BUILD: bool = cfg!(feature = "parallel");

/// Inputs below this size always sort sequentially: rayon's fork-join
/// overhead dominates small runs, and the PDM working sets that matter
/// (runs of `M` keys) sit far above it.
#[cfg(feature = "parallel")]
const PAR_THRESHOLD: usize = 1 << 13;

static PARALLEL_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable or disable the parallel kernels at runtime. A no-op (stays
/// sequential) when the `parallel` feature is compiled out.
pub fn set_parallel(on: bool) {
    PARALLEL_ENABLED.store(on && PARALLEL_BUILD, Ordering::Relaxed);
}

/// Whether the parallel kernels are currently active.
pub fn parallel_enabled() -> bool {
    PARALLEL_ENABLED.load(Ordering::Relaxed)
}

/// Configure the kernel thread count: `1` forces sequential kernels, `0`
/// enables parallelism with rayon's default thread count, `n > 1` builds
/// an `n`-thread global pool. Errors when the binary was built without
/// the `parallel` feature and more than one thread is requested.
pub fn configure_threads(threads: usize) -> std::result::Result<(), String> {
    if threads == 1 {
        set_parallel(false);
        return Ok(());
    }
    #[cfg(feature = "parallel")]
    {
        if threads > 1 {
            // A second initialization (tests, repeated calls) fails but
            // leaves the existing pool serving — safe to ignore.
            let _ = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global();
        }
        set_parallel(true);
        Ok(())
    }
    #[cfg(not(feature = "parallel"))]
    Err(format!(
        "--threads {threads}: this binary was built without the `parallel` feature \
         (rebuild with `--features parallel`)"
    ))
}

/// The run-formation sort kernel: unstable sort of a key slice, parallel
/// when enabled and the slice is large enough to pay for fork-join.
pub fn sort_keys<K: Ord + Send>(v: &mut [K]) {
    #[cfg(feature = "parallel")]
    if parallel_enabled() && v.len() >= PAR_THRESHOLD {
        use rayon::prelude::*;
        v.par_sort_unstable();
        return;
    }
    v.sort_unstable();
}

/// The distribution kernel: map every key to its bucket index. Parallel
/// when enabled (a pure map, so order and output are unaffected).
pub fn classify<K: Sync>(keys: &[K], bucket_of: impl Fn(&K) -> usize + Sync + Send) -> Vec<usize> {
    #[cfg(feature = "parallel")]
    if parallel_enabled() && keys.len() >= PAR_THRESHOLD {
        use rayon::prelude::*;
        return keys.par_iter().map(bucket_of).collect();
    }
    keys.iter().map(bucket_of).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_keys_matches_sort_unstable() {
        let mut a: Vec<u64> = (0..20_000u64).map(|i| i.wrapping_mul(0x9E3779B9) >> 7).collect();
        let mut b = a.clone();
        sort_keys(&mut a);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn classify_is_a_pure_map() {
        let keys: Vec<u64> = (0..100).collect();
        let ids = classify(&keys, |k| (*k % 7) as usize);
        assert_eq!(ids, keys.iter().map(|k| (*k % 7) as usize).collect::<Vec<_>>());
    }

    /// One test owns every transition of the global toggle, so parallel
    /// test execution never observes a half-configured state.
    #[test]
    fn thread_configuration_round_trips() {
        configure_threads(1).unwrap();
        assert!(!parallel_enabled());
        #[cfg(feature = "parallel")]
        {
            configure_threads(0).unwrap();
            assert!(parallel_enabled());
            let base: Vec<u64> =
                (0..100_000u64).map(|i| i.wrapping_mul(0x2545F491) >> 3).collect();
            let mut par = base.clone();
            sort_keys(&mut par);
            let ids_par = classify(&par, |k| (*k % 13) as usize);
            set_parallel(false);
            let mut seq = base.clone();
            sort_keys(&mut seq);
            assert_eq!(par, seq);
            assert_eq!(ids_par, classify(&seq, |k| (*k % 13) as usize));
            set_parallel(true);
        }
    }
}
