//! In-memory kernels shared by every algorithm's run-formation and
//! distribution steps, with optional rayon parallelism.
//!
//! Built with the `parallel` cargo feature AND enabled at runtime (CLI
//! `--threads`, [`configure_threads`]), [`sort_keys`] switches to
//! `par_sort_unstable` and [`classify`] to a parallel map. Both are
//! **byte-identical** to the sequential kernels: every `PdmKey` is totally
//! ordered (ties in `Tagged` break on the payload), so an unstable sort
//! has exactly one correct output, and classification is a pure per-key
//! map. Parallelism therefore never changes a single I/O step — the
//! golden pass-count gate runs with the feature both off and on.

use std::sync::atomic::{AtomicBool, Ordering};

/// Whether this build carries the parallel kernels at all.
pub const PARALLEL_BUILD: bool = cfg!(feature = "parallel");

/// Inputs below this size always sort sequentially: rayon's fork-join
/// overhead dominates small runs, and the PDM working sets that matter
/// (runs of `M` keys) sit far above it.
#[cfg(feature = "parallel")]
const PAR_THRESHOLD: usize = 1 << 13;

static PARALLEL_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable or disable the parallel kernels at runtime. A no-op (stays
/// sequential) when the `parallel` feature is compiled out.
pub fn set_parallel(on: bool) {
    PARALLEL_ENABLED.store(on && PARALLEL_BUILD, Ordering::Relaxed);
}

/// Whether the parallel kernels are currently active.
pub fn parallel_enabled() -> bool {
    PARALLEL_ENABLED.load(Ordering::Relaxed)
}

/// Configure the kernel thread count: `1` forces sequential kernels, `0`
/// enables parallelism with rayon's default thread count, `n > 1` builds
/// an `n`-thread global pool. Errors when the binary was built without
/// the `parallel` feature and more than one thread is requested.
pub fn configure_threads(threads: usize) -> std::result::Result<(), String> {
    if threads == 1 {
        set_parallel(false);
        return Ok(());
    }
    #[cfg(feature = "parallel")]
    {
        if threads > 1 {
            // A second initialization (tests, repeated calls) fails but
            // leaves the existing pool serving — safe to ignore.
            let _ = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global();
        }
        set_parallel(true);
        Ok(())
    }
    #[cfg(not(feature = "parallel"))]
    Err(format!(
        "--threads {threads}: this binary was built without the `parallel` feature \
         (rebuild with `--features parallel`)"
    ))
}

/// The run-formation sort kernel: unstable sort of a key slice, parallel
/// when enabled and the slice is large enough to pay for fork-join.
pub fn sort_keys<K: Ord + Send>(v: &mut [K]) {
    #[cfg(feature = "parallel")]
    if parallel_enabled() && v.len() >= PAR_THRESHOLD {
        use rayon::prelude::*;
        v.par_sort_unstable();
        return;
    }
    v.sort_unstable();
}

/// The distribution kernel: map every key to its bucket index. Parallel
/// when enabled (a pure map, so order and output are unaffected).
pub fn classify<K: Sync>(keys: &[K], bucket_of: impl Fn(&K) -> usize + Sync + Send) -> Vec<usize> {
    #[cfg(feature = "parallel")]
    if parallel_enabled() && keys.len() >= PAR_THRESHOLD {
        use rayon::prelude::*;
        return keys.par_iter().map(bucket_of).collect();
    }
    keys.iter().map(bucket_of).collect()
}

/// One emission step of the alternating up/down run generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunChunk {
    /// Number of keys moved into the caller's output buffer.
    pub taken: usize,
    /// `true` when this chunk *starts* a new run (the previous run could not
    /// be extended with any resident key, so the direction flipped).
    pub new_run: bool,
    /// Direction of the run this chunk belongs to: `true` = ascending.
    pub ascending: bool,
}

/// The in-memory policy of Bender, Farach-Colton et al.'s *alternating*
/// run-generation algorithm ("Run Generation Revisited"): replacement
/// selection that, when the current run can no longer be extended, flips
/// direction and emits the next run in the opposite order. Alternating
/// up/down is 2-competitive in the number of runs produced (no online
/// strategy can beat it by more than a factor of 2 on any input) and, unlike
/// ascending-only replacement selection, it turns *reverse-sorted* and
/// duplicate-heavy inputs into a handful of runs far longer than `M`.
///
/// The policy is block-granular: each call removes up to `chunk` keys from
/// the caller's **sorted ascending** resident buffer so emissions map onto
/// full `D·B`-key stripes. Within a direction it is greedy (always the
/// smallest key `≥ last` when ascending, the largest `≤ last` when
/// descending), which at chunk granularity means taking a contiguous span
/// of the sorted buffer — O(log M) to locate, O(chunk) to drain.
///
/// Every run drains at least the full buffer that was resident when it
/// started: emitted keys only move `last` toward the still-eligible side,
/// so a key eligible at run start stays eligible until emitted. With a
/// buffer of `M` keys every run is therefore at least `M` keys long and a
/// generator over `n` keys yields at most `⌈n/M⌉` runs — never more than
/// greedy load-sort-store run formation.
#[derive(Debug)]
pub struct UpDownPolicy<K> {
    ascending: bool,
    last: Option<K>,
    started: bool,
}

impl<K: Ord + Copy> UpDownPolicy<K> {
    /// A fresh policy; the first run is ascending.
    pub fn new() -> Self {
        Self { ascending: true, last: None, started: false }
    }

    /// Remove the next chunk of at most `chunk` keys from `buf` (which the
    /// caller keeps sorted ascending) and append them to `out` in run order.
    /// Returns `None` when `buf` is empty.
    pub fn take_chunk(
        &mut self,
        buf: &mut Vec<K>,
        out: &mut Vec<K>,
        chunk: usize,
    ) -> Option<RunChunk> {
        if buf.is_empty() || chunk == 0 {
            return None;
        }
        let mut new_run = !self.started;
        self.started = true;
        // An empty eligible span means the current run is exhausted: flip
        // direction and start a new run with the whole buffer eligible.
        if self.eligible_span(buf) == 0 {
            self.ascending = !self.ascending;
            self.last = None;
            new_run = true;
        }
        let span = self.eligible_span(buf);
        debug_assert!(span > 0, "a fresh run makes every resident key eligible");
        let take = span.min(chunk);
        if self.ascending {
            // Smallest eligible keys are the first `take` of the span, which
            // starts right past the keys `< last`.
            let lo = buf.len() - span;
            out.extend_from_slice(&buf[lo..lo + take]);
            self.last = Some(buf[lo + take - 1]);
            buf.drain(lo..lo + take);
        } else {
            // Largest eligible keys are the last `take` of the span, emitted
            // in descending order.
            let hi = span;
            out.extend(buf[hi - take..hi].iter().rev().copied());
            self.last = Some(buf[hi - take]);
            buf.drain(hi - take..hi);
        }
        Some(RunChunk { taken: take, new_run, ascending: self.ascending })
    }

    /// Whether the next [`UpDownPolicy::take_chunk`] on this buffer will
    /// start a new run — lets block-aligned consumers seal the previous
    /// run (pad its tail block) *before* the new run's keys are staged.
    pub fn will_start_new_run(&self, buf: &[K]) -> bool {
        !self.started || self.eligible_span(buf) == 0
    }

    /// Number of resident keys that can extend the current run: keys
    /// `≥ last` when ascending (a suffix of the sorted buffer), keys
    /// `≤ last` when descending (a prefix).
    fn eligible_span(&self, buf: &[K]) -> usize {
        match (&self.last, self.ascending) {
            (None, _) => buf.len(),
            (Some(last), true) => buf.len() - buf.partition_point(|k| k < last),
            (Some(last), false) => buf.partition_point(|k| k <= last),
        }
    }
}

impl<K: Ord + Copy> Default for UpDownPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_keys_matches_sort_unstable() {
        let mut a: Vec<u64> = (0..20_000u64).map(|i| i.wrapping_mul(0x9E3779B9) >> 7).collect();
        let mut b = a.clone();
        sort_keys(&mut a);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn classify_is_a_pure_map() {
        let keys: Vec<u64> = (0..100).collect();
        let ids = classify(&keys, |k| (*k % 7) as usize);
        assert_eq!(ids, keys.iter().map(|k| (*k % 7) as usize).collect::<Vec<_>>());
    }

    /// Drive the policy over `input` with a resident buffer of `cap` keys,
    /// refilling after each chunk, and return the emitted runs.
    fn generate_runs(input: &[u64], cap: usize, chunk: usize) -> Vec<(Vec<u64>, bool)> {
        let mut runs: Vec<(Vec<u64>, bool)> = Vec::new();
        let mut policy = UpDownPolicy::new();
        let mut buf: Vec<u64> = Vec::new();
        let mut rest = input;
        loop {
            let refill = (cap - buf.len()).min(rest.len());
            if refill > 0 {
                buf.extend_from_slice(&rest[..refill]);
                rest = &rest[refill..];
                sort_keys(&mut buf);
            }
            let mut out = Vec::new();
            match policy.take_chunk(&mut buf, &mut out, chunk) {
                None => break,
                Some(c) => {
                    assert_eq!(c.taken, out.len());
                    if c.new_run {
                        runs.push((Vec::new(), c.ascending));
                    }
                    runs.last_mut().unwrap().0.extend_from_slice(&out);
                }
            }
        }
        runs
    }

    #[test]
    fn updown_sorted_input_is_one_ascending_run() {
        let input: Vec<u64> = (0..4096).collect();
        let runs = generate_runs(&input, 256, 32);
        assert_eq!(runs.len(), 1);
        assert!(runs[0].1, "ascending");
        assert_eq!(runs[0].0, input);
    }

    #[test]
    fn updown_reversed_input_is_two_runs() {
        // Ascending-only replacement selection degenerates to n/M runs on
        // reverse-sorted input; alternating yields exactly two.
        let input: Vec<u64> = (0..4096u64).rev().collect();
        let runs = generate_runs(&input, 256, 32);
        assert_eq!(runs.len(), 2, "one up-run of M keys, one down-run of the rest");
        assert!(runs[0].1 && !runs[1].1);
        assert_eq!(runs[0].0.len(), 256);
        assert!(runs[0].0.windows(2).all(|w| w[0] <= w[1]));
        assert!(runs[1].0.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn updown_duplicate_heavy_input_makes_few_long_runs() {
        let input: Vec<u64> =
            (0..8192u64).map(|i| (i.wrapping_mul(0x9E3779B9) >> 9) % 4).collect();
        let runs = generate_runs(&input, 256, 32);
        // Greedy load-sort-store would emit 8192/256 = 32 runs. Ties keep the
        // boundary key eligible in both directions, so replacement selection
        // sustains runs past the buffer size (the classic ≈2M behavior).
        assert!(runs.len() < 32, "got {} runs, greedy would emit 32", runs.len());
        let avg = input.len() / runs.len();
        assert!(avg > 256, "average run {avg} should exceed the buffer size");
    }

    #[test]
    fn updown_every_run_at_least_buffer_sized_and_loses_no_keys() {
        let input: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(0x2545F491) >> 3).collect();
        let cap = 512;
        let runs = generate_runs(&input, cap, 64);
        let mut all: Vec<u64> = Vec::new();
        for (i, (run, asc)) in runs.iter().enumerate() {
            if i + 1 < runs.len() {
                assert!(run.len() >= cap, "run {i} has {} < {cap} keys", run.len());
            }
            if *asc {
                assert!(run.windows(2).all(|w| w[0] <= w[1]));
            } else {
                assert!(run.windows(2).all(|w| w[0] >= w[1]));
            }
            all.extend_from_slice(run);
        }
        assert!(runs.len() <= input.len().div_ceil(cap));
        sort_keys(&mut all);
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn updown_directions_alternate() {
        let input: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E3779B9) >> 7).collect();
        let runs = generate_runs(&input, 128, 16);
        for (i, (_, asc)) in runs.iter().enumerate() {
            assert_eq!(*asc, i % 2 == 0, "run {i} direction");
        }
    }

    /// One test owns every transition of the global toggle, so parallel
    /// test execution never observes a half-configured state.
    #[test]
    fn thread_configuration_round_trips() {
        configure_threads(1).unwrap();
        assert!(!parallel_enabled());
        #[cfg(feature = "parallel")]
        {
            configure_threads(0).unwrap();
            assert!(parallel_enabled());
            let base: Vec<u64> =
                (0..100_000u64).map(|i| i.wrapping_mul(0x2545F491) >> 3).collect();
            let mut par = base.clone();
            sort_keys(&mut par);
            let ids_par = classify(&par, |k| (*k % 13) as usize);
            set_parallel(false);
            let mut seq = base.clone();
            sort_keys(&mut seq);
            assert_eq!(par, seq);
            assert_eq!(ids_par, classify(&seq, |k| (*k % 13) as usize));
            set_parallel(true);
        }
    }
}
