//! Shared machinery for the paper's algorithms: the sort report, the
//! streaming cleanup engine, capacity formulas, and in-memory kernels.

use pdm_model::prelude::*;

/// Which algorithm produced a result (for reports and the dispatcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// §3.1 mesh-based three-pass sort.
    ThreePass1,
    /// §3.2 expected two-pass mesh sort.
    ExpTwoPassMesh,
    /// §4 LMM-based three-pass sort.
    ThreePass2,
    /// §5 expected two-pass sort.
    ExpectedTwoPass,
    /// §6 expected three-pass sort.
    ExpectedThreePass,
    /// §6.1 seven-pass sort of `M²` keys.
    SevenPass,
    /// §6.2 expected six-pass sort.
    ExpectedSixPass,
    /// §7 bucket sort of bounded integers.
    IntegerSort,
    /// §7 forward radix sort.
    RadixSort,
    /// Input fit in internal memory; sorted in one read + one write pass.
    InMemory,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Algorithm::ThreePass1 => "ThreePass1",
            Algorithm::ExpTwoPassMesh => "ExpTwoPassMesh",
            Algorithm::ThreePass2 => "ThreePass2",
            Algorithm::ExpectedTwoPass => "ExpectedTwoPass",
            Algorithm::ExpectedThreePass => "ExpectedThreePass",
            Algorithm::SevenPass => "SevenPass",
            Algorithm::ExpectedSixPass => "ExpectedSixPass",
            Algorithm::IntegerSort => "IntegerSort",
            Algorithm::RadixSort => "RadixSort",
            Algorithm::InMemory => "InMemory",
        };
        f.write_str(name)
    }
}

/// Result of a PDM sort: where the output lives and what it cost.
#[derive(Debug, Clone)]
pub struct SortReport {
    /// Region holding the sorted output (first `n` keys).
    pub output: Region,
    /// Number of keys sorted.
    pub n: usize,
    /// Algorithm that produced the output.
    pub algorithm: Algorithm,
    /// Read passes consumed, by the parallel-step metric.
    pub read_passes: f64,
    /// Write passes consumed.
    pub write_passes: f64,
    /// Peak internal-memory residency in keys.
    pub peak_mem: usize,
    /// Whether an expected-case algorithm detected failure and fell back
    /// to its deterministic alternative.
    pub fell_back: bool,
}

impl SortReport {
    /// Assemble a report from the machine's counters (call right after the
    /// algorithm finishes, before other I/O). Deliberately snapshot-free:
    /// per-phase breakdowns stay in [`IoStats::phases`] on the machine, so
    /// building a report costs no allocation — consumers that want the
    /// waterfall read (or take) the phases from the machine they already
    /// hold instead of paying a `Vec<PhaseStats>` clone per sort.
    pub fn from_stats<K: PdmKey, S: Storage<K>>(
        pdm: &Pdm<K, S>,
        output: Region,
        n: usize,
        algorithm: Algorithm,
        fell_back: bool,
    ) -> Self {
        let d = pdm.cfg().num_disks;
        let b = pdm.cfg().block_size;
        Self {
            output,
            n,
            algorithm,
            read_passes: pdm.stats().read_passes(n, d, b),
            write_passes: pdm.stats().write_passes(n, d, b),
            peak_mem: pdm.mem().peak(),
            fell_back,
        }
    }
}

/// Validate the paper's standing assumptions for the `B = √M` algorithms:
/// `M` a perfect square, `B = √M`, and `D | √M` so stripe math is exact.
/// Returns `b = √M`.
pub fn require_square_cfg(cfg: &PdmConfig) -> Result<usize> {
    let b = cfg.sqrt_m()?;
    if cfg.block_size != b {
        return Err(PdmError::BadConfig(format!(
            "algorithm requires B = √M (B = {}, √M = {b})",
            cfg.block_size
        )));
    }
    if b % cfg.num_disks != 0 {
        return Err(PdmError::BadConfig(format!(
            "algorithm requires D | √M (D = {}, √M = {b})",
            cfg.num_disks
        )));
    }
    Ok(b)
}

/// The §5 capacity: `ExpectedTwoPass` sorts `M√M / √((α+2)·ln M + 2)` keys.
pub fn capacity_expected_two_pass(m: usize, alpha: f64) -> usize {
    let mf = m as f64;
    (mf * mf.sqrt() / ((alpha + 2.0) * mf.ln() + 2.0).sqrt()) as usize
}

/// The §6 capacity: `ExpectedThreePass` sorts
/// `M^1.75 / ((α+2)·ln M + 2)^{3/4}` keys.
pub fn capacity_expected_three_pass(m: usize, alpha: f64) -> usize {
    let mf = m as f64;
    (mf.powf(1.75) / ((alpha + 2.0) * mf.ln() + 2.0).powf(0.75)) as usize
}

/// The §6.2 capacity: `ExpectedSixPass` sorts
/// `M² / √((α+2)·ln M + 2)` keys.
pub fn capacity_expected_six_pass(m: usize, alpha: f64) -> usize {
    let mf = m as f64;
    (mf * mf / ((alpha + 2.0) * mf.ln() + 2.0).sqrt()) as usize
}

/// Expected pass count of an expected-case algorithm: succeeds with
/// `p_ok` passes on `≥ 1 − M^{−α}` of inputs and pays `p_fallback` on the
/// rest — `p_ok·(1 − M^{−α}) + p_fallback·M^{−α}` (proofs of Theorems
/// 5.1/6.1). The paper's running example: `M = 10^8, α = 2` gives
/// `ExpectedTwoPass` exactly `2 + 3·10^{−16}`.
pub fn expected_passes(p_ok: f64, p_fallback: f64, m: usize, alpha: f64) -> f64 {
    let fail = (m as f64).powf(-alpha);
    p_ok * (1.0 - fail) + p_fallback * fail
}

/// Theorem 3.2 capacity for the mesh expected-two-pass variant:
/// `M√M / (c·α·ln M)` keys with the calibration constant `c`.
pub fn capacity_exp_two_pass_mesh(m: usize, alpha: f64, c: f64) -> usize {
    let mf = m as f64;
    (mf * mf.sqrt() / (c * alpha.max(1.0) * mf.ln())) as usize
}

/// Allocate `count` regions of `blocks_each` blocks, region `i` starting on
/// disk `i mod D`. Staggered starts make "one block into each region"
/// batches hit every disk evenly — the striping discipline behind the
/// paper's full-parallelism claims (Theorem 3.1 proof, \[23\]).
pub fn alloc_staggered<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    count: usize,
    blocks_each: usize,
) -> Result<Vec<Region>> {
    let d = pdm.cfg().num_disks;
    (0..count)
        .map(|i| pdm.alloc_region_at(blocks_each, i % d))
        .collect()
}

/// Like [`alloc_staggered`], but region `i` starts on disk
/// `(i·stride) mod D` — used when consumers write `stride`-block chunks
/// into consecutive regions, so one batch still walks the disks evenly.
pub fn alloc_staggered_stride<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    count: usize,
    blocks_each: usize,
    stride: usize,
) -> Result<Vec<Region>> {
    let d = pdm.cfg().num_disks;
    (0..count)
        .map(|i| pdm.alloc_region_at(blocks_each, (i * stride) % d))
        .collect()
}

/// The largest run length `m'·M ≤` the Theorem 5.1 expected-two-pass
/// capacity, with `m'` a divisor of `√M` (the layout divisibility the
/// expected three- and six-pass algorithms need).
pub(crate) fn expected_run_len(m: usize, b: usize, alpha: f64) -> usize {
    let cap = capacity_expected_two_pass(m, alpha);
    let m_prime_max = (cap / m).max(1).min(b);
    let m_prime = (1..=m_prime_max).rev().find(|x| b % x == 0).unwrap_or(1);
    m_prime * m
}

/// Merge `l` equal-length sorted segments laid back-to-back in `buf`
/// (`buf.len() = l·part_len`) into `out` (cleared first).
///
/// Runs on the [`crate::merge::LoserTree`] kernel; the previous
/// `BinaryHeap` implementation survives as
/// [`crate::merge::merge_equal_segments_heap`] for equivalence tests and
/// the before/after bench.
pub fn merge_equal_segments<K: PdmKey>(buf: &[K], part_len: usize, out: &mut Vec<K>) {
    assert!(part_len > 0 && buf.len() % part_len == 0);
    out.clear();
    let mut tree = crate::merge::LoserTree::new(buf.chunks(part_len).collect());
    tree.merge_into(out);
}

/// The streaming cleanup engine shared by every shuffle-then-clean phase
/// (ThreePass2 pass 3, ExpectedTwoPass pass 2, SevenPass steps 4–5, …).
///
/// Feed it windows of `w` keys; it holds the running carry (kept sorted),
/// sorts each incoming window and merges it in — `≤ 2w` resident keys,
/// the paper's "two successive `Z_i`'s in memory" — emits the smallest
/// `w` once warmed up, and *verifies* the
/// emitted stream: the paper's abort check ("the smallest key currently
/// being shipped out is smaller than the largest key shipped out in the
/// previous I/O") maps to [`Cleaner::clean`] going false.
pub struct Cleaner<K: PdmKey> {
    buf: TrackedBuf<K>,
    w: usize,
    /// Length of the already-sorted carry prefix of `buf`. Keys fed after
    /// the last `process` sit behind it unsorted; `process` sorts only
    /// that tail and merges it into the carry in place — the carry never
    /// pays a re-sort.
    sorted: usize,
    last_max: Option<K>,
    clean: bool,
    emitted: usize,
    telemetry: CleanerTelemetry,
}

/// Observational counters for one [`Cleaner`] run: how hard the cleanup
/// phase actually worked, and how close it came to the abort threshold —
/// the paper's `1 − M^{−α}` success bound made observable. Gauges are also
/// streamed into the machine's probe (as `cleaner.margin` /
/// `cleaner.carry`) when one is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanerTelemetry {
    /// Emissions performed (windows shipped out).
    pub emissions: u64,
    /// Emissions that violated the boundary check (stream went unsorted).
    pub violations: u64,
    /// Largest carry occupancy (keys still resident) right after an
    /// emission; bounded by `w` when the input satisfies the displacement
    /// bound.
    pub max_carry: usize,
    /// Smallest boundary margin observed: `min(head − prev_max)` across
    /// emissions, via [`PdmKey::gauge_distance`]. Negative means at least
    /// one boundary check failed; small positive means a near-abort.
    /// `None` until a second emission happens.
    pub min_margin: Option<i64>,
}

impl<K: PdmKey> Cleaner<K> {
    /// A cleaner with window `w` (peak residency `2w`).
    pub fn new<S: Storage<K>>(pdm: &Pdm<K, S>, w: usize) -> Result<Self> {
        Ok(Self {
            buf: pdm.alloc_buf(2 * w)?,
            w,
            sorted: 0,
            last_max: None,
            clean: true,
            emitted: 0,
            telemetry: CleanerTelemetry::default(),
        })
    }

    /// Whether the emitted stream has stayed globally sorted so far.
    pub fn clean(&self) -> bool {
        self.clean
    }

    /// Keys emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Telemetry gathered so far (read before [`Cleaner::finish`], which
    /// consumes the cleaner; the same data also streams into the probe).
    pub fn telemetry(&self) -> CleanerTelemetry {
        self.telemetry
    }

    /// Read the given blocks of `region` straight into the cleanup buffer.
    pub fn feed_blocks<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        region: &Region,
        indices: &[usize],
    ) -> Result<()> {
        pdm.read_blocks(region, indices, self.buf.as_vec_mut())
    }

    /// Pull the next read-ahead batch straight into the cleanup buffer
    /// (the prefetched data lands in the `2w` budget — no extra staging).
    /// Returns false when the schedule is exhausted.
    pub fn feed_from<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        ra: &mut ReadAhead<K>,
    ) -> Result<bool> {
        ra.next_into(pdm, self.buf.as_vec_mut())
    }

    /// Append keys directly (for in-memory feeds).
    pub fn feed_keys(&mut self, keys: &[K]) {
        self.buf.extend_from_slice(keys);
    }

    /// Sort the newly fed keys, merge them into the already-sorted carry
    /// (in place — the `2w` budget has no room for scratch), and if more
    /// than one window is resident, emit the smallest `w` through `emit`.
    /// Call once per fed window.
    pub fn process<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        emit: &mut dyn FnMut(&mut Pdm<K, S>, &[K]) -> Result<()>,
    ) -> Result<()> {
        self.sort_resident();
        if self.buf.len() > self.w {
            self.emit_front(pdm, self.w, emit)?;
        }
        Ok(())
    }

    /// Restore the sorted invariant over everything resident: sort the
    /// unsorted tail (keys fed since the last call) and symmerge it with
    /// the sorted carry. Equivalent to — and byte-identical with — the
    /// old whole-buffer `sort_unstable`, at the cost of one window sort
    /// plus an O(1)-space merge instead of a `2w` re-sort.
    fn sort_resident(&mut self) {
        let mid = self.sorted.min(self.buf.len());
        crate::kernels::sort_keys(&mut self.buf[mid..]);
        crate::merge::merge_in_place(self.buf.as_vec_mut(), mid);
        self.sorted = self.buf.len();
    }

    fn emit_front<S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        count: usize,
        emit: &mut dyn FnMut(&mut Pdm<K, S>, &[K]) -> Result<()>,
    ) -> Result<()> {
        if count == 0 {
            return Ok(());
        }
        if let Some(prev) = self.last_max {
            let margin = self.buf[0].gauge_distance(&prev);
            if self.buf[0] < prev {
                self.clean = false;
                self.telemetry.violations += 1;
            }
            self.telemetry.min_margin =
                Some(self.telemetry.min_margin.map_or(margin, |m| m.min(margin)));
            pdm.stats_mut().probe_gauge("cleaner.margin", margin);
        }
        self.last_max = Some(self.buf[count - 1]);
        emit(pdm, &self.buf[..count])?;
        self.emitted += count;
        self.buf.drain(..count);
        self.sorted = self.sorted.saturating_sub(count);
        self.telemetry.emissions += 1;
        let carry = self.buf.len();
        self.telemetry.max_carry = self.telemetry.max_carry.max(carry);
        pdm.stats_mut().probe_gauge("cleaner.carry", carry as i64);
        Ok(())
    }

    /// Flush whatever remains (sorting any keys fed since the last
    /// `process`).
    pub fn finish<S: Storage<K>>(
        mut self,
        pdm: &mut Pdm<K, S>,
        emit: &mut dyn FnMut(&mut Pdm<K, S>, &[K]) -> Result<()>,
    ) -> Result<(usize, bool)> {
        self.sort_resident();
        let rest = self.buf.len();
        self.emit_front(pdm, rest, emit)?;
        Ok((self.emitted, self.clean))
    }
}

/// An emitter that appends emitted keys to an output region sequentially,
/// block-aligned. Emitted slices must be whole blocks (all cleanup windows
/// in this crate are block multiples).
pub struct RegionEmitter {
    region: Region,
    next_block: usize,
}

impl RegionEmitter {
    /// Emit into `region` from block 0.
    pub fn new(region: Region) -> Self {
        Self { region, next_block: 0 }
    }

    /// Blocks written so far.
    pub fn blocks_written(&self) -> usize {
        self.next_block
    }

    /// The emit callback.
    pub fn emit<K: PdmKey, S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        keys: &[K],
    ) -> Result<()> {
        let b = self.region.block_size();
        assert_eq!(keys.len() % b, 0, "emit must be block-aligned");
        let nblocks = keys.len() / b;
        let idx: Vec<usize> = (self.next_block..self.next_block + nblocks).collect();
        pdm.write_blocks(&self.region, &idx, keys)?;
        self.next_block += nblocks;
        Ok(())
    }

    /// Like [`RegionEmitter::emit`], but routed through a [`WriteBehind`]
    /// so the write retires while the producer keeps computing (the
    /// payload is copied at issue — `keys` is immediately reusable).
    pub fn emit_behind<K: PdmKey, S: Storage<K>>(
        &mut self,
        pdm: &mut Pdm<K, S>,
        wb: &mut WriteBehind<K>,
        keys: &[K],
    ) -> Result<()> {
        let b = self.region.block_size();
        assert_eq!(keys.len() % b, 0, "emit must be block-aligned");
        let nblocks = keys.len() / b;
        let idx: Vec<usize> = (self.next_block..self.next_block + nblocks).collect();
        wb.write(pdm, &self.region, &idx, keys)?;
        self.next_block += nblocks;
        Ok(())
    }
}

/// Sort `n` keys that fit in internal memory: one read pass + one write
/// pass. The trivial case of the dispatcher.
pub fn in_memory_sort<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
) -> Result<SortReport> {
    if n > pdm.cfg().mem_capacity {
        return Err(PdmError::UnsupportedInput(format!(
            "in_memory_sort: n = {n} exceeds M = {}",
            pdm.cfg().mem_capacity
        )));
    }
    let mut buf = pdm.alloc_buf(input.len_keys())?;
    pdm.begin_phase("IM: read+sort");
    pdm.read_region(input, buf.as_vec_mut())?;
    buf.truncate(n);
    crate::kernels::sort_keys(buf.as_vec_mut());
    pdm.begin_phase("IM: write");
    let out = pdm.alloc_region_for_keys(n)?;
    pdm.write_region(&out, &buf)?;
    pdm.end_phase();
    Ok(SortReport::from_stats(pdm, out, n, Algorithm::InMemory, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Pdm<u64> {
        Pdm::new(PdmConfig::square(4, 8)).unwrap() // D=4, B=8, M=64
    }

    #[test]
    fn require_square_cfg_accepts_and_rejects() {
        assert_eq!(require_square_cfg(&PdmConfig::square(4, 8)).unwrap(), 8);
        // B != sqrt(M)
        assert!(require_square_cfg(&PdmConfig::new(4, 4, 64)).is_err());
        // D does not divide sqrt(M)
        assert!(require_square_cfg(&PdmConfig::square(3, 8)).is_err());
        // M not a perfect square
        assert!(require_square_cfg(&PdmConfig::new(2, 10, 1000)).is_err());
    }

    #[test]
    fn capacities_are_monotone_and_sane() {
        let m = 1 << 16;
        let c2 = capacity_expected_two_pass(m, 2.0);
        let c3 = capacity_expected_three_pass(m, 2.0);
        let c6 = capacity_expected_six_pass(m, 2.0);
        let m15 = ((m as f64).powf(1.5)) as usize;
        let m2 = m * m;
        assert!(c2 < m15, "c2 {c2} < M^1.5 {m15}");
        assert!(c3 > c2, "c3 {c3} should exceed c2 {c2}");
        assert!(c6 > c3 && c6 < m2);
        // the M^1.75 capacity overtakes M^1.5 once M is large enough
        let big = 1usize << 20;
        let m15_big = ((big as f64).powf(1.5)) as usize;
        assert!(capacity_expected_three_pass(big, 2.0) > m15_big);
        // higher alpha shrinks capacity
        assert!(capacity_expected_two_pass(m, 3.0) < c2);
    }

    #[test]
    fn papers_running_example_is_reproduced_exactly() {
        // §5: "when M = 10^8 and α = 2, the expected number of passes is
        // 2 + 3 × 10^−16"
        let e = expected_passes(2.0, 5.0, 100_000_000, 2.0);
        assert!((e - (2.0 + 3e-16)).abs() < 1e-18, "got {e:.20}");
        // §6: ExpectedThreePass → 3(1−M^−α) + 7·M^−α ≈ 3
        let e3 = expected_passes(3.0, 7.0, 100_000_000, 2.0);
        assert!((e3 - 3.0).abs() < 1e-14);
        // §1's fraction claim: at most 10^-14 % of inputs take more passes
        let fail_pct = 100.0 * (100_000_000f64).powf(-2.0);
        assert!((fail_pct - 1e-14).abs() < 1e-28);
    }

    #[test]
    fn merge_equal_segments_merges() {
        let buf = vec![1u64, 4, 7, 2, 5, 8, 3, 6, 9];
        let mut out = Vec::new();
        merge_equal_segments(&buf, 3, &mut out);
        assert_eq!(out, (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn merge_with_duplicates() {
        let buf = vec![1u64, 1, 2, 1, 1, 2];
        let mut out = Vec::new();
        merge_equal_segments(&buf, 3, &mut out);
        assert_eq!(out, vec![1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn cleaner_streams_sorted_windows() {
        let mut pdm = machine();
        let out_reg = pdm.alloc_region_for_keys(64).unwrap();
        let mut emitter = RegionEmitter::new(out_reg);
        let mut cleaner = Cleaner::new(&pdm, 16).unwrap();
        // windows deliberately straddle: values interleaved across windows
        // but displaced < 16
        let data: Vec<u64> = (0..64).collect();
        for chunk in data.chunks(16) {
            let mut w: Vec<u64> = chunk.to_vec();
            w.reverse();
            cleaner.feed_keys(&w);
            cleaner
                .process(&mut pdm, &mut |p, ks| emitter.emit(p, ks))
                .unwrap();
        }
        let (n, clean) = cleaner
            .finish(&mut pdm, &mut |p, ks| emitter.emit(p, ks))
            .unwrap();
        assert_eq!(n, 64);
        assert!(clean);
        assert_eq!(pdm.inspect_prefix(&out_reg, 64).unwrap(), data);
    }

    #[test]
    fn cleaner_detects_excessive_displacement() {
        let mut pdm = machine();
        let out_reg = pdm.alloc_region_for_keys(64).unwrap();
        let mut emitter = RegionEmitter::new(out_reg);
        let mut cleaner = Cleaner::new(&pdm, 8).unwrap();
        // key 0 arrives three windows late: displacement 3w > w
        let windows: Vec<Vec<u64>> = vec![
            (8..16).collect(),
            (16..24).collect(),
            (24..32).collect(),
            vec![0, 32, 33, 34, 35, 36, 37, 38],
        ];
        for w in &windows {
            cleaner.feed_keys(w);
            cleaner
                .process(&mut pdm, &mut |p, ks| emitter.emit(p, ks))
                .unwrap();
        }
        let (_, clean) = cleaner
            .finish(&mut pdm, &mut |p, ks| emitter.emit(p, ks))
            .unwrap();
        assert!(!clean, "cleanup should have flagged the late key");
    }

    #[test]
    fn cleaner_telemetry_tracks_margins_and_carry() {
        let mut pdm = machine();
        pdm.enable_probe(1 << 10);
        let out_reg = pdm.alloc_region_for_keys(64).unwrap();
        let mut emitter = RegionEmitter::new(out_reg);
        let mut cleaner = Cleaner::new(&pdm, 16).unwrap();
        for chunk in (0..64u64).collect::<Vec<_>>().chunks(16) {
            let mut w: Vec<u64> = chunk.to_vec();
            w.reverse();
            cleaner.feed_keys(&w);
            cleaner
                .process(&mut pdm, &mut |p, ks| emitter.emit(p, ks))
                .unwrap();
        }
        let t = cleaner.telemetry();
        assert_eq!(t.emissions, 3, "4 windows fed, first buffers");
        assert_eq!(t.violations, 0);
        assert!(t.max_carry <= 16, "carry bounded by one window");
        // windows are disjoint ranges, so every boundary margin is +1
        assert_eq!(t.min_margin, Some(1));
        cleaner
            .finish(&mut pdm, &mut |p, ks| emitter.emit(p, ks))
            .unwrap();
        // gauges streamed into the probe alongside the telemetry struct
        let gauges = pdm
            .stats()
            .probe()
            .unwrap()
            .events()
            .iter()
            .filter(|e| matches!(e, ProbeEvent::Gauge { .. }))
            .count();
        assert!(gauges >= 6, "margin + carry per emission, got {gauges}");
    }

    #[test]
    fn cleaner_telemetry_counts_violations_with_negative_margin() {
        let mut pdm = machine();
        let out_reg = pdm.alloc_region_for_keys(64).unwrap();
        let mut emitter = RegionEmitter::new(out_reg);
        let mut cleaner = Cleaner::new(&pdm, 8).unwrap();
        let windows: Vec<Vec<u64>> = vec![
            (8..16).collect(),
            (16..24).collect(),
            (24..32).collect(),
            vec![0, 32, 33, 34, 35, 36, 37, 38],
        ];
        for w in &windows {
            cleaner.feed_keys(w);
            cleaner
                .process(&mut pdm, &mut |p, ks| emitter.emit(p, ks))
                .unwrap();
        }
        let t = cleaner.telemetry();
        assert!(t.violations >= 1);
        assert!(t.min_margin.unwrap() < 0, "violated boundary has negative margin");
        let (_, clean) = cleaner
            .finish(&mut pdm, &mut |p, ks| emitter.emit(p, ks))
            .unwrap();
        assert!(!clean);
    }

    #[test]
    fn cleaner_memory_stays_at_two_windows() {
        let pdm = machine();
        let before = pdm.mem().current();
        let _cleaner: Cleaner<u64> = Cleaner::new(&pdm, 32).unwrap();
        assert_eq!(pdm.mem().current(), before + 64);
    }

    #[test]
    fn in_memory_sort_small_input() {
        let mut pdm = machine();
        let data: Vec<u64> = (0..50).rev().collect();
        let r = pdm.alloc_region_for_keys(50).unwrap();
        pdm.ingest(&r, &data).unwrap();
        let rep = in_memory_sort(&mut pdm, &r, 50).unwrap();
        assert_eq!(rep.algorithm, Algorithm::InMemory);
        let got = pdm.inspect_prefix(&rep.output, 50).unwrap();
        assert_eq!(got, (0..50).collect::<Vec<u64>>());
        assert!(rep.read_passes <= 1.5, "read passes {}", rep.read_passes);
        assert!(!rep.fell_back);
    }

    #[test]
    fn in_memory_sort_rejects_oversized() {
        let mut pdm = machine();
        let r = pdm.alloc_region_for_keys(100).unwrap();
        assert!(in_memory_sort(&mut pdm, &r, 100).is_err());
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::ThreePass2.to_string(), "ThreePass2");
        assert_eq!(Algorithm::RadixSort.to_string(), "RadixSort");
    }
}
