//! `ThreePass1` (paper §3.1, Theorem 3.1): the mesh-based three-pass sort
//! of up to `M·√M` keys with `B = √M`.
//!
//! The input is viewed as an `(N/√M) × √M` mesh, processed as stacked
//! `√M × √M` submeshes (one submesh = `M` keys = one memory load):
//!
//! * **Pass 1 — submesh sorts.** Sort each submesh into row-major order,
//!   with the row direction alternating between consecutive submeshes
//!   (the Shearsort trick). Write each submesh *column* as one block into
//!   the per-column regions.
//! * **Pass 2 — column sorts.** Each full mesh column is `N/√M ≤ M` keys:
//!   read it, sort vertically, and scatter its band segments (one block
//!   per `√M`-row band) into the per-band regions.
//! * **Pass 3 — cleanup.** After pass 2 at most `√M/2 + O(1)` *contiguous*
//!   rows are dirty (submesh sorting leaves ≤ 1 dirty row each; the
//!   alternating directions halve them under the column sort — the
//!   Shearsort principle). A band of `√M` rows is `M` keys, so the
//!   streaming [`Cleaner`] with window `M` (tolerance ±`√M` rows) finishes
//!   deterministically.
//!
//! `ExpTwoPassMesh` (§3.2) is this algorithm minus pass 1 — see
//! [`crate::exp_two_pass_mesh`].

use crate::common::{alloc_staggered, require_square_cfg, Algorithm, Cleaner, RegionEmitter, SortReport};
use pdm_mesh::{layout_sorted_rows, Direction};
use pdm_model::prelude::*;

/// Maximum keys `ThreePass1` sorts on a machine with memory `m`: `M·√M`.
pub fn capacity(m: usize) -> usize {
    let b = (m as f64).sqrt() as usize;
    m * b
}

/// Tuning knobs, exposed for the ablation experiments.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Alternate the row direction between consecutive submeshes in pass 1
    /// (the paper's scheme). Disabling it is the E2 ablation: correctness
    /// is retained by the wide cleanup window, but the dirty band after
    /// pass 2 roughly doubles.
    pub alternate_directions: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            alternate_directions: true,
        }
    }
}

struct MeshPlan {
    /// `√M`: mesh width, block size, band height.
    b: usize,
    /// Submesh count `= N/M ≤ √M` (also the band count).
    s_count: usize,
    /// `M`.
    m: usize,
}

fn mesh_plan<K: PdmKey, S: Storage<K>>(pdm: &Pdm<K, S>, n: usize) -> Result<MeshPlan> {
    let b = require_square_cfg(pdm.cfg())?;
    let m = pdm.cfg().mem_capacity;
    if n == 0 {
        return Err(PdmError::UnsupportedInput("empty input".into()));
    }
    let s_count = n.div_ceil(m);
    if s_count > b {
        return Err(PdmError::UnsupportedInput(format!(
            "ThreePass1 sorts at most M√M = {} keys; got {n}",
            capacity(m)
        )));
    }
    Ok(MeshPlan { b, s_count, m })
}

/// Sort `n ≤ M√M` keys from `input` in three passes (Theorem 3.1) with the
/// default options.
pub fn three_pass1<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
) -> Result<SortReport> {
    three_pass1_with(pdm, input, n, Options::default())
}

/// [`three_pass1`] with explicit [`Options`].
pub fn three_pass1_with<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    opts: Options,
) -> Result<SortReport> {
    let MeshPlan { b, s_count, m } = mesh_plan(pdm, n)?;
    let cols = alloc_staggered(pdm, b, s_count)?;
    let bands = alloc_staggered(pdm, s_count, b)?;
    let out = pdm.alloc_region_for_keys(s_count * m)?;
    let in_blocks = input.len_blocks();

    // Pass 1: sort submeshes, write column-major blocks. Reads run one
    // submesh ahead and column writes retire behind (input and column
    // regions are disjoint, so the reorder is safe); with overlap off
    // both helpers degenerate to the blocking batches.
    pdm.begin_phase("3P1: submesh sorts");
    let steps: Vec<Vec<(Region, usize)>> = (0..s_count)
        .map(|s| {
            let lo = s * b;
            let hi = ((s + 1) * b).min(in_blocks);
            (lo..hi).map(|i| (*input, i)).collect()
        })
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    for s in 0..s_count {
        let mut buf = pdm.alloc_buf(m)?;
        let lo = s * b;
        ra.next_into(pdm, buf.as_vec_mut())?;
        buf.truncate(n.saturating_sub(lo * b).min(m));
        buf.resize(m, K::MAX);
        crate::kernels::sort_keys(&mut buf);
        let dir = if opts.alternate_directions && s % 2 == 1 {
            Direction::Desc
        } else {
            Direction::Asc
        };
        let rows = layout_sorted_rows(&buf, b, |_| dir);
        // Column c of this submesh (one block): wbuf[c*b + r] = rows[r*b + c].
        let mut wbuf = pdm.alloc_buf(m)?;
        {
            let v = wbuf.as_vec_mut();
            v.resize(m, K::MAX);
            for c in 0..b {
                for r in 0..b {
                    v[c * b + r] = rows[r * b + c];
                }
            }
        }
        let targets: Vec<(Region, usize)> = cols.iter().map(|c| (*c, s)).collect();
        wb.write_multi(pdm, &targets, &wbuf)?;
    }
    wb.finish(pdm)?; // drain before the phase boundary

    // Pass 2: sort full columns vertically, scatter band segments.
    pdm.begin_phase("3P1: column sorts");
    let col_len = s_count * b;
    let steps: Vec<Vec<(Region, usize)>> = cols
        .iter()
        .map(|col| (0..s_count).map(|i| (*col, i)).collect())
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    for c in 0..cols.len() {
        let mut buf = pdm.alloc_buf(col_len)?;
        ra.next_into(pdm, buf.as_vec_mut())?;
        crate::kernels::sort_keys(&mut buf);
        // band t's segment is buf[t*b..(t+1)*b] — already contiguous.
        let targets: Vec<(Region, usize)> = bands.iter().map(|t| (*t, c)).collect();
        wb.write_multi(pdm, &targets, &buf)?;
    }
    wb.finish(pdm)?;

    // Pass 3: stream bands through the cleanup window.
    pdm.begin_phase("3P1: cleanup");
    let mut cleaner = Cleaner::new(pdm, m)?;
    let mut emitter = RegionEmitter::new(out);
    let steps: Vec<Vec<(Region, usize)>> = bands
        .iter()
        .map(|band| (0..b).map(|i| (*band, i)).collect())
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    let mut emit = |pd: &mut Pdm<K, S>, ks: &[K]| emitter.emit_behind(pd, &mut wb, ks);
    for _ in 0..bands.len() {
        cleaner.feed_from(pdm, &mut ra)?;
        cleaner.process(pdm, &mut emit)?;
    }
    let (emitted, clean) = cleaner.finish(pdm, &mut emit)?;
    wb.finish(pdm)?;
    pdm.end_phase();

    debug_assert_eq!(emitted, s_count * m);
    if !clean {
        return Err(PdmError::UnsupportedInput(
            "ThreePass1 cleanup detected an inversion — dirty band exceeded one submesh".into(),
        ));
    }
    Ok(SortReport::from_stats(pdm, out, n, Algorithm::ThreePass1, false))
}

/// Measure the dirty band (in rows) of a 0-1 input after pass 2 — the
/// quantity Theorem 3.1's proof bounds by `√M/2`. Used by experiment E2's
/// ablation; runs passes 1–2 only, reading the mesh state back unaccounted.
pub fn dirty_rows_after_pass2<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    opts: Options,
    zero: K,
    one: K,
) -> Result<usize> {
    let MeshPlan { b, s_count, m } = mesh_plan(pdm, n)?;
    if n != s_count * m {
        return Err(PdmError::UnsupportedInput(
            "dirty-row measurement requires n to be a multiple of M".into(),
        ));
    }
    let cols = alloc_staggered(pdm, b, s_count)?;
    let in_blocks = input.len_blocks();
    // pass 1 (as in the sort)
    for s in 0..s_count {
        let mut buf = pdm.alloc_buf(m)?;
        let lo = s * b;
        let hi = ((s + 1) * b).min(in_blocks);
        let idx: Vec<usize> = (lo..hi).collect();
        pdm.read_blocks(input, &idx, buf.as_vec_mut())?;
        crate::kernels::sort_keys(&mut buf);
        let dir = if opts.alternate_directions && s % 2 == 1 {
            Direction::Desc
        } else {
            Direction::Asc
        };
        let rows = layout_sorted_rows(&buf, b, |_| dir);
        let mut wbuf = pdm.alloc_buf(m)?;
        {
            let v = wbuf.as_vec_mut();
            v.resize(m, K::MAX);
            for c in 0..b {
                for r in 0..b {
                    v[c * b + r] = rows[r * b + c];
                }
            }
        }
        let targets: Vec<(Region, usize)> = cols.iter().map(|c| (*c, s)).collect();
        pdm.write_blocks_multi(&targets, &wbuf)?;
    }
    // pass 2, keeping the sorted columns to measure dirtiness
    let col_len = s_count * b;
    let mut sorted_cols: Vec<Vec<K>> = Vec::with_capacity(b);
    for col in &cols {
        let mut buf = pdm.alloc_buf(col_len)?;
        let idx: Vec<usize> = (0..s_count).collect();
        pdm.read_blocks(col, &idx, buf.as_vec_mut())?;
        crate::kernels::sort_keys(&mut buf);
        sorted_cols.push(buf.as_vec().clone());
        // (measurement only — columns are not written back)
    }
    // a row is dirty iff it mixes zero and one across the b columns
    let rows_total = col_len;
    let mut dirty = 0usize;
    for r in 0..rows_total {
        let mut has_zero = false;
        let mut has_one = false;
        for col in &sorted_cols {
            if col[r] == zero {
                has_zero = true;
            } else if col[r] == one {
                has_one = true;
            }
        }
        dirty += usize::from(has_zero && has_one);
    }
    Ok(dirty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn machine(d: usize, b: usize) -> Pdm<u64> {
        Pdm::new(PdmConfig::square(d, b)).unwrap()
    }

    fn run_sort(pdm: &mut Pdm<u64>, data: &[u64]) -> SortReport {
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, data).unwrap();
        pdm.reset_stats();
        three_pass1(pdm, &input, data.len()).unwrap()
    }

    fn check_sorted(pdm: &mut Pdm<u64>, rep: &SortReport, data: &[u64]) {
        let mut want = data.to_vec();
        want.sort_unstable();
        let got = pdm.inspect_prefix(&rep.output, data.len()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn sorts_full_capacity_random_input() {
        let mut pdm = machine(4, 8);
        let mut rng = StdRng::seed_from_u64(21);
        let data: Vec<u64> = (0..512).map(|_| rng.gen_range(0..1u64 << 40)).collect();
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
        assert_eq!(rep.algorithm, Algorithm::ThreePass1);
    }

    #[test]
    fn takes_exactly_three_passes_at_full_capacity() {
        let mut pdm = machine(4, 16); // M = 256, N = 4096
        let mut rng = StdRng::seed_from_u64(22);
        let mut data: Vec<u64> = (0..4096).collect();
        data.shuffle(&mut rng);
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
        assert!((rep.read_passes - 3.0).abs() < 1e-9, "read {}", rep.read_passes);
        assert!((rep.write_passes - 3.0).abs() < 1e-9, "write {}", rep.write_passes);
        assert!(rep.peak_mem <= 2 * 256, "peak {}", rep.peak_mem);
        assert!(pdm.stats().read_parallel_efficiency(4) > 0.99);
    }

    #[test]
    fn sorts_binary_inputs_all_thresholds() {
        let mut pdm = machine(2, 8);
        let mut rng = StdRng::seed_from_u64(23);
        for k in [0usize, 1, 64, 200, 256, 300, 511, 512] {
            let mut data: Vec<u64> = (0..512).map(|i| u64::from(i >= k)).collect();
            data.shuffle(&mut rng);
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn sorts_adversarial_and_partial_inputs() {
        let mut pdm = machine(2, 8);
        for data in [
            (0..512u64).rev().collect::<Vec<_>>(),
            vec![1u64; 512],
            (0..300u64).rev().collect::<Vec<_>>(), // partial (padded)
            (0..65u64).collect::<Vec<_>>(),
        ] {
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn exhaustive_small_binary_meshes() {
        // b = 4 (M = 16, N up to 64): all 2^16 binary inputs at N = 16 (one
        // submesh — degenerate but must work), plus sampled N = 64.
        let mut rng = StdRng::seed_from_u64(24);
        for trial in 0..2000 {
            let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(2, 4)).unwrap();
            let n = 64;
            let k = rng.gen_range(0..=n);
            let mut data: Vec<u64> = (0..n).map(|i| u64::from(i >= k)).collect();
            data.shuffle(&mut rng);
            let rep = run_sort(&mut pdm, &data);
            let got = pdm.inspect_prefix(&rep.output, n).unwrap();
            assert!(
                got.windows(2).all(|w| w[0] <= w[1]),
                "trial {trial} k={k} unsorted"
            );
        }
    }

    #[test]
    fn dirty_band_bounded_by_half_submesh_with_alternation() {
        let mut rng = StdRng::seed_from_u64(25);
        let b = 16usize;
        let n = b * b * b; // full capacity
        let mut worst_alt = 0usize;
        let mut worst_no_alt = 0usize;
        for _ in 0..10 {
            let k = rng.gen_range(0..=n);
            let mut data: Vec<u64> = (0..n).map(|i| u64::from(i >= k)).collect();
            data.shuffle(&mut rng);
            for (alternate, worst) in [(true, &mut worst_alt), (false, &mut worst_no_alt)] {
                let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, b)).unwrap();
                let input = pdm.alloc_region_for_keys(n).unwrap();
                pdm.ingest(&input, &data).unwrap();
                let d = dirty_rows_after_pass2(
                    &mut pdm,
                    &input,
                    n,
                    Options {
                        alternate_directions: alternate,
                    },
                    0,
                    1,
                )
                .unwrap();
                *worst = (*worst).max(d);
            }
        }
        // Theorem 3.1 proof: ≤ b/2 dirty rows with alternation (allow +1
        // slack for parity effects); without alternation only ≤ b holds.
        assert!(
            worst_alt <= b / 2 + 1,
            "alternating: {worst_alt} dirty rows > b/2"
        );
        assert!(worst_no_alt <= b, "non-alternating: {worst_no_alt} > b");
    }

    #[test]
    fn rejects_oversized_input() {
        let mut pdm = machine(2, 8);
        let input = pdm.alloc_region_for_keys(513).unwrap();
        assert!(three_pass1(&mut pdm, &input, 513).is_err());
    }

    #[test]
    fn overlap_changes_nothing_but_wall_clock() {
        let mut rng = StdRng::seed_from_u64(27);
        let data: Vec<u64> = (0..512).map(|_| rng.gen_range(0..1u64 << 40)).collect();
        let run = |overlap: bool| {
            let mut pdm = machine(4, 8);
            pdm.set_overlap(overlap);
            let input = pdm.alloc_region_for_keys(data.len()).unwrap();
            pdm.ingest(&input, &data).unwrap();
            pdm.reset_stats();
            let rep = three_pass1(&mut pdm, &input, data.len()).unwrap();
            assert_eq!(pdm.pending_io(), 0, "phases must drain all overlap I/O");
            let got = pdm.inspect_prefix(&rep.output, data.len()).unwrap();
            let s = pdm.stats();
            (got, s.blocks_read, s.blocks_written, s.read_steps, s.write_steps)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on, off, "overlap must be invisible to output and accounting");
    }

    #[test]
    fn agrees_with_three_pass2() {
        let mut rng = StdRng::seed_from_u64(26);
        let data: Vec<u64> = (0..512).map(|_| rng.gen_range(0..1000)).collect();
        let mut pdm1 = machine(4, 8);
        let rep1 = run_sort(&mut pdm1, &data);
        let got1 = pdm1.inspect_prefix(&rep1.output, 512).unwrap();
        let mut pdm2 = machine(4, 8);
        let input = pdm2.alloc_region_for_keys(512).unwrap();
        pdm2.ingest(&input, &data).unwrap();
        let rep2 = crate::three_pass2::three_pass2(&mut pdm2, &input, 512).unwrap();
        let got2 = pdm2.inspect_prefix(&rep2.output, 512).unwrap();
        assert_eq!(got1, got2);
    }
}
