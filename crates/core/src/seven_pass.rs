//! `SevenPass` (paper §6.1, Theorem 6.2) and `ExpectedSixPass` (§6.2,
//! Theorem 6.3): sorting up to `M²` keys.
//!
//! Both instantiate the same outer `(l, m) = (√M, √M)`-merge; they differ
//! only in how the `l ≤ √M` outer runs are formed:
//!
//! * `SevenPass` forms runs of `M√M` keys with `ThreePass2` (3 passes);
//! * `ExpectedSixPass` forms runs of `≈ M√M/√((α+2)ln M+2)` keys with
//!   `ExpectedTwoPass` (2 passes expected, falling back per-run).
//!
//! Pass layout (run length `R`, `m' = R/M` inner fan-out, `l` runs):
//!
//! 1–3. **Run formation**, with the *outer unshuffle folded into the final
//!      write*: run `i`'s sorted stream is scattered into `√M` parts
//!      `L_i^j` (positions `≡ j mod √M`) as it is emitted.
//! 4.   **Inner unshuffle** (1 pass): each `L_i^j` is unshuffled into `m'`
//!      one-block-per-sub-merge pieces.
//! 5.   **Sub-merges** (1 pass): each group of `l` blocks (`≤ M` keys) is
//!      merged in memory.
//! 6.   **Inner shuffle + cleanup** (1 pass): produces each `Q_j` =
//!      `merge(L_1^j … L_l^j)` as a verified stream, scattered into the
//!      final window regions (the outer shuffle, folded into the write).
//! 7.   **Outer cleanup** (1 pass): the outer dirty bound `l·√M ≤ M` lets
//!      one streaming window finish the sort.

use crate::common::{
    alloc_staggered, expected_run_len, require_square_cfg, Algorithm, Cleaner, RegionEmitter,
    SortReport,
};
use crate::expected_two_pass::{pass1_runs_shuffled, pass2_stream, runs_plan};
use crate::three_pass2::three_pass2_core;
use pdm_model::prelude::*;

/// Maximum keys `SevenPass` sorts on a machine with memory `m`: `M²`.
pub fn capacity(m: usize) -> usize {
    m * m
}

/// Keys `ExpectedSixPass` sorts (after rounding the run length down to the
/// layout's divisibility requirements).
pub fn capacity_six(m: usize, alpha: f64) -> usize {
    let b = (m as f64).sqrt() as usize;
    let run = expected_run_len(m, b, alpha);
    b * run
}


/// How outer runs are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunFormer {
    ThreePass,
    ExpectedTwoPass,
}

/// Scatters an emitted sorted stream into `√M` part regions — the outer
/// unshuffle, written in disk-parallel groups of `D` blocks.
struct UnshuffleEmitter<'a, K: PdmKey> {
    parts: &'a [Region],
    next_idx: usize,
    scratch: TrackedBuf<K>,
    wb: WriteBehind<K>,
    b: usize,
    d: usize,
}

impl<'a, K: PdmKey> UnshuffleEmitter<'a, K> {
    fn new<S: Storage<K>>(pdm: &Pdm<K, S>, parts: &'a [Region]) -> Result<Self> {
        let b = pdm.cfg().block_size;
        let d = pdm.cfg().num_disks;
        Ok(Self {
            parts,
            next_idx: 0,
            scratch: pdm.alloc_buf(d * b)?,
            wb: WriteBehind::new(pdm),
            b,
            d,
        })
    }

    /// Reset to block 0 (for deterministic overwrite after a fallback).
    fn reset(&mut self) {
        self.next_idx = 0;
    }

    /// Retire the in-flight part write. The emitter survives phase
    /// boundaries (fallback re-runs it), so callers drain it before every
    /// `end_phase`.
    fn drain<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>) -> Result<()> {
        self.wb.drain(pdm)
    }

    fn emit<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>, ks: &[K]) -> Result<()> {
        let (b, d) = (self.b, self.d);
        assert_eq!(ks.len() % b, 0, "emission must be block-aligned");
        // Emissions are M = b² keys (b blocks, one per part); handle any
        // block-multiple length by treating each b·b slice independently.
        for window in ks.chunks(b * b) {
            assert_eq!(window.len(), b * b, "emission must be M-key windows");
            for group in (0..b).step_by(d) {
                let ge = (group + d).min(b);
                let v = self.scratch.as_vec_mut();
                v.clear();
                for j in group..ge {
                    for k in 0..b {
                        v.push(window[k * b + j]);
                    }
                }
                let targets: Vec<(Region, usize)> = (group..ge)
                    .map(|j| (self.parts[j], self.next_idx))
                    .collect();
                // Write-behind: the scratch payload is copied at issue, so
                // refilling it for the next group is safe immediately.
                self.wb.write_multi(pdm, &targets, &self.scratch)?;
            }
            self.next_idx += 1;
        }
        Ok(())
    }
}

struct OuterPlan {
    b: usize,
    m: usize,
    /// Outer run count `≤ √M`.
    l: usize,
    /// Run length in keys (`m'·M`).
    run_len: usize,
    /// Inner fan-out `m' = run_len / M`, a divisor of `√M`.
    m_prime: usize,
}

fn outer_plan<K: PdmKey, S: Storage<K>>(
    pdm: &Pdm<K, S>,
    n: usize,
    run_len: usize,
) -> Result<OuterPlan> {
    let b = require_square_cfg(pdm.cfg())?;
    let m = pdm.cfg().mem_capacity;
    if n == 0 {
        return Err(PdmError::UnsupportedInput("empty input".into()));
    }
    if run_len % m != 0 || run_len == 0 {
        return Err(PdmError::BadConfig(format!(
            "run length {run_len} must be a positive multiple of M = {m}"
        )));
    }
    let m_prime = run_len / m;
    if b % m_prime != 0 {
        return Err(PdmError::BadConfig(format!(
            "inner fan-out m' = {m_prime} must divide √M = {b}"
        )));
    }
    if run_len > m * b {
        return Err(PdmError::BadConfig(format!(
            "run length {run_len} exceeds the run former's capacity M√M = {}",
            m * b
        )));
    }
    let l = n.div_ceil(run_len);
    if l > b {
        return Err(PdmError::UnsupportedInput(format!(
            "needs ≤ √M = {b} outer runs of {run_len}; n = {n} gives {l}"
        )));
    }
    Ok(OuterPlan {
        b,
        m,
        l,
        run_len,
        m_prime,
    })
}

/// The shared engine. Returns the report and whether any run fell back.
fn outer_merge_sort<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    run_len: usize,
    former: RunFormer,
    algorithm: Algorithm,
) -> Result<SortReport> {
    let p = outer_plan(pdm, n, run_len)?;
    let OuterPlan { b, m, l, run_len, m_prime } = p;
    let part_blocks = run_len / (b * b); // blocks per L_i^j = m'·... = run_len/b keys
    debug_assert_eq!(part_blocks * b * b, run_len);

    // Region inventory.
    let parts: Vec<Vec<Region>> = (0..l)
        .map(|_| alloc_staggered(pdm, b, part_blocks))
        .collect::<Result<_>>()?;
    // sub-merge (j, u): l blocks each
    let submerge: Vec<Vec<Region>> = (0..b)
        .map(|_| alloc_staggered(pdm, m_prime, l))
        .collect::<Result<_>>()?;
    // inner window (j, t): m' blocks each, t in 0..l
    let inner_win: Vec<Vec<Region>> = (0..b)
        .map(|_| alloc_staggered(pdm, l, m_prime))
        .collect::<Result<_>>()?;
    // final windows: one per M keys of output
    let final_wins = alloc_staggered(pdm, l * m_prime, b)?;
    let out = pdm.alloc_region_for_keys(l * run_len)?;

    let mut fell_back = false;

    // Steps 1–3: run formation with folded outer unshuffle.
    let run_blocks = run_len / b;
    for i in 0..l {
        let seg_start = i * run_blocks;
        let seg_blocks = run_blocks.min(input.len_blocks().saturating_sub(seg_start));
        // Virtual segment: real blocks of the input plus implicit MAX
        // padding; the run formers already pad short inputs.
        let seg = if seg_blocks > 0 {
            input.sub(seg_start, seg_blocks)?
        } else {
            input.sub(0, 0)?
        };
        let seg_n = n
            .saturating_sub(seg_start * b)
            .min(run_len);
        let mut emitter = UnshuffleEmitter::new(pdm, &parts[i])?;
        // The run former must always emit exactly run_len keys so every
        // part block gets written — plan it for run_len, not seg_n; short
        // segments pad with K::MAX inside the former.
        // A segment padded by more than one cleanup window would poison
        // the expected former's carry with early MAX keys, so such
        // segments (only ever the last run) go straight to the
        // deterministic former.
        let heavy_padding = run_len.saturating_sub(seg_n) > m;
        let use_expected = former == RunFormer::ExpectedTwoPass && !heavy_padding;
        let mut need_deterministic = !use_expected;
        if use_expected {
            let rp = runs_plan(pdm, run_len)?;
            debug_assert_eq!(rp.n1 * rp.run_len, run_len);
            let windows = alloc_staggered(pdm, rp.windows, rp.b)?;
            pdm.begin_phase("6P: E2P runs");
            pass1_runs_shuffled(pdm, &seg, seg_n.max(1), &rp, &windows)?;
            pdm.begin_phase("6P: E2P stream");
            let (_, clean) =
                pass2_stream(pdm, &rp, &windows, &mut |pd, ks| emitter.emit(pd, ks))?;
            emitter.drain(pdm)?; // settle part writes before the boundary
            pdm.end_phase();
            if !clean {
                // Per-run fallback (paper: the aborted run is re-sorted
                // deterministically, +3 passes for this run's data).
                fell_back = true;
                emitter.reset();
                need_deterministic = true;
            }
        }
        if need_deterministic {
            pdm.begin_phase("7P: run formation 3P2");
            let (emitted, clean) =
                three_pass2_core(pdm, &seg, run_len, &mut |pd, ks| emitter.emit(pd, ks))?;
            emitter.drain(pdm)?; // settle part writes before the boundary
            pdm.end_phase();
            debug_assert_eq!(emitted, run_len);
            if !clean {
                return Err(PdmError::UnsupportedInput(
                    "deterministic run formation produced an inversion".into(),
                ));
            }
        }
    }

    // Step 4 (pass 4): inner unshuffle of each L_i^j into m' pieces.
    // Reads run one part ahead; piece writes retire behind.
    pdm.begin_phase("7P: inner unshuffle");
    let part_len = run_len / b;
    let steps: Vec<Vec<(Region, usize)>> = parts
        .iter()
        .flat_map(|run_parts| {
            run_parts
                .iter()
                .map(|part| (0..part_blocks).map(|k| (*part, k)).collect())
        })
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    for i in 0..l {
        for j in 0..b {
            let mut buf = pdm.alloc_buf(part_len)?;
            ra.next_into(pdm, buf.as_vec_mut())?;
            // piece u of L_i^j: positions ≡ u (mod m'), length b = 1 block
            let mut wbuf = pdm.alloc_buf(part_len)?;
            {
                let v = wbuf.as_vec_mut();
                v.resize(part_len, K::MAX);
                for u in 0..m_prime {
                    for k in 0..b {
                        v[u * b + k] = buf[k * m_prime + u];
                    }
                }
            }
            let targets: Vec<(Region, usize)> =
                (0..m_prime).map(|u| (submerge[j][u], i)).collect();
            wb.write_multi(pdm, &targets, &wbuf)?;
        }
    }
    wb.finish(pdm)?;

    // Step 5 (pass 5): the b·m' sub-merges, each l blocks ≤ M keys.
    // When l < D a single sub-merge cannot fill a stripe, so sub-merges
    // are batched ⌊D/l⌋ at a time, picking u-indices spaced l apart — their
    // staggered disk ranges (u+i mod D) then tile the disks exactly.
    pdm.begin_phase("7P: sub-merges");
    let d = pdm.cfg().num_disks;
    let group_max = (d / l).clamp(1, m_prime);
    // Precompute the (j, group) schedule so the read batches can run one
    // group ahead of the in-memory merges.
    let mut sched: Vec<(usize, Vec<usize>)> = Vec::new();
    for j in 0..b {
        let mut processed = vec![false; m_prime];
        for r in 0..m_prime {
            if processed[r] {
                continue;
            }
            let mut group = Vec::with_capacity(group_max);
            let mut u = r;
            while group.len() < group_max && u < m_prime && !processed[u] {
                group.push(u);
                processed[u] = true;
                u += l;
            }
            sched.push((j, group));
        }
    }
    // one read batch per group, covering every member's l blocks
    let steps: Vec<Vec<(Region, usize)>> = sched
        .iter()
        .map(|(j, group)| {
            let row = &submerge[*j];
            group
                .iter()
                .flat_map(|&u| (0..l).map(move |i| (row[u], i)))
                .collect()
        })
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    for (j, group) in &sched {
        let mut buf = pdm.alloc_buf(group.len() * l * b)?;
        ra.next_into(pdm, buf.as_vec_mut())?;
        // merge each member in memory, streaming straight into the
        // write buffer (no per-member staging copy)
        let mut merged = pdm.alloc_buf(group.len() * l * b)?;
        {
            let mv = merged.as_vec_mut();
            for (gi, _) in group.iter().enumerate() {
                let seg = &buf[gi * l * b..(gi + 1) * l * b];
                let mut tree = crate::merge::LoserTree::new(seg.chunks(b).collect());
                tree.merge_into(mv);
            }
        }
        drop(buf);
        // one write batch: chunk t of L'_u (b keys) → inner window
        // (j, t), block u — same disk tiling as the reads
        let wins_row = &inner_win[*j];
        let targets: Vec<(Region, usize)> = group
            .iter()
            .flat_map(|&u| (0..l).map(move |t| (wins_row[t], u)))
            .collect();
        wb.write_multi(pdm, &targets, &merged)?;
    }
    wb.finish(pdm)?;

    // Step 6 (pass 6): inner shuffle + cleanup per j, scattering Q_j chunks
    // into the final windows (outer shuffle fold).
    pdm.begin_phase("7P: inner cleanup");
    let inner_window_keys = m_prime * b;
    // One read-ahead schedule spans all b merges — the windows are
    // disjoint, so prefetching across a j boundary is safe.
    let iw = &inner_win;
    let steps: Vec<Vec<(Region, usize)>> = (0..b)
        .flat_map(|j| {
            (0..l).map(move |t| (0..m_prime).map(|u| (iw[j][t], u)).collect())
        })
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    for j in 0..b {
        let mut cleaner = Cleaner::new(pdm, inner_window_keys)?;
        let mut next_chunk = 0usize; // global b-key chunk counter of Q_j
        let wins = &final_wins;
        let d = pdm.cfg().num_disks;
        let wbr = &mut wb;
        let mut emit = |pd: &mut Pdm<K, S>, ks: &[K]| -> Result<()> {
            debug_assert_eq!(ks.len() % b, 0);
            let chunks = ks.len() / b;
            let mut c0 = 0usize;
            while c0 < chunks {
                let c1 = (c0 + d).min(chunks);
                let targets: Vec<(Region, usize)> = (c0..c1)
                    .map(|c| (wins[next_chunk + c], j))
                    .collect();
                wbr.write_multi(pd, &targets, &ks[c0 * b..c1 * b])?;
                c0 = c1;
            }
            next_chunk += chunks;
            Ok(())
        };
        for _ in 0..l {
            cleaner.feed_from(pdm, &mut ra)?;
            cleaner.process(pdm, &mut emit)?;
        }
        let (_, clean) = cleaner.finish(pdm, &mut emit)?;
        if !clean {
            return Err(PdmError::UnsupportedInput(
                "inner (l,m')-merge cleanup detected an inversion".into(),
            ));
        }
    }
    wb.finish(pdm)?;

    // Step 7 (pass 7): outer cleanup into the output region.
    pdm.begin_phase("7P: outer cleanup");
    let mut cleaner = Cleaner::new(pdm, m)?;
    let mut emitter = RegionEmitter::new(out);
    let steps: Vec<Vec<(Region, usize)>> = final_wins
        .iter()
        .map(|w| (0..b).map(|i| (*w, i)).collect())
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    let mut emit = |pd: &mut Pdm<K, S>, ks: &[K]| emitter.emit_behind(pd, &mut wb, ks);
    for _ in 0..final_wins.len() {
        cleaner.feed_from(pdm, &mut ra)?;
        cleaner.process(pdm, &mut emit)?;
    }
    let (emitted, clean) = cleaner.finish(pdm, &mut emit)?;
    wb.finish(pdm)?;
    pdm.end_phase();
    debug_assert_eq!(emitted, l * run_len);
    if !clean {
        return Err(PdmError::UnsupportedInput(
            "outer cleanup detected an inversion — outer dirty bound violated".into(),
        ));
    }

    Ok(SortReport {
        fell_back,
        ..SortReport::from_stats(pdm, out, n, algorithm, fell_back)
    })
}

/// Sort `n ≤ M²` keys in seven passes (Theorem 6.2).
pub fn seven_pass<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
) -> Result<SortReport> {
    let b = require_square_cfg(pdm.cfg())?;
    let m = pdm.cfg().mem_capacity;
    outer_merge_sort(pdm, input, n, m * b, RunFormer::ThreePass, Algorithm::SevenPass)
}

/// Sort `n ≤ capacity_six(M, α)` keys in an expected six passes
/// (Theorem 6.3). Runs that fail the online check individually fall back to
/// deterministic formation.
pub fn expected_six_pass<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    alpha: f64,
) -> Result<SortReport> {
    let b = require_square_cfg(pdm.cfg())?;
    let m = pdm.cfg().mem_capacity;
    let run_len = expected_run_len(m, b, alpha);
    outer_merge_sort(
        pdm,
        input,
        n,
        run_len,
        RunFormer::ExpectedTwoPass,
        Algorithm::ExpectedSixPass,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn machine(d: usize, b: usize) -> Pdm<u64> {
        Pdm::new(PdmConfig::square(d, b)).unwrap()
    }

    fn check_sorted(pdm: &mut Pdm<u64>, rep: &SortReport, data: &[u64]) {
        let mut want = data.to_vec();
        want.sort_unstable();
        let got = pdm.inspect_prefix(&rep.output, data.len()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn seven_pass_sorts_m_squared_keys() {
        let mut pdm = machine(4, 8); // M = 64, N = 4096
        let mut rng = StdRng::seed_from_u64(41);
        let n = 4096;
        let mut data: Vec<u64> = (0..n as u64).collect();
        data.shuffle(&mut rng);
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        pdm.reset_stats();
        let rep = seven_pass(&mut pdm, &input, n).unwrap();
        check_sorted(&mut pdm, &rep, &data);
        assert_eq!(rep.algorithm, Algorithm::SevenPass);
    }

    #[test]
    fn seven_pass_takes_exactly_seven_passes() {
        let mut pdm = machine(4, 8);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 4096;
        let mut data: Vec<u64> = (0..n as u64).collect();
        data.shuffle(&mut rng);
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        pdm.reset_stats();
        let rep = seven_pass(&mut pdm, &input, n).unwrap();
        assert!(
            (rep.read_passes - 7.0).abs() < 1e-9,
            "read passes {}",
            rep.read_passes
        );
        assert!(
            (rep.write_passes - 7.0).abs() < 1e-9,
            "write passes {}",
            rep.write_passes
        );
        assert!(rep.peak_mem <= 2 * 64 + 64, "peak {}", rep.peak_mem);
        assert!(pdm.stats().read_parallel_efficiency(4) > 0.99);
    }

    #[test]
    fn seven_pass_adversarial_inputs() {
        for data in [
            (0..4096u64).rev().collect::<Vec<_>>(),
            vec![9u64; 4096],
            (0..4096u64).map(|i| i % 3).collect::<Vec<_>>(),
        ] {
            let mut pdm = machine(2, 8);
            let input = pdm.alloc_region_for_keys(data.len()).unwrap();
            pdm.ingest(&input, &data).unwrap();
            let rep = seven_pass(&mut pdm, &input, data.len()).unwrap();
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn seven_pass_binary_thresholds() {
        let mut rng = StdRng::seed_from_u64(43);
        for k in [0usize, 1, 1000, 2048, 4095] {
            let mut pdm = machine(2, 8);
            let n = 4096;
            let mut data: Vec<u64> = (0..n).map(|i| u64::from(i >= k)).collect();
            data.shuffle(&mut rng);
            let input = pdm.alloc_region_for_keys(n).unwrap();
            pdm.ingest(&input, &data).unwrap();
            let rep = seven_pass(&mut pdm, &input, n).unwrap();
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn seven_pass_partial_input() {
        let mut pdm = machine(2, 8);
        let mut rng = StdRng::seed_from_u64(44);
        let n = 2500; // not a multiple of anything convenient
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100_000)).collect();
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        let rep = seven_pass(&mut pdm, &input, n).unwrap();
        check_sorted(&mut pdm, &rep, &data);
    }

    #[test]
    fn seven_pass_rejects_oversized() {
        let mut pdm = machine(2, 8);
        let input = pdm.alloc_region_for_keys(64).unwrap();
        assert!(seven_pass(&mut pdm, &input, 4097).is_err());
    }

    #[test]
    fn expected_six_pass_sorts_random_input() {
        // D = 2 so the inner fan-out m' = 2 still fills every stripe; at
        // realistic M the capacity formula gives m' ≥ D and this is moot.
        let mut pdm = machine(2, 16); // M = 256
        let mut rng = StdRng::seed_from_u64(45);
        let n = capacity_six(256, 2.0).min(4096);
        let mut data: Vec<u64> = (0..n as u64).collect();
        data.shuffle(&mut rng);
        let input = pdm.alloc_region_for_keys(n).unwrap();
        pdm.ingest(&input, &data).unwrap();
        pdm.reset_stats();
        let rep = expected_six_pass(&mut pdm, &input, n, 2.0).unwrap();
        check_sorted(&mut pdm, &rep, &data);
        assert_eq!(rep.algorithm, Algorithm::ExpectedSixPass);
        if !rep.fell_back {
            assert!(
                rep.read_passes < 6.6,
                "six-pass read passes {}",
                rep.read_passes
            );
        }
    }

    #[test]
    fn expected_six_pass_beats_seven_on_random_input() {
        let mut rng = StdRng::seed_from_u64(46);
        let n = 8192; // 2 runs of 4096? depends on run length at M=256
        let mut data: Vec<u64> = (0..n as u64).collect();
        data.shuffle(&mut rng);

        let mut pdm6 = machine(2, 16);
        let input6 = pdm6.alloc_region_for_keys(n).unwrap();
        pdm6.ingest(&input6, &data).unwrap();
        pdm6.reset_stats();
        let rep6 = expected_six_pass(&mut pdm6, &input6, n, 2.0).unwrap();
        check_sorted(&mut pdm6, &rep6, &data);

        let mut pdm7 = machine(2, 16);
        let input7 = pdm7.alloc_region_for_keys(n).unwrap();
        pdm7.ingest(&input7, &data).unwrap();
        pdm7.reset_stats();
        let rep7 = seven_pass(&mut pdm7, &input7, n).unwrap();
        check_sorted(&mut pdm7, &rep7, &data);

        if !rep6.fell_back {
            assert!(
                rep6.read_passes < rep7.read_passes,
                "six {} vs seven {}",
                rep6.read_passes,
                rep7.read_passes
            );
        }
    }

    #[test]
    fn overlap_changes_nothing_but_wall_clock() {
        let mut rng = StdRng::seed_from_u64(47);
        let n = 4096;
        let mut data: Vec<u64> = (0..n as u64).collect();
        data.shuffle(&mut rng);
        let run = |overlap: bool| {
            let mut pdm = machine(4, 8);
            pdm.set_overlap(overlap);
            let input = pdm.alloc_region_for_keys(n).unwrap();
            pdm.ingest(&input, &data).unwrap();
            pdm.reset_stats();
            let rep = seven_pass(&mut pdm, &input, n).unwrap();
            assert_eq!(pdm.pending_io(), 0, "phases must drain all overlap I/O");
            let got = pdm.inspect_prefix(&rep.output, n).unwrap();
            let s = pdm.stats();
            (got, s.blocks_read, s.blocks_written, s.read_steps, s.write_steps)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on, off, "overlap must be invisible to output and accounting");
    }

    #[test]
    fn overlap_is_invisible_to_expected_six_pass() {
        let mut rng = StdRng::seed_from_u64(48);
        let n = capacity_six(256, 2.0).min(4096);
        let mut data: Vec<u64> = (0..n as u64).collect();
        data.shuffle(&mut rng);
        let run = |overlap: bool| {
            let mut pdm = machine(2, 16);
            pdm.set_overlap(overlap);
            let input = pdm.alloc_region_for_keys(n).unwrap();
            pdm.ingest(&input, &data).unwrap();
            pdm.reset_stats();
            let rep = expected_six_pass(&mut pdm, &input, n, 2.0).unwrap();
            assert_eq!(pdm.pending_io(), 0, "phases must drain all overlap I/O");
            let got = pdm.inspect_prefix(&rep.output, n).unwrap();
            let s = pdm.stats();
            (got, rep.fell_back, s.blocks_read, s.blocks_written, s.read_steps, s.write_steps)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on, off, "overlap must be invisible to output and accounting");
    }

    #[test]
    fn capacity_six_below_m_squared() {
        let m = 1 << 12;
        assert!(capacity_six(m, 2.0) < m * m);
        assert!(capacity_six(m, 2.0) > m); // non-trivial
    }

    #[test]
    fn six_pass_run_len_divides_layout() {
        for b in [8usize, 16, 32, 64] {
            let m = b * b;
            let run = expected_run_len(m, b, 2.0);
            assert_eq!(run % m, 0);
            assert_eq!(b % (run / m), 0);
            assert!(run <= m * b);
        }
    }
}
