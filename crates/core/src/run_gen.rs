//! Adaptive run formation + multi-way merging for the `seven_pass` family.
//!
//! The paper's `SevenPass` forms runs greedily (load `M√M` keys, sort with
//! `ThreePass2`), which costs the same 7 passes on *every* input. This
//! module wires the alternating up/down replacement-selection kernel
//! ([`crate::kernels::UpDownPolicy`], after Bender et al., "Run Generation
//! Revisited") into an external merge sort: nearly-sorted and
//! duplicate-heavy inputs collapse to a handful of runs far longer than
//! `M`, and the sort finishes in as few as 2 passes (1 to form a single
//! run, 1 to stream it out — and when run formation already yields exactly
//! one ascending run, its region *is* the output and the sort took 1 read
//! + 1 write pass).
//!
//! Descending runs are stored exactly as emitted and read back in reverse
//! block order at merge time (each batch of blocks is reversed in memory),
//! so a down-run costs nothing extra on disk and merges as an ascending
//! stream. Run boundaries are block-aligned; the tail block of each run is
//! padded with `K::MAX` and the pad count is skipped by exact key
//! accounting, never by sentinel comparison.

use crate::common::{require_square_cfg, Algorithm, SortReport};
use crate::kernels::{self, UpDownPolicy};
use pdm_model::prelude::*;

/// Which run-formation strategy the `seven_pass` family uses
/// (CLI `--run-gen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunGenStrategy {
    /// Load-sort-store runs of `M√M` keys via `ThreePass2` — the paper's
    /// layout, exactly 7 passes on every input.
    #[default]
    Greedy,
    /// Alternating up/down replacement selection (2-competitive in run
    /// count); pass count adapts to the input's presortedness.
    UpDown,
}

impl std::fmt::Display for RunGenStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunGenStrategy::Greedy => write!(f, "greedy"),
            RunGenStrategy::UpDown => write!(f, "updown"),
        }
    }
}

/// `seven_pass` with a selectable run-formation strategy.
pub fn seven_pass_with<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    strategy: RunGenStrategy,
) -> Result<SortReport> {
    match strategy {
        RunGenStrategy::Greedy => crate::seven_pass::seven_pass(pdm, input, n),
        RunGenStrategy::UpDown => updown_merge_sort(pdm, input, n),
    }
}

/// One run on disk: `blocks_for(keys)` consecutive blocks starting at
/// `start_block`, tail block padded with `K::MAX`.
#[derive(Debug, Clone, Copy)]
struct RunInfo {
    start_block: usize,
    keys: usize,
    ascending: bool,
}

impl RunInfo {
    fn blocks(&self, b: usize) -> usize {
        self.keys.div_ceil(b)
    }
}

/// External merge sort with up/down run formation. Pass count is
/// `2·(1 + ⌈log_F(runs)⌉)` parallel passes where `F ≈ 2M/(D·B)` is the
/// merge fan-in — e.g. 2 total passes on an already-sorted input, versus
/// `seven_pass`'s unconditional 7.
pub fn updown_merge_sort<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
) -> Result<SortReport> {
    if n == 0 {
        return Err(PdmError::UnsupportedInput("empty input".into()));
    }
    require_square_cfg(pdm.cfg())?;
    let cfg = *pdm.cfg();
    let (d, b, m) = (cfg.num_disks, cfg.block_size, cfg.mem_capacity);
    let stripe = d * b;
    if n > input.len_keys() {
        return Err(PdmError::RegionOutOfBounds {
            index: n,
            len: input.len_keys(),
        });
    }

    // ---- Phase 1: alternating up/down run formation (1 read + 1 write) ----
    pdm.begin_phase("RG: up/down runs");
    // Every run is ≥ M keys except possibly the last, so padding wastes at
    // most one block per run: `⌈n/M⌉` blocks of slack cover the worst case.
    let scratch = pdm.alloc_region(cfg.blocks_for(n) + n.div_ceil(m))?;
    let runs = form_runs(pdm, input, n, &scratch)?;
    pdm.stats_mut().probe_gauge("rungen.runs", runs.len() as i64);

    // A single ascending run means the scratch region is already the sorted
    // output — the whole sort was 1 read + 1 write pass.
    if runs.len() == 1 && runs[0].ascending {
        pdm.end_phase();
        pdm.stats_mut().probe_gauge("rungen.merge_levels", 0);
        let out = scratch.sub(0, cfg.blocks_for(n))?;
        return Ok(SortReport::from_stats(pdm, out, n, Algorithm::SevenPass, false));
    }

    // ---- Phase 2+: multi-way merge levels (1 read + 1 write each) --------
    // Budget: F run cursors of one stripe each plus one output stage stripe
    // inside the 2M workspace → F = 2M/(D·B) − 2, floored at a binary merge.
    let fan = (2 * m / stripe).saturating_sub(2).max(2);
    let mut level = 0usize;
    let mut cur_region = scratch;
    let mut cur_runs = runs;
    while cur_runs.len() > 1 {
        level += 1;
        pdm.begin_phase(format!("RG: merge level {level}"));
        let groups = cur_runs.len().div_ceil(fan);
        let next_region = pdm.alloc_region(cfg.blocks_for(n) + groups)?;
        let mut next_runs = Vec::with_capacity(groups);
        let mut out_block = 0usize;
        let verify = groups == 1; // final level: check output order inline
        for group in cur_runs.chunks(fan) {
            let merged =
                merge_group(pdm, &cur_region, group, &next_region, out_block, verify)?;
            out_block += merged.blocks(b);
            next_runs.push(merged);
        }
        cur_region = next_region;
        cur_runs = next_runs;
    }
    pdm.end_phase();
    pdm.stats_mut().probe_gauge("rungen.merge_levels", level as i64);

    let out = cur_region.sub(cur_runs[0].start_block, cfg.blocks_for(n))?;
    Ok(SortReport::from_stats(pdm, out, n, Algorithm::SevenPass, false))
}

/// Drive the up/down policy over the striped input, writing block-aligned
/// runs into `scratch`. The resident buffer holds `M` keys; refills and
/// emissions move one `D·B`-key stripe at a time so every I/O batch spans
/// all `D` disks.
fn form_runs<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    scratch: &Region,
) -> Result<Vec<RunInfo>> {
    let cfg = *pdm.cfg();
    let (d, b, m) = (cfg.num_disks, cfg.block_size, cfg.mem_capacity);
    let stripe = d * b;
    let in_blocks = cfg.blocks_for(n);

    let mut resident = pdm.alloc_buf(m)?;
    let mut stage = pdm.alloc_buf(stripe)?;
    let mut policy = UpDownPolicy::new();
    let mut runs: Vec<RunInfo> = Vec::new();
    let mut cur: Option<RunInfo> = None;
    let (mut rblock, mut read_keys, mut wblock) = (0usize, 0usize, 0usize);

    loop {
        // Refill the resident buffer up to M keys, D blocks per batch.
        let mut grew = false;
        while rblock < in_blocks {
            let free_blocks = (m - resident.len()) / b;
            let nb = d.min(in_blocks - rblock).min(free_blocks);
            if nb == 0 {
                break;
            }
            let before = resident.len();
            pdm.read_range(input, rblock, nb, resident.as_vec_mut())?;
            rblock += nb;
            // The final input block is padded; keep only the real keys.
            let real = (n - read_keys).min(resident.len() - before);
            resident.as_vec_mut().truncate(before + real);
            read_keys += real;
            grew = true;
        }
        if grew {
            kernels::sort_keys(resident.as_vec_mut());
        }

        if resident.is_empty() {
            break;
        }
        // Seal the previous run (pad its tail block) before the new run's
        // keys reach the stage, so run boundaries stay block-aligned.
        if policy.will_start_new_run(resident.as_vec()) {
            close_run(pdm, &mut cur, &mut runs, stage.as_vec_mut(), b);
            if stage.len() == stripe {
                pdm.write_range(scratch, wblock, stage.as_vec())?;
                wblock += d;
                stage.as_vec_mut().clear();
            }
        }
        // Emit exactly enough to fill the stage to one stripe.
        let want = stripe - stage.len();
        let c = policy
            .take_chunk(resident.as_vec_mut(), stage.as_vec_mut(), want)
            .expect("resident buffer is non-empty");
        if c.new_run {
            let start_block = wblock + (stage.len() - c.taken) / b;
            cur = Some(RunInfo { start_block, keys: 0, ascending: c.ascending });
        }
        cur.as_mut().expect("chunk always belongs to a run").keys += c.taken;
        if stage.len() == stripe {
            pdm.write_range(scratch, wblock, stage.as_vec())?;
            wblock += d;
            stage.as_vec_mut().clear();
        }
    }

    close_run(pdm, &mut cur, &mut runs, stage.as_vec_mut(), b);
    if !stage.is_empty() {
        pdm.write_range(scratch, wblock, stage.as_vec())?;
        stage.as_vec_mut().clear();
    }
    Ok(runs)
}

/// Seal the current run: pad its tail block with `K::MAX`, record it, and
/// emit the probe gauge merge consumers use to verify run lengths.
fn close_run<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    cur: &mut Option<RunInfo>,
    runs: &mut Vec<RunInfo>,
    stage: &mut Vec<K>,
    b: usize,
) {
    if let Some(run) = cur.take() {
        let pad = (b - stage.len() % b) % b;
        stage.resize(stage.len() + pad, K::MAX);
        pdm.stats_mut().probe_gauge("rungen.run_len", run.keys as i64);
        runs.push(run);
    }
}

/// A buffered ascending view over one on-disk run. Ascending runs stream
/// forward; descending runs read their blocks back to front, reverse each
/// batch in memory, and skip the tail-block padding by count on the first
/// refill. Refills fetch up to `D` consecutive blocks — one parallel step.
struct RunCursor<K: PdmKey> {
    info: RunInfo,
    blocks: usize,
    /// Blocks already fetched (from the front for ascending runs, from the
    /// back for descending ones).
    fetched: usize,
    remaining: usize,
    buf: TrackedBuf<K>,
    pos: usize,
}

impl<K: PdmKey> RunCursor<K> {
    fn new<S: Storage<K>>(pdm: &Pdm<K, S>, info: RunInfo) -> Result<Self> {
        let b = pdm.cfg().block_size;
        let stripe = pdm.cfg().num_disks * b;
        Ok(Self {
            blocks: info.blocks(b),
            info,
            fetched: 0,
            remaining: info.keys,
            buf: pdm.alloc_buf(stripe)?,
            pos: 0,
        })
    }

    fn refill<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>, region: &Region) -> Result<()> {
        let (d, b) = (pdm.cfg().num_disks, pdm.cfg().block_size);
        let nb = d.min(self.blocks - self.fetched);
        let buf = self.buf.as_vec_mut();
        buf.clear();
        self.pos = 0;
        if self.info.ascending {
            pdm.read_range(region, self.info.start_block + self.fetched, nb, buf)?;
            // Trailing pads live in the run's last block; cap by count.
            buf.truncate(self.remaining.min(nb * b));
        } else {
            // Last `nb` unfetched blocks, read forward then reversed: the
            // reversal turns [lo..hi) into rev(hi-1) ++ … ++ rev(lo) — the
            // ascending continuation of the stream.
            let lo = self.blocks - self.fetched - nb;
            pdm.read_range(region, self.info.start_block + lo, nb, buf)?;
            buf.reverse();
            if self.fetched == 0 {
                // Tail-block padding surfaces at the front once reversed.
                let pads = self.blocks * b - self.info.keys;
                self.pos = pads;
            }
        }
        self.fetched += nb;
        Ok(())
    }

    fn peek(&self) -> Option<&K> {
        if self.remaining == 0 {
            None
        } else {
            self.buf.as_vec().get(self.pos)
        }
    }

    /// Consume the head key; refills behind the scenes.
    fn pop<S: Storage<K>>(&mut self, pdm: &mut Pdm<K, S>, region: &Region) -> Result<K> {
        debug_assert!(self.remaining > 0);
        let k = self.buf.as_vec()[self.pos];
        self.pos += 1;
        self.remaining -= 1;
        if self.remaining > 0 && self.pos == self.buf.len() {
            self.refill(pdm, region)?;
        }
        Ok(k)
    }
}

/// Merge one group of runs from `region` into an ascending run of
/// `next_region` starting at `out_block`.
fn merge_group<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    region: &Region,
    group: &[RunInfo],
    next_region: &Region,
    out_block: usize,
    verify: bool,
) -> Result<RunInfo> {
    let cfg = *pdm.cfg();
    let (d, b) = (cfg.num_disks, cfg.block_size);
    let stripe = d * b;
    let total: usize = group.iter().map(|r| r.keys).sum();

    let mut cursors = Vec::with_capacity(group.len());
    for info in group {
        let mut c = RunCursor::new(pdm, *info)?;
        c.refill(pdm, region)?;
        cursors.push(c);
    }

    let mut stage = pdm.alloc_buf(stripe)?;
    let mut wblock = out_block;
    let mut emitted = 0usize;
    let mut prev: Option<K> = None;
    while emitted < total {
        // Linear scan over ≤ F heads — F is a few dozen at most.
        let mut best: Option<usize> = None;
        for (i, c) in cursors.iter().enumerate() {
            if let Some(k) = c.peek() {
                if best.map_or(true, |j| k < cursors[j].peek().unwrap()) {
                    best = Some(i);
                }
            }
        }
        let i = best.ok_or_else(|| {
            PdmError::UnsupportedInput("run cursors drained early".into())
        })?;
        let k = cursors[i].pop(pdm, region)?;
        if verify {
            if let Some(p) = prev {
                if k < p {
                    return Err(PdmError::UnsupportedInput(
                        "up/down merge produced out-of-order output".into(),
                    ));
                }
            }
            prev = Some(k);
        }
        stage.as_vec_mut().push(k);
        emitted += 1;
        if stage.len() == stripe {
            pdm.write_range(next_region, wblock, stage.as_vec())?;
            wblock += d;
            stage.as_vec_mut().clear();
        }
    }
    if !stage.is_empty() {
        let pad = (b - stage.len() % b) % b;
        let len = stage.len();
        stage.as_vec_mut().resize(len + pad, K::MAX);
        pdm.write_range(next_region, wblock, stage.as_vec())?;
    }
    Ok(RunInfo { start_block: out_block, keys: total, ascending: true })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(d: usize, b: usize) -> Pdm<u64> {
        Pdm::new(PdmConfig::square(d, b)).unwrap()
    }

    fn sort_and_check(pdm: &mut Pdm<u64>, keys: &[u64]) -> SortReport {
        let input = pdm.alloc_region_for_keys(keys.len()).unwrap();
        pdm.ingest(&input, keys).unwrap();
        let rep = updown_merge_sort(pdm, &input, keys.len()).unwrap();
        let got = pdm.inspect_prefix(&rep.output, keys.len()).unwrap();
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(got, expect);
        rep
    }

    #[test]
    fn sorts_random_input() {
        let mut pdm = machine(4, 16);
        let keys: Vec<u64> = (0..40_000u64).map(|i| i.wrapping_mul(0x9E3779B9) >> 5).collect();
        sort_and_check(&mut pdm, &keys);
    }

    #[test]
    fn sorted_input_takes_two_passes() {
        let mut pdm = machine(4, 16);
        let keys: Vec<u64> = (0..8192).collect();
        let rep = sort_and_check(&mut pdm, &keys);
        assert!(
            rep.read_passes <= 1.1 && rep.write_passes <= 1.1,
            "one run ⇒ 1 read + 1 write pass, got {} + {}",
            rep.read_passes,
            rep.write_passes
        );
    }

    #[test]
    fn reversed_input_beats_seven_passes() {
        let mut pdm = machine(4, 16);
        let keys: Vec<u64> = (0..8192u64).rev().collect();
        let rep = sort_and_check(&mut pdm, &keys);
        // Two runs (one up, one down) and a single binary merge level.
        assert!(
            rep.read_passes <= 2.5,
            "read passes {} should be ≈2",
            rep.read_passes
        );
    }

    #[test]
    fn nearly_sorted_input_stays_under_three_passes() {
        let mut pdm = machine(4, 16);
        let mut keys: Vec<u64> = (0..16384).collect();
        // A few hundred random transpositions, the bench's nearly-sorted shape.
        let mut s = 0x1234_5678_u64;
        for _ in 0..160 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (s >> 33) as usize % keys.len();
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % keys.len();
            keys.swap(i, j);
        }
        let rep = sort_and_check(&mut pdm, &keys);
        assert!(
            rep.read_passes <= 3.0,
            "nearly-sorted should collapse to few runs, got {} read passes",
            rep.read_passes
        );
    }

    #[test]
    fn duplicate_heavy_input_collapses() {
        let mut pdm = machine(2, 16);
        let keys: Vec<u64> =
            (0..20_000u64).map(|i| (i.wrapping_mul(0x2545F491) >> 7) % 8).collect();
        let rep = sort_and_check(&mut pdm, &keys);
        // Duplicates sustain runs past M (≈2M), so run formation plus two
        // merge levels land well under seven_pass's unconditional 7.
        assert!(rep.read_passes <= 3.5, "got {} read passes", rep.read_passes);
    }

    #[test]
    fn tiny_geometry_and_non_block_multiple_lengths() {
        for n in [1usize, 7, 63, 64, 65, 1000] {
            let mut pdm = machine(4, 8);
            let keys: Vec<u64> =
                (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B9) >> 11).collect();
            sort_and_check(&mut pdm, &keys);
        }
    }

    #[test]
    fn works_on_tagged_records() {
        let mut pdm: Pdm<Tagged> = Pdm::new(PdmConfig::square(2, 16)).unwrap();
        let keys: Vec<Tagged> = (0..6000u64)
            .map(|i| Tagged::new((i.wrapping_mul(0x9E3779B9) >> 9) % 100, i))
            .collect();
        let input = pdm.alloc_region_for_keys(keys.len()).unwrap();
        pdm.ingest(&input, &keys).unwrap();
        let rep = updown_merge_sort(&mut pdm, &input, keys.len()).unwrap();
        let got = pdm.inspect_prefix(&rep.output, keys.len()).unwrap();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn strategy_dispatch_matches_direct_calls() {
        let mut a = machine(4, 8);
        let mut bm = machine(4, 8);
        let keys: Vec<u64> = (0..512u64).map(|i| i.wrapping_mul(0x2545F491) >> 9).collect();
        let ra = {
            let input = a.alloc_region_for_keys(keys.len()).unwrap();
            a.ingest(&input, &keys).unwrap();
            seven_pass_with(&mut a, &input, keys.len(), RunGenStrategy::Greedy).unwrap()
        };
        let rb = {
            let input = bm.alloc_region_for_keys(keys.len()).unwrap();
            bm.ingest(&input, &keys).unwrap();
            seven_pass_with(&mut bm, &input, keys.len(), RunGenStrategy::UpDown).unwrap()
        };
        assert_eq!(
            a.inspect_prefix(&ra.output, keys.len()).unwrap(),
            bm.inspect_prefix(&rb.output, keys.len()).unwrap()
        );
        assert!(rb.read_passes <= ra.read_passes);
    }

    #[test]
    fn probe_records_run_lengths() {
        let mut pdm = machine(4, 16);
        pdm.enable_probe(1 << 16);
        let keys: Vec<u64> = (0..4096u64).rev().collect();
        let input = pdm.alloc_region_for_keys(keys.len()).unwrap();
        pdm.ingest(&input, &keys).unwrap();
        updown_merge_sort(&mut pdm, &input, keys.len()).unwrap();
        let probe = pdm.stats().probe().expect("probe enabled");
        let lens: Vec<i64> = probe
            .events()
            .iter()
            .filter_map(|e| match e {
                ProbeEvent::Gauge { name, value, .. } if name == "rungen.run_len" => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(lens.iter().sum::<i64>(), keys.len() as i64, "gauges cover every key");
        assert!(lens.iter().all(|&l| l >= 256), "every run ≥ M keys: {lens:?}");
    }
}
