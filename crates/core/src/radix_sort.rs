//! `RadixSort` (paper §7, Theorem 7.2): forward (MSD) radix sort of
//! arbitrarily many integer keys in `(1+ν)·log(N/M)/log(M/B) + 1` passes.
//!
//! Each round buckets the keys of every segment larger than `M` by their
//! next `log₂(M/B)` most-significant bits, using the `IntegerSort`
//! distribution machinery (Theorem 7.1 gives each round `(1+µ)` passes).
//! Keys sharing all processed bits form a *bucket/segment*; once a segment
//! fits in memory it is sorted in one read and streamed to the output (the
//! paper's final "step A"). Segments are refined depth-first in key order,
//! so the output stream is written exactly once, in order.

use crate::common::{Algorithm, SortReport};
use crate::integer_sort::{distribute, BucketRun, FlushMode, Source};
use pdm_model::key::RankedKey;
use pdm_model::prelude::*;

/// Extended report for radix sort: the pass accounting plus the recursion
/// shape Theorem 7.2 predicts.
#[derive(Debug, Clone)]
pub struct RadixReport {
    /// The standard sort report.
    pub report: SortReport,
    /// Deepest distribution round applied to any key (the theorem predicts
    /// `≈ (1+δ)·log(N/M)/log(M/B)` rounds).
    pub max_rounds: usize,
    /// Segments small enough to finish in memory (step A units).
    pub segments_sorted: usize,
}

/// The digit width used on a machine: `⌊log₂(M/B)⌋` bits.
pub fn digit_bits(cfg: &PdmConfig) -> u32 {
    let r = (cfg.mem_capacity / cfg.block_size).max(2);
    (usize::BITS - 1) - r.leading_zeros()
}

/// Theorem 7.2's predicted distribution rounds for `n` keys of `key_bits`
/// significant bits.
pub fn predicted_rounds(cfg: &PdmConfig, n: usize, key_bits: u32) -> f64 {
    let m = cfg.mem_capacity as f64;
    let digits = digit_bits(cfg) as f64;
    // log(N/M)/log(M/B), but never more rounds than the key has digits
    let size_rounds = ((n as f64 / m).log2() / digits).max(0.0);
    let bit_rounds = key_bits as f64 / digits;
    size_rounds.min(bit_rounds)
}

enum Seg {
    /// First `n` keys of a region.
    Reg(Region, usize),
    /// A bucket run from a previous round.
    Run(BucketRun),
}

impl Seg {
    fn len(&self) -> usize {
        match self {
            Seg::Reg(_, n) => *n,
            Seg::Run(r) => r.total,
        }
    }
}

struct Ctx<'w, K: PdmKey> {
    writer: &'w mut RunWriter<K>,
    mode: FlushMode,
    key_bits: u32,
    digit_bits: u32,
    max_rounds: usize,
    segments_sorted: usize,
}

fn refine<K: PdmKey + RankedKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    seg: Seg,
    bits_done: u32,
    depth: usize,
    ctx: &mut Ctx<'_, K>,
) -> Result<()> {
    let m = pdm.cfg().mem_capacity;
    let n = seg.len();
    if n == 0 {
        return Ok(());
    }
    let src = match &seg {
        Seg::Reg(r, n) => Source::Region(r, *n),
        Seg::Run(run) => Source::Run(run),
    };
    if n <= m {
        // Step A: in-memory sort of a finished segment, streamed out.
        let mut buf = pdm.alloc_buf(m)?;
        let chunk = (m / 2).max(pdm.cfg().block_size);
        // collect (for_each_chunk's scratch lives alongside `buf`; chunk
        // M/2 keeps the sum within the tracked workspace)
        {
            let collected = buf.as_vec_mut();
            src.for_each_chunk(pdm, chunk, |_pdm, keys| {
                collected.extend_from_slice(keys);
                Ok(())
            })?;
        }
        debug_assert_eq!(buf.len(), n);
        crate::kernels::sort_keys(&mut buf);
        ctx.writer.push_slice(pdm, &buf)?;
        ctx.segments_sorted += 1;
        return Ok(());
    }
    if bits_done >= ctx.key_bits {
        // all significant bits consumed: every key in the segment is equal
        let chunk = (m / 2).max(pdm.cfg().block_size);
        let writer = &mut *ctx.writer;
        src.for_each_chunk(pdm, chunk, |pdm, keys| writer.push_slice(pdm, keys))?;
        return Ok(());
    }

    let remaining = ctx.key_bits - bits_done;
    let dbits = ctx.digit_bits.min(remaining);
    let shift = remaining - dbits;
    let buckets = distribute(pdm, &src, 1usize << dbits, ctx.mode, |k| {
        k.digit(shift, dbits) as usize
    })?;
    drop(src);
    drop(seg);
    ctx.max_rounds = ctx.max_rounds.max(depth + 1);
    for run in buckets.runs {
        refine(pdm, Seg::Run(run), bits_done + dbits, depth + 1, ctx)?;
    }
    Ok(())
}

/// Sort `n` integer keys whose significant bits number at most `key_bits`
/// (e.g. 32 for u32-range data), per Theorem 7.2. Works for any `n` the
/// disks can hold.
///
/// # Example
///
/// ```
/// use pdm_model::prelude::*;
/// let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, 16)).unwrap();
/// let data: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 65536).collect();
/// let input = pdm.alloc_region_for_keys(data.len()).unwrap();
/// pdm.ingest(&input, &data).unwrap();
/// let rep = pdm_sort::radix_sort(&mut pdm, &input, data.len(), 16).unwrap();
/// let out = pdm.inspect_prefix(&rep.report.output, data.len()).unwrap();
/// assert!(out.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn radix_sort<K: PdmKey + RankedKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    key_bits: u32,
) -> Result<RadixReport> {
    radix_sort_with(pdm, input, n, key_bits, FlushMode::PerPhase)
}

/// [`radix_sort`] with an explicit distribution [`FlushMode`].
pub fn radix_sort_with<K: PdmKey + RankedKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    key_bits: u32,
    mode: FlushMode,
) -> Result<RadixReport> {
    if n == 0 {
        return Err(PdmError::UnsupportedInput("empty input".into()));
    }
    if key_bits == 0 || key_bits > K::domain_bits() {
        return Err(PdmError::UnsupportedInput(format!(
            "key_bits {key_bits} outside 1..={}",
            K::domain_bits()
        )));
    }
    let out = pdm.alloc_region_for_keys(n)?;
    let mut writer = RunWriter::striped(pdm, out)?;
    let mut ctx = Ctx {
        writer: &mut writer,
        mode,
        key_bits,
        digit_bits: digit_bits(pdm.cfg()),
        max_rounds: 0,
        segments_sorted: 0,
    };
    pdm.begin_phase("RS: refine");
    refine(pdm, Seg::Reg(*input, n), 0, 0, &mut ctx)?;
    let (max_rounds, segments_sorted) = (ctx.max_rounds, ctx.segments_sorted);
    // the writer's final flush is still refine-phase I/O
    let written = writer.finish(pdm)?;
    pdm.end_phase();
    debug_assert_eq!(written, n);
    Ok(RadixReport {
        report: SortReport::from_stats(pdm, out, n, Algorithm::RadixSort, false),
        max_rounds,
        segments_sorted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn machine(d: usize, b: usize) -> Pdm<u64> {
        Pdm::new(PdmConfig::square(d, b)).unwrap()
    }

    fn run_sort(pdm: &mut Pdm<u64>, data: &[u64], bits: u32) -> RadixReport {
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, data).unwrap();
        pdm.reset_stats();
        radix_sort(pdm, &input, data.len(), bits).unwrap()
    }

    fn check_sorted(pdm: &mut Pdm<u64>, rep: &RadixReport, data: &[u64]) {
        let mut want = data.to_vec();
        want.sort_unstable();
        let got = pdm.inspect_prefix(&rep.report.output, data.len()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn digit_bits_is_log_m_over_b() {
        assert_eq!(digit_bits(&PdmConfig::square(4, 16)), 4); // M/B = 16
        assert_eq!(digit_bits(&PdmConfig::square(2, 8)), 3); // M/B = 8
        assert_eq!(digit_bits(&PdmConfig::new(2, 8, 128)), 4); // M/B = 16
    }

    #[test]
    fn sorts_small_input_without_distribution() {
        let mut pdm = machine(2, 8); // M = 64
        let mut rng = StdRng::seed_from_u64(91);
        let data: Vec<u64> = (0..60).map(|_| rng.gen_range(0..1u64 << 32)).collect();
        let rep = run_sort(&mut pdm, &data, 32);
        check_sorted(&mut pdm, &rep, &data);
        assert_eq!(rep.max_rounds, 0);
        assert_eq!(rep.segments_sorted, 1);
    }

    #[test]
    fn sorts_random_32_bit_keys() {
        let mut pdm = machine(4, 16); // M = 256, R = 16
        let mut rng = StdRng::seed_from_u64(92);
        let n = 8192; // N/M = 32 → expect ~2 rounds at 4 bits/digit? log2(32)/4 = 1.25
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 32)).collect();
        let rep = run_sort(&mut pdm, &data, 32);
        check_sorted(&mut pdm, &rep, &data);
        assert!(rep.max_rounds >= 1);
    }

    #[test]
    fn rounds_track_the_theorem() {
        // random keys: rounds ≈ ⌈log2(N/M)/digit_bits⌉ (+1 slack)
        let mut pdm = machine(2, 16); // M = 256, digit = 4 bits
        let mut rng = StdRng::seed_from_u64(93);
        let n = 65536; // log2(N/M) = 8 → 2 rounds
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 32)).collect();
        let rep = run_sort(&mut pdm, &data, 32);
        check_sorted(&mut pdm, &rep, &data);
        assert!(
            rep.max_rounds <= 3,
            "max rounds {} too deep for N/M = 256",
            rep.max_rounds
        );
        // paper example (Obs 7.2 shape): passes stay small — each round
        // costs ≈ 2(1+µ) read passes here (distribute + re-read)
        assert!(
            rep.report.read_passes < 6.5,
            "read passes {}",
            rep.report.read_passes
        );
        // the Packed ablation cuts the padding waste µ
        let mut pdm2 = machine(2, 16);
        let input2 = pdm2.alloc_region_for_keys(n).unwrap();
        pdm2.ingest(&input2, &data).unwrap();
        pdm2.reset_stats();
        let rep2 =
            radix_sort_with(&mut pdm2, &input2, n, 32, FlushMode::Packed).unwrap();
        check_sorted(&mut pdm2, &rep2, &data);
        assert!(
            rep2.report.read_passes < rep.report.read_passes,
            "packed {} vs per-phase {}",
            rep2.report.read_passes,
            rep.report.read_passes
        );
    }

    #[test]
    fn skewed_keys_recurse_deeper_but_sort() {
        let mut pdm = machine(2, 8); // M = 64, digit = 3 bits
        let mut rng = StdRng::seed_from_u64(94);
        // keys concentrated in a narrow high range: first digits identical
        let data: Vec<u64> = (0..2048)
            .map(|_| (0xFFFF_0000u64) | rng.gen_range(0..256))
            .collect();
        let rep = run_sort(&mut pdm, &data, 32);
        check_sorted(&mut pdm, &rep, &data);
        assert!(rep.max_rounds >= 2);
    }

    #[test]
    fn all_equal_keys_terminate() {
        // > M equal keys exhaust every digit: the equal-segment stream path
        let mut pdm = machine(2, 8);
        let data = vec![42u64; 1024];
        let rep = run_sort(&mut pdm, &data, 8);
        check_sorted(&mut pdm, &rep, &data);
    }

    #[test]
    fn narrow_key_domains() {
        let mut pdm = machine(2, 8);
        let mut rng = StdRng::seed_from_u64(95);
        let data: Vec<u64> = (0..1500).map(|_| rng.gen_range(0..2)).collect();
        let rep = run_sort(&mut pdm, &data, 1);
        check_sorted(&mut pdm, &rep, &data);
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut pdm = machine(2, 8);
        let input = pdm.alloc_region_for_keys(64).unwrap();
        assert!(radix_sort(&mut pdm, &input, 0, 32).is_err());
        assert!(radix_sort(&mut pdm, &input, 64, 0).is_err());
        assert!(radix_sort(&mut pdm, &input, 64, 65).is_err());
    }

    #[test]
    fn works_on_u32_and_tagged_keys() {
        let mut rng = StdRng::seed_from_u64(96);
        let mut pdm: Pdm<u32> = Pdm::new(PdmConfig::square(2, 8)).unwrap();
        let data: Vec<u32> = (0..1024).map(|_| rng.gen()).collect();
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, &data).unwrap();
        let rep = radix_sort(&mut pdm, &input, data.len(), 32).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        assert_eq!(pdm.inspect_prefix(&rep.report.output, data.len()).unwrap(), want);

        let mut pdm: Pdm<Tagged> = Pdm::new(PdmConfig::square(2, 8)).unwrap();
        let data: Vec<Tagged> = (0..1024)
            .map(|i| Tagged::new(rng.gen_range(0..1u64 << 16), i))
            .collect();
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, &data).unwrap();
        let rep = radix_sort(&mut pdm, &input, data.len(), 16).unwrap();
        let got = pdm.inspect_prefix(&rep.report.output, data.len()).unwrap();
        // sorted by key; payloads arbitrary within equal keys
        assert!(got.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn signed_keys_sort_correctly() {
        // i64 ranks are sign-bias-flipped: negatives must come out first
        let mut rng = StdRng::seed_from_u64(98);
        let mut pdm: Pdm<i64> = Pdm::new(PdmConfig::square(2, 8)).unwrap();
        let data: Vec<i64> = (0..2000).map(|_| rng.gen_range(-1000..1000)).collect();
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, &data).unwrap();
        let rep = radix_sort(&mut pdm, &input, data.len(), 64).unwrap();
        let got = pdm.inspect_prefix(&rep.report.output, data.len()).unwrap();
        let mut want = data.clone();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(got.first().unwrap() < &0 && got.last().unwrap() > &0);
    }

    #[test]
    fn memory_stays_bounded_for_large_n() {
        let mut pdm = machine(2, 8); // M = 64
        let mut rng = StdRng::seed_from_u64(97);
        let n = 16384; // N/M = 256
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 24)).collect();
        let rep = run_sort(&mut pdm, &data, 24);
        check_sorted(&mut pdm, &rep, &data);
        assert!(
            rep.report.peak_mem <= pdm.cfg().mem_limit(),
            "peak {} vs limit {}",
            rep.report.peak_mem,
            pdm.cfg().mem_limit()
        );
    }
}
