//! `ExpectedTwoPass` (paper §5, Theorem 5.1): sorts
//! `N ≤ M√M/√((α+2)·ln M + 2)` keys in two passes on a `≥ 1 − M^{−α}`
//! fraction of all inputs, falling back to the deterministic
//! [`crate::three_pass2`] (three additional passes) when the online check
//! detects a bad input.
//!
//! * **Pass 1 — runs.** Form `N₁ = N/M` sorted runs of `M` keys; write run
//!   `i`'s `t`-th chunk (of `M/N₁` keys) into window region `t` — the
//!   shuffle `Z` of the runs is materialized window-by-window at write
//!   time, so pass 2 reads each window with one stripe scan.
//! * **Pass 2 — shuffle + local sort.** Stream the windows through the
//!   [`Cleaner`] (sort carry+window, emit the smallest `M`). By the
//!   shuffling lemma (Lemma 4.2), with probability `≥ 1 − M^{−α}` every
//!   key of `Z` is within `M` of its sorted position, so the stream is
//!   sorted. The cleaner performs the paper's abort check online; on
//!   detection the algorithm stops and re-sorts the original input with
//!   `ThreePass2` — expected passes `2(1 − M^{−α}) + 5·M^{−α} ≈ 2`.

use crate::common::{
    alloc_staggered, capacity_expected_two_pass, require_square_cfg, Algorithm, Cleaner,
    RegionEmitter, SortReport,
};
use crate::three_pass2;
use pdm_model::prelude::*;

/// The Theorem 5.1 capacity for memory `m` and confidence parameter `α`.
pub fn capacity(m: usize, alpha: f64) -> usize {
    capacity_expected_two_pass(m, alpha)
}

/// Smallest divisor of `b` that is `≥ want` (run-count rounding so window
/// chunks stay block-aligned). `b` is a block size, typically a power of 2.
fn round_up_to_divisor(b: usize, want: usize) -> Option<usize> {
    (want..=b).find(|&x| b % x == 0)
}

pub(crate) struct RunsPlan {
    pub b: usize,
    pub m: usize,
    /// Effective run count, a divisor of `b`.
    pub n1: usize,
    /// Blocks per window chunk: `b / n1`.
    pub chunk_blocks: usize,
    /// Run length in keys: `⌈n / (n1·chunk)⌉ · chunk ≤ M`. Rounding the
    /// run length (not the run count) keeps total `K::MAX` padding below
    /// one window, so padding never poisons the cleanup carry.
    pub run_len: usize,
    /// Windows (= chunks per run): `run_len / chunk`.
    pub windows: usize,
}

pub(crate) fn runs_plan<K: PdmKey, S: Storage<K>>(pdm: &Pdm<K, S>, n: usize) -> Result<RunsPlan> {
    let b = require_square_cfg(pdm.cfg())?;
    let m = pdm.cfg().mem_capacity;
    if n == 0 {
        return Err(PdmError::UnsupportedInput("empty input".into()));
    }
    let want = n.div_ceil(m);
    let n1 = round_up_to_divisor(b, want).ok_or_else(|| {
        PdmError::UnsupportedInput(format!(
            "ExpectedTwoPass needs ≤ √M = {b} runs; got ⌈n/M⌉ = {want}"
        ))
    })?;
    let chunk_blocks = b / n1;
    let chunk = chunk_blocks * b;
    let run_len = n.div_ceil(n1 * chunk) * chunk;
    debug_assert!(run_len <= m && n1 * run_len >= n);
    debug_assert!(n1 * run_len - n < n1 * chunk, "padding must stay below one window");
    Ok(RunsPlan {
        b,
        m,
        n1,
        chunk_blocks,
        run_len,
        windows: run_len / chunk,
    })
}

/// Pass 1: form `n1` sorted runs of `run_len` keys and scatter window
/// chunks (chunk `t` of run `i` → window region `t`, block offset
/// `i·chunk_blocks`).
pub(crate) fn pass1_runs_shuffled<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    p: &RunsPlan,
    windows: &[Region],
) -> Result<()> {
    let RunsPlan { b, n1, chunk_blocks, run_len, .. } = *p;
    debug_assert_eq!(windows.len(), p.windows);
    let in_blocks = input.len_blocks();
    let run_blocks = run_len / b;
    // Reads run one run ahead and chunk writes retire behind. Tail runs
    // can be pure padding (no real blocks) — schedule read-ahead only
    // where the blocking path reads, mirroring the `lo < hi` guard.
    let steps: Vec<Vec<(Region, usize)>> = (0..n1)
        .filter_map(|i| {
            let lo = i * run_blocks;
            let hi = ((i + 1) * run_blocks).min(in_blocks);
            (lo < hi).then(|| (lo..hi).map(|j| (*input, j)).collect())
        })
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    for i in 0..n1 {
        let mut run = pdm.alloc_buf(run_len)?;
        let lo = i * run_blocks;
        let hi = ((i + 1) * run_blocks).min(in_blocks);
        if lo < hi {
            ra.next_into(pdm, run.as_vec_mut())?;
        }
        run.truncate(n.saturating_sub(lo * b).min(run_len));
        run.resize(run_len, K::MAX);
        crate::kernels::sort_keys(&mut run);
        let mut targets: Vec<(Region, usize)> = Vec::with_capacity(run_blocks);
        for w in windows.iter() {
            for cb in 0..chunk_blocks {
                targets.push((*w, i * chunk_blocks + cb));
            }
        }
        wb.write_multi(pdm, &targets, &run)?;
    }
    wb.finish(pdm) // drain before the caller's phase boundary
}

/// Outcome of the streaming pass: emitted count and whether it stayed clean.
pub(crate) fn pass2_stream<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    p: &RunsPlan,
    windows: &[Region],
    emit: &mut dyn FnMut(&mut Pdm<K, S>, &[K]) -> Result<()>,
) -> Result<(usize, bool)> {
    let RunsPlan { b, m, .. } = *p;
    let mut cleaner = Cleaner::new(pdm, m)?;
    // Speculative bucket prefetch: every window's location is known the
    // moment pass 1 settles, so the reads are issued ahead of consumption
    // — but *charged* only at consumption, because the cleanliness check
    // below may abort mid-schedule and the blocking path never reads (or
    // charges) past the aborting window. Dropping the read-ahead on abort
    // abandons the unconsumed in-flight batches with zero accounting
    // trace, so output, pass counts, and probe streams stay byte-identical
    // to the blocking path. A window holds n1 chunks of chunk_blocks
    // blocks = b blocks = M keys.
    let steps: Vec<Vec<(Region, usize)>> = windows
        .iter()
        .map(|w| (0..b).map(|i| (*w, i)).collect())
        .collect();
    let mut ra = ReadAhead::new_speculative(pdm, steps)?;
    for _ in windows {
        cleaner.feed_from(pdm, &mut ra)?;
        cleaner.process(pdm, emit)?;
        if !cleaner.clean() {
            // Abort early, as the paper prescribes — the fallback re-sorts
            // from the original input, so the partial output is discarded
            // (and `ra` drops its speculative in-flight batches uncharged).
            return Ok((cleaner.emitted(), false));
        }
    }
    cleaner.finish(pdm, emit)
}

/// Sort `n` keys in an expected two passes (Theorem 5.1). For the
/// guarantee, keep `n ≤ capacity(M, α)`; larger `n` (up to `M√M`) is
/// accepted but falls back more often.
///
/// # Example
///
/// ```
/// use pdm_model::prelude::*;
/// use rand::seq::SliceRandom;
/// let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, 16)).unwrap();
/// let mut data: Vec<u64> = (0..512).collect();
/// data.shuffle(&mut rand::rngs::mock::StepRng::new(7, 13));
/// let input = pdm.alloc_region_for_keys(data.len()).unwrap();
/// pdm.ingest(&input, &data).unwrap();
/// let rep = pdm_sort::expected_two_pass(&mut pdm, &input, data.len()).unwrap();
/// assert!(rep.read_passes <= 5.0); // 2 normally; ≤ 5 on a detected bad input
/// ```
pub fn expected_two_pass<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
) -> Result<SortReport> {
    let p = runs_plan(pdm, n)?;
    let windows = alloc_staggered(pdm, p.windows, p.b)?;
    let out = pdm.alloc_region_for_keys(p.n1 * p.run_len)?;

    pdm.begin_phase("E2P: runs+shuffle");
    pass1_runs_shuffled(pdm, input, n, &p, &windows)?;
    // Pass 2's reads are issued speculatively inside `pass2_stream` (see
    // there): its data-dependent early abort means an eagerly-*charged*
    // read-ahead would count batches the blocking path never charges, so
    // the charges ride with consumption instead. The emission is issued
    // at the same points either way, so it rides a write-behind safely —
    // even on an aborted run.
    pdm.begin_phase("E2P: stream+verify");
    let mut emitter = RegionEmitter::new(out);
    let mut wb = WriteBehind::new(pdm);
    let (_, clean) =
        pass2_stream(pdm, &p, &windows, &mut |pd, ks| emitter.emit_behind(pd, &mut wb, ks))?;
    wb.finish(pdm)?;
    pdm.end_phase();

    if clean {
        return Ok(SortReport::from_stats(
            pdm,
            out,
            n,
            Algorithm::ExpectedTwoPass,
            false,
        ));
    }
    // Bad input detected: abort and fall back (paper: +3 passes).
    pdm.begin_phase("E2P: fallback ThreePass2");
    let rep = three_pass2::three_pass2(pdm, input, n)?;
    pdm.end_phase();
    Ok(SortReport {
        algorithm: Algorithm::ExpectedTwoPass,
        fell_back: true,
        ..SortReport::from_stats(pdm, rep.output, n, Algorithm::ExpectedTwoPass, true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn machine(d: usize, b: usize) -> Pdm<u64> {
        Pdm::new(PdmConfig::square(d, b)).unwrap()
    }

    fn run_sort(pdm: &mut Pdm<u64>, data: &[u64]) -> SortReport {
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, data).unwrap();
        pdm.reset_stats();
        expected_two_pass(pdm, &input, data.len()).unwrap()
    }

    fn check_sorted(pdm: &mut Pdm<u64>, rep: &SortReport, data: &[u64]) {
        let mut want = data.to_vec();
        want.sort_unstable();
        let got = pdm.inspect_prefix(&rep.output, data.len()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn divisor_rounding() {
        assert_eq!(round_up_to_divisor(16, 3), Some(4));
        assert_eq!(round_up_to_divisor(16, 4), Some(4));
        assert_eq!(round_up_to_divisor(16, 5), Some(8));
        assert_eq!(round_up_to_divisor(12, 5), Some(6));
        assert_eq!(round_up_to_divisor(16, 17), None);
    }

    #[test]
    fn capacity_below_structural_max() {
        let m = 1 << 12;
        let cap = capacity(m, 2.0);
        assert!(cap < m * (1 << 6));
        assert!(cap > m); // still superlinear in M
    }

    #[test]
    fn sorts_random_input_in_two_passes() {
        // M = 256, capacity(α=2) ≈ 4096/√(4·5.5+2) ≈ M^1.5/4.9 ≈ 835 →
        // use N = 512 = 2 runs, comfortably within capacity.
        let mut pdm = machine(4, 16);
        let mut rng = StdRng::seed_from_u64(31);
        let mut data: Vec<u64> = (0..512).collect();
        data.shuffle(&mut rng);
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
        assert!(!rep.fell_back, "random input should not fall back");
        assert!((rep.read_passes - 2.0).abs() < 1e-9, "read {}", rep.read_passes);
        assert!((rep.write_passes - 2.0).abs() < 1e-9);
        assert!(rep.peak_mem <= 2 * 256);
    }

    #[test]
    fn random_inputs_rarely_fall_back() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut fallbacks = 0;
        for _ in 0..30 {
            let mut pdm = machine(2, 16);
            let mut data: Vec<u64> = (0..768).collect(); // 3→4 runs
            data.shuffle(&mut rng);
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
            fallbacks += usize::from(rep.fell_back);
        }
        assert!(fallbacks <= 2, "{fallbacks}/30 fallbacks on random inputs");
    }

    #[test]
    fn adversarial_input_falls_back_and_still_sorts() {
        // Reverse-sorted input maximizes displacement after run shuffle:
        // run i holds the globally largest-first segment, so the shuffled
        // windows interleave badly → detector must fire, fallback sorts.
        let mut pdm = machine(4, 16);
        let n = 4096; // full M√M: far beyond the expected-2-pass capacity
        let data: Vec<u64> = (0..n as u64).rev().collect();
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
        assert!(rep.fell_back, "reverse input must trigger the abort check");
        // aborted pass 2 + 3 fallback passes: total read passes in (2, 5]
        assert!(rep.read_passes > 2.0 && rep.read_passes <= 5.0 + 1e-9);
    }

    #[test]
    fn sorted_input_stays_two_passes() {
        let mut pdm = machine(2, 16);
        let data: Vec<u64> = (0..512).collect();
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
        assert!(!rep.fell_back);
    }

    #[test]
    fn partial_input_with_padding() {
        let mut pdm = machine(2, 16);
        let mut rng = StdRng::seed_from_u64(33);
        for n in [100usize, 256, 300, 700] {
            let data: Vec<u64> = (0..n as u64).map(|_| rng.gen_range(0..10_000)).collect();
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn output_is_correct_even_when_falling_back() {
        // all-equal keys with a single out-of-place small key cannot break
        // anything; meanwhile duplicates stress the detector's ≥ logic
        let mut pdm = machine(2, 8);
        let mut data = vec![5u64; 512];
        data[511] = 1;
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
    }

    #[test]
    fn overlap_changes_nothing_but_wall_clock() {
        // Clean two-pass path and the abort→fallback path must both be
        // byte-identical in output and accounting with overlap on or off.
        let mut rng = StdRng::seed_from_u64(34);
        let mut shuffled: Vec<u64> = (0..512).collect();
        shuffled.shuffle(&mut rng);
        let reversed: Vec<u64> = (0..4096u64).rev().collect();
        for data in [&shuffled, &reversed] {
            let run = |overlap: bool| {
                let mut pdm = machine(4, 16);
                pdm.set_overlap(overlap);
                let input = pdm.alloc_region_for_keys(data.len()).unwrap();
                pdm.ingest(&input, data).unwrap();
                pdm.reset_stats();
                let rep = expected_two_pass(&mut pdm, &input, data.len()).unwrap();
                assert_eq!(pdm.pending_io(), 0, "phases must drain all overlap I/O");
                let got = pdm.inspect_prefix(&rep.output, data.len()).unwrap();
                let s = pdm.stats();
                (got, rep.fell_back, s.blocks_read, s.blocks_written, s.read_steps, s.write_steps)
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(on, off, "overlap must be invisible to output and accounting");
        }
    }

    #[test]
    fn empty_input_rejected() {
        let mut pdm = machine(2, 8);
        let input = pdm.alloc_region_for_keys(8).unwrap();
        assert!(expected_two_pass(&mut pdm, &input, 0).is_err());
    }

    #[test]
    fn phase_names_reflect_fallback() {
        let mut pdm = machine(4, 16);
        let data: Vec<u64> = (0..4096u64).rev().collect();
        let _ = run_sort(&mut pdm, &data);
        let names: Vec<&str> = pdm.stats().phases.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"E2P: fallback ThreePass2"));
    }
}
