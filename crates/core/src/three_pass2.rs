//! `ThreePass2` (paper §4, Lemma 4.1): the LMM-based three-pass sort of up
//! to `M·√M` keys with `B = √M`.
//!
//! Specialization of the `(l, m)`-merge sort with `l = N/M ≤ √M` runs and
//! `m = √M`:
//!
//! * **Pass 1 — runs + unshuffle.** Read `M` keys at a time, sort in
//!   memory, and write each run *already unshuffled* into `m = √M` parts of
//!   one block each (part `j` takes sorted positions `≡ j (mod m)`). Part
//!   `j` of run `i` lands in column region `j` at block `i`.
//! * **Pass 2 — column merges.** For each `j`: read column `j` (`l` sorted
//!   blocks, `≤ M` keys), merge in memory into `L_j`, and write `L_j`'s
//!   `√M`-key chunks into the *window* regions — chunk `t` to window `t`,
//!   block `j`.
//! * **Pass 3 — shuffle + cleanup.** Window `t` holds exactly the keys of
//!   `Z_t` (the `t`-th `M`-key window of the shuffled sequence `Z`). Since
//!   the cleanup sorts each window anyway, the shuffle permutation never
//!   needs materializing — stream the windows through the [`Cleaner`]
//!   (carry one window, emit the smallest `M` per step). The `(l, m)`-merge
//!   dirty bound `l·m ≤ M` guarantees the stream comes out sorted.
//!
//! All three passes do stripe-parallel I/O via staggered region starts.

use crate::common::{
    alloc_staggered, merge_equal_segments, require_square_cfg, Algorithm, Cleaner, RegionEmitter,
    SortReport,
};
use pdm_model::prelude::*;

/// Maximum keys `ThreePass2` sorts on a machine with memory `m`: `M·√M`.
pub fn capacity(m: usize) -> usize {
    let b = (m as f64).sqrt() as usize;
    m * b
}

/// Plan shared by `ThreePass2` and the run-formation stage of `SevenPass`.
pub(crate) struct Plan {
    /// `√M` — block size, parts per run, merge fan-in.
    pub b: usize,
    /// Number of runs, `⌈n / M⌉ ≤ √M`.
    pub l: usize,
    /// Memory size `M = b²`.
    pub m: usize,
}

pub(crate) fn plan<K: PdmKey, S: Storage<K>>(pdm: &Pdm<K, S>, n: usize) -> Result<Plan> {
    let b = require_square_cfg(pdm.cfg())?;
    let m = pdm.cfg().mem_capacity;
    if n == 0 {
        return Err(PdmError::UnsupportedInput("empty input".into()));
    }
    let l = n.div_ceil(m);
    if l > b {
        return Err(PdmError::UnsupportedInput(format!(
            "ThreePass2 sorts at most M√M = {} keys; got {n}",
            capacity(m)
        )));
    }
    Ok(Plan { b, l, m })
}

/// Pass 1: form `l` sorted runs of `M` keys (padding the tail with `K::MAX`)
/// and write them unshuffled into the `b` column regions.
pub(crate) fn pass1_runs_unshuffled<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    p: &Plan,
    cols: &[Region],
) -> Result<()> {
    let Plan { b, l, m } = *p;
    let in_blocks = input.len_blocks();
    // Reads run one submesh ahead and the column writes retire behind
    // (input and columns are disjoint regions, so the reorder is safe).
    // SevenPass hands short (even empty) segments whose tail runs are all
    // padding — schedule read-ahead only where the blocking path reads.
    let steps: Vec<Vec<(Region, usize)>> = (0..l)
        .filter_map(|i| {
            let lo = i * b;
            let hi = ((i + 1) * b).min(in_blocks);
            (lo < hi).then(|| (lo..hi).map(|j| (*input, j)).collect())
        })
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    for i in 0..l {
        let mut run = pdm.alloc_buf(m)?;
        let lo = i * b;
        let hi = ((i + 1) * b).min(in_blocks);
        if lo < hi {
            ra.next_into(pdm, run.as_vec_mut())?;
        }
        run.truncate(n.saturating_sub(lo * b).min(m));
        run.resize(m, K::MAX);
        crate::kernels::sort_keys(&mut run);

        // Unshuffle: part j gets sorted positions j, j+b, j+2b, … — a b×b
        // transpose into the write buffer (block j contiguous).
        let mut wbuf = pdm.alloc_buf(m)?;
        {
            let v = wbuf.as_vec_mut();
            v.resize(m, K::MAX);
            for j in 0..b {
                for k in 0..b {
                    v[j * b + k] = run[k * b + j];
                }
            }
        }
        let targets: Vec<(Region, usize)> = cols.iter().map(|c| (*c, i)).collect();
        wb.write_multi(pdm, &targets, &wbuf)?;
    }
    wb.finish(pdm) // drain before the caller's phase boundary
}

/// Pass 2: merge each column's `l` sorted blocks into `L_j` and scatter its
/// `√M`-key chunks across the window regions.
pub(crate) fn pass2_column_merges<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    p: &Plan,
    cols: &[Region],
    windows: &[Region],
) -> Result<()> {
    let Plan { b, l, .. } = *p;
    let steps: Vec<Vec<(Region, usize)>> = cols
        .iter()
        .map(|col| (0..l).map(|i| (*col, i)).collect())
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    let mut wb = WriteBehind::new(pdm);
    for j in 0..cols.len() {
        let mut buf = pdm.alloc_buf(l * b)?;
        ra.next_into(pdm, buf.as_vec_mut())?;
        let mut merged = pdm.alloc_buf(l * b)?;
        merge_equal_segments(&buf, b, merged.as_vec_mut());
        drop(buf);
        let targets: Vec<(Region, usize)> = windows.iter().map(|w| (*w, j)).collect();
        wb.write_multi(pdm, &targets, &merged)?;
    }
    wb.finish(pdm)
}

/// Pass 3: stream the windows through the cleanup engine into `out`.
/// Returns `(keys_emitted, clean)`.
pub(crate) fn pass3_cleanup<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    p: &Plan,
    windows: &[Region],
    emit: &mut dyn FnMut(&mut Pdm<K, S>, &[K]) -> Result<()>,
) -> Result<(usize, bool)> {
    let Plan { b, m, .. } = *p;
    let mut cleaner = Cleaner::new(pdm, m)?;
    let steps: Vec<Vec<(Region, usize)>> = windows
        .iter()
        .map(|w| (0..b).map(|i| (*w, i)).collect())
        .collect();
    let mut ra = ReadAhead::new(pdm, steps)?;
    for _ in 0..windows.len() {
        cleaner.feed_from(pdm, &mut ra)?;
        cleaner.process(pdm, emit)?;
    }
    cleaner.finish(pdm, emit)
}

/// The three passes with a caller-supplied emitter for the final sorted
/// stream (emitted in `M`-key slices) — `SevenPass` folds its outer
/// unshuffle into this emission. Returns `(keys_emitted, clean)`.
///
/// The final phase is left *open*: the caller must drain whatever
/// write-behind its emitter holds and then call
/// [`Pdm::end_phase`](pdm_model::machine::Pdm::end_phase), so the
/// checkpoint boundary only ever sees settled output.
pub(crate) fn three_pass2_core<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
    emit: &mut dyn FnMut(&mut Pdm<K, S>, &[K]) -> Result<()>,
) -> Result<(usize, bool)> {
    let p = plan(pdm, n)?;
    let cols = alloc_staggered(pdm, p.b, p.l)?;
    let windows = alloc_staggered(pdm, p.l, p.b)?;
    pdm.begin_phase("3P2: runs+unshuffle");
    pass1_runs_unshuffled(pdm, input, n, &p, &cols)?;
    pdm.begin_phase("3P2: column merges");
    pass2_column_merges(pdm, &p, &cols, &windows)?;
    pdm.begin_phase("3P2: shuffle+cleanup");
    pass3_cleanup(pdm, &p, &windows, emit)
}

/// Sort `n ≤ M√M` keys from `input` in three passes (Lemma 4.1). The output
/// region's first `n` keys are the sorted data (tail padding is `K::MAX`).
///
/// # Example
///
/// ```
/// use pdm_model::prelude::*;
/// let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::square(4, 16)).unwrap();
/// let data: Vec<u64> = (0..4096u64).rev().collect(); // N = M√M
/// let input = pdm.alloc_region_for_keys(data.len()).unwrap();
/// pdm.ingest(&input, &data).unwrap();
/// let rep = pdm_sort::three_pass2(&mut pdm, &input, data.len()).unwrap();
/// assert_eq!(rep.read_passes, 3.0);
/// assert!(pdm.inspect_prefix(&rep.output, 4096).unwrap().windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn three_pass2<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
) -> Result<SortReport> {
    let p = plan(pdm, n)?;
    let out = pdm.alloc_region_for_keys(p.l * p.m)?;
    let mut emitter = RegionEmitter::new(out);
    let mut wb = WriteBehind::new(pdm);
    let (emitted, clean) =
        three_pass2_core(pdm, input, n, &mut |pd, ks| emitter.emit_behind(pd, &mut wb, ks))?;
    wb.finish(pdm)?;
    pdm.end_phase();

    debug_assert_eq!(emitted, p.l * p.m);
    if !clean {
        return Err(PdmError::UnsupportedInput(
            "ThreePass2 cleanup detected an inversion — (l,m)-merge invariant violated".into(),
        ));
    }
    Ok(SortReport::from_stats(pdm, out, n, Algorithm::ThreePass2, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn machine(d: usize, b: usize) -> Pdm<u64> {
        Pdm::new(PdmConfig::square(d, b)).unwrap()
    }

    fn run_sort(pdm: &mut Pdm<u64>, data: &[u64]) -> SortReport {
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, data).unwrap();
        pdm.reset_stats();
        three_pass2(pdm, &input, data.len()).unwrap()
    }

    fn check_sorted(pdm: &mut Pdm<u64>, rep: &SortReport, data: &[u64]) {
        let mut want = data.to_vec();
        want.sort_unstable();
        let got = pdm.inspect_prefix(&rep.output, data.len()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn capacity_is_m_sqrt_m() {
        assert_eq!(capacity(64), 512);
        assert_eq!(capacity(4096), 262144);
    }

    #[test]
    fn sorts_full_capacity_random_input() {
        let mut pdm = machine(4, 8); // M = 64, N = 512
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..512).map(|_| rng.gen_range(0..1u64 << 40)).collect();
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
    }

    #[test]
    fn takes_exactly_three_passes_at_full_capacity() {
        let mut pdm = machine(4, 16); // M = 256, N = 4096
        let mut rng = StdRng::seed_from_u64(2);
        let mut data: Vec<u64> = (0..4096).collect();
        data.shuffle(&mut rng);
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
        assert!(
            (rep.read_passes - 3.0).abs() < 1e-9,
            "read passes = {}",
            rep.read_passes
        );
        assert!(
            (rep.write_passes - 3.0).abs() < 1e-9,
            "write passes = {}",
            rep.write_passes
        );
    }

    #[test]
    fn memory_stays_within_two_m() {
        let mut pdm = machine(4, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u64> = (0..4096).collect();
        data.shuffle(&mut rng);
        let rep = run_sort(&mut pdm, &data);
        assert!(
            rep.peak_mem <= 2 * 256,
            "peak memory {} exceeds 2M",
            rep.peak_mem
        );
    }

    #[test]
    fn full_disk_parallelism() {
        let mut pdm = machine(4, 16);
        let mut rng = StdRng::seed_from_u64(4);
        let mut data: Vec<u64> = (0..4096).collect();
        data.shuffle(&mut rng);
        let _ = run_sort(&mut pdm, &data);
        let eff_r = pdm.stats().read_parallel_efficiency(4);
        let eff_w = pdm.stats().write_parallel_efficiency(4);
        assert!(eff_r > 0.99, "read efficiency {eff_r}");
        assert!(eff_w > 0.99, "write efficiency {eff_w}");
    }

    #[test]
    fn sorts_partial_inputs_with_padding() {
        let mut pdm = machine(2, 8); // M = 64, capacity 512
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 7, 63, 64, 65, 100, 500] {
            let data: Vec<u64> = (0..n as u64).map(|_| rng.gen_range(0..1000)).collect();
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        let mut pdm = machine(4, 8);
        for data in [
            (0..512u64).rev().collect::<Vec<_>>(),
            (0..512u64).collect::<Vec<_>>(),
            vec![7u64; 512],
            (0..512u64).map(|i| i % 2).collect::<Vec<_>>(),
            (0..512u64).map(|i| i / 37).collect::<Vec<_>>(),
        ] {
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn zero_one_inputs_at_every_split_point() {
        // 0-1 principle style stress: all threshold patterns under random
        // permutation of positions.
        let mut pdm = machine(2, 8);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 512;
        for k in [0usize, 1, 17, 256, 511, 512] {
            let mut data: Vec<u64> = (0..n).map(|i| u64::from(i >= k)).collect();
            data.shuffle(&mut rng);
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn rejects_oversized_input() {
        let mut pdm = machine(2, 8);
        let input = pdm.alloc_region_for_keys(513).unwrap();
        assert!(three_pass2(&mut pdm, &input, 513).is_err());
    }

    #[test]
    fn rejects_empty_input() {
        let mut pdm = machine(2, 8);
        let input = pdm.alloc_region_for_keys(8).unwrap();
        assert!(three_pass2(&mut pdm, &input, 0).is_err());
    }

    #[test]
    fn rejects_non_square_config() {
        let mut pdm: Pdm<u64> = Pdm::new(PdmConfig::new(2, 4, 64)).unwrap();
        let input = pdm.alloc_region_for_keys(64).unwrap();
        assert!(three_pass2(&mut pdm, &input, 64).is_err());
    }

    #[test]
    fn phases_are_recorded() {
        let mut pdm = machine(4, 8);
        let data: Vec<u64> = (0..512).rev().collect();
        let _ = run_sort(&mut pdm, &data);
        let names: Vec<&str> = pdm.stats().phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["3P2: runs+unshuffle", "3P2: column merges", "3P2: shuffle+cleanup"]
        );
        // each phase reads the data once
        for ph in &pdm.stats().phases {
            assert_eq!(ph.blocks_read, 64, "phase {} blocks", ph.name);
        }
    }

    #[test]
    fn overlap_changes_nothing_but_wall_clock() {
        let mut rng = StdRng::seed_from_u64(10);
        let data: Vec<u64> = (0..512).map(|_| rng.gen_range(0..1u64 << 40)).collect();
        let run = |overlap: bool| {
            let mut pdm = machine(4, 8);
            pdm.set_overlap(overlap);
            let input = pdm.alloc_region_for_keys(data.len()).unwrap();
            pdm.ingest(&input, &data).unwrap();
            pdm.reset_stats();
            let rep = three_pass2(&mut pdm, &input, data.len()).unwrap();
            assert_eq!(pdm.pending_io(), 0, "phases must drain all overlap I/O");
            let got = pdm.inspect_prefix(&rep.output, data.len()).unwrap();
            let s = pdm.stats();
            (got, s.blocks_read, s.blocks_written, s.read_steps, s.write_steps)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on, off, "overlap must be invisible to output and accounting");
    }

    #[test]
    fn works_on_tagged_records() {
        let mut pdm: Pdm<Tagged> = Pdm::new(PdmConfig::square(2, 8)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<Tagged> = (0..512)
            .map(|i| Tagged::new(rng.gen_range(0..100), i))
            .collect();
        let input = pdm.alloc_region_for_keys(512).unwrap();
        pdm.ingest(&input, &data).unwrap();
        let rep = three_pass2(&mut pdm, &input, 512).unwrap();
        let got = pdm.inspect_prefix(&rep.output, 512).unwrap();
        let mut want = data;
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
