//! Cache-friendly k-way merge kernels: the loser tree behind
//! [`crate::common::merge_equal_segments`], an in-place two-run merge for
//! the [`crate::common::Cleaner`], and the `BinaryHeap` reference
//! implementation the equivalence tests and benches compare against.
//!
//! A loser tree (tournament tree) keeps the *losers* of each match in a
//! flat array of `k` internal nodes and replays exactly one leaf-to-root
//! path per extracted key: `⌈log₂ k⌉` comparisons against keys cached
//! inside the nodes themselves, no sift-down branching and no per-pop
//! allocation — the standard kernel of external-memory merge sorters
//! (Knuth Vol. 3 §5.4.1; Rahn–Sanders–Singler).
//!
//! Exhausted segments are represented by the `K::MAX` sentinel rather
//! than a liveness flag, which turns every match into a plain key compare
//! that compiles to a branch-free min/max — the difference between ~45
//! and ~15 ns/key at `k = 64` on a modern out-of-order core, where the
//! data-dependent "did the climber lose?" branch of the flagged variant
//! mispredicts roughly half the time.
//!
//! Why the sentinel is sound even though `K::MAX` legitimately occurs in
//! the input (block padding): the merge emits *keys only*, so which of
//! several equal keys is emitted first is unobservable in the output.
//! Once a sentinel wins while real keys remain, every live head must also
//! equal `K::MAX` (segments are sorted), the rest of the output is all
//! `K::MAX`, and `remaining` — counted at construction — still stops the
//! merge after exactly the right number of keys. The equivalence tests
//! against [`kway_merge_heap`] pin this down.

use pdm_model::PdmKey;

/// One tournament entry: a leaf index plus that leaf's current key, cached
/// together so a match costs a single contiguous load instead of an
/// indirect lookup through the segment arrays. Exhausted (and padding)
/// leaves carry `K::MAX` as their key.
#[derive(Clone, Copy)]
struct Node<K> {
    key: K,
    leaf: u32,
}

/// Replay one leaf-to-root path after the previous winner `win` was
/// consumed; returns the new overall winner (callers store it in
/// `nodes[0]`).
///
/// Each level is branch-free: the smaller entry climbs, the larger stays
/// as that match's loser, both sides written unconditionally so the
/// compiler lowers the selects to cmov. On equal keys the climber keeps
/// climbing — legal because equal keys are interchangeable in the
/// key-only output.
#[inline(always)]
fn replay<K: PdmKey>(nodes: &mut [Node<K>], tails: &mut [&[K]], cap: usize, win: Node<K>) -> Node<K> {
    let wi = win.leaf as usize;
    let tail = &mut tails[wi];
    let mut cur = match tail.split_first() {
        Some((&next, rest)) => {
            *tail = rest;
            Node {
                key: next,
                leaf: win.leaf,
            }
        }
        // Exhausted: the leaf re-enters the tournament as a sentinel and
        // loses every future match against live keys.
        None => Node {
            key: K::MAX,
            leaf: win.leaf,
        },
    };
    let mut node = (cap + wi) >> 1;
    while node != 0 {
        let other = nodes[node];
        let swap = other.key < cur.key;
        let stay_leaf = if swap { cur.leaf } else { other.leaf };
        let climb_leaf = if swap { other.leaf } else { cur.leaf };
        let lo = if swap { other.key } else { cur.key };
        let hi = if swap { cur.key } else { other.key };
        nodes[node] = Node {
            key: hi,
            leaf: stay_leaf,
        };
        cur = Node {
            key: lo,
            leaf: climb_leaf,
        };
        node >>= 1;
    }
    cur
}

/// A k-way merge over borrowed sorted segments.
///
/// Construction is `O(k)`; each [`LoserTree::pop`] is `⌈log₂ k⌉`
/// branch-free comparisons. Keys are cached inside the tree nodes (the
/// Rahn–Sanders–Singler layout), so the leaf-to-root replay touches one
/// flat array and the winner's segment — never the other `k - 1` heads.
pub struct LoserTree<'a, K: PdmKey> {
    /// Unread suffix per segment, *after* the key currently cached in the
    /// tree for that leaf. Padded to `cap` so every leaf index a sentinel
    /// node may carry stays in bounds.
    tails: Vec<&'a [K]>,
    /// `nodes[0]` is the overall winner; `nodes[1..cap]` hold the loser of
    /// each internal match.
    nodes: Vec<Node<K>>,
    /// Leaf count padded to a power of two.
    cap: usize,
    remaining: usize,
}

impl<'a, K: PdmKey> LoserTree<'a, K> {
    /// Build a tree over `segs`; empty segments are allowed and simply
    /// start exhausted.
    pub fn new(segs: Vec<&'a [K]>) -> Self {
        let k = segs.len();
        let cap = k.next_power_of_two().max(1);
        let remaining = segs.iter().map(|s| s.len()).sum();
        let dead = Node {
            key: K::MAX,
            leaf: 0,
        };
        let mut tails: Vec<&'a [K]> = Vec::with_capacity(cap);
        // Play the tournament bottom-up: `winner[n]` is the survivor of
        // the subtree under node `n`, the defeated side stays in `nodes`.
        let mut winner = vec![dead; 2 * cap];
        for (i, w) in winner[cap..].iter_mut().enumerate() {
            match segs.get(i).and_then(|s| s.split_first()) {
                Some((&head, rest)) => {
                    *w = Node {
                        key: head,
                        leaf: i as u32,
                    };
                    tails.push(rest);
                }
                None => {
                    *w = Node {
                        key: K::MAX,
                        leaf: i as u32,
                    };
                    tails.push(&[][..]);
                }
            }
        }
        let mut nodes = vec![dead; cap];
        for n in (1..cap).rev() {
            let (a, b) = (winner[2 * n], winner[2 * n + 1]);
            if a.key <= b.key {
                nodes[n] = b;
                winner[n] = a;
            } else {
                nodes[n] = a;
                winner[n] = b;
            }
        }
        nodes[0] = winner[1];
        Self {
            tails,
            nodes,
            cap,
            remaining,
        }
    }

    /// Keys not yet extracted.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether every segment is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Extract the next key in merge order, replaying one leaf-to-root
    /// path of matches.
    #[inline]
    pub fn pop(&mut self) -> Option<K> {
        if self.remaining == 0 {
            return None;
        }
        let win = self.nodes[0];
        self.nodes[0] = replay(&mut self.nodes, &mut self.tails, self.cap, win);
        self.remaining -= 1;
        Some(win.key)
    }

    /// Streaming variant: append up to `max` keys of merge output to
    /// `out`; returns how many were appended (0 only at exhaustion).
    ///
    /// The hot loop keeps the current winner in a register across
    /// iterations (writing `nodes[0]` back once at the end) so consecutive
    /// replays are not serialized through a store-to-load on the root.
    pub fn next_chunk(&mut self, out: &mut Vec<K>, max: usize) -> usize {
        let take = max.min(self.remaining);
        if take == 0 {
            return 0;
        }
        out.reserve(take);
        let cap = self.cap;
        let nodes = &mut self.nodes[..];
        let tails = &mut self.tails[..];
        let mut win = nodes[0];
        for _ in 0..take {
            out.push(win.key);
            win = replay(nodes, tails, cap, win);
        }
        nodes[0] = win;
        self.remaining -= take;
        take
    }

    /// Drain the whole merge into `out` (appending).
    pub fn merge_into(&mut self, out: &mut Vec<K>) {
        let n = self.remaining;
        self.next_chunk(out, n);
    }
}

/// Merge arbitrary sorted segments into `out` (cleared first).
pub fn kway_merge<K: PdmKey>(segs: &[&[K]], out: &mut Vec<K>) {
    out.clear();
    let mut tree = LoserTree::new(segs.to_vec());
    tree.merge_into(out);
}

/// Reference k-way merge via `BinaryHeap`, kept as the baseline the
/// equivalence tests and the `kway_merge_64` bench compare the loser tree
/// against. Not used on any production path.
pub fn kway_merge_heap<K: Copy + Ord>(segs: &[&[K]], out: &mut Vec<K>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    out.clear();
    let mut heap: BinaryHeap<Reverse<(K, usize, usize)>> = segs
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, s)| Reverse((s[0], i, 0)))
        .collect();
    while let Some(Reverse((k, i, j))) = heap.pop() {
        out.push(k);
        if j + 1 < segs[i].len() {
            heap.push(Reverse((segs[i][j + 1], i, j + 1)));
        }
    }
}

/// Heap-based `merge_equal_segments` (the pre-loser-tree implementation),
/// kept so equivalence stays assertable from integration tests and the
/// kernels bench can report the before/after delta.
pub fn merge_equal_segments_heap<K: Copy + Ord>(buf: &[K], part_len: usize, out: &mut Vec<K>) {
    assert!(part_len > 0 && buf.len() % part_len == 0);
    let segs: Vec<&[K]> = buf.chunks(part_len).collect();
    kway_merge_heap(&segs, out);
}

/// Merge the two consecutive sorted runs `v[..mid]` and `v[mid..]` in
/// place with O(1) auxiliary space (the SymMerge algorithm of Kim &
/// Kutzner, "Stable Minimum Storage Merging by Symmetric Comparisons").
///
/// Used by the [`crate::common::Cleaner`], whose `≤ 2w` resident-key
/// budget (the paper's "two successive Z_i's in memory") leaves no room
/// for a scratch buffer.
pub fn merge_in_place<K: Ord>(v: &mut [K], mid: usize) {
    let n = v.len();
    if mid == 0 || mid == n || v[mid - 1] <= v[mid] {
        return;
    }
    sym_merge(v, 0, mid, n);
}

fn sym_merge<K: Ord>(v: &mut [K], a: usize, m: usize, b: usize) {
    // Single-element run: binary-insert it into the other run.
    if m - a == 1 {
        let mut i = m;
        let mut j = b;
        while i < j {
            let h = (i + j) / 2;
            if v[h] < v[a] {
                i = h + 1;
            } else {
                j = h;
            }
        }
        v[a..i].rotate_left(1);
        return;
    }
    if b - m == 1 {
        let mut i = a;
        let mut j = m;
        while i < j {
            let h = (i + j) / 2;
            if v[m] < v[h] {
                j = h;
            } else {
                i = h + 1;
            }
        }
        v[i..=m].rotate_right(1);
        return;
    }
    // Symmetric decomposition: find the split point around the midpoint,
    // rotate the middle sections, recurse on both halves.
    let mid = (a + b) / 2;
    let n = mid + m;
    let (mut start, mut r) = if m > mid { (n - b, mid) } else { (a, m) };
    let p = n - 1;
    while start < r {
        let c = (start + r) / 2;
        if v[p - c] < v[c] {
            r = c;
        } else {
            start = c + 1;
        }
    }
    let end = n - start;
    if start < m && m < end {
        v[start..end].rotate_left(m - start);
    }
    if a < start && start < mid {
        sym_merge(v, a, start, mid);
    }
    if mid < end && end < b {
        sym_merge(v, mid, end, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_against_sorted(segs: &[Vec<u64>]) {
        let refs: Vec<&[u64]> = segs.iter().map(|s| s.as_slice()).collect();
        let mut want: Vec<u64> = segs.iter().flatten().copied().collect();
        want.sort_unstable();
        let mut got = Vec::new();
        kway_merge(&refs, &mut got);
        assert_eq!(got, want);
        let mut heap_out = Vec::new();
        kway_merge_heap(&refs, &mut heap_out);
        assert_eq!(got, heap_out, "loser tree and heap must agree exactly");
    }

    #[test]
    fn merges_basic_segments() {
        check_against_sorted(&[vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
    }

    #[test]
    fn handles_duplicates_and_max_padding() {
        check_against_sorted(&[
            vec![1, 1, u64::MAX, u64::MAX],
            vec![1, 2, 2, u64::MAX],
            vec![u64::MAX, u64::MAX, u64::MAX, u64::MAX],
        ]);
    }

    #[test]
    fn handles_empty_and_uneven_segments() {
        check_against_sorted(&[vec![], vec![5], vec![], vec![1, 2, 3, 4, 9], vec![0]]);
        check_against_sorted(&[vec![], vec![], vec![]]);
        check_against_sorted(&[]);
        check_against_sorted(&[vec![3, 3, 3]]);
    }

    #[test]
    fn non_power_of_two_segment_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        for k in [1usize, 2, 3, 5, 6, 7, 9, 13, 17, 64, 65] {
            let segs: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let len = rng.gen_range(0..20);
                    let mut s: Vec<u64> = (0..len).map(|_| rng.gen_range(0..50)).collect();
                    s.sort_unstable();
                    s
                })
                .collect();
            check_against_sorted(&segs);
        }
    }

    #[test]
    fn streaming_chunks_concatenate_to_full_merge() {
        let segs = [vec![1u64, 3, 5, 7], vec![2, 4, 6, 8], vec![0, 9]];
        let refs: Vec<&[u64]> = segs.iter().map(|s| s.as_slice()).collect();
        let mut tree = LoserTree::new(refs);
        assert_eq!(tree.remaining(), 10);
        let mut out = Vec::new();
        while tree.next_chunk(&mut out, 3) > 0 {}
        assert!(tree.is_empty());
        assert_eq!(out, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn merge_in_place_agrees_with_sort() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let n = rng.gen_range(0..64);
            let mid = if n == 0 { 0 } else { rng.gen_range(0..n + 1) };
            let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..16)).collect();
            v[..mid].sort_unstable();
            v[mid..].sort_unstable();
            let mut want = v.clone();
            want.sort_unstable();
            merge_in_place(&mut v, mid);
            assert_eq!(v, want, "mid = {mid}");
        }
    }

    #[test]
    fn merge_in_place_edge_cases() {
        let mut v: Vec<u64> = vec![];
        merge_in_place(&mut v, 0);
        let mut v = vec![1u64];
        merge_in_place(&mut v, 0);
        merge_in_place(&mut v, 1);
        assert_eq!(v, [1]);
        let mut v = vec![2u64, 1];
        merge_in_place(&mut v, 1);
        assert_eq!(v, [1, 2]);
        // already ordered: the fast path
        let mut v = vec![1u64, 2, 3, 4];
        merge_in_place(&mut v, 2);
        assert_eq!(v, [1, 2, 3, 4]);
    }
}
