//! `ExpTwoPassMesh` (paper §3.2, Theorem 3.2): `ThreePass1` with pass 1
//! removed — two passes for `N ≈ M√M/(c·α·ln M)` keys on a `≥ 1 − M^{−α}`
//! fraction of inputs.
//!
//! The input is arranged into the `(N/√M) × √M` mesh *column-major*, so a
//! full mesh column is a contiguous, block-aligned `≤ M`-key segment of
//! the input:
//!
//! * **Pass 1 — column sorts.** Sort each column; scatter its band
//!   segments (one block per `√M`-row band).
//! * **Pass 2 — cleanup.** For a random input the columns are a uniform
//!   random partition of the keys, so after sorting them the 0-1 dirty
//!   band has `O(√((α+2)·rows·ln N))` rows (balls-in-bins/Chernoff, the
//!   paper's proof of Theorem 3.2) — under the capacity bound that is at
//!   most `√M` rows = one `M`-key band, which the streaming [`Cleaner`]
//!   absorbs. The online check catches bad inputs; fallback is the
//!   deterministic `ThreePass2` (Lemma 4.1), as the paper prescribes.

use crate::common::{alloc_staggered, require_square_cfg, Algorithm, Cleaner, RegionEmitter, SortReport};
use crate::three_pass2;
use pdm_model::prelude::*;

/// Theorem 3.2 capacity estimate: `M√M / (3·(α+2)·ln M)` keys (the paper
/// leaves the constant unspecified; 3 matches the Chernoff-based dirty-band
/// bound `√(2(α+2)·rows·ln N) ≤ √M` and is validated empirically in E3).
pub fn capacity(m: usize, alpha: f64) -> usize {
    let mf = m as f64;
    (mf * mf.sqrt() / (3.0 * (alpha + 2.0) * mf.ln())) as usize
}

/// Sort `n` keys in an expected two passes (Theorem 3.2). For the
/// guarantee keep `n ≤ capacity(M, α)`; larger inputs (up to `M√M`) are
/// accepted but fall back increasingly often.
pub fn exp_two_pass_mesh<K: PdmKey, S: Storage<K>>(
    pdm: &mut Pdm<K, S>,
    input: &Region,
    n: usize,
) -> Result<SortReport> {
    let b = require_square_cfg(pdm.cfg())?;
    let m = pdm.cfg().mem_capacity;
    if n == 0 {
        return Err(PdmError::UnsupportedInput("empty input".into()));
    }
    // rows per column, rounded up to whole bands of b rows
    let rows = n.div_ceil(b).div_ceil(b) * b;
    if rows > m {
        return Err(PdmError::UnsupportedInput(format!(
            "ExpTwoPassMesh sorts at most M√M = {} keys; got {n}",
            m * b
        )));
    }
    let bands = rows / b; // each band: b rows × b cols = M keys
    let col_blocks = rows / b;
    let band_regions = alloc_staggered(pdm, bands, b)?;
    let out = pdm.alloc_region_for_keys(rows * b)?;
    let in_blocks = input.len_blocks();

    // Pass 1: sort columns (column c = input positions [c·rows, (c+1)·rows)).
    pdm.begin_phase("E2PM: column sorts");
    for c in 0..b {
        let mut buf = pdm.alloc_buf(rows)?;
        let lo = c * col_blocks;
        let hi = ((c + 1) * col_blocks).min(in_blocks);
        if lo < hi {
            let idx: Vec<usize> = (lo..hi).collect();
            pdm.read_blocks(input, &idx, buf.as_vec_mut())?;
        }
        buf.truncate(n.saturating_sub(lo * b).min(rows));
        buf.resize(rows, K::MAX);
        crate::kernels::sort_keys(&mut buf);
        // band t's segment is buf[t*b..(t+1)*b] — contiguous
        let targets: Vec<(Region, usize)> = band_regions.iter().map(|t| (*t, c)).collect();
        pdm.write_blocks_multi(&targets, &buf)?;
    }

    // Pass 2: streaming cleanup with online verification.
    pdm.begin_phase("E2PM: cleanup+verify");
    let mut cleaner = Cleaner::new(pdm, m)?;
    let mut emitter = RegionEmitter::new(out);
    let mut emit = |pd: &mut Pdm<K, S>, ks: &[K]| emitter.emit(pd, ks);
    let all_blocks: Vec<usize> = (0..b).collect();
    let mut aborted = false;
    for band in &band_regions {
        cleaner.feed_blocks(pdm, band, &all_blocks)?;
        cleaner.process(pdm, &mut emit)?;
        if !cleaner.clean() {
            aborted = true;
            break;
        }
    }
    let clean = if aborted {
        drop(cleaner);
        false
    } else {
        let (_, c) = cleaner.finish(pdm, &mut emit)?;
        c
    };
    pdm.end_phase();

    if clean {
        return Ok(SortReport::from_stats(
            pdm,
            out,
            n,
            Algorithm::ExpTwoPassMesh,
            false,
        ));
    }
    pdm.begin_phase("E2PM: fallback ThreePass2");
    let rep = three_pass2::three_pass2(pdm, input, n)?;
    pdm.end_phase();
    Ok(SortReport {
        algorithm: Algorithm::ExpTwoPassMesh,
        fell_back: true,
        ..SortReport::from_stats(pdm, rep.output, n, Algorithm::ExpTwoPassMesh, true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn machine(d: usize, b: usize) -> Pdm<u64> {
        Pdm::new(PdmConfig::square(d, b)).unwrap()
    }

    fn run_sort(pdm: &mut Pdm<u64>, data: &[u64]) -> SortReport {
        let input = pdm.alloc_region_for_keys(data.len()).unwrap();
        pdm.ingest(&input, data).unwrap();
        pdm.reset_stats();
        exp_two_pass_mesh(pdm, &input, data.len()).unwrap()
    }

    fn check_sorted(pdm: &mut Pdm<u64>, rep: &SortReport, data: &[u64]) {
        let mut want = data.to_vec();
        want.sort_unstable();
        let got = pdm.inspect_prefix(&rep.output, data.len()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn capacity_is_sublinear_in_ln_m() {
        let m = 1 << 16;
        let c = capacity(m, 1.0);
        assert!(c > m, "capacity {c} should exceed M");
        assert!(c < m * (1 << 8), "capacity {c} should be below M√M");
        assert!(capacity(m, 2.0) < c);
    }

    #[test]
    fn sorts_random_input_in_two_passes() {
        // M = 1024, b = 32, N = 2048 → rows = 64, 2 blocks per column
        // read: D = 2 keeps the short column reads stripe-full (at real
        // scale rows ≫ D·B and any D works).
        let mut pdm = machine(2, 32);
        let mut rng = StdRng::seed_from_u64(71);
        let mut data: Vec<u64> = (0..2048).collect();
        data.shuffle(&mut rng);
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
        assert!(!rep.fell_back, "random input fell back");
        assert!((rep.read_passes - 2.0).abs() < 1e-9, "read {}", rep.read_passes);
        assert!(rep.peak_mem <= 2 * 1024 + 256);
        assert!(pdm.stats().read_parallel_efficiency(2) > 0.99);
    }

    #[test]
    fn random_inputs_rarely_fall_back() {
        let mut rng = StdRng::seed_from_u64(72);
        let mut fallbacks = 0;
        for _ in 0..20 {
            let mut pdm = machine(2, 16);
            let mut data: Vec<u64> = (0..1024).collect(); // rows = 64 ≤ M/4
            data.shuffle(&mut rng);
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
            fallbacks += usize::from(rep.fell_back);
        }
        assert!(fallbacks <= 2, "{fallbacks}/20 fell back");
    }

    #[test]
    fn adversarial_input_falls_back_and_sorts() {
        // Column-major reverse order puts each column in a disjoint range →
        // dirty band spans everything → must abort and fall back.
        let mut pdm = machine(2, 16);
        let n = 4096; // full M√M
        let data: Vec<u64> = (0..n as u64).rev().collect();
        let rep = run_sort(&mut pdm, &data);
        check_sorted(&mut pdm, &rep, &data);
        assert!(rep.fell_back);
        assert!(rep.read_passes <= 5.0 + 1e-9, "read {}", rep.read_passes);
    }

    #[test]
    fn partial_inputs_with_padding() {
        let mut rng = StdRng::seed_from_u64(73);
        for n in [10usize, 255, 256, 1000] {
            let mut pdm = machine(2, 16);
            let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
            let rep = run_sort(&mut pdm, &data);
            check_sorted(&mut pdm, &rep, &data);
        }
    }

    #[test]
    fn rejects_oversized_and_empty() {
        let mut pdm = machine(2, 8);
        let input = pdm.alloc_region_for_keys(64).unwrap();
        assert!(exp_two_pass_mesh(&mut pdm, &input, 513).is_err());
        assert!(exp_two_pass_mesh(&mut pdm, &input, 0).is_err());
    }
}
